"""The shared exception taxonomy and the narrowed runner retry policy."""

import pytest

from repro.errors import (
    ARTIFACT_DECODE_ERRORS,
    RETRYABLE_ERRORS,
    CorruptArtifactError,
    FatalError,
    InfrastructureError,
    ReproError,
    RunTerminated,
    TrialError,
    WorkerCrashError,
    classify,
    is_retryable,
)
from repro.experiments.runner import RetryPolicy, RunnerConfig, execute_trial


def test_hierarchy():
    assert issubclass(TrialError, ReproError)
    assert issubclass(WorkerCrashError, InfrastructureError)
    assert issubclass(CorruptArtifactError, InfrastructureError)
    # Legacy raisers/catchers used RuntimeError; the taxonomy keeps
    # that compatibility edge so old except clauses still work.
    assert issubclass(TrialError, RuntimeError)
    assert issubclass(InfrastructureError, RuntimeError)
    # Termination must escape `except Exception` blocks, like
    # KeyboardInterrupt does.
    assert issubclass(RunTerminated, BaseException)
    assert not issubclass(RunTerminated, Exception)


def test_classify():
    assert classify(TrialError("stall")) == "trial"
    assert classify(WorkerCrashError("boom")) == "infrastructure"
    assert classify(CorruptArtifactError("bits")) == "infrastructure"
    assert classify(FatalError("bad config")) == "fatal"
    assert classify(ValueError("anything else")) == "fatal"


def test_is_retryable():
    assert is_retryable(TrialError("stall"))
    assert is_retryable(WorkerCrashError("boom"))
    assert not is_retryable(FatalError("stop"))
    assert not is_retryable(RuntimeError("bare"))
    for cls in RETRYABLE_ERRORS:
        assert is_retryable(cls("x"))


def test_decode_errors_cover_common_corruption_shapes():
    import zipfile

    for cls in (ValueError, KeyError, OSError, EOFError, zipfile.BadZipFile):
        assert issubclass(cls, ARTIFACT_DECODE_ERRORS)


def test_deprecated_retryable_alias_warns():
    import repro.experiments.runner as runner

    with pytest.warns(DeprecationWarning, match="RETRYABLE"):
        legacy = runner.RETRYABLE
    assert legacy == RETRYABLE_ERRORS


def test_bare_runtime_error_is_no_longer_retried():
    """The old policy retried any RuntimeError/ValueError; a bug like a
    typo'd attribute now fails fast instead of burning the budget."""
    calls = []

    def buggy_trial(label, index, rng, watchdog):
        calls.append(1)
        raise RuntimeError("programming error, not a flaky page load")

    with pytest.raises(RuntimeError, match="programming error"):
        execute_trial(
            buggy_trial, "bing.com", 0, 0, master_seed=1,
            retry=RetryPolicy(max_attempts=4, backoff_base=0.0),
            sleep=lambda s: None,
        )
    assert len(calls) == 1


def test_trial_error_still_retries():
    calls = []

    def flaky_trial(label, index, rng, watchdog):
        calls.append(1)
        raise TrialError("transient")

    outcome = execute_trial(
        flaky_trial, "bing.com", 0, 0, master_seed=1,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        sleep=lambda s: None,
    )
    assert len(calls) == 3
    assert outcome.failure is not None
    assert outcome.failure.error == "TrialError"


def test_runner_config_carries_supervisor_config():
    from repro.supervise import SupervisorConfig

    config = RunnerConfig(supervisor=SupervisorConfig(max_worker_restarts=1))
    assert config.supervisor.max_worker_restarts == 1
    # And it canonicalises for cache-key derivation like every config.
    assert "supervisor" in config.to_dict()
