"""End-to-end chaos through the ResilientRunner.

The acceptance bar: a collection that loses workers mid-run must
produce the *same bytes* as an undisturbed serial run, poison trials
must land in the report instead of sinking the run, and interruption
(SIGTERM, SIGKILL-torn checkpoints) must stay resumable.
"""

import functools
import json
import os
import signal

import pytest

from repro.capture.serialize import save_dataset
from repro.errors import RunTerminated, WorkerCrashError
from repro.experiments.runner import ResilientRunner, RunnerConfig
from repro.supervise import SupervisorConfig
from tests.experiments.test_runner import datasets_equal, synthetic_trial_fn
from tests.supervise.faults import (
    TARGET,
    crash_once_trial,
    poison_trial,
    sigterm_once_trial,
)

SITES = ["bing.com", "github.com"]
N_SAMPLES = 4


def no_sleep_runner(config=None):
    return ResilientRunner(config, sleep=lambda s: None)


def npz_bytes(dataset, path) -> bytes:
    save_dataset(dataset, str(path))
    return path.read_bytes()


def test_worker_crash_recovery_is_byte_identical(tmp_path):
    serial, _ = no_sleep_runner(RunnerConfig(workers=1)).collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7
    )
    trial_fn = functools.partial(crash_once_trial, str(tmp_path / "sentinel"))
    crashed, report = no_sleep_runner(RunnerConfig(workers=2)).collect(
        SITES, N_SAMPLES, trial_fn, master_seed=7
    )
    assert (tmp_path / "sentinel").exists(), "fault never fired"
    assert datasets_equal(serial, crashed)
    assert npz_bytes(serial, tmp_path / "a.npz") == npz_bytes(
        crashed, tmp_path / "b.npz"
    )
    assert not report.failures


def test_worker_crash_metrics_with_no_double_counting(tmp_path, obs_session):
    trial_fn = functools.partial(crash_once_trial, str(tmp_path / "sentinel"))
    _, report = no_sleep_runner(RunnerConfig(workers=2)).collect(
        SITES, N_SAMPLES, trial_fn, master_seed=7
    )
    registry = obs_session.registry
    assert registry.counter("supervisor.worker_restarts").value >= 1
    assert registry.counter("supervisor.chunks_rescheduled").value >= 1
    # The crashed chunk never ships its metric snapshot; only its
    # replay does — so trial counters match the grid exactly.
    assert registry.counter("runner.trials").value == len(SITES) * N_SAMPLES
    assert (
        registry.counter("runner.trials_completed").value
        == len(SITES) * N_SAMPLES
    )


def test_poison_trial_is_quarantined_not_fatal(tmp_path):
    config = RunnerConfig(
        workers=2, supervisor=SupervisorConfig(max_worker_restarts=20)
    )
    dataset, report = no_sleep_runner(config).collect(
        SITES, N_SAMPLES, poison_trial, master_seed=7
    )
    label, sample = TARGET
    assert report.quarantined_trials == 1
    assert "quarantined" in report.summary()
    [failure] = [f for f in report.failures if f.error == "WorkerCrashError"]
    assert (failure.label, failure.index) == TARGET
    assert failure.attempts >= 2
    # Every other trial matches the serial run of the same grid.
    serial, _ = no_sleep_runner(RunnerConfig(workers=1)).collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7
    )
    assert len(dataset.traces[label]) == N_SAMPLES - 1
    others = [s for s in range(N_SAMPLES) if s != sample]
    for got, want in zip(
        dataset.traces[label], [serial.traces[label][s] for s in others]
    ):
        assert datasets_equal_traces(got, want)


def datasets_equal_traces(a, b) -> bool:
    import numpy as np

    return (
        np.array_equal(a.times, b.times)
        and np.array_equal(a.directions, b.directions)
        and np.array_equal(a.sizes, b.sizes)
    )


def test_poison_trial_fails_run_when_quarantine_disabled():
    config = RunnerConfig(
        workers=2,
        supervisor=SupervisorConfig(max_worker_restarts=20, quarantine=False),
    )
    with pytest.raises(WorkerCrashError):
        no_sleep_runner(config).collect(
            SITES, N_SAMPLES, poison_trial, master_seed=7
        )


def test_sigterm_checkpoints_and_is_resumable(tmp_path):
    checkpoint = str(tmp_path / "ckpt.npz")
    config = RunnerConfig(checkpoint_path=checkpoint, checkpoint_every=1)
    trial_fn = functools.partial(sigterm_once_trial, str(tmp_path / "sentinel"))

    with pytest.raises(RunTerminated):
        no_sleep_runner(config).collect(
            SITES, N_SAMPLES, trial_fn, master_seed=7
        )
    # The final checkpoint was written on the way out...
    assert os.path.exists(checkpoint)
    assert os.path.exists(checkpoint + ".manifest.json")
    # ...the original handler was restored...
    assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL
    # ...and the run resumes to a dataset identical to an undisturbed one.
    resumed, report = no_sleep_runner(config).collect(
        SITES, N_SAMPLES, trial_fn, master_seed=7, resume=True
    )
    assert report.resumed_trials > 0
    serial, _ = no_sleep_runner().collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7
    )
    assert datasets_equal(serial, resumed)


def test_truncated_checkpoint_is_evicted_on_resume(tmp_path, obs_session):
    checkpoint = str(tmp_path / "ckpt.npz")
    config = RunnerConfig(checkpoint_path=checkpoint, checkpoint_every=1)
    full, _ = no_sleep_runner(config).collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7
    )
    # Simulate SIGKILL mid-write on a filesystem without atomic
    # guarantees: the archive is torn in half.
    blob = open(checkpoint, "rb").read()
    with open(checkpoint, "wb") as handle:
        handle.write(blob[: len(blob) // 2])

    resumed, report = no_sleep_runner(config).collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7, resume=True
    )
    assert report.resumed_trials == 0  # evicted, recollected from scratch
    assert datasets_equal(full, resumed)
    assert obs_session.registry.counter("runner.checkpoint_corrupt").value == 1


def test_garbage_manifest_is_evicted_on_resume(tmp_path):
    checkpoint = str(tmp_path / "ckpt.npz")
    config = RunnerConfig(checkpoint_path=checkpoint, checkpoint_every=1)
    full, _ = no_sleep_runner(config).collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7
    )
    with open(checkpoint + ".manifest.json", "w") as handle:
        handle.write("{ not json")

    resumed, report = no_sleep_runner(config).collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7, resume=True
    )
    assert report.resumed_trials == 0
    assert datasets_equal(full, resumed)
    # Both halves of the pair were removed before the rerun rewrote them.
    manifest = json.load(open(checkpoint + ".manifest.json"))
    assert manifest["fingerprint"]


def test_checkpoint_fingerprint_mismatch_still_loud(tmp_path):
    """Corruption eviction must not swallow the config-mismatch guard:
    resuming someone else's checkpoint is an error, not an eviction."""
    checkpoint = str(tmp_path / "ckpt.npz")
    config = RunnerConfig(checkpoint_path=checkpoint, checkpoint_every=1)
    no_sleep_runner(config).collect(
        SITES, N_SAMPLES, synthetic_trial_fn, master_seed=7
    )
    with pytest.raises(ValueError, match="different run configuration"):
        no_sleep_runner(config).collect(
            SITES, N_SAMPLES, synthetic_trial_fn, master_seed=8, resume=True
        )
