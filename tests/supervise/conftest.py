"""Chaos-suite fixtures: never leak an obs session or a chaos env var,
and keep deadline timing off the wall clock."""

import os

import pytest

from repro.obs import runtime
from repro.supervise import CHAOS_ENV


class SteppingClock:
    """Deterministic stand-in for ``time.monotonic``.

    Advances by ``step`` on every call, so when injected as
    ``SupervisedPool(clock=...)`` a chunk's age is a function of how
    many times the supervisor *polled*, not of machine load.  With
    ``step=0`` it only moves when the test sets ``now`` directly.
    """

    def __init__(self, step=1.0, start=0.0):
        self.step = step
        self.now = start

    def __call__(self):
        self.now += self.step
        return self.now


@pytest.fixture(autouse=True)
def _clean_slate():
    runtime.disable()
    os.environ.pop(CHAOS_ENV, None)
    yield
    runtime.disable()
    os.environ.pop(CHAOS_ENV, None)


@pytest.fixture
def obs_session():
    session = runtime.enable()
    yield session
    runtime.disable()


@pytest.fixture
def stepping_clock():
    return SteppingClock()
