"""Chaos-suite fixtures: never leak an obs session or a chaos env var."""

import os

import pytest

from repro.obs import runtime
from repro.supervise import CHAOS_ENV


@pytest.fixture(autouse=True)
def _clean_slate():
    runtime.disable()
    os.environ.pop(CHAOS_ENV, None)
    yield
    runtime.disable()
    os.environ.pop(CHAOS_ENV, None)


@pytest.fixture
def obs_session():
    session = runtime.enable()
    yield session
    runtime.disable()
