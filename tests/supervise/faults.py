"""Picklable fault-injecting tasks and trial functions.

Everything here is module-level (pools pickle tasks by reference) and
guarded so a fault only ever fires inside a *worker* process — the
supervisor's serial-degradation path runs tasks in the coordinating
process, and killing that would kill the test run itself.

"Once" semantics use a sentinel file claimed with O_CREAT|O_EXCL, the
same mechanism as :func:`repro.supervise.chaos_maybe_fault`: exactly
one claimant faults, every retry after it runs normally — which is
what lets recovery tests assert byte-identity with an unfaulted run.
"""

import multiprocessing
import os
import time

from tests.experiments.test_runner import synthetic_trial_fn


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _claim(sentinel: str) -> bool:
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


# -- SupervisedPool tasks: task(items) -> payload -------------------------


def echo_chunk(items):
    """The well-behaved baseline task."""
    return list(items)


def crash_once_chunk(sentinel, items):
    """Kill the hosting worker exactly once, then behave."""
    if _in_worker() and _claim(sentinel):
        os._exit(32)
    return list(items)


def poison_chunk(poison, items):
    """Kill the worker whenever the poison item is in the chunk."""
    if _in_worker() and poison in items:
        os._exit(33)
    return list(items)


def always_crash_chunk(items):
    """Kill the worker on every run (drives the circuit breaker); in
    the coordinating process — the serial drain — it behaves."""
    if _in_worker():
        os._exit(34)
    return list(items)


def hang_once_chunk(sentinel, items):
    """Hang far past any deadline exactly once, then behave."""
    if _in_worker() and _claim(sentinel):
        time.sleep(600)
    return list(items)


def raising_chunk(items):
    raise ValueError("task raised, not crashed")


# -- runner trial functions: (label, index, rng, watchdog) -> Trace -------

#: The coordinate whose trial misbehaves in the runner-level tests.
TARGET = ("github.com", 1)


def crash_once_trial(sentinel, label, index, rng, watchdog):
    """Kill the worker the first time the target trial runs."""
    if (label, index) == TARGET and _in_worker() and _claim(sentinel):
        os._exit(32)
    return synthetic_trial_fn(label, index, rng, watchdog)


def poison_trial(label, index, rng, watchdog):
    """The target trial always kills its worker."""
    if (label, index) == TARGET and _in_worker():
        os._exit(33)
    return synthetic_trial_fn(label, index, rng, watchdog)


def sigterm_once_trial(sentinel, label, index, rng, watchdog):
    """Deliver SIGTERM to the collecting process at the target trial,
    exactly once — simulates a batch scheduler preempting the run."""
    import signal

    if (label, index) == TARGET and _claim(sentinel):
        os.kill(os.getpid(), signal.SIGTERM)
    return synthetic_trial_fn(label, index, rng, watchdog)
