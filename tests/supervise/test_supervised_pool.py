"""SupervisedPool chaos tests: worker death, poison, breaker, hangs.

Faults are real — workers genuinely ``os._exit`` or hang — so these
tests exercise the actual ``BrokenProcessPool`` recovery machinery,
not a simulation of it.
"""

import functools

import pytest

from repro.errors import WorkerCrashError
from repro.supervise import (
    QuarantinedTrial,
    SupervisedPool,
    SupervisorConfig,
    SupervisorReport,
)

CHUNKS = [[0, 1], [2, 3], [4, 5], [6, 7]]


def collect_into(sink):
    def complete(payload):
        sink.extend(payload)

    return complete


def test_config_validation():
    with pytest.raises(ValueError, match="max_worker_restarts"):
        SupervisorConfig(max_worker_restarts=-1)
    with pytest.raises(ValueError, match="max_chunk_crashes"):
        SupervisorConfig(max_chunk_crashes=0)
    with pytest.raises(ValueError, match="trial_deadline"):
        SupervisorConfig(trial_deadline=0)
    with pytest.raises(ValueError, match="soft_deadline_factor"):
        SupervisorConfig(soft_deadline_factor=5.0, hard_deadline_factor=4.0)
    with pytest.raises(ValueError, match="workers"):
        SupervisedPool(0, print, print)


def test_healthy_run_completes_everything():
    from tests.supervise.faults import echo_chunk

    got = []
    report = SupervisedPool(2, echo_chunk, collect_into(got)).run(CHUNKS)
    assert sorted(got) == list(range(8))
    assert report == SupervisorReport()


def test_worker_death_recovers_and_loses_nothing(tmp_path):
    from tests.supervise.faults import crash_once_chunk

    task = functools.partial(crash_once_chunk, str(tmp_path / "sentinel"))
    got = []
    report = SupervisedPool(2, task, collect_into(got)).run(CHUNKS)
    assert sorted(got) == list(range(8))
    assert report.worker_restarts >= 1
    assert report.chunks_rescheduled >= 1
    assert not report.quarantined
    assert not report.breaker_tripped


def test_poison_item_is_cornered_and_quarantined():
    from tests.supervise.faults import poison_chunk

    task = functools.partial(poison_chunk, 5)
    got = []
    config = SupervisorConfig(max_worker_restarts=20)
    report = SupervisedPool(2, task, collect_into(got), config=config).run(CHUNKS)
    # Everything except the poison item completes; bisection plus the
    # isolation probe corner exactly item 5.
    assert sorted(got) == [0, 1, 2, 3, 4, 6, 7]
    assert [q.item for q in report.quarantined] == [5]
    assert isinstance(report.quarantined[0], QuarantinedTrial)
    assert report.quarantined[0].crashes >= 2
    assert not report.breaker_tripped


def test_quarantine_disabled_raises_worker_crash_error():
    from tests.supervise.faults import poison_chunk

    task = functools.partial(poison_chunk, 5)
    config = SupervisorConfig(max_worker_restarts=20, quarantine=False)
    with pytest.raises(WorkerCrashError, match="killed a worker"):
        SupervisedPool(2, task, lambda payload: None, config=config).run(CHUNKS)


def test_breaker_trips_and_degrades_to_serial():
    from tests.supervise.faults import always_crash_chunk

    got = []
    config = SupervisorConfig(max_worker_restarts=1, max_chunk_crashes=50)
    report = SupervisedPool(
        2, always_crash_chunk, collect_into(got), config=config
    ).run(CHUNKS)
    # Workers always die, so the budget of 1 restart is blown quickly;
    # the serial in-process drain (where the fault is inert) finishes.
    assert report.breaker_tripped
    assert report.worker_restarts == 2
    assert report.serial_chunks >= 1
    assert sorted(got) == list(range(8))


def test_task_exceptions_propagate_not_supervised():
    from tests.supervise.faults import raising_chunk

    with pytest.raises(ValueError, match="task raised"):
        SupervisedPool(2, raising_chunk, lambda payload: None).run(CHUNKS)


def test_hung_worker_is_hard_killed_and_work_rescheduled(
    tmp_path, stepping_clock
):
    from tests.supervise.faults import hang_once_chunk

    task = functools.partial(hang_once_chunk, str(tmp_path / "sentinel"))
    got = []
    # Deadlines are in *fake* seconds (one per supervisor poll): healthy
    # chunks finish in a couple of polls while the hung one accrues fake
    # age every poll until the hard kill fires — load-independent.
    config = SupervisorConfig(
        trial_deadline=4.0,
        soft_deadline_factor=1.0,
        hard_deadline_factor=2.0,
        poll_interval=0.02,
    )
    report = SupervisedPool(
        2, task, collect_into(got), config=config, clock=stepping_clock
    ).run(CHUNKS)
    assert sorted(got) == list(range(8))
    assert report.hard_kills >= 1
    assert report.soft_deadline_warnings >= 1
    assert report.worker_restarts >= 1
    assert not report.quarantined


def test_deadline_bookkeeping_with_fake_clock():
    """Soft warn then hard kill, each exactly once, pinned step by step
    by a manual clock — no subprocesses, no real waits."""
    from repro.supervise import _Chunk
    from tests.supervise.conftest import SteppingClock

    clock = SteppingClock(step=0.0)  # only moves when the test says so
    config = SupervisorConfig(
        trial_deadline=10.0, soft_deadline_factor=1.0, hard_deadline_factor=3.0
    )
    pool = SupervisedPool(
        1, lambda items: items, lambda payload: None,
        config=config, clock=clock,
    )

    class StubPool:  # _kill_workers sees no processes -> no-op
        _processes = {}

    chunk = _Chunk(items=[0])  # soft deadline 10, hard deadline 30
    future = object()
    in_flight = {future: chunk}
    submitted_at = {future: 0.0}
    report = SupervisorReport()

    for now, warnings, kills in [
        (5.0, 0, 0),    # under the soft deadline: nothing
        (11.0, 1, 0),   # past soft: warned
        (12.0, 1, 0),   # still past soft: warned only once
        (31.0, 1, 1),   # past hard: killed
        (32.0, 1, 1),   # already killed: not killed again
    ]:
        clock.now = now
        pool._check_deadlines(StubPool(), in_flight, submitted_at, report)
        assert report.soft_deadline_warnings == warnings, f"at t={now}"
        assert report.hard_kills == kills, f"at t={now}"
    assert chunk.soft_warned and chunk.hard_killed


def test_empty_and_trivial_inputs():
    from tests.supervise.faults import echo_chunk

    got = []
    report = SupervisedPool(2, echo_chunk, collect_into(got)).run([])
    assert got == [] and report == SupervisorReport()
    report = SupervisedPool(2, echo_chunk, collect_into(got)).run([[], [9]])
    assert got == [9]


def test_obs_metrics_recorded(tmp_path, obs_session):
    from tests.supervise.faults import crash_once_chunk

    task = functools.partial(crash_once_chunk, str(tmp_path / "sentinel"))
    SupervisedPool(2, task, lambda payload: None).run(CHUNKS)
    registry = obs_session.registry
    assert registry.counter("supervisor.worker_restarts").value >= 1
    assert registry.counter("supervisor.chunks_rescheduled").value >= 1
    assert registry.gauge("supervisor.breaker_state").last == 0


def test_breaker_gauge_flips_open(obs_session):
    from tests.supervise.faults import always_crash_chunk

    config = SupervisorConfig(max_worker_restarts=0, max_chunk_crashes=50)
    report = SupervisedPool(
        2, always_crash_chunk, lambda payload: None, config=config
    ).run([[1]])
    assert report.breaker_tripped
    assert obs_session.registry.gauge("supervisor.breaker_state").last == 1
    assert obs_session.registry.counter("supervisor.serial_chunks").value >= 1
