"""Shared campaign fixtures: a tiny, fast campaign config."""

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.web.pageload import PageLoadConfig


@pytest.fixture
def tiny_config():
    """6 sites x 2 samples in 4-trial shards: 3 shards, sub-second."""
    return CampaignConfig(
        n_sites=6,
        n_samples=2,
        shard_size=4,
        seed=7,
        pageload=PageLoadConfig(max_duration=30.0),
    )


@pytest.fixture
def campaign_dir(tmp_path, tiny_config):
    """A completed tiny campaign."""
    directory = str(tmp_path / "campaign")
    report = run_campaign(directory, tiny_config)
    assert report.complete
    return directory
