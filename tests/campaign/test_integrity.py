"""The injected-corruption checklist: every fault class is detected by
verify and healed by repair, byte-identically."""

import dataclasses
import errno
import json
import os

import pytest

from repro.campaign import (
    load_manifest,
    repair_campaign,
    run_campaign,
    verify_campaign,
)
from repro.campaign.manifest import (
    manifest_path,
    payload_sha256,
    shard_payload_path,
    shard_sidecar_path,
)
from repro.campaign.verify import (
    MANIFEST_CORRUPT,
    PAYLOAD_DIGEST,
    PAYLOAD_MISSING,
    SIDECAR_CORRUPT,
    SIDECAR_MISSING,
)
from repro.errors import RepairMismatchError


def _digests(directory):
    return {
        i: r.payload_sha256
        for i, r in load_manifest(directory).shards.items()
    }


def _assert_detected_and_healed(directory, reference, kinds):
    """The shared arc: verify finds exactly `kinds`, repair heals,
    re-verify is clean, digests match the pre-corruption reference."""
    report = verify_campaign(directory)
    assert not report.ok
    assert {f.kind for f in report.findings} == kinds
    repair = repair_campaign(directory)
    assert repair.ok
    healed = verify_campaign(directory)
    assert healed.ok, [str(f) for f in healed.findings]
    assert _digests(directory) == reference


def test_bitflipped_shard_payload(campaign_dir):
    reference = _digests(campaign_dir)
    path = shard_payload_path(campaign_dir, 1)
    with open(path, "r+b") as handle:
        handle.seek(80)
        byte = handle.read(1)
        handle.seek(80)
        handle.write(bytes([byte[0] ^ 0xFF]))
    _assert_detected_and_healed(campaign_dir, reference, {PAYLOAD_DIGEST})
    # Healed payload is byte-identical, not merely digest-colliding in
    # metadata: the file itself re-hashes to the recorded digest.
    assert payload_sha256(path) == reference[1]


def test_truncated_shard_payload(campaign_dir):
    reference = _digests(campaign_dir)
    path = shard_payload_path(campaign_dir, 0)
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
    _assert_detected_and_healed(campaign_dir, reference, {PAYLOAD_DIGEST})


def test_missing_shard_payload(campaign_dir):
    reference = _digests(campaign_dir)
    os.remove(shard_payload_path(campaign_dir, 2))
    _assert_detected_and_healed(campaign_dir, reference, {PAYLOAD_MISSING})


def test_truncated_manifest(campaign_dir):
    reference = _digests(campaign_dir)
    path = manifest_path(campaign_dir)
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) // 3)
    _assert_detected_and_healed(campaign_dir, reference, {MANIFEST_CORRUPT})


def test_missing_manifest(campaign_dir):
    reference = _digests(campaign_dir)
    os.remove(manifest_path(campaign_dir))
    _assert_detected_and_healed(campaign_dir, reference, {MANIFEST_CORRUPT})


def test_duplicate_shard_entry(campaign_dir):
    """A manifest re-signed with a duplicated record is rejected for
    the duplication itself, and repair rebuilds it from sidecars."""
    from repro.cache.canonical import digest as canonical_digest

    reference = _digests(campaign_dir)
    path = manifest_path(campaign_dir)
    data = json.loads(open(path).read())
    del data["signature"]
    data["shards"].append(dict(data["shards"][0]))
    data["signature"] = canonical_digest(data)
    with open(path, "w") as handle:
        json.dump(data, handle)
    _assert_detected_and_healed(campaign_dir, reference, {MANIFEST_CORRUPT})


def test_corrupt_sidecar_is_rewritten_not_rederived(campaign_dir):
    """Sidecar-only damage heals without touching the (clean) payload."""
    reference = _digests(campaign_dir)
    payload = shard_payload_path(campaign_dir, 1)
    mtime = os.path.getmtime(payload)
    with open(shard_sidecar_path(campaign_dir, 1), "w") as handle:
        handle.write("{ not json")
    report = verify_campaign(campaign_dir)
    assert {f.kind for f in report.findings} == {SIDECAR_CORRUPT}
    repair = repair_campaign(campaign_dir)
    assert repair.sidecars_rewritten == [1]
    assert repair.rederived == []
    assert os.path.getmtime(payload) == mtime
    assert verify_campaign(campaign_dir).ok
    assert _digests(campaign_dir) == reference


def test_missing_sidecar_detected(campaign_dir):
    os.remove(shard_sidecar_path(campaign_dir, 0))
    report = verify_campaign(campaign_dir)
    assert {f.kind for f in report.findings} == {SIDECAR_MISSING}
    assert repair_campaign(campaign_dir).sidecars_rewritten == [0]
    assert verify_campaign(campaign_dir).ok


def test_compound_corruption_one_pass(campaign_dir):
    """Several fault classes at once: one repair pass heals them all."""
    reference = _digests(campaign_dir)
    os.remove(shard_payload_path(campaign_dir, 0))
    with open(shard_payload_path(campaign_dir, 1), "r+b") as handle:
        handle.seek(60)
        handle.write(b"\x00\x00\x00\x00")
    os.remove(shard_sidecar_path(campaign_dir, 2))
    report = verify_campaign(campaign_dir)
    assert {f.kind for f in report.findings} == {
        PAYLOAD_MISSING,
        PAYLOAD_DIGEST,
        SIDECAR_MISSING,
    }
    repair = repair_campaign(campaign_dir)
    assert repair.ok
    assert sorted(repair.rederived) == [0, 1]
    assert repair.sidecars_rewritten == [2]
    assert verify_campaign(campaign_dir).ok
    assert _digests(campaign_dir) == reference


def test_repair_refuses_drifted_config(campaign_dir, tiny_config):
    """If the recorded digest can no longer be reproduced (here: the
    manifest lies about a shard's digest), repair raises instead of
    silently regenerating different data."""
    manifest = load_manifest(campaign_dir)
    record = manifest.shards[1]
    record.payload_sha256 = "0" * 64
    record.payload_bytes = record.payload_bytes + 1
    from repro.campaign.manifest import write_manifest, write_sidecar

    write_manifest(campaign_dir, manifest)
    write_sidecar(campaign_dir, manifest.config_digest, record)
    with pytest.raises(RepairMismatchError, match="drifted"):
        repair_campaign(campaign_dir)


def test_enospc_mid_campaign_leaves_manifest_consistent(
    tmp_path, tiny_config, monkeypatch
):
    """Disk full during the second shard's publish: the run aborts, but
    the manifest stays consistent at the last durable shard and resume
    completes to the same digests as an uninterrupted run."""
    import repro.campaign.orchestrator as orchestrator

    reference_dir = str(tmp_path / "reference")
    run_campaign(reference_dir, tiny_config)
    reference = _digests(reference_dir)

    directory = str(tmp_path / "enospc")
    real_write = orchestrator.atomic_write_bytes
    published = []

    def failing_write(path, data, **kw):
        if path.endswith(".npz") and len(published) >= 1:
            raise OSError(errno.ENOSPC, "No space left on device")
        published.append(path)
        return real_write(path, data, **kw)

    monkeypatch.setattr(orchestrator, "atomic_write_bytes", failing_write)
    with pytest.raises(OSError, match="No space left"):
        run_campaign(directory, tiny_config)
    monkeypatch.setattr(orchestrator, "atomic_write_bytes", real_write)

    partial = verify_campaign(directory)
    assert partial.ok  # nothing half-written
    assert len(partial.clean) == 1
    report = run_campaign(directory, resume=True)
    assert report.complete
    assert _digests(directory) == reference


def test_verify_detects_all_injected_corruptions(campaign_dir):
    """Acceptance sweep: inject N distinct corruptions, verify reports
    every single one (100% detection)."""
    injected = set()
    with open(shard_payload_path(campaign_dir, 0), "r+b") as handle:
        handle.seek(40)
        handle.write(b"\xde\xad")
    injected.add(0)
    os.remove(shard_payload_path(campaign_dir, 1))
    injected.add(1)
    with open(shard_payload_path(campaign_dir, 2), "r+b") as handle:
        handle.truncate(16)
    injected.add(2)
    report = verify_campaign(campaign_dir)
    assert set(report.damaged_shards()) == injected
