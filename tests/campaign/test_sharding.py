"""Shard planning and the campaign config's identity digest."""

import dataclasses

import pytest

from repro.campaign import CampaignConfig, campaign_digest, plan_shards, shard_spec
from repro.campaign.sharding import ShardSpec, shard_name, shard_trials


def _config(**kw):
    defaults = dict(n_sites=7, n_samples=3, shard_size=5, seed=1)
    defaults.update(kw)
    return CampaignConfig(**defaults)


def test_plan_covers_the_grid_exactly_once():
    config = _config()
    specs = plan_shards(config)
    assert config.n_trials == 21 and config.n_shards == 5
    covered = [k for s in specs for k in range(s.start, s.stop)]
    assert covered == list(range(config.n_trials))


def test_last_shard_is_short():
    config = _config()
    last = plan_shards(config)[-1]
    assert last.n_trials == 1 and last.stop == config.n_trials


def test_shard_trials_are_site_major():
    config = _config()
    trials = shard_trials(config, shard_spec(config, 1))
    assert trials == [(1, 2), (2, 0), (2, 1), (2, 2), (3, 0)]


def test_shard_spec_out_of_range():
    config = _config()
    with pytest.raises(ValueError):
        shard_spec(config, config.n_shards)
    with pytest.raises(ValueError):
        shard_spec(config, -1)


def test_shard_spec_validation():
    with pytest.raises(ValueError):
        ShardSpec(shard_id=0, start=5, stop=5)
    with pytest.raises(ValueError):
        ShardSpec(shard_id=-1, start=0, stop=1)


def test_shard_name_is_zero_padded():
    assert shard_name(3) == "shard-00003"


def test_config_validation():
    for bad in (
        dict(n_sites=0),
        dict(n_samples=0),
        dict(shard_size=0),
        dict(seed=-1),
        dict(retries=0),
        dict(defense="nonexistent-defense"),
    ):
        with pytest.raises(ValueError):
            _config(**bad)


def test_digest_moves_with_every_identity_field():
    base = _config()
    seen = {campaign_digest(base)}
    for change in (
        dict(n_sites=8),
        dict(n_samples=4),
        dict(shard_size=4),
        dict(seed=2),
        dict(defense="front"),
        dict(retries=3),
    ):
        seen.add(campaign_digest(dataclasses.replace(base, **change)))
    assert len(seen) == 7


def test_digest_is_stable_across_equal_configs():
    assert campaign_digest(_config()) == campaign_digest(_config())
