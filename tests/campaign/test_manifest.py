"""Signed manifest + sidecar round-trips and every way they can lie."""

import json

import pytest

from repro.campaign import CampaignConfig, campaign_digest
from repro.campaign.manifest import (
    CampaignManifest,
    ShardRecord,
    TrialFailureRecord,
    load_config,
    load_manifest,
    load_sidecar,
    manifest_path,
    write_config,
    write_manifest,
    write_sidecar,
)
from repro.errors import ManifestCorruptError


@pytest.fixture
def config():
    return CampaignConfig(n_sites=4, n_samples=2, shard_size=4, seed=5)


def _record(shard_id=0, **kw):
    defaults = dict(
        shard_id=shard_id,
        start=shard_id * 4,
        stop=shard_id * 4 + 4,
        status="done",
        rows=4,
        payload_sha256="ab" * 32,
        payload_bytes=123,
    )
    defaults.update(kw)
    return ShardRecord(**defaults)


def test_config_round_trip(tmp_path, config):
    directory = str(tmp_path)
    digest = write_config(directory, config)
    assert load_config(directory) == config
    assert digest == campaign_digest(config)


def test_config_tamper_detected(tmp_path, config):
    directory = str(tmp_path)
    write_config(directory, config)
    path = tmp_path / "campaign.json"
    body = json.loads(path.read_text())
    body["config"]["n_sites"] = 999
    path.write_text(json.dumps(body))
    with pytest.raises(ManifestCorruptError, match="signature"):
        load_config(directory)


def test_manifest_round_trip(tmp_path, config):
    directory = str(tmp_path)
    digest = write_config(directory, config)
    manifest = CampaignManifest(config_digest=digest, n_shards=2)
    manifest.record(
        _record(
            0,
            failures=[
                TrialFailureRecord(
                    site_index=1, sample=0, error="PageLoadStalled", message="x"
                )
            ],
        )
    )
    manifest.record(_record(1, status="quarantined", rows=0, payload_sha256=""))
    write_manifest(directory, manifest)
    loaded = load_manifest(directory, expect_digest=digest)
    assert loaded.to_body() == manifest.to_body()
    assert loaded.done_ids() == [0]
    assert loaded.quarantined_ids() == [1]
    assert loaded.missing_ids() == []
    assert loaded.shards[0].failures[0].site_index == 1


def test_manifest_truncation_detected(tmp_path, config):
    directory = str(tmp_path)
    manifest = CampaignManifest(config_digest="d" * 64, n_shards=1)
    manifest.record(_record(0))
    write_manifest(directory, manifest)
    path = manifest_path(directory)
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    with pytest.raises(ManifestCorruptError, match="unreadable"):
        load_manifest(directory)


def test_manifest_bitflip_detected(tmp_path):
    directory = str(tmp_path)
    manifest = CampaignManifest(config_digest="d" * 64, n_shards=1)
    manifest.record(_record(0))
    write_manifest(directory, manifest)
    path = manifest_path(directory)
    body = json.loads(open(path).read())
    body["shards"][0]["rows"] = 999  # forged record, stale signature
    with open(path, "w") as handle:
        json.dump(body, handle)
    with pytest.raises(ManifestCorruptError, match="signature"):
        load_manifest(directory)


def test_manifest_duplicate_shard_entry_detected(tmp_path):
    """A duplicated record cannot hide even behind a valid signature."""
    directory = str(tmp_path)
    manifest = CampaignManifest(config_digest="d" * 64, n_shards=2)
    manifest.record(_record(0))
    body = manifest.to_body()
    body["shards"].append(body["shards"][0])  # duplicate entry
    from repro.cache.canonical import digest as canonical_digest
    from repro.ioutil import atomic_write_json

    atomic_write_json(
        manifest_path(directory), {**body, "signature": canonical_digest(body)}
    )
    with pytest.raises(ManifestCorruptError, match="duplicate"):
        load_manifest(directory)


def test_manifest_wrong_campaign_detected(tmp_path):
    directory = str(tmp_path)
    write_manifest(
        directory, CampaignManifest(config_digest="a" * 64, n_shards=1)
    )
    with pytest.raises(ManifestCorruptError, match="different campaign"):
        load_manifest(directory, expect_digest="b" * 64)


def test_manifest_out_of_range_shard_detected(tmp_path):
    directory = str(tmp_path)
    manifest = CampaignManifest(config_digest="d" * 64, n_shards=1)
    manifest.record(_record(5))
    write_manifest(directory, manifest)
    with pytest.raises(ManifestCorruptError, match="out of range"):
        load_manifest(directory)


def test_manifest_unknown_status_detected(tmp_path):
    directory = str(tmp_path)
    manifest = CampaignManifest(config_digest="d" * 64, n_shards=1)
    record = _record(0)
    record.status = "maybe"
    manifest.record(record)
    write_manifest(directory, manifest)
    with pytest.raises(ManifestCorruptError, match="unknown status"):
        load_manifest(directory)


def test_sidecar_round_trip_and_mismatches(tmp_path):
    directory = str(tmp_path)
    record = _record(0)
    write_sidecar(directory, "d" * 64, record)
    assert load_sidecar(directory, 0, "d" * 64) == record
    with pytest.raises(ManifestCorruptError, match="different campaign"):
        load_sidecar(directory, 0, "e" * 64)
    with pytest.raises(FileNotFoundError):
        load_sidecar(directory, 1, "d" * 64)


def test_sidecar_naming_mismatch_detected(tmp_path):
    """A sidecar renamed to another shard's slot is rejected."""
    import shutil

    from repro.campaign.manifest import shard_sidecar_path

    directory = str(tmp_path)
    write_sidecar(directory, "d" * 64, _record(0))
    shutil.copy(
        shard_sidecar_path(directory, 0), shard_sidecar_path(directory, 1)
    )
    with pytest.raises(ManifestCorruptError, match="names shard"):
        load_sidecar(directory, 1, "d" * 64)
