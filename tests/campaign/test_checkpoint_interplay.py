"""Regression: recovery from corrupt durable state must never discard
shards that already verified clean.

The resilient runner's checkpoint loader (PR 5) *evicts* a corrupt
checkpoint and restarts collection from scratch — correct there,
because a checkpoint is one monolithic artifact.  A campaign is not:
its durable state is per-shard, each shard independently signed and
digest-verified.  These tests pin down that every recovery path in
:mod:`repro.campaign` (corrupt manifest on resume, deleted manifest,
corrupt single shard) re-derives *only* what is actually bad and
adopts everything that proves clean — eviction-style recovery would
throw away hours of verified work.
"""

import os

from repro.campaign import (
    load_manifest,
    recover_manifest,
    repair_campaign,
    run_campaign,
    verify_campaign,
)
from repro.campaign.config import campaign_digest
from repro.campaign.manifest import (
    load_config,
    manifest_path,
    shard_payload_path,
)


def _payload_mtimes(directory, shard_ids):
    return {
        i: os.path.getmtime(shard_payload_path(directory, i))
        for i in shard_ids
    }


def test_corrupt_manifest_resume_keeps_clean_shards(campaign_dir, tiny_config):
    """Resuming over a corrupt manifest adopts every clean shard from
    its sidecar instead of re-executing (or deleting) it."""
    before = _payload_mtimes(campaign_dir, range(tiny_config.n_shards))
    reference = {
        i: r.payload_sha256
        for i, r in load_manifest(campaign_dir).shards.items()
    }
    with open(manifest_path(campaign_dir), "w") as handle:
        handle.write('{"torn": ')  # corrupt, undecodable
    report = run_campaign(campaign_dir, resume=True)
    assert report.executed == []  # nothing re-derived
    assert sorted(report.resumed) == list(range(tiny_config.n_shards))
    assert _payload_mtimes(campaign_dir, range(tiny_config.n_shards)) == before
    assert {
        i: r.payload_sha256
        for i, r in load_manifest(campaign_dir).shards.items()
    } == reference


def test_recover_manifest_is_selective_not_evicting(campaign_dir, tiny_config):
    """recover_manifest adopts exactly the shards whose sidecar and
    payload digest agree; a damaged shard is dropped from the record,
    the clean ones never are."""
    with open(shard_payload_path(campaign_dir, 1), "r+b") as handle:
        handle.seek(90)
        handle.write(b"\x00\x00\x00")
    os.remove(manifest_path(campaign_dir))
    config = load_config(campaign_dir)
    manifest = recover_manifest(
        campaign_dir, config, campaign_digest(config)
    )
    assert sorted(manifest.shards) == [0, 2]  # shard 1 not adopted
    # The clean shards are adopted with their original digests intact.
    assert all(r.payload_sha256 for r in manifest.shards.values())


def test_repair_touches_only_the_damaged_shard(campaign_dir, tiny_config):
    """After single-shard corruption, repair re-derives that shard and
    leaves every clean payload file physically untouched."""
    clean_ids = [0, 2]
    before = _payload_mtimes(campaign_dir, clean_ids)
    with open(shard_payload_path(campaign_dir, 1), "r+b") as handle:
        handle.truncate(32)
    report = repair_campaign(campaign_dir)
    assert report.rederived == [1]
    assert _payload_mtimes(campaign_dir, clean_ids) == before
    assert verify_campaign(campaign_dir).ok


def test_runner_checkpoint_eviction_does_not_touch_campaign_dirs(
    tmp_path, campaign_dir
):
    """A corrupt *runner* checkpoint living next to a campaign evicts
    itself (monolithic artifact → restart from scratch) without any
    collateral damage to the campaign's per-shard state — the two
    recovery models coexist."""
    from repro.experiments.runner import ResilientRunner

    runner = ResilientRunner()
    checkpoint = str(tmp_path / "checkpoint.npz")
    with open(checkpoint, "wb") as handle:
        handle.write(b"PK\x03\x04 torn")
    with open(runner._manifest_path(checkpoint), "w") as handle:
        handle.write('{"version": 1, "fingerprint')  # torn manifest
    manifest_bytes = open(manifest_path(campaign_dir), "rb").read()

    results, failures = runner._load_checkpoint(checkpoint, "fp")
    assert (results, failures) == ({}, [])  # evicted, not crashed
    assert not os.path.exists(checkpoint)
    assert not os.path.exists(runner._manifest_path(checkpoint))
    # The campaign next door is byte-for-byte untouched and clean.
    assert open(manifest_path(campaign_dir), "rb").read() == manifest_bytes
    assert verify_campaign(campaign_dir).ok
