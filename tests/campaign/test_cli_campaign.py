"""The `repro campaign` CLI surface: exit codes and argument probes."""

import pytest

from repro.campaign.manifest import shard_payload_path
from repro.cli import main


def test_cli_verify_repair_exit_codes(campaign_dir):
    assert main(["campaign", "verify", campaign_dir]) == 0
    with open(shard_payload_path(campaign_dir, 0), "r+b") as handle:
        handle.truncate(16)
    # Convention shared with `repro cache verify`: non-zero iff
    # corruption was found; repair exits 0 once everything heals.
    assert main(["campaign", "verify", campaign_dir]) == 1
    assert main(["campaign", "repair", campaign_dir]) == 0
    assert main(["campaign", "verify", campaign_dir]) == 0
    assert main(["campaign", "stats", campaign_dir]) == 0


@pytest.mark.parametrize(
    "argv",
    [
        ["campaign", "run", "d", "--sites", "0"],
        ["campaign", "run", "d", "--samples", "0"],
        ["campaign", "run", "d", "--shard-size", "0"],
        ["campaign", "run", "d", "--retries", "0"],
        ["campaign", "run", "d", "--seed", "-3"],
        ["campaign", "run", "d", "--workers", "-2"],
        ["campaign", "verify", "/nonexistent-campaign"],
        ["campaign", "repair", "/nonexistent-campaign"],
        ["campaign", "stats", "/nonexistent-campaign"],
    ],
)
def test_cli_rejects_bad_arguments_with_named_error(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "error:" in capsys.readouterr().err
