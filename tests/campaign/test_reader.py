"""Streaming campaign consumption: constant-memory, digest-checked."""

import os

import numpy as np
import pytest

from repro.campaign import CampaignReader, load_manifest, stream_feature_matrix
from repro.campaign.manifest import shard_payload_path
from repro.capture.serialize import load_dataset
from repro.errors import ShardCorruptError


def test_iter_shards_covers_every_row(campaign_dir, tiny_config):
    reader = CampaignReader(campaign_dir)
    rows = 0
    seen_shards = []
    for record, dataset in reader.iter_shards():
        seen_shards.append(record.shard_id)
        rows += dataset.num_traces
    assert seen_shards == list(range(tiny_config.n_shards))
    assert rows == tiny_config.n_trials


def test_iter_traces_matches_full_load(campaign_dir, tiny_config):
    reader = CampaignReader(campaign_dir)
    streamed = [(label, len(trace)) for label, trace in reader.iter_traces()]
    assert len(streamed) == tiny_config.n_trials
    full = []
    for shard_id in range(tiny_config.n_shards):
        dataset = load_dataset(shard_payload_path(campaign_dir, shard_id))
        for label in dataset.labels:
            full.extend((label, len(t)) for t in dataset.traces[label])
    assert streamed == full


def test_reader_detects_corruption_at_the_shard(campaign_dir):
    with open(shard_payload_path(campaign_dir, 1), "r+b") as handle:
        handle.seek(70)
        handle.write(b"\xff\xff")
    reader = CampaignReader(campaign_dir)
    reader.load_shard(0)  # clean shards still stream
    with pytest.raises(ShardCorruptError, match="shard 1"):
        reader.load_shard(1)


def test_reader_verify_off_skips_digest_check(campaign_dir):
    reader = CampaignReader(campaign_dir, verify=False)
    assert reader.load_shard(0).num_traces > 0


def test_reader_rejects_unknown_shard(campaign_dir):
    reader = CampaignReader(campaign_dir)
    with pytest.raises(ShardCorruptError, match="not recorded"):
        reader.load_shard(99)


def test_stream_feature_matrix_shapes_and_determinism(campaign_dir, tiny_config):
    X, y, names = stream_feature_matrix(campaign_dir)
    assert X.shape[0] == tiny_config.n_trials
    assert y.shape == (tiny_config.n_trials,)
    assert len(names) == tiny_config.n_sites
    assert y.min() >= 0 and y.max() < len(names)
    # Every site contributes exactly n_samples rows.
    counts = np.bincount(y, minlength=len(names))
    assert (counts == tiny_config.n_samples).all()
    X2, y2, names2 = stream_feature_matrix(campaign_dir)
    assert np.array_equal(X, X2) and np.array_equal(y, y2) and names == names2


def test_stats_reflects_manifest(campaign_dir, tiny_config):
    stats = CampaignReader(campaign_dir, verify=False).stats()
    manifest = load_manifest(campaign_dir)
    assert stats["shards_done"] == len(manifest.done_ids())
    assert stats["rows"] == tiny_config.n_trials
    assert stats["trial_failures"] == 0
    assert stats["payload_bytes"] == sum(
        os.path.getsize(shard_payload_path(campaign_dir, i))
        for i in manifest.done_ids()
    )
