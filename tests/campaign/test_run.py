"""Campaign execution: determinism, resume, interruption, worker death."""

import dataclasses
import os
import signal

import pytest

from repro.campaign import (
    CampaignConfig,
    load_manifest,
    run_campaign,
    verify_campaign,
)
from repro.campaign.manifest import (
    manifest_path,
    shard_payload_path,
    shard_sidecar_path,
)
from repro.campaign.worker import run_shard, trial_rng
from repro.campaign.sharding import shard_spec
from repro.errors import FatalError, RunTerminated


def _digests(directory):
    manifest = load_manifest(directory)
    return {i: r.payload_sha256 for i, r in manifest.shards.items()}


def test_run_completes_and_verifies(campaign_dir, tiny_config):
    manifest = load_manifest(campaign_dir)
    assert manifest.done_ids() == list(range(tiny_config.n_shards))
    assert verify_campaign(campaign_dir).ok
    for shard_id in manifest.done_ids():
        assert os.path.exists(shard_payload_path(campaign_dir, shard_id))
        assert os.path.exists(shard_sidecar_path(campaign_dir, shard_id))


def test_run_shard_is_deterministic(tiny_config):
    spec = shard_spec(tiny_config, 1)
    a = run_shard(tiny_config, spec)
    b = run_shard(tiny_config, spec)
    assert a.payload == b.payload
    assert a.rows == b.rows


def test_trial_rng_streams_are_distinct():
    draws = {
        tuple(trial_rng(0, s, k, a).integers(0, 2**31, 4).tolist())
        for s in range(3)
        for k in range(3)
        for a in range(2)
    }
    assert len(draws) == 18


def test_parallel_run_is_byte_identical(tmp_path, tiny_config, campaign_dir):
    parallel_dir = str(tmp_path / "parallel")
    report = run_campaign(parallel_dir, tiny_config, workers=2)
    assert report.complete
    assert _digests(parallel_dir) == _digests(campaign_dir)


def test_fresh_run_refuses_existing_campaign(campaign_dir, tiny_config):
    with pytest.raises(FatalError, match="resume"):
        run_campaign(campaign_dir, tiny_config)


def test_run_refuses_conflicting_config(campaign_dir, tiny_config):
    other = dataclasses.replace(tiny_config, seed=tiny_config.seed + 1)
    with pytest.raises(FatalError, match="different config"):
        run_campaign(campaign_dir, other, resume=True)


def test_resume_executes_only_missing_shards(tmp_path, tiny_config, campaign_dir):
    reference = _digests(campaign_dir)
    os.remove(shard_payload_path(campaign_dir, 2))
    os.remove(shard_sidecar_path(campaign_dir, 2))
    os.remove(manifest_path(campaign_dir))
    report = run_campaign(campaign_dir, resume=True)
    assert report.executed == [2]
    assert sorted(report.resumed) == [0, 1]
    assert _digests(campaign_dir) == reference


def test_resume_adopts_orphan_payloads(tmp_path, tiny_config, campaign_dir):
    """A payload whose sidecar and manifest record were lost (killed
    between ladder rungs) is re-adopted by content, not re-executed."""
    reference = _digests(campaign_dir)
    payload = shard_payload_path(campaign_dir, 1)
    before = os.path.getmtime(payload)
    os.remove(shard_sidecar_path(campaign_dir, 1))
    os.remove(manifest_path(campaign_dir))
    report = run_campaign(campaign_dir, resume=True)
    assert report.executed == []
    assert report.adopted_orphans == [1]
    assert os.path.getmtime(payload) == before
    assert _digests(campaign_dir) == reference
    assert verify_campaign(campaign_dir).ok


def test_sigterm_leaves_manifest_consistent_and_resume_matches(
    tmp_path, tiny_config, campaign_dir
):
    """SIGTERM mid-campaign: everything published so far is durable and
    consistent, and resume converges to the uninterrupted result."""
    reference = _digests(campaign_dir)
    interrupted = str(tmp_path / "interrupted")

    def terminate_after_first(record):
        os.kill(os.getpid(), signal.SIGTERM)

    with pytest.raises(RunTerminated):
        run_campaign(interrupted, tiny_config, progress=terminate_after_first)

    partial = verify_campaign(interrupted)
    assert partial.ok  # consistent, just incomplete
    assert len(partial.clean) >= 1
    assert partial.unexecuted  # something was genuinely left to do

    report = run_campaign(interrupted, resume=True)
    assert report.complete
    assert _digests(interrupted) == reference
    with open(manifest_path(interrupted), "rb") as a:
        with open(manifest_path(campaign_dir), "rb") as b:
            assert a.read() == b.read()


def test_keyboard_interrupt_leaves_manifest_consistent(tmp_path, tiny_config):
    directory = str(tmp_path / "interrupted")
    calls = []

    def interrupt_after_first(record):
        calls.append(record.shard_id)
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_campaign(directory, tiny_config, progress=interrupt_after_first)
    assert len(calls) == 1
    assert verify_campaign(directory).ok


def test_worker_death_recovers_byte_identically(
    tmp_path, tiny_config, campaign_dir
):
    """REPRO_CHAOS kills one worker mid-campaign; the supervised pool
    reschedules and the shard digests still match the clean run."""
    chaos_dir = str(tmp_path / "chaos")
    sentinel = str(tmp_path / "crash.sentinel")
    os.environ["REPRO_CHAOS"] = f"crash-once:{sentinel}"
    try:
        report = run_campaign(chaos_dir, tiny_config, workers=2)
    finally:
        del os.environ["REPRO_CHAOS"]
    assert os.path.exists(sentinel)  # the fault actually fired
    assert report.supervisor is not None
    assert report.supervisor.worker_restarts >= 1
    assert report.complete
    assert _digests(chaos_dir) == _digests(campaign_dir)


def test_trial_failures_are_deterministic_records(tmp_path):
    """A config whose deadline stalls some loads records the same
    failures on every derivation (they round-trip through repair)."""
    config = CampaignConfig(
        n_sites=2,
        n_samples=2,
        shard_size=4,
        seed=7,
        retries=2,
        pageload=dataclasses.replace(
            CampaignConfig().pageload, max_duration=0.05
        ),
    )
    spec = shard_spec(config, 0)
    a = run_shard(config, spec)
    b = run_shard(config, spec)
    assert a.failures == b.failures
    assert len(a.failures) == 4  # every trial stalls at 50ms simulated
    assert a.rows == 0
    assert a.payload == b.payload
    directory = str(tmp_path / "stalled")
    report = run_campaign(directory, config)
    assert report.trial_failures == 4
    assert report.complete  # failed trials are recorded, not fatal
    assert verify_campaign(directory).ok
