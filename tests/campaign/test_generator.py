"""The parametric site-profile generator: seed-stable, distinct,
position-derived."""

import numpy as np
import pytest

from repro.web.generator import (
    CONTENT_FAMILIES,
    SERVING_MIXES,
    generate_catalog,
    generate_profile,
    site_name,
)
from repro.web.objects import SiteProfile
from repro.web.pageload import load_page_result, PageLoadConfig
from repro.web.sites import SITE_CATALOG


def test_site_name_format_and_disjoint_from_handtuned():
    assert site_name(0) == "site-000000.gen"
    assert site_name(123456) == "site-123456.gen"
    assert not set(site_name(i) for i in range(50)) & set(SITE_CATALOG)


def test_site_name_rejects_negative():
    with pytest.raises(ValueError):
        site_name(-1)


def test_profile_is_pure_function_of_seed_and_index():
    a = generate_profile(3, 41)
    b = generate_profile(3, 41)
    assert a == b


def test_profile_independent_of_generation_order():
    """Site 41's profile does not depend on which sites were generated
    before it — the property shard-scoped repair relies on."""
    alone = generate_profile(3, 41)
    catalog = generate_catalog(100, seed=3)
    assert catalog[site_name(41)] == alone


def test_different_indices_and_seeds_differ():
    profiles = [generate_profile(0, i) for i in range(40)]
    # Any two distinct sites must be distinguishable as profiles.
    assert len({repr(p) for p in profiles}) == 40
    assert generate_profile(1, 5) != generate_profile(2, 5)


def test_profiles_are_structurally_valid():
    for i in range(30):
        profile = generate_profile(11, i)
        assert isinstance(profile, SiteProfile)
        assert profile.name == site_name(i)
        assert 1 <= profile.dependency_rounds <= 3
        assert profile.think_time[0] < profile.think_time[1]
        assert profile.cert_size[0] < profile.cert_size[1]
        assert len(profile.object_classes) >= 3
        for cls in profile.object_classes:
            assert cls.count_mean >= 1.0
            assert cls.log_sigma > 0


def test_family_and_mix_coverage():
    """With enough sites every content family and serving mix occurs."""
    profiles = [generate_profile(0, i) for i in range(200)]
    think_his = {round(p.think_time[1], 6) for p in profiles}
    assert len(CONTENT_FAMILIES) == 5 and len(SERVING_MIXES) == 3
    # Think-time upper bounds span the full cdn..origin range.
    assert min(think_his) < 0.020 and max(think_his) > 0.025


def test_generated_profile_drives_a_page_load():
    profile = generate_profile(7, 0)
    result = load_page_result(
        profile, PageLoadConfig(max_duration=30.0), np.random.default_rng(1)
    )
    assert result.completed
    assert len(result.trace) > 10


def test_generate_catalog_start_offset():
    catalog = generate_catalog(5, seed=9, start=100)
    assert sorted(catalog) == [site_name(i) for i in range(100, 105)]
    assert catalog[site_name(102)] == generate_profile(9, 102)


def test_generate_catalog_rejects_empty():
    with pytest.raises(ValueError):
        generate_catalog(0, seed=1)
