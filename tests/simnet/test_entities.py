"""Link and queue unit tests."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.entities import DropTailQueue, Link, Wire


@dataclass
class FakePacket:
    wire_size: int


def test_wire_delivers_after_delay():
    sim = Simulator()
    got = []
    wire = Wire(sim, delay=0.1, receiver=lambda p: got.append((sim.now, p)))
    wire.send(FakePacket(100))
    sim.run()
    assert got[0][0] == pytest.approx(0.1)


def test_wire_rejects_negative_delay():
    with pytest.raises(ValueError):
        Wire(Simulator(), delay=-1.0, receiver=lambda p: None)


def test_droptail_accepts_until_capacity():
    queue = DropTailQueue(capacity_bytes=250)
    assert queue.try_push(FakePacket(100))
    assert queue.try_push(FakePacket(100))
    assert not queue.try_push(FakePacket(100))
    assert queue.dropped == 1
    assert queue.bytes == 200
    assert len(queue) == 2


def test_droptail_unbounded_when_capacity_none():
    queue = DropTailQueue(capacity_bytes=None)
    for _ in range(1000):
        assert queue.try_push(FakePacket(1500))
    assert queue.dropped == 0


def test_droptail_pop_order_and_accounting():
    queue = DropTailQueue(capacity_bytes=None)
    first, second = FakePacket(10), FakePacket(20)
    queue.try_push(first)
    queue.try_push(second)
    assert queue.pop() is first
    assert queue.bytes == 20
    assert queue.pop() is second
    with pytest.raises(IndexError):
        queue.pop()


def test_droptail_peak_tracking():
    queue = DropTailQueue(capacity_bytes=None)
    queue.try_push(FakePacket(100))
    queue.try_push(FakePacket(100))
    queue.pop()
    assert queue.peak_bytes == 200


def test_link_serialization_plus_propagation():
    sim = Simulator()
    got = []
    link = Link(
        sim,
        rate_bytes_per_sec=1000.0,
        propagation_delay=0.5,
        receiver=lambda p: got.append(sim.now),
    )
    link.send(FakePacket(100))  # 0.1s serialization + 0.5s propagation
    sim.run()
    assert got[0] == pytest.approx(0.6)


def test_link_packets_queue_behind_each_other():
    sim = Simulator()
    got = []
    link = Link(
        sim,
        rate_bytes_per_sec=1000.0,
        propagation_delay=0.0,
        receiver=lambda p: got.append(sim.now),
    )
    link.send(FakePacket(100))
    link.send(FakePacket(100))
    sim.run()
    assert got == [pytest.approx(0.1), pytest.approx(0.2)]


def test_link_drop_when_queue_full():
    sim = Simulator()
    got = []
    link = Link(
        sim,
        rate_bytes_per_sec=100.0,
        propagation_delay=0.0,
        receiver=got.append,
        queue_capacity_bytes=150,
    )
    sent = [link.send(FakePacket(100)) for _ in range(4)]
    sim.run()
    # First packet starts transmitting immediately (dequeued), the
    # second occupies the 150-byte queue, the rest are dropped.
    assert sent == [True, True, False, False]
    assert link.queue.dropped == 2
    assert len(got) == 2


def test_link_random_loss_is_deterministic_with_seed():
    def run(seed):
        sim = Simulator()
        got = []
        link = Link(
            sim,
            rate_bytes_per_sec=1e6,
            propagation_delay=0.0,
            receiver=got.append,
            loss_rate=0.5,
            rng=np.random.default_rng(seed),
        )
        for _ in range(100):
            link.send(FakePacket(100))
        sim.run()
        return len(got)

    assert run(1) == run(1)
    assert 10 < run(1) < 90  # loss actually happens


def test_link_requires_rng_for_loss():
    with pytest.raises(ValueError):
        Link(
            Simulator(),
            rate_bytes_per_sec=1.0,
            propagation_delay=0.0,
            receiver=lambda p: None,
            loss_rate=0.1,
        )


def test_link_rejects_bad_rate():
    with pytest.raises(ValueError):
        Link(Simulator(), 0.0, 0.0, lambda p: None)


def test_link_utilization():
    sim = Simulator()
    link = Link(sim, 1000.0, 0.0, lambda p: None)
    link.send(FakePacket(500))  # 0.5s busy
    sim.run()
    assert link.utilization(1.0) == pytest.approx(0.5)
    assert link.utilization(0.0) == 0.0
