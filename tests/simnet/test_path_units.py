"""NetworkPath and unit-helper tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro import units


def test_rate_helpers_roundtrip():
    assert units.mbps(100) == pytest.approx(12.5e6)
    assert units.gbps(1) == pytest.approx(125e6)
    assert units.to_mbps(units.mbps(42)) == pytest.approx(42)
    assert units.to_gbps(units.gbps(7)) == pytest.approx(7)
    assert units.kbps(8) == pytest.approx(1000)


def test_time_size_helpers():
    assert units.msec(20) == pytest.approx(0.02)
    assert units.usec(100) == pytest.approx(1e-4)
    assert units.to_msec(0.5) == pytest.approx(500)
    assert units.kib(2) == 2048
    assert units.mib(1) == 1048576


def test_serialization_delay():
    assert units.serialization_delay(1000, 1000.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        units.serialization_delay(1000, 0.0)


def test_wire_constants_consistent():
    assert units.DEFAULT_MSS == units.ETHERNET_MTU - units.IPV4_HEADER - units.TCP_HEADER
    assert units.MIN_MSS == 536
    assert units.DEFAULT_TSO_SEGS == 44


def test_path_bdp_and_buffer():
    path = NetworkPath(rate=units.mbps(100), rtt=units.msec(20))
    assert path.bdp_bytes == int(units.mbps(100) * 0.02)
    assert path.buffer_bytes >= path.bdp_bytes  # default 1 BDP + floor
    assert path.one_way_delay == pytest.approx(0.01)


def test_path_buffer_floor_for_tiny_paths():
    path = NetworkPath(rate=units.kbps(64), rtt=units.msec(1))
    assert path.buffer_bytes >= 8 * units.ETHERNET_MTU


def test_path_validation():
    with pytest.raises(ValueError):
        NetworkPath(rate=0)
    with pytest.raises(ValueError):
        NetworkPath(rtt=-1)
    with pytest.raises(ValueError):
        NetworkPath(buffer_bdp=-0.1)


def test_build_links_wires_receivers():
    sim = Simulator()
    path = NetworkPath(rate=units.mbps(10), rtt=units.msec(10))
    forward_got, reverse_got = [], []
    forward, reverse = path.build_links(
        sim, forward_got.append, reverse_got.append
    )

    class P:
        wire_size = 100

    forward.send(P())
    reverse.send(P())
    sim.run()
    assert len(forward_got) == 1
    assert len(reverse_got) == 1


def test_build_links_with_loss_creates_rng():
    sim = Simulator()
    path = NetworkPath(rate=units.mbps(10), rtt=units.msec(10), loss_rate=0.5)
    forward, _reverse = path.build_links(sim, lambda p: None, lambda p: None)
    assert forward.loss_rate == 0.5
