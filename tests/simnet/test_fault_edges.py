"""Fault-schedule edge cases under property-based testing.

The fuzzer's hostile corners as hypothesis properties: link flaps with
zero or near-zero phase means (including the analytic pinned-state
collapse), bandwidth schedules with back-to-back equal-time segments,
and the conservation identity of :class:`LinkStats` holding through
arbitrary such schedules.  Complements the example-based tests in
``test_faults.py``.
"""

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.entities import Link
from repro.simnet.faults import (
    BandwidthSchedule,
    FaultPlan,
    LinkFlap,
)


@dataclass
class FakePacket:
    wire_size: int


# The lazy flap schedule legitimately does O(horizon / mean) work, so
# the strategy floors non-zero means where that stays cheap; the
# pathological corner under test is the *exact zero* (pre-fix: an
# infinite loop), which collapses analytically and costs O(1).
phase_means = st.one_of(
    st.just(0.0),
    st.floats(min_value=5e-3, max_value=5.0, allow_nan=False),
)


@given(up_mean=phase_means, down_mean=phase_means, seed=st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_link_flap_terminates_and_is_binary(up_mean, down_mean, seed):
    """Any combination of zero/tiny/normal phase means must evaluate in
    bounded time over a long horizon (the pre-fix lazy schedule spun
    forever on an exact-zero duration draw)."""
    flap = LinkFlap(np.random.default_rng(seed), up_mean, down_mean)
    outcomes = {flap.drops(t) for t in np.linspace(0.0, 50.0, 200)}
    assert outcomes <= {True, False}
    if up_mean == 0.0 and down_mean > 0.0:
        assert outcomes == {True}, "zero up-phase pins the link down"
    if down_mean == 0.0:
        assert outcomes == {False}, "zero down-phase pins the link up"


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
    factors=st.lists(
        st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=60, deadline=None)
def test_bandwidth_schedule_latest_stage_wins(times, factors):
    """With duplicate stage times (back-to-back segments), the
    last-declared stage at any instant governs — and the factor lookup
    is total over [0, inf)."""
    n = min(len(times), len(factors))
    stages = list(zip(times[:n], factors[:n]))
    schedule = BandwidthSchedule(stages)
    for t in [0.0, 0.5, 5.0, 20.0]:
        factor = schedule.rate_factor(t)
        applicable = [f for (start, f) in stages if start <= t]
        if applicable:
            # Last-declared among the applicable stages with the
            # latest start time.
            latest = max(start for (start, f) in stages if start <= t)
            expected = [f for (start, f) in stages if start == latest][-1]
            assert factor == expected
        else:
            assert factor == 1.0


def test_back_to_back_equal_time_stages_last_declared_wins():
    schedule = BandwidthSchedule([(1.0, 0.5), (1.0, 0.125), (1.0, 0.25)])
    assert schedule.rate_factor(2.0) == 0.25


@given(
    seed=st.integers(0, 2**31),
    up_mean=phase_means,
    down_mean=phase_means,
    stage_time=st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
    factor=st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_link_stats_conserved_under_edge_case_faults(
    seed, up_mean, down_mean, stage_time, factor
):
    """LinkStats conservation holds through degenerate flaps composed
    with back-to-back bandwidth stages: every offered packet is
    accounted as delivered, dropped, queued, in service or in flight —
    at the end *and* at an arbitrary mid-run sync point."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    plan = FaultPlan(
        [
            LinkFlap(rng, up_mean, down_mean),
            BandwidthSchedule(
                [(stage_time, 1.0), (stage_time, factor), (stage_time, factor)]
            ),
        ]
    )
    link = Link(sim, 1e6, 0.005, lambda p: None, faults=plan)
    for _ in range(30):
        link.send(FakePacket(400))
    sim.run(until=0.01)
    mid = link.stats()
    assert mid.conserved(), f"mid-run: {mid}"
    sim.run()
    final = link.stats()
    assert final.conserved(), f"final: {final}"
    assert final.offered == 30
    assert final.in_flight == 0 and final.in_service == 0
