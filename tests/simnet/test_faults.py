"""Fault-injection unit tests + link conservation integration."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.entities import Link
from repro.simnet.faults import (
    BandwidthSchedule,
    BandwidthScheduleSpec,
    Blackout,
    DuplicateSpec,
    FaultPlan,
    FaultSpec,
    GilbertElliottLoss,
    GilbertElliottSpec,
    LinkFlap,
    LinkFlapSpec,
    PacketDuplicate,
    PacketReorder,
    ReorderSpec,
    bursty_loss_spec,
    link_flap_spec,
)


@dataclass
class FakePacket:
    wire_size: int


def test_gilbert_elliott_losses_are_bursty():
    """GE losses must cluster: observed burst lengths should exceed the
    independent-loss expectation for the same overall loss rate."""
    rng = np.random.default_rng(0)
    ge = GilbertElliottLoss(rng, p_enter_bad=0.02, p_exit_bad=0.2, loss_bad=0.9)
    drops = [ge.drops(now=i * 0.001) for i in range(20000)]
    rate = np.mean(drops)
    assert 0.02 < rate < 0.4
    # Mean run length of consecutive drops.
    runs, current = [], 0
    for d in drops:
        if d:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    assert np.mean(runs) > 1.5, "losses should arrive in bursts"


def test_gilbert_elliott_rejects_bad_probs():
    with pytest.raises(ValueError):
        GilbertElliottLoss(np.random.default_rng(0), p_enter_bad=1.5, p_exit_bad=0.1)


def test_link_flap_alternates_and_is_deterministic():
    def observe(seed):
        flap = LinkFlap(np.random.default_rng(seed), up_mean=1.0, down_mean=1.0)
        return [flap.drops(t) for t in np.linspace(0, 50, 500)]

    first = observe(7)
    assert observe(7) == first
    assert any(first) and not all(first), "link must both flap and recover"


def test_link_flap_rejects_negative_means():
    with pytest.raises(ValueError):
        LinkFlap(np.random.default_rng(0), up_mean=-1.0, down_mean=1.0)
    with pytest.raises(ValueError):
        LinkFlap(np.random.default_rng(0), up_mean=1.0, down_mean=-0.5)


def test_link_flap_zero_duration_phases_pin_the_state():
    """Zero-mean phases collapse analytically instead of spinning the
    lazy schedule forever: up_mean=0 is a permanent outage, down_mean=0
    (and the doubly-degenerate 0/0 case) a no-op."""
    always_down = LinkFlap(np.random.default_rng(0), up_mean=0.0, down_mean=1.0)
    assert all(always_down.drops(t) for t in np.linspace(0, 100, 50))
    always_up = LinkFlap(np.random.default_rng(0), up_mean=1.0, down_mean=0.0)
    assert not any(always_up.drops(t) for t in np.linspace(0, 100, 50))
    degenerate = LinkFlap(np.random.default_rng(0), up_mean=0.0, down_mean=0.0)
    assert not any(degenerate.drops(t) for t in np.linspace(0, 100, 50))


def test_blackout_window():
    blackout = Blackout(start=1.0, duration=0.5)
    assert not blackout.drops(0.9)
    assert blackout.drops(1.0)
    assert blackout.drops(1.49)
    assert not blackout.drops(1.5)


def test_reorder_delay_bounds():
    reorder = PacketReorder(
        np.random.default_rng(3), prob=1.0, delay_low=0.01, delay_high=0.02
    )
    delays = [reorder.extra_delay(0.0) for _ in range(100)]
    assert all(0.01 <= d <= 0.02 for d in delays)


def test_duplicate_probability_zero_and_one():
    rng = np.random.default_rng(0)
    assert not PacketDuplicate(rng, 0.0).duplicate(0.0)
    assert PacketDuplicate(rng, 1.0).duplicate(0.0)


def test_bandwidth_schedule_stages():
    schedule = BandwidthSchedule([(1.0, 0.5), (2.0, 0.1)])
    assert schedule.rate_factor(0.0) == 1.0
    assert schedule.rate_factor(1.5) == 0.5
    assert schedule.rate_factor(5.0) == 0.1


def test_bandwidth_schedule_rejects_zero_factor():
    with pytest.raises(ValueError):
        BandwidthSchedule([(0.0, 0.0)])


def test_fault_spec_builds_independent_plans():
    spec = FaultSpec((GilbertElliottSpec(), LinkFlapSpec(), ReorderSpec()))
    rng = np.random.default_rng(5)
    first, second = spec.build_plan(rng), spec.build_plan(rng)
    assert first is not second
    assert len(first.faults) == 3


def test_fault_spec_rejects_non_specs():
    with pytest.raises(TypeError):
        FaultSpec((42,))


def test_empty_fault_spec_builds_no_plan():
    assert FaultSpec(()).build_plan(np.random.default_rng(0)) is None


def test_canonical_condition_helpers():
    assert bursty_loss_spec().specs
    assert link_flap_spec().specs


# -- link integration ---------------------------------------------------------


def test_link_fault_losses_counted_and_conserved():
    sim = Simulator()
    plan = FaultPlan([Blackout(start=0.0, duration=1e9)])  # drops everything
    got = []
    link = Link(sim, 1e6, 0.0, got.append, faults=plan)
    for _ in range(10):
        link.send(FakePacket(100))
    sim.run()
    assert got == []
    stats = link.stats()
    assert stats.fault_losses == 10
    assert stats.delivered == 0
    assert stats.conserved()


def test_link_duplicates_deliver_twice():
    sim = Simulator()
    rng = np.random.default_rng(0)
    plan = FaultPlan([PacketDuplicate(rng, prob=1.0)])
    got = []
    link = Link(sim, 1e6, 0.0, got.append, faults=plan)
    for _ in range(5):
        link.send(FakePacket(100))
    sim.run()
    assert len(got) == 10
    stats = link.stats()
    assert stats.delivered == 5 and stats.duplicates == 5
    assert stats.conserved()


def test_link_reorder_actually_reorders():
    sim = Simulator()
    rng = np.random.default_rng(1)
    plan = FaultPlan([PacketReorder(rng, prob=0.5, delay_low=0.05, delay_high=0.1)])
    got = []
    link = Link(
        sim, 1e7, 0.001,
        lambda p: got.append(p.wire_size), faults=plan,
    )
    for i in range(50):
        link.send(FakePacket(100 + i))
    sim.run()
    assert sorted(got) == [100 + i for i in range(50)]
    assert got != sorted(got), "some packets must arrive out of order"
    assert link.stats().conserved()


def test_bandwidth_degradation_slows_the_link():
    def finish_time(factor):
        sim = Simulator()
        plan = FaultPlan([BandwidthSchedule([(0.0, factor)])])
        link = Link(sim, 1e4, 0.0, lambda p: None, faults=plan)
        for _ in range(10):
            link.send(FakePacket(100))
        sim.run()
        return sim.now

    assert finish_time(0.5) == pytest.approx(2 * finish_time(1.0))


def test_link_stats_conserved_with_random_loss_mid_flight():
    sim = Simulator()
    rng = np.random.default_rng(9)
    link = Link(sim, 1e5, 0.5, lambda p: None, loss_rate=0.3, rng=rng)
    for _ in range(40):
        link.send(FakePacket(500))
    sim.run(until=0.15)  # some in service, some in flight, none delivered
    mid = link.stats()
    assert mid.conserved()
    assert mid.in_flight + mid.in_service + mid.queued > 0
    sim.run()
    final = link.stats()
    assert final.conserved()
    assert final.in_flight == 0 and final.queued == 0
    assert final.random_losses > 0 and final.delivered > 0


def test_conservation_integration_full_tcp_flow_over_faulty_path():
    """End-to-end conservation: a real TCP page-load-sized transfer over
    a bursty+flapping+duplicating path keeps every link's accounting
    balanced (sent = delivered + dropped + in-flight)."""
    from repro.simnet.path import NetworkPath
    from repro.stack.host import make_flow
    from repro.units import mbps, msec

    sim = Simulator()
    spec = FaultSpec(
        (
            GilbertElliottSpec(p_enter_bad=0.05, p_exit_bad=0.3, loss_bad=0.5),
            LinkFlapSpec(up_mean=0.3, down_mean=0.05),
            DuplicateSpec(prob=0.02),
            ReorderSpec(prob=0.05, delay_low=0.001, delay_high=0.01),
            BandwidthScheduleSpec(stages=((0.5, 0.5),)),
        )
    )
    path = NetworkPath(rate=mbps(10), rtt=msec(20), fault_spec=spec)
    flow = make_flow(sim, path, rng=np.random.default_rng(11))
    received = []
    flow.server.on_data(received.append)
    flow.client.on_established = lambda: flow.client.write(200_000)
    flow.connect()
    sim.run(until=30.0)
    stats = flow.link_stats()
    for direction, snapshot in stats.items():
        assert snapshot.conserved(), f"{direction}: {snapshot}"
    forward = stats["forward"]
    assert forward.fault_losses > 0, "faults must actually fire"
    assert forward.delivered > 0, "the transfer must make progress"
    assert sum(received) > 0
