"""Event-loop unit tests."""

import pytest

from repro.simnet.engine import EventLoop, Simulator


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, lambda: fired.append("b"))
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(3.0, lambda: fired.append("c"))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    loop = EventLoop()
    fired = []
    for tag in range(5):
        loop.schedule(1.0, lambda t=tag: fired.append(t))
    loop.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(0.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [0.5]
    assert loop.now == 0.5


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-0.1, lambda: None)


def test_schedule_at_before_now_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    loop.run()
    assert fired == []
    assert loop.processed_events == 0


def test_run_until_stops_and_preserves_future_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(5.0, lambda: fired.append(5))
    loop.run(until=2.0)
    assert fired == [1]
    assert loop.now == 2.0
    loop.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_with_no_events():
    loop = EventLoop()
    loop.run(until=3.0)
    assert loop.now == 3.0


def test_max_events_bounds_execution():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(float(i + 1), lambda i=i: fired.append(i))
    loop.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_are_executed():
    loop = EventLoop()
    fired = []

    def first():
        fired.append("first")
        loop.schedule(1.0, lambda: fired.append("second"))

    loop.schedule(1.0, first)
    loop.run()
    assert fired == ["first", "second"]


def test_step_returns_false_when_empty():
    loop = EventLoop()
    assert loop.step() is False


def test_simulator_packet_ids_unique_and_increasing():
    sim = Simulator()
    ids = [sim.next_packet_id() for _ in range(100)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 100
