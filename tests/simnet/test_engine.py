"""Event-loop unit tests."""

import pytest

from repro.simnet.engine import EventLoop, Simulator


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, lambda: fired.append("b"))
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(3.0, lambda: fired.append("c"))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    loop = EventLoop()
    fired = []
    for tag in range(5):
        loop.schedule(1.0, lambda t=tag: fired.append(t))
    loop.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(0.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [0.5]
    assert loop.now == 0.5


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-0.1, lambda: None)


def test_schedule_at_before_now_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    loop.run()
    assert fired == []
    assert loop.processed_events == 0


def test_run_until_stops_and_preserves_future_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(5.0, lambda: fired.append(5))
    loop.run(until=2.0)
    assert fired == [1]
    assert loop.now == 2.0
    loop.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_with_no_events():
    loop = EventLoop()
    loop.run(until=3.0)
    assert loop.now == 3.0


def test_max_events_bounds_execution():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(float(i + 1), lambda i=i: fired.append(i))
    loop.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_are_executed():
    loop = EventLoop()
    fired = []

    def first():
        fired.append("first")
        loop.schedule(1.0, lambda: fired.append("second"))

    loop.schedule(1.0, first)
    loop.run()
    assert fired == ["first", "second"]


def test_step_returns_false_when_empty():
    loop = EventLoop()
    assert loop.step() is False


def test_simulator_packet_ids_unique_and_increasing():
    sim = Simulator()
    ids = [sim.next_packet_id() for _ in range(100)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 100


# -- run() edge cases ---------------------------------------------------------


def test_run_until_with_cancelled_head_event():
    """A cancelled head must not block `until` from advancing the clock
    nor shadow a live event behind it."""
    loop = EventLoop()
    fired = []
    head = loop.schedule(1.0, lambda: fired.append("cancelled"))
    loop.schedule(1.5, lambda: fired.append("live"))
    head.cancel()
    loop.run(until=2.0)
    assert fired == ["live"]
    assert loop.now == 2.0
    assert loop.processed_events == 1


def test_run_until_with_all_events_cancelled_advances_clock():
    loop = EventLoop()
    events = [loop.schedule(float(t), lambda: None) for t in (1, 2, 3)]
    for event in events:
        event.cancel()
    loop.run(until=5.0)
    assert loop.now == 5.0
    assert loop.processed_events == 0
    assert loop.pending_events == 0


def test_max_events_does_not_count_cancelled_events():
    """Lazy-deleted events are skipped without consuming the budget."""
    loop = EventLoop()
    fired = []
    for i in range(6):
        event = loop.schedule(float(i + 1), lambda i=i: fired.append(i))
        if i % 2 == 0:
            event.cancel()
    loop.run(max_events=2)
    assert fired == [1, 3]


def test_max_events_zero_executes_nothing():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append("x"))
    loop.run(max_events=0)
    assert fired == []
    assert loop.pending_events == 1


def test_run_until_exact_event_time_fires_the_event():
    """`until` is inclusive: an event at exactly `until` executes."""
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, lambda: fired.append(loop.now))
    loop.run(until=2.0)
    assert fired == [2.0]
    assert loop.now == 2.0


def test_repeated_run_until_advances_clock_exactly_and_monotonically():
    """Slice-stepping (the page-load driver pattern) must land the clock
    on every boundary exactly, and a shorter `until` must never move
    the clock backwards."""
    loop = EventLoop()
    fired = []
    loop.schedule(0.25, lambda: fired.append(loop.now))
    loop.schedule(0.75, lambda: fired.append(loop.now))
    for boundary in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
        loop.run(until=boundary)
        assert loop.now == boundary
    loop.run(until=0.5)  # earlier than now: a no-op, not a rewind
    assert loop.now == 0.8
    assert fired == [0.25, 0.75]


def test_events_scheduled_mid_run_respect_until():
    loop = EventLoop()
    fired = []

    def reschedule():
        fired.append("first")
        loop.schedule(2.0, lambda: fired.append("late"))

    loop.schedule(0.5, reschedule)
    loop.run(until=1.0)
    assert fired == ["first"]
    loop.run()
    assert fired == ["first", "late"]
