"""Session lifecycle, pid scoping, and worker snapshot plumbing."""

import pytest

from repro.obs import runtime


def test_disabled_by_default():
    assert runtime.session() is None
    assert not runtime.enabled()


def test_enable_disable_cycle():
    session = runtime.enable()
    assert runtime.session() is session
    assert runtime.enabled()
    runtime.disable()
    assert runtime.session() is None
    runtime.disable()  # idempotent


def test_double_enable_raises():
    runtime.enable()
    with pytest.raises(RuntimeError, match="already enabled"):
        runtime.enable()


def test_inherited_session_invisible_to_other_pid(obs_session, monkeypatch):
    """A forked worker inherits _SESSION but must see None (the pid
    guard) — simulated here by lying about the pid."""
    import repro.obs.runtime as mod

    monkeypatch.setattr(mod.os, "getpid", lambda: obs_session.pid + 1)
    assert runtime.session() is None
    assert not runtime.enabled()


def test_worker_task_returns_snapshot(obs_session):
    def job(x):
        session = runtime.session()
        session.registry.counter("job.calls").add(1)
        return x * 2

    result = runtime.WorkerTask(job)(21)
    assert isinstance(result, runtime.WorkerResult)
    assert result.payload == 42
    assert result.metrics["counters"] == {"job.calls": 1}
    # The worker wrote to its own fresh session, not the parent's.
    assert "job.calls" not in obs_session.registry


def test_worker_task_restores_session_on_error(obs_session):
    def boom():
        raise RuntimeError("task failed")

    with pytest.raises(RuntimeError, match="task failed"):
        runtime.WorkerTask(boom)()
    assert runtime.session() is obs_session


def test_absorb_merges_into_parent(obs_session):
    obs_session.registry.counter("c").add(1)
    result = runtime.WorkerResult(
        payload="data",
        metrics={"schema": "repro.obs/metrics", "version": 1, "counters": {"c": 5}},
    )
    assert runtime.absorb(result) == "data"
    assert obs_session.registry.counter("c").value == 6


def test_absorb_passthrough_for_plain_payloads():
    payload = {"not": "a WorkerResult"}
    assert runtime.absorb(payload) is payload


def test_absorb_without_session_still_unwraps():
    result = runtime.WorkerResult(
        payload=7,
        metrics={"schema": "repro.obs/metrics", "version": 1, "counters": {}},
    )
    assert runtime.absorb(result) == 7
