"""The --metrics/--trace CLI flags, `repro report`, and the
serial-vs-parallel metrics equality guarantee."""

import json

import pytest

from repro.cli import main
from repro.obs import runtime
from repro.obs.metrics import load_snapshot
from repro.obs.report import format_metrics_report, format_trace_report, sniff_kind
from repro.obs.schema import validate_trace_file


def _collect_with_obs(workers):
    """Collect a tiny dataset under a metrics session; return the
    counter section of the snapshot plus the dataset digest material."""
    from repro.web.pageload import collect_dataset
    from repro.web.sites import SITE_CATALOG

    session = runtime.enable()
    try:
        dataset = collect_dataset(
            n_samples=2,
            sites=sorted(SITE_CATALOG)[:2],
            seed=11,
            workers=workers,
        )
        snapshot = session.registry.snapshot()
    finally:
        runtime.disable()
    return dataset, snapshot


@pytest.mark.slow
def test_metrics_identical_serial_vs_parallel():
    """The acceptance criterion: integer counters and histogram bucket
    counts are *exactly* equal for any worker count.  Float counters
    (e.g. simulated seconds) may differ in the last bits because
    summation order changes with the merge grouping."""
    _, serial = _collect_with_obs(workers=1)
    _, parallel = _collect_with_obs(workers=2)

    assert set(serial["counters"]) == set(parallel["counters"])
    for name, value in serial["counters"].items():
        other = parallel["counters"][name]
        if isinstance(value, int) and isinstance(other, int):
            assert other == value, f"counter {name}: {other} != {value}"
        else:
            assert other == pytest.approx(value, rel=1e-9), f"counter {name}"
    for name, state in serial["histograms"].items():
        assert parallel["histograms"][name]["counts"] == state["counts"], name
        assert parallel["histograms"][name]["count"] == state["count"], name


@pytest.mark.slow
def test_cli_collect_writes_metrics_and_trace(tmp_path, capsys):
    out = str(tmp_path / "ds.npz")
    metrics = str(tmp_path / "metrics.json")
    trace = str(tmp_path / "trace.jsonl")
    assert main([
        "collect", "--samples", "1", "--seed", "4", "--out", out,
        "--metrics", metrics, "--trace", trace,
    ]) == 0
    capsys.readouterr()

    # The session was torn down by main().
    assert runtime.session() is None

    snapshot = load_snapshot(metrics)
    counters = snapshot["counters"]
    assert counters["pageload.loads"] == 9  # one visit per catalog site
    assert counters["simnet.events_processed"] > 0
    assert counters["tcp.segments_sent"] > 0
    assert "simnet.wall" in snapshot["timers"]

    records = validate_trace_file(trace)
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "run.start" and kinds[-1] == "run.end"
    assert kinds.count("pageload.done") == 9
    assert records[-1]["exit_code"] == 0

    # `repro report` renders both files.
    assert sniff_kind(metrics) == "metrics"
    assert sniff_kind(trace) == "trace"
    assert main(["report", metrics, trace]) == 0
    report = capsys.readouterr().out
    assert "counters" in report
    assert "simnet.events_processed" in report
    assert "events by kind" in report
    assert "pageload.done" in report


def test_report_missing_file_errors(capsys):
    with pytest.raises(SystemExit):
        main(["report", "/nonexistent/metrics.json"])
    assert "not found" in capsys.readouterr().err


def test_format_metrics_report_derived_lines():
    snapshot = {
        "schema": "repro.obs/metrics",
        "version": 1,
        "counters": {
            "simnet.events_processed": 10_000,
            "simnet.sim_seconds": 50.0,
            "tcp.retransmissions": 5,
            "tcp.segments_sent": 1000,
        },
        "gauges": {},
        "histograms": {},
        "timers": {"simnet.wall": {"count": 1, "total": 2.0, "max": 2.0}},
    }
    text = format_metrics_report(snapshot, "m.json")
    assert "sim-time / wall-time" in text
    assert "25.0x" in text
    assert "5,000 events/s" in text
    assert "0.0050" in text  # retransmit ratio


def test_format_trace_report_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert "(empty trace)" in format_trace_report(str(path))
