"""Observability test fixtures.

Every test that enables a session must tear it down — a leaked session
would make unrelated tests record metrics.  The fixtures here make
that automatic.
"""

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _clean_session():
    """Guarantee no session leaks into or out of any obs test."""
    runtime.disable()
    yield
    runtime.disable()


@pytest.fixture
def obs_session():
    """A live metrics-only session, torn down afterwards."""
    session = runtime.enable()
    yield session
    runtime.disable()


@pytest.fixture
def traced_session(tmp_path):
    """A live session with a tracer; yields (session, trace_path)."""
    trace_path = str(tmp_path / "trace.jsonl")
    session = runtime.enable(trace_path=trace_path)
    yield session, trace_path
    runtime.disable()
