"""Disabled-path overhead guard.

The observability promise is that an un-instrumented run pays one
attribute check per hot loop.  This test holds the instrumented (but
disabled) :class:`~repro.simnet.engine.EventLoop` to within 5 % of
:class:`benchmarks.bench_micro.BaselineEventLoop` — a frozen copy of
the loop as it stood before instrumentation — on the same fixed
workload.  Comparing against live code in-process (not remembered
numbers) keeps the guard meaningful on any machine; the absolute
figures from the reference machine are in
``results/bench_micro_pre_obs.txt``.
"""

import pytest

from benchmarks.bench_micro import (
    BaselineEventLoop,
    event_churn_throughput,
    run_event_churn,
)
from repro.obs import runtime
from repro.simnet.engine import EventLoop

#: Disabled-path throughput must stay within 5 % of the baseline.
MIN_RATIO = 0.95


def test_same_events_executed():
    """Both loops must do identical work or the comparison is vacuous."""
    assert run_event_churn(EventLoop(), 4_000) == run_event_churn(
        BaselineEventLoop(), 4_000
    )


def test_obs_is_off():
    """The guard measures the *disabled* path; a leaked session from
    another test would invalidate the comparison."""
    assert runtime.session() is None


@pytest.mark.slow
def test_disabled_overhead_within_five_percent():
    # Warm both code paths first: the very first timed round is
    # dominated by allocator/caching warm-up (measured ~20 % skew on
    # the reference machine) and would make the ratio meaningless.
    event_churn_throughput(BaselineEventLoop, n_events=4_000, repeats=2)
    event_churn_throughput(EventLoop, n_events=4_000, repeats=2)

    # Best-of-5 damps scheduler noise; retry the whole comparison a
    # few times before failing so one noisy burst cannot flake CI.
    worst = 0.0
    for _attempt in range(3):
        base = event_churn_throughput(BaselineEventLoop, n_events=20_000)
        inst = event_churn_throughput(EventLoop, n_events=20_000)
        ratio = inst / base
        worst = max(worst, ratio)
        if ratio >= MIN_RATIO:
            return
    pytest.fail(
        f"instrumented-but-disabled EventLoop ran at {worst:.3f}x the "
        f"pre-instrumentation baseline (floor {MIN_RATIO})"
    )


def test_enabled_loop_records_metrics(obs_session):
    """Sanity check of the other side: with a session live, the same
    workload populates the simulator instruments."""
    run_event_churn(EventLoop(), 2_000)
    snapshot = obs_session.registry.snapshot()
    assert snapshot["counters"]["simnet.events_processed"] > 1_000
    assert snapshot["histograms"]["simnet.queue_depth"]["count"] > 0
    assert snapshot["timers"]["simnet.wall"]["count"] > 0
