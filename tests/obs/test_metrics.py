"""Unit tests for the metrics instruments and registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    load_snapshot,
    pow2_edges,
)


class TestCounter:
    def test_add_and_inc(self):
        c = Counter("x")
        c.add()
        c.add(4)
        c.inc(2.5)
        assert c.value == 7.5

    def test_rejects_negative(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.add(-1)

    def test_merge_adds(self):
        c = Counter("x")
        c.add(3)
        c.merge_state(4)
        assert c.value == 7


class TestGauge:
    def test_envelope(self):
        g = Gauge("depth")
        for v in (5, 2, 9):
            g.set(v)
        assert (g.last, g.min, g.max, g.sets) == (9, 2, 9, 3)

    def test_merge_combines_envelopes(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(5)
        b.set(1)
        b.set(8)
        a.merge_state(b.state())
        assert (a.min, a.max, a.sets) == (1, 8, 3)
        # 'last' merges as max: completion order across workers is
        # nondeterministic, so max is the only reproducible choice.
        assert a.last == 8

    def test_merge_empty_is_noop(self):
        g = Gauge("g")
        g.set(3)
        g.merge_state(Gauge("g").state())
        assert (g.last, g.min, g.max, g.sets) == (3, 3, 3, 1)


class TestHistogram:
    def test_requires_ascending_edges(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", [3, 1, 2])
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", [])

    def test_bucketing_and_overflow(self):
        h = Histogram("h", [10, 100])
        for v in (1, 10, 11, 100, 5000):
            h.observe(v)
        # 1 and 10 land at edge 10; 11 and 100 at edge 100; 5000 overflows.
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.min == 1 and h.max == 5000
        assert h.total == 5122

    def test_quantiles(self):
        h = Histogram("h", [10, 100])
        for v in (1, 2, 3, 50):
            h.observe(v)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 100.0
        assert math.isnan(Histogram("e", [1]).quantile(0.5))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_overflow_quantile_reports_max(self):
        h = Histogram("h", [10])
        h.observe(99)
        assert h.quantile(0.99) == 99.0

    def test_merge_adds_buckets(self):
        a, b = Histogram("h", [10, 100]), Histogram("h", [10, 100])
        a.observe(5)
        b.observe(50)
        b.observe(500)
        a.merge_state(b.state())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 5 and a.max == 500

    def test_merge_rejects_different_edges(self):
        a = Histogram("h", [10])
        with pytest.raises(ValueError, match="cannot merge edges"):
            a.merge_state(Histogram("h", [20]).state())

    def test_pow2_edges(self):
        assert pow2_edges(1, 8) == (1, 2, 4, 8)
        assert pow2_edges(4, 4) == (4,)
        with pytest.raises(ValueError):
            pow2_edges(0, 8)
        with pytest.raises(ValueError):
            pow2_edges(8, 4)


class TestTimer:
    def test_record_and_context_manager(self):
        t = Timer("t")
        t.record(0.5)
        t.record(-1.0)  # clamped to zero, still counted
        with t.time():
            pass
        assert t.count == 3
        assert t.max == 0.5
        assert t.total >= 0.5

    def test_merge(self):
        a, b = Timer("t"), Timer("t")
        a.record(1.0)
        b.record(3.0)
        a.merge_state(b.state())
        assert a.count == 2 and a.total == 4.0 and a.max == 3.0


class TestRegistry:
    def test_get_or_create_idempotent(self):
        r = Registry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h", [1, 2]) is r.histogram("h", [1, 2])
        assert len(r) == 2
        assert "a" in r and "z" not in r

    def test_type_conflict_raises(self):
        r = Registry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_histogram_edge_conflict_raises(self):
        r = Registry()
        r.histogram("h", [1, 2])
        with pytest.raises(ValueError, match="exists with edges"):
            r.histogram("h", [1, 4])

    def test_snapshot_shape(self):
        r = Registry()
        r.counter("c").add(2)
        r.gauge("g").set(7)
        r.histogram("h", [10]).observe(3)
        r.timer("t").record(0.1)
        snap = r.snapshot()
        assert snap["schema"] == "repro.obs/metrics"
        assert snap["version"] == 1
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"]["g"]["last"] == 7
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["timers"]["t"]["count"] == 1

    def test_merge_creates_unknown_names(self):
        src = Registry()
        src.counter("c").add(5)
        src.histogram("h", [10]).observe(2)
        dst = Registry()
        dst.counter("c").add(1)
        dst.merge(src.snapshot())
        assert dst.counter("c").value == 6
        assert dst.histogram("h", [10]).count == 1

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="not a metrics snapshot"):
            Registry().merge({"schema": "something/else"})

    def test_merge_is_associative_for_counters(self):
        parts = []
        for amount in (1, 2, 3):
            r = Registry()
            r.counter("c").add(amount)
            parts.append(r.snapshot())
        left, right = Registry(), Registry()
        for snap in parts:
            left.merge(snap)
        for snap in reversed(parts):
            right.merge(snap)
        assert left.counter("c").value == right.counter("c").value == 6

    def test_dump_and_load_roundtrip(self, tmp_path):
        r = Registry()
        r.counter("c").add(3)
        r.gauge("g").set(1)
        path = str(tmp_path / "sub" / "metrics.json")  # dir is created
        r.dump(path)
        snap = load_snapshot(path)
        assert snap["counters"] == {"c": 3}

    def test_dump_is_deterministic(self, tmp_path):
        def build():
            r = Registry()
            r.counter("b").add(1)
            r.counter("a").add(2)
            return r

        p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        build().dump(p1)
        build().dump(p2)
        assert open(p1).read() == open(p2).read()

    def test_load_rejects_non_metrics_file(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError, match="is not a"):
            load_snapshot(str(path))

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"schema": "repro.obs/metrics", "version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_snapshot(str(path))
