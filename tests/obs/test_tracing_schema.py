"""Tracer behaviour and trace schema (v1) validation.

The load-bearing test here drives a real instrumented page load and
validates every emitted record against the documented schema — the
schema doc in :mod:`repro.obs.schema` and the emitting code cannot
drift apart without this failing.
"""

import numpy as np
import pytest

from repro.obs.schema import (
    KNOWN_KINDS,
    REQUIRED_KEYS,
    kind_counts,
    validate_record,
    validate_trace_file,
)
from repro.obs.tracing import Tracer


def _valid(**overrides):
    record = {"v": 1, "ts": 0.5, "kind": "run.start", "src": "cli"}
    record.update(overrides)
    return record


class TestValidateRecord:
    def test_accepts_valid_record(self):
        validate_record(_valid(command="collect", detail=None, flag=True))

    @pytest.mark.parametrize("key", REQUIRED_KEYS)
    def test_missing_required_key(self, key):
        record = _valid()
        del record[key]
        with pytest.raises(ValueError, match="missing required key"):
            validate_record(record)

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            validate_record(_valid(v=2))

    def test_rejects_bad_ts(self):
        with pytest.raises(ValueError, match="ts must be a number"):
            validate_record(_valid(ts="0.5"))
        with pytest.raises(ValueError, match="ts must be a number"):
            validate_record(_valid(ts=True))
        with pytest.raises(ValueError, match=">= 0"):
            validate_record(_valid(ts=-1.0))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_record(_valid(kind="made.up"))

    def test_rejects_bad_src(self):
        with pytest.raises(ValueError, match="src"):
            validate_record(_valid(src=""))

    def test_rejects_nested_detail_fields(self):
        with pytest.raises(ValueError, match="JSON scalar"):
            validate_record(_valid(extra={"nested": 1}))

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_record(["not", "a", "dict"])


class TestTracer:
    def test_unknown_kind_is_programming_error(self, tmp_path):
        with Tracer(str(tmp_path / "t.jsonl")) as tracer:
            with pytest.raises(ValueError, match="unknown trace event kind"):
                tracer.emit("bogus.kind", "test")

    def test_clock_clamped_monotone(self, tmp_path):
        ticks = iter([1.0, 0.5, 2.0])
        path = str(tmp_path / "t.jsonl")
        with Tracer(path, clock=lambda: next(ticks)) as tracer:
            for _ in range(3):
                tracer.emit("run.start", "test")
        records = validate_trace_file(path)  # would raise on ts regression
        assert [r["ts"] for r in records] == [1.0, 1.0, 2.0]

    def test_emit_after_close_is_noop(self, tmp_path):
        tracer = Tracer(str(tmp_path / "t.jsonl"))
        tracer.close()
        tracer.emit("run.start", "test")
        assert tracer.emitted == 0


class TestFileValidation:
    def test_rejects_non_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            validate_trace_file(str(path))

    def test_rejects_ts_regression_across_records(self, tmp_path):
        import json

        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(_valid(ts=2.0)) + "\n" + json.dumps(_valid(ts=1.0)) + "\n"
        )
        with pytest.raises(ValueError, match="ts went backwards"):
            validate_trace_file(str(path))

    def test_kind_counts(self):
        records = [_valid(), _valid(), _valid(kind="run.end")]
        assert kind_counts(records) == [("run.end", 1), ("run.start", 2)]


def test_instrumented_pageload_emits_valid_trace(traced_session):
    """Every record a real simulated page load emits is schema-valid,
    time-ordered, and of a documented kind."""
    from repro.web.pageload import PageLoadConfig, load_page_result
    from repro.web.sites import SITE_CATALOG

    session, trace_path = traced_session
    site = SITE_CATALOG[sorted(SITE_CATALOG)[0]]
    result = load_page_result(site, PageLoadConfig(), np.random.default_rng(7))
    assert result.completed
    session.tracer.flush()

    records = validate_trace_file(trace_path)  # schema + ts monotonicity
    kinds = {r["kind"] for r in records}
    assert kinds <= KNOWN_KINDS
    assert "pageload.done" in kinds
    done = next(r for r in records if r["kind"] == "pageload.done")
    assert done["src"] == "pageload"
    assert done["bytes"] == result.bytes_received
    assert done["events"] == result.events_processed

    # The same load also populated the metrics registry.
    counters = session.registry.snapshot()["counters"]
    assert counters["pageload.loads"] == 1
    assert counters["simnet.events_processed"] == result.events_processed
    assert counters["tcp.segments_sent"] > 0
