"""Shared fixtures and test-session hygiene.

Hypothesis profiles: the per-example deadline is disabled everywhere
(a loaded CI runner trips the default 200 ms deadline on properties
that are nowhere near quadratic), and under ``CI=...`` examples are
derandomized so a red run reproduces locally from the printed seed.
"""

import os

import numpy as np
import pytest

try:
    from hypothesis import settings as _hyp_settings
except ImportError:  # pragma: no cover - hypothesis is a test dep
    pass
else:
    _hyp_settings.register_profile("dev", deadline=None)
    _hyp_settings.register_profile("ci", deadline=None, derandomize=True)
    _hyp_settings.load_profile("ci" if os.environ.get("CI") else "dev")

from repro.capture.trace import IN, OUT, Trace


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def simple_trace():
    """A small deterministic trace: request, response burst, ack."""
    times = np.array([0.0, 0.03, 0.031, 0.032, 0.05, 0.08])
    dirs = np.array([OUT, IN, IN, IN, OUT, IN], dtype=np.int8)
    sizes = np.array([400, 1500, 1500, 900, 52, 1300])
    return Trace(times, dirs, sizes)


@pytest.fixture
def random_trace(rng):
    """A 400-packet random trace, incoming-heavy like a download."""
    n = 400
    times = np.cumsum(rng.exponential(0.004, n))
    times -= times[0]
    dirs = rng.choice([IN, IN, IN, OUT], size=n).astype(np.int8)
    sizes = rng.integers(60, 1501, size=n)
    return Trace(times, dirs, sizes)
