"""Differential-suite fixtures: ordering safety.

The metrics test enables the obs runtime; an autouse clean slate makes
every test here independent of which test (in any suite) ran before it
and guarantees no session leaks out, even on assertion failure.
"""

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    runtime.disable()
    yield
    runtime.disable()
