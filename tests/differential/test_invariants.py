"""The fuzzer's invariant oracle over the differential golden grid.

``test_differential.py`` pins the vectorized stack against the frozen
reference implementation; this module runs the *same* 24-point grid
(site × defense × fault × seed) under :mod:`repro.fuzz.oracle`'s
runtime checks — link conservation, TCP sequence-space sanity, pacer
gap accounting, trace well-formedness — promoting the fuzz invariants
into the permanent regression surface.  A violation here localises a
stack bug even when both differential stacks agree (they could both be
wrong; conservation cannot be).
"""

import numpy as np
import pytest

from repro.fuzz.oracle import check_visit
from repro.web.pageload import PageLoadConfig, load_page_result, visit_seed_rng
from repro.web.sites import SITE_CATALOG

from tests.differential.test_differential import (
    DEFENSES,
    FAULTS,
    GRID,
    SEEDS,
    SITES,
    _config,
    _controller,
)

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("site,defense,fault,seed", GRID)
def test_grid_visit_upholds_runtime_invariants(site, defense, fault, seed):
    config = _config(fault)
    controller = _controller(defense, seed)
    flows = []
    result = load_page_result(
        SITE_CATALOG[site],
        config,
        visit_seed_rng(seed, site, 0),
        server_controller=controller,
        on_flow=flows.append,
    )
    assert len(flows) == 1
    # Raises InvariantViolation on any breach.
    check_visit(flows[0], result, config, f"{site}/{defense}/{fault}/{seed}")
    assert result.completed, "golden-grid visits must finish"


def test_grid_is_the_full_cross_product():
    assert len(GRID) == len(SITES) * len(DEFENSES) * len(FAULTS) * len(SEEDS)
