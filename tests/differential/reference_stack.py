"""Frozen pre-vectorization reference stack (differential oracle).

Verbatim copies -- extracted mechanically, renamed ``Ref*`` -- of the
hot-path classes as they stood *before* the vectorized hot path
(DESIGN §13) landed:

* :class:`RefEventLoop` / :class:`RefSimulator` -- the per-event
  dataclass-heap loop (``repro.simnet.engine``),
* :class:`RefLink` -- the two-events-per-packet link transit
  (``repro.simnet.entities``),
* :class:`RefQdisc` / :class:`RefFifoQdisc` / :class:`RefFqQdisc` --
  the timer-heap fq qdisc (``repro.stack.qdisc``),
* :class:`RefNic` -- the per-packet TSO split loop
  (``repro.stack.nic``),
* :class:`RefTcpEndpoint` -- the TCP endpoint (``repro.stack.tcp``).

Like :class:`benchmarks.bench_micro.BaselineEventLoop`, these are
FROZEN on purpose: they are the reference half of the differential
golden-trace harness (``tests/differential/test_differential.py``),
which replays identical page-load scenarios through this stack and the
vectorized one and asserts byte-identical traces.  Do not "improve"
or de-duplicate them against the live modules -- any change here
silently weakens the oracle.

:func:`reference_stack` is the injection point: a context manager that
patches the construction sites (``repro.web.pageload.Simulator``,
``repro.simnet.path.Link``, ``repro.stack.host.{Nic,FqQdisc,FifoQdisc,
TcpEndpoint}``) so everything built inside the ``with`` block uses the
frozen classes.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import runtime as _obs_runtime
from repro.obs.metrics import pow2_edges
from repro.simnet.entities import DropTailQueue, LinkStats
from repro.simnet.faults import FaultPlan
from repro.stack import intervals
from repro.stack.buffers import ReceiveBuffer, SendBuffer
from repro.stack.cc import make_cca
from repro.stack.cc.base import AckSample
from repro.stack.nic import Cpu, PacketTap
from repro.stack.packet import Packet, TsoSegment
from repro.stack.pacing import FlowPacer
from repro.stack.qdisc import DEFAULT_TSQ_BYTES, SegmentSink
from repro.stack.tcp import CWND_EDGES, DUPACK_THRESHOLD, TcpConfig
from repro.stack.tso import TsoPolicy
from repro.units import serialization_delay

Receiver = Callable[[Any], None]


#: Fixed bucket edges for the queue-depth histogram (deterministic
#: output requires edges that never depend on the data).
REF_QUEUE_DEPTH_EDGES = pow2_edges(1, 1 << 16)


@dataclass(order=True)
class RefEvent:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire
    in the order they were scheduled.  ``cancelled`` events stay in the
    heap but are skipped when popped (lazy deletion), which keeps
    cancellation O(1).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the loop skips it."""
        self.cancelled = True


class RefEventLoop:
    """A deterministic min-heap event loop with a simulated clock."""

    def __init__(self) -> None:
        self._heap: List[RefEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        # Observability: instrument handles are resolved once here so
        # the disabled path costs the loop a single `is not None` check
        # per run() call — never per event.
        obs = _obs_runtime.session()
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._obs_events = registry.counter("simnet.events_processed")
            self._obs_sim_seconds = registry.counter("simnet.sim_seconds")
            self._obs_wall = registry.timer("simnet.wall")
            self._obs_depth = registry.histogram(
                "simnet.queue_depth", REF_QUEUE_DEPTH_EDGES
            )
            self._obs_depth_max = registry.gauge("simnet.queue_depth.max")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> RefEvent:
        """Schedule ``action`` to run ``delay`` seconds from now.

        A negative delay is a programming error: the simulated past is
        immutable.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> RefEvent:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = RefEvent(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next non-cancelled event.  Return False when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            # The clock never goes backwards; schedule() guards the heap.
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` more events have been executed.

        ``until`` is an absolute simulated time; events scheduled later
        than it remain in the heap and the clock is advanced to exactly
        ``until`` (so a subsequent ``run`` continues seamlessly).
        """
        if self._obs is None:
            self._run_loop(until, max_events)
            return
        # Instrumented path: aggregate per run() slice, not per event,
        # so the event loop itself stays untouched.
        depth = len(self._heap)
        processed_before = self._processed
        sim_before = self._now
        wall_before = time.perf_counter()
        try:
            self._run_loop(until, max_events)
        finally:
            self._obs_wall.record(time.perf_counter() - wall_before)
            self._obs_events.add(self._processed - processed_before)
            self._obs_sim_seconds.add(self._now - sim_before)
            if depth:
                self._obs_depth.observe(depth)
                gauge = self._obs_depth_max
                if gauge.max is None or depth > gauge.max:
                    gauge.set(depth)

    def _run_loop(
        self,
        until: Optional[float],
        max_events: Optional[int],
    ) -> None:
        """The uninstrumented core of :meth:`run`."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            if self.step():
                executed += 1
        if until is not None:
            self._now = max(self._now, until)


class RefSimulator(RefEventLoop):
    """The top-level simulation object handed to every component.

    It is exactly an :class:`RefEventLoop` plus a tiny bit of shared
    state: a monotonically increasing packet-id counter used by the
    stack layers to tag packets for tracing.
    """

    def __init__(self) -> None:
        super().__init__()
        self._packet_ids = itertools.count(1)

    def next_packet_id(self) -> int:
        """Return a fresh unique packet identifier."""
        return next(self._packet_ids)


class RefLink:
    """A rate-limited link with a drop-tail buffer and propagation delay.

    Optionally applies independent random loss (``loss_rate``) and
    per-packet propagation jitter, both driven by a caller-supplied
    ``numpy.random.Generator`` so runs are reproducible.  A
    :class:`~repro.simnet.faults.FaultPlan` composes richer fault
    processes on top: bursty loss, flaps, reordering, duplication and
    time-varying bandwidth degradation.
    """

    def __init__(
        self,
        sim: RefSimulator,
        rate_bytes_per_sec: float,
        propagation_delay: float,
        receiver: Receiver,
        queue_capacity_bytes: Optional[int] = None,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bytes_per_sec}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if (loss_rate > 0 or jitter > 0) and rng is None:
            raise ValueError("loss_rate/jitter require an rng for determinism")
        self._sim = sim
        self.rate = rate_bytes_per_sec
        self.propagation_delay = propagation_delay
        self._receiver = receiver
        self.queue = DropTailQueue(queue_capacity_bytes)
        self.loss_rate = loss_rate
        self.jitter = jitter
        self._rng = rng
        self.faults = faults
        self._busy = False
        self.sent_packets = 0
        self.sent_bytes = 0
        self.random_losses = 0
        self.delivered = 0
        self.in_flight = 0
        #: Simulated time at which the transmitter last went idle; used
        #: to compute utilisation.
        self.busy_time = 0.0

    # -- sending -----------------------------------------------------------

    def send(self, packet: Any) -> bool:
        """Offer ``packet`` to the link.

        Returns False when the packet was dropped at the queue tail.
        """
        if not self.queue.try_push(packet):
            return False
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        packet = self.queue.pop()
        self._busy = True
        rate = self.rate
        if self.faults is not None:
            rate *= self.faults.rate_factor(self._sim.now)
        tx_time = serialization_delay(packet.wire_size, rate)
        self.busy_time += tx_time
        self._sim.schedule(tx_time, lambda: self._tx_done(packet))

    def _tx_done(self, packet: Any) -> None:
        self.sent_packets += 1
        self.sent_bytes += packet.wire_size
        now = self._sim.now
        delay = self.propagation_delay
        if self.jitter > 0:
            delay += float(self._rng.uniform(0.0, self.jitter))
        dropped = self.loss_rate > 0 and float(self._rng.random()) < self.loss_rate
        if dropped:
            self.random_losses += 1
        elif self.faults is not None and self.faults.drops(now):
            dropped = True
        if not dropped:
            if self.faults is not None:
                delay += self.faults.extra_delay(now)
                if self.faults.duplicate(now):
                    self._sim.schedule(delay, lambda: self._receiver(packet))
            self.in_flight += 1
            self._sim.schedule(delay, lambda: self._deliver(packet))
        if len(self.queue):
            self._start_next()
        else:
            self._busy = False

    def _deliver(self, packet: Any) -> None:
        self.in_flight -= 1
        self.delivered += 1
        self._receiver(packet)

    # -- introspection -----------------------------------------------------

    def stats(self) -> LinkStats:
        """A conservation-checked accounting snapshot (see
        :class:`LinkStats`)."""
        faults = self.faults
        return LinkStats(
            offered=self.queue.enqueued + self.queue.dropped,
            queue_drops=self.queue.dropped,
            enqueued=self.queue.enqueued,
            queued=len(self.queue),
            in_service=1 if self._busy else 0,
            transmitted=self.sent_packets,
            random_losses=self.random_losses,
            fault_losses=faults.fault_losses if faults else 0,
            in_flight=self.in_flight,
            delivered=self.delivered,
            duplicates=faults.duplicated if faults else 0,
            reordered=faults.reordered if faults else 0,
        )

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class RefQdisc(abc.ABC):
    """Base qdisc: accepts TSO segments, releases them to a sink."""

    def __init__(
        self,
        sim: RefSimulator,
        sink: SegmentSink,
        tsq_bytes: int = DEFAULT_TSQ_BYTES,
    ) -> None:
        if tsq_bytes <= 0:
            raise ValueError(f"tsq_bytes must be positive, got {tsq_bytes}")
        self._sim = sim
        self._sink = sink
        self.tsq_bytes = tsq_bytes
        self._flow_bytes: Dict[int, int] = {}
        self._drain_callbacks: Dict[int, Callable[[], None]] = {}
        self.enqueued_segments = 0
        self.released_segments = 0

    # -- TSQ backpressure ------------------------------------------------------

    def budget(self, flow_id: int) -> int:
        """Bytes flow ``flow_id`` may still enqueue before TSQ blocks it."""
        return max(0, self.tsq_bytes - self._flow_bytes.get(flow_id, 0))

    def queued_bytes(self, flow_id: int) -> int:
        """Bytes of ``flow_id`` currently below the transport layer."""
        return self._flow_bytes.get(flow_id, 0)

    def on_drain(self, flow_id: int, callback: Callable[[], None]) -> None:
        """Register the TSQ wakeup for a flow (called after each release)."""
        self._drain_callbacks[flow_id] = callback

    def _account_enqueue(self, segment: TsoSegment) -> None:
        self._flow_bytes[segment.flow_id] = (
            self._flow_bytes.get(segment.flow_id, 0) + segment.wire_size
        )
        self.enqueued_segments += 1

    def _release(self, segment: TsoSegment) -> None:
        self._flow_bytes[segment.flow_id] -= segment.wire_size
        self.released_segments += 1
        self._sink(segment)
        callback = self._drain_callbacks.get(segment.flow_id)
        if callback is not None:
            callback()

    # -- interface ----------------------------------------------------------------

    @abc.abstractmethod
    def enqueue(self, segment: TsoSegment) -> None:
        """Accept a segment from the transport layer."""

    @property
    @abc.abstractmethod
    def backlog(self) -> int:
        """Number of segments currently held."""


class RefFifoQdisc(RefQdisc):
    """A FIFO qdisc: releases segments in arrival order, asynchronously
    (next event-loop instant), ignoring pacing departure times."""

    def __init__(self, sim, sink, tsq_bytes: int = DEFAULT_TSQ_BYTES) -> None:
        super().__init__(sim, sink, tsq_bytes)
        self._queue: Deque[TsoSegment] = deque()
        self._draining = False

    def enqueue(self, segment: TsoSegment) -> None:
        self._account_enqueue(segment)
        self._queue.append(segment)
        if not self._draining:
            self._draining = True
            self._sim.schedule(0.0, self._drain)

    def _drain(self) -> None:
        while self._queue:
            self._release(self._queue.popleft())
        self._draining = False

    @property
    def backlog(self) -> int:
        return len(self._queue)


class RefFqQdisc(RefQdisc):
    """An fq-like qdisc honouring per-segment earliest departure times."""

    def __init__(self, sim, sink, tsq_bytes: int = DEFAULT_TSQ_BYTES) -> None:
        super().__init__(sim, sink, tsq_bytes)
        self._heap: List[Tuple[float, int, TsoSegment]] = []
        self._seq = itertools.count()
        self._timer = None
        #: Last assigned departure per flow: fq keeps each flow FIFO,
        #: so a later segment (e.g. an unpaced retransmission) must not
        #: overtake already-queued segments of the same flow — doing so
        #: manufactures reordering the sender then misreads as loss.
        self._flow_last_departure: Dict[int, float] = {}

    def enqueue(self, segment: TsoSegment) -> None:
        self._account_enqueue(segment)
        when = max(
            segment.not_before,
            self._sim.now,
            self._flow_last_departure.get(segment.flow_id, 0.0),
        )
        self._flow_last_departure[segment.flow_id] = when
        heapq.heappush(self._heap, (when, next(self._seq), segment))
        self._arm_timer()

    def _arm_timer(self) -> None:
        if not self._heap:
            return
        head_time = self._heap[0][0]
        if self._timer is not None and not self._timer.cancelled:
            if self._timer.time <= head_time:
                return
            self._timer.cancel()
        self._timer = self._sim.schedule_at(max(head_time, self._sim.now), self._fire)

    def _fire(self) -> None:
        now = self._sim.now
        while self._heap and self._heap[0][0] <= now:
            _when, _seq, segment = heapq.heappop(self._heap)
            self._release(segment)
        self._timer = None
        self._arm_timer()

    @property
    def backlog(self) -> int:
        return len(self._heap)

    def next_departure(self) -> Optional[float]:
        """Departure time of the head segment, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]


class RefNic:
    """Network interface: TSO split + transmission onto a link.

    ``taps`` observe every transmitted packet with its handoff time —
    the vantage point used to capture WF traces.
    """

    def __init__(self, sim: RefSimulator, link_send: Callable[[Any], bool]) -> None:
        self._sim = sim
        self._link_send = link_send
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_payload_bytes = 0
        self.tx_segments = 0
        self.dropped = 0
        self._taps: List[PacketTap] = []

    def add_tap(self, tap: PacketTap) -> None:
        """Observe every packet leaving this NIC."""
        self._taps.append(tap)

    def send_packet(self, packet: Packet) -> bool:
        """Transmit a single pre-built packet (pure ACKs, SYNs).

        These bypass the qdisc, mirroring how small control packets
        avoid fq pacing in Linux.
        """
        now = self._sim.now
        packet.sent_at = now
        if packet.packet_id == 0:
            packet.packet_id = self._sim.next_packet_id()
        for tap in self._taps:
            tap(packet, now)
        if self._link_send(packet):
            self.tx_packets += 1
            self.tx_bytes += packet.wire_size
            return True
        self.dropped += 1
        return False

    def transmit(self, segment: TsoSegment) -> List[Packet]:
        """TSO-split ``segment`` and push the packets to the link.

        Returns the packet list (useful to tests).  Packets the link's
        drop-tail queue rejects are counted in ``dropped``; loss
        recovery is the transport's job.
        """
        packets = segment.split_packets(self._sim.next_packet_id)
        self.tx_segments += 1
        now = self._sim.now
        for packet in packets:
            packet.sent_at = now
            # Timestamp at transmission (as Linux does), so RTT samples
            # exclude qdisc/pacing wait — otherwise pacing feeds back
            # into srtt and the rate estimate spirals down.
            packet.ts_val = now
            for tap in self._taps:
                tap(packet, now)
            if self._link_send(packet):
                self.tx_packets += 1
                self.tx_bytes += packet.wire_size
                self.tx_payload_bytes += packet.payload_len
            else:
                self.dropped += 1
        return packets


class RefTcpEndpoint:
    """One side of a TCP connection."""

    def __init__(
        self,
        sim: RefSimulator,
        flow_id: int,
        direction: int,
        cpu: Cpu,
        qdisc: RefQdisc,
        ack_sender: Callable[[Packet], None],
        config: Optional[TcpConfig] = None,
    ) -> None:
        self._sim = sim
        self.flow_id = flow_id
        self.direction = direction
        self._cpu = cpu
        self._qdisc = qdisc
        self._send_ack_packet = ack_sender
        self.config = config or TcpConfig()

        self.send_buffer = SendBuffer(limit=self.config.send_buffer)
        self.receive_buffer = ReceiveBuffer(window=self.config.receive_window)
        self.cca = make_cca(self.config.cc, self.config.mss)
        self.pacer = FlowPacer()
        #: Hook consulted for every segment built (Stob).  None means
        #: stock stack behaviour.
        self.segment_controller = None

        # Sender state.
        self.peer_rwnd = self.config.receive_window
        self.established = False
        self.fin_sent = False
        self._fin_dispatched = False
        self._dup_acks = 0
        self._in_recovery = False
        self._recovery_point = 0
        #: SACK scoreboard: ranges the peer received out of order.
        #: Invariant: disjoint from ``_retx_ranges`` (a SACK arriving
        #: for retransmitted data evicts it from the retx set).
        self._scoreboard = intervals.RangeSet()
        #: Ranges retransmitted in this recovery, not yet ACKed/SACKed.
        self._retx_ranges = intervals.RangeSet()
        self._pipe_memo = (-1, -1, -1, -1, 0)
        #: Sequence below which holes were already retransmitted this
        #: recovery round (avoids re-walking the scoreboard per ACK).
        self._retx_cursor = 0
        self._rto_timer: Optional[RefEvent] = None
        self._rto_backoff = 1
        self._srtt = -1.0
        self._rttvar = 0.0
        self.delivered = 0
        self._rate_samples: Deque[Tuple[int, int, float]] = deque()
        self.retransmissions = 0
        self.timeouts = 0

        # Receiver state.
        self._ack_pending_packets = 0
        self._ack_timer: Optional[RefEvent] = None
        self._last_ts_val = -1.0
        self._packets_received = 0
        self.fin_received = False
        self.on_fin: Optional[Callable[[], None]] = None
        self.on_established: Optional[Callable[[], None]] = None

        # Observability: resolve instrument handles once; with the
        # session disabled every hook below is one attribute check.
        obs = _obs_runtime.session()
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._obs_segments = registry.counter("tcp.segments_sent")
            self._obs_packets = registry.counter("tcp.packets_sent")
            self._obs_retx = registry.counter("tcp.retransmissions")
            self._obs_timeouts = registry.counter("tcp.timeouts")
            self._obs_tsq_blocked = registry.counter("tcp.tsq_blocked")
            self._obs_pacing_stalls = registry.counter("tcp.pacing_stalls")
            self._obs_cwnd = registry.histogram("tcp.cwnd_bytes", CWND_EDGES)
            self._obs_cover_packets = registry.counter("stob.cover_packets")
            self._obs_cover_bytes = registry.counter("stob.cover_bytes")

        self._qdisc.on_drain(self.flow_id, self._on_tsq_drain)

    # ------------------------------------------------------------------ app API

    @property
    def snd_nxt(self) -> int:
        """Next new stream byte to transmit."""
        return self.send_buffer.nxt

    @property
    def snd_una(self) -> int:
        """First unacknowledged stream byte (owned by the send
        buffer, the single source of truth)."""
        return self.send_buffer.una

    @property
    def bytes_in_flight(self) -> int:
        """Stream bytes sent and not yet cumulatively acknowledged."""
        return self.send_buffer.nxt - self.snd_una

    @property
    def srtt(self) -> float:
        """Smoothed RTT in seconds (negative before the first sample)."""
        return self._srtt

    def connect(self) -> None:
        """Start the handshake (client side)."""
        if self.established:
            return
        syn = Packet(
            flow_id=self.flow_id,
            direction=self.direction,
            is_syn=True,
            packet_id=self._sim.next_packet_id(),
            ts_val=self._sim.now,
            ack=0,
        )
        self._send_ack_packet(syn)
        # Retry if no SYN-ACK within the initial RTO.
        self._rto_timer = self._sim.schedule(self.config.initial_rto, self._syn_retry)

    def _syn_retry(self) -> None:
        self._rto_timer = None
        if not self.established:
            self.timeouts += 1
            self.connect()

    def write(self, nbytes: int) -> int:
        """Post application data; transmission happens asynchronously."""
        taken = self.send_buffer.write(nbytes)
        self.try_send()
        return taken

    def write_then(self, nbytes: int, callback: Callable[[], None]) -> int:
        """Post data and invoke ``callback`` once it is fully ACKed."""
        taken = self.send_buffer.write(nbytes)
        self.send_buffer.mark(callback)
        self.try_send()
        return taken

    def close(self) -> None:
        """Send FIN after all posted data (half-close)."""
        self.fin_sent = True
        self.try_send()

    def on_data(self, callback: Callable[[int], None]) -> None:
        """Register the receive-side data-ready callback."""
        self.receive_buffer.on_data(callback)

    # ------------------------------------------------------------------ sending

    def try_send(self) -> None:
        """Transmit as much as cwnd, rwnd, TSQ and the send buffer allow."""
        if not self.established:
            return
        while True:
            built = self._build_one_segment()
            if not built:
                break

    def _pipe(self) -> int:
        """Bytes estimated in flight, SACK-adjusted (RFC 6675 'pipe').

        Un-SACKed bytes more than three MSS below the highest SACKed
        byte are considered *lost* (the RFC's IsLost rule) and leave the
        pipe — without this, drops inflate the estimate and recovery
        starves until an RTO.

        The value is memoised on (nxt, una, sack-version): the pipe is
        queried on every transmission opportunity, which would otherwise
        make interval arithmetic the simulation's hot path.
        """
        memo_key = (
            self.send_buffer.nxt,
            self.snd_una,
            self._scoreboard.version,
            self._retx_ranges.version,
        )
        if self._pipe_memo[:4] == memo_key:
            return self._pipe_memo[4]
        sacked = self._scoreboard.total
        retx_out = self._retx_ranges.total
        lost = 0
        if self._scoreboard:
            high = self._scoreboard.max_end
            lost_end = max(self.snd_una, high - 3 * self.config.mss)
            if lost_end > self.snd_una:
                span = lost_end - self.snd_una
                # Both sets live entirely in [una, max_end); count their
                # coverage of the lost window from the (short) tail side
                # so the cost is O(log n), not a full scan.
                covered = (
                    self._scoreboard.total
                    - self._scoreboard.covered_in(lost_end, high)
                    + self._retx_ranges.total
                    - self._retx_ranges.covered_in(
                        lost_end, max(high, self._retx_ranges.max_end)
                    )
                )
                lost = max(0, span - covered)
        pipe = max(0, self.bytes_in_flight - sacked - lost + retx_out)
        self._pipe_memo = memo_key + (pipe,)
        return pipe

    def _window_budget(self) -> int:
        window = min(self.cca.cwnd, self.peer_rwnd)
        return max(0, window - self._pipe())

    def _build_one_segment(self) -> bool:
        available = self.send_buffer.sendable()
        fin_only = self.fin_sent and available == 0 and not self._fin_in_flight()
        if available <= 0 and not fin_only:
            return False
        window = self._window_budget()
        if window <= 0 and not fin_only:
            return False
        mss = self.config.mss
        pacing_rate = self._pacing_rate()
        # TSQ is a threshold, not a byte allowance: while the below-TCP
        # backlog is under the limit a full TSO segment may be built
        # (Linux checks the limit before building, so one segment can
        # overshoot it).  Capping the segment *size* by the remaining
        # budget would ratchet segment sizes down under CPU load.
        if self._tsq_budget(pacing_rate) <= 0:
            if self._obs is not None:
                self._obs_tsq_blocked.add(1)
            return False

        tso_segs = self.config.tso.autosize(
            pacing_rate if pacing_rate is not None else 0.0, mss
        )
        controller = self.segment_controller
        if controller is not None:
            tso_segs = controller.tso_size(self, tso_segs)
            tso_segs = max(1, tso_segs)
        seg_limit = min(tso_segs * mss, window, available)
        if seg_limit <= 0 and not fin_only:
            return False

        if fin_only:
            packet_sizes: List[int] = []
            taken = 0
        else:
            packet_sizes = self._packetize(seg_limit, mss)
            taken = self.send_buffer.take(sum(packet_sizes))
        seq = self.send_buffer.nxt - taken
        carries_fin = (
            self.fin_sent
            and self.send_buffer.sendable() == 0
            and not self._fin_in_flight()
        )
        if carries_fin:
            self._fin_dispatched = True
        segment = TsoSegment(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=seq,
            ack=self.receive_buffer.rcv_nxt,
            packet_sizes=packet_sizes,
            is_fin=carries_fin,
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
        )
        self._dispatch_segment(segment, pacing_rate)
        self._record_rate_sample(segment.seq + taken)
        self._arm_rto()
        return taken > 0  # a FIN-only segment ends the loop

    def _packetize(self, nbytes: int, mss: int) -> List[int]:
        """Split ``nbytes`` into per-packet payload sizes.

        Stock TCP produces MSS-sized packets with a smaller tail; the
        Stob controller may dictate other (only smaller) sizes.
        """
        controller = self.segment_controller
        if controller is not None:
            sizes = controller.packet_sizes(self, nbytes, mss)
            if sizes:
                total = sum(sizes)
                if total > nbytes or any(s <= 0 or s > mss for s in sizes):
                    raise ValueError(
                        f"controller returned invalid packet sizes {sizes} "
                        f"for {nbytes} bytes at mss {mss}"
                    )
                return sizes
        sizes = [mss] * (nbytes // mss)
        tail = nbytes % mss
        if tail:
            sizes.append(tail)
        return sizes

    def _pacing_rate(self) -> Optional[float]:
        if not self.config.pacing:
            return None
        return self.cca.pacing_rate(self._srtt)

    def _tsq_budget(self, pacing_rate: Optional[float]) -> int:
        """TCP-Small-Queues budget, Linux style: keep at most ~2 ms of
        the current pacing rate (never less than two full segments)
        queued below TCP.  Without the dynamic bound, a backlog
        enqueued before a window collapse drains at the collapsed rate
        and every retransmission queues behind it for seconds."""
        limit = self._qdisc.tsq_bytes
        if pacing_rate is not None and pacing_rate > 0:
            two_segments = 2 * (self.config.mss + 52)
            dynamic = max(two_segments, int(pacing_rate * 0.002))
            limit = min(limit, dynamic)
        return max(0, limit - self._qdisc.queued_bytes(self.flow_id))

    def _dispatch_segment(
        self, segment: TsoSegment, pacing_rate: Optional[float]
    ) -> None:
        extra_gap = 0.0
        controller = self.segment_controller
        if controller is not None:
            extra_gap = max(0.0, controller.departure_gap(self, segment))
        departure = self.pacer.schedule(
            self._sim.now, segment.wire_size, pacing_rate, extra_gap
        )
        cost = self._cpu.model.segment_cost(segment.payload_len, segment.num_packets)
        cpu_done = self._cpu.consume(cost)
        segment.not_before = max(departure, cpu_done)
        if self._obs is not None:
            self._obs_segments.add(1)
            self._obs_packets.add(segment.num_packets)
            if departure > self._sim.now:
                self._obs_pacing_stalls.add(1)
        self._qdisc.enqueue(segment)

    def _fin_in_flight(self) -> bool:
        # FIN tracking is coarse: once sent with all data, do not resend
        # unless an RTO rewinds the stream.
        return self._fin_dispatched

    def _record_rate_sample(self, end_seq: int) -> None:
        self._rate_samples.append((end_seq, self.delivered, self._sim.now))

    def inject_dummy(self, nbytes: int, packet_sizes: Optional[List[int]] = None) -> None:
        """Send unreliable cover traffic (dummy packets, §2.2 *padding*).

        Dummies do not consume sequence space and are never
        retransmitted — they model in-stack padding the receiver's
        stack discards (the TLS-record padding hook of §4.2).
        """
        if nbytes <= 0:
            return
        mss = self.config.mss
        sizes = packet_sizes or self._packetize(nbytes, mss)
        segment = TsoSegment(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=0,
            ack=self.receive_buffer.rcv_nxt,
            packet_sizes=sizes,
            dummy=True,
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
        )
        # Cover traffic is clocked by its own injector, not by the
        # congestion controller: it bypasses the data pacer (otherwise
        # dummies would consume the flow's pacing credits and starve
        # the real stream) and pays only the CPU cost.
        if self._obs is not None:
            self._obs_cover_packets.add(segment.num_packets)
            self._obs_cover_bytes.add(segment.payload_len)
        cost = self._cpu.model.segment_cost(
            segment.payload_len, segment.num_packets
        )
        segment.not_before = self._cpu.consume(cost)
        self._qdisc.enqueue(segment)

    def _on_tsq_drain(self) -> None:
        self.try_send()

    # ------------------------------------------------------------------ receiving

    def on_packet(self, packet: Packet) -> None:
        """Entry point for every packet arriving from the network."""
        if packet.is_syn:
            self._handle_syn(packet)
            return
        if packet.dummy:
            # Cover traffic: observable on the wire, dropped here.
            return
        self._last_ts_val = packet.ts_val
        if packet.payload_len > 0 or packet.is_fin:
            self._handle_data(packet)
        self._handle_ack(packet)

    def _handle_syn(self, packet: Packet) -> None:
        became_established = not self.established
        self.established = True
        if packet.ack == 0 and packet.direction != self.direction:
            # Passive open: reply SYN-ACK (ack=1 marks the SYN acked).
            synack = Packet(
                flow_id=self.flow_id,
                direction=self.direction,
                is_syn=True,
                ack=1,
                packet_id=self._sim.next_packet_id(),
                ts_val=self._sim.now,
                ts_ecr=packet.ts_val,
            )
            self._send_ack_packet(synack)
        else:
            # SYN-ACK received (active open): take the RTT sample, ack it.
            if packet.ts_ecr >= 0:
                self._rtt_sample(self._sim.now - packet.ts_ecr)
            if self._rto_timer is not None:
                self._rto_timer.cancel()
                self._rto_timer = None
            self._send_pure_ack()
        if became_established:
            if self.on_established is not None:
                self.on_established()
            self.try_send()

    def _handle_data(self, packet: Packet) -> None:
        before = self.receive_buffer.rcv_nxt
        self.receive_buffer.receive(packet.seq, packet.payload_len)
        after = self.receive_buffer.rcv_nxt
        if packet.is_fin and packet.end_seq - (1 if packet.is_fin else 0) <= after:
            if not self.fin_received:
                self.fin_received = True
                if self.on_fin is not None:
                    self.on_fin()
        self._packets_received += 1
        out_of_order = after == before and packet.payload_len > 0
        self._ack_pending_packets += 1
        quick = (
            out_of_order
            or self._packets_received <= self.config.quickack_packets
            or packet.is_fin
        )
        if quick or self._ack_pending_packets >= self.config.delayed_ack_packets:
            self._send_pure_ack()
        elif self._ack_timer is None or self._ack_timer.cancelled:
            self._ack_timer = self._sim.schedule(
                self.config.delayed_ack_timeout, self._ack_timer_fire
            )

    def _ack_timer_fire(self) -> None:
        self._ack_timer = None
        if self._ack_pending_packets > 0:
            self._send_pure_ack()

    def _send_pure_ack(self) -> None:
        self._ack_pending_packets = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        ack = Packet(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=self.send_buffer.nxt,
            ack=self.receive_buffer.rcv_nxt,
            packet_id=self._sim.next_packet_id(),
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
            rwnd=self.receive_buffer.advertised_window,
            sack=self.receive_buffer.sack_ranges(),
        )
        self._send_ack_packet(ack)

    # ------------------------------------------------------------------ ACK clock

    def _handle_ack(self, packet: Packet) -> None:
        ack = packet.ack
        if packet.payload_len == 0:
            # Pure ACKs carry the peer's current advertised window.
            self.peer_rwnd = packet.rwnd
        for start, end in packet.sack:
            if self._scoreboard.add(start, end):
                # Keep the retx set disjoint: SACKed retransmissions
                # are no longer outstanding.
                self._retx_ranges.remove(start, end)
        if ack > self.snd_una:
            self._process_new_ack(ack, packet)
        elif (
            ack == self.snd_una
            and self.bytes_in_flight > 0
            and packet.payload_len == 0
        ):
            self._process_dup_ack()
        self.try_send()

    def _process_new_ack(self, ack: int, packet: Packet) -> None:
        newly = self.send_buffer.ack_to(ack)
        self.delivered += newly
        self._dup_acks = 0
        self._rto_backoff = 1
        self._scoreboard.trim_below(ack)
        self._retx_ranges.trim_below(ack)

        rtt = -1.0
        if packet.ts_ecr >= 0:
            rtt = self._sim.now - packet.ts_ecr
            self._rtt_sample(rtt)
        rate = self._delivery_rate(ack)

        if self._in_recovery and ack >= self._recovery_point:
            self._in_recovery = False
            self.cca.on_recovery_exit(self._sim.now)
        elif self._in_recovery:
            # Partial ACK: keep repairing holes the SACK way.
            self._sack_retransmit()

        sample = AckSample(
            acked_bytes=newly,
            rtt=rtt,
            now=self._sim.now,
            in_flight=self.bytes_in_flight,
            delivery_rate=rate,
        )
        self.cca.on_ack(sample)
        if self._obs is not None:
            self._obs_cwnd.observe(self.cca.cwnd)
        check_drain = getattr(self.cca, "check_drain_exit", None)
        if check_drain is not None:
            check_drain(self.bytes_in_flight, self._sim.now)

        if self.bytes_in_flight == 0:
            self._cancel_rto()
        else:
            self._arm_rto(restart=True)

    def _process_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._dup_acks >= DUPACK_THRESHOLD and not self._in_recovery:
            self._in_recovery = True
            self._recovery_point = self.send_buffer.nxt
            # Note: _retx_ranges survives across recovery episodes —
            # retransmissions from the previous episode may still be in
            # flight, and forgetting them would duplicate them.  It is
            # cleared on RTO, where everything is presumed lost.
            self._retx_cursor = self.snd_una
            self.cca.on_loss(self._sim.now, self.bytes_in_flight)
        if self._in_recovery:
            self._sack_retransmit()

    def _delivery_rate(self, ack: int) -> float:
        """Delivery-rate sample from the oldest segment the ACK covers."""
        rate = 0.0
        last = None
        while self._rate_samples and self._rate_samples[0][0] <= ack:
            last = self._rate_samples.popleft()
        if last is not None:
            _end, delivered_then, sent_time = last
            elapsed = self._sim.now - sent_time
            if elapsed > 0:
                rate = (self.delivered - delivered_then) / elapsed
        return rate

    def _rtt_sample(self, rtt: float) -> None:
        if rtt <= 0:
            return
        if self._srtt < 0:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            err = rtt - self._srtt
            self._srtt += 0.125 * err
            self._rttvar += 0.25 * (abs(err) - self._rttvar)

    # ------------------------------------------------------------------ loss

    def _sack_retransmit(self) -> None:
        """Repair scoreboard holes, pipe-limited (RFC 6675 style).

        Holes are the unsacked, un-retransmitted ranges between the
        cumulative ACK point and the highest SACKed byte (or the
        recovery point when no SACK information exists, which degrades
        to head retransmission).
        """
        mss = self.config.mss
        high = self._recovery_point
        if self._scoreboard:
            high = max(high, self._scoreboard.max_end)
        budget = self.cca.cwnd - self._pipe()
        if budget <= 0:
            return
        # Dup-ACK pacing: at most one segment per ACK event.  The SACK
        # option carries only three blocks, so the sender's hole map is
        # always a little stale; the walk must not outpace what the
        # rotating SACK reports reveal, or it retransmits data the
        # receiver already holds.
        budget = min(budget, mss)
        cursor = max(self.snd_una, self._retx_cursor)
        # Only holes below the IsLost edge are eligible: un-SACKed data
        # within three MSS of the highest SACKed byte may simply still
        # be in flight (RFC 6675).
        lost_edge = high - 3 * mss
        spans = intervals.merged_gaps(
            self._scoreboard, self._retx_ranges, cursor, lost_edge
        )
        # Retransmit MSS-sized chunks of the holes, pipe-limited.  The
        # cursor remembers how far this recovery round has walked so a
        # dup-ACK storm does not rescan repaired holes.  A RACK-style
        # age check stops the walk at the knowledge horizon: a hole
        # whose original transmission is younger than one sRTT has not
        # had time to be SACK-reported and is very likely just unknown,
        # not lost.
        horizon = self._sim.now - 1.5 * max(self._srtt, 0.0)
        for start, end in spans:
            while start < end and budget > 0:
                if self._sent_time_of(start) > horizon:
                    return
                length = min(end - start, mss)
                self._retransmit_range(start, length)
                self._retx_ranges.add(start, start + length)
                start += length
                budget -= length
            self._retx_cursor = start
            if budget <= 0:
                break

    def _sent_time_of(self, seq: int) -> float:
        """Approximate original transmission time of stream byte
        ``seq`` from the delivery-rate sample log (-inf if unknown)."""
        samples = self._rate_samples
        if not samples:
            return float("-inf")
        lo, hi = 0, len(samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if samples[mid][0] <= seq:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(samples):
            return float("-inf")
        return samples[lo][2]

    def _retransmit_range(self, seq: int, length: int) -> None:
        """Retransmit ``[seq, seq + length)``.

        Retransmissions traverse the fq pacer like normal segments (so
        a recovery burst is not a line-rate flood that re-overflows the
        bottleneck), but take no Stob gap — obfuscation never delays
        loss repair.
        """
        if length <= 0:
            return
        self.retransmissions += 1
        if self._obs is not None:
            self._obs_retx.add(1)
        segment = TsoSegment(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=seq,
            ack=self.receive_buffer.rcv_nxt,
            packet_sizes=[length],
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
        )
        # Retransmissions are not paced: loss repair must never queue
        # behind a pacing backlog (Linux transmits them directly).
        cost = self._cpu.model.segment_cost(segment.payload_len, 1)
        segment.not_before = self._cpu.consume(cost)
        self._qdisc.enqueue(segment)
        self._arm_rto(restart=True)

    def _rto_interval(self) -> float:
        if self._srtt < 0:
            base = self.config.initial_rto
        else:
            base = self._srtt + max(4.0 * self._rttvar, 0.001)
        rto = base * self._rto_backoff
        return min(max(rto, self.config.min_rto), self.config.max_rto)

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_timer is not None and not self._rto_timer.cancelled:
            if not restart:
                return
            self._rto_timer.cancel()
        self._rto_timer = self._sim.schedule(self._rto_interval(), self._rto_fire)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _rto_fire(self) -> None:
        self._rto_timer = None
        if self.bytes_in_flight <= 0:
            return
        self.timeouts += 1
        if self._obs is not None:
            self._obs_timeouts.add(1)
            self._obs.emit(
                "tcp.rto", f"tcp.flow{self.flow_id}",
                sim_time=round(self._sim.now, 6), backoff=self._rto_backoff,
            )
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self._in_recovery = False
        self._dup_acks = 0
        self._scoreboard.clear()
        self._retx_ranges.clear()
        self.cca.on_rto(self._sim.now)
        # Everything in flight is presumed lost; forget pacing debt so
        # the retransmission is not scheduled behind stale departures.
        self.pacer.reset()
        # Go-back-N: everything past the ACK point is sent again
        # through the normal path (cwnd is now one segment).
        self.send_buffer.rewind_for_retransmit()
        self._rate_samples.clear()
        self._arm_rto(restart=True)
        self.try_send()


@contextmanager
def reference_stack():
    """Patch the stack construction sites to the frozen classes.

    Everything assembled inside the ``with`` block (``make_flow``,
    ``load_page`` and friends) runs on the pre-vectorization reference
    implementation; the construction sites are restored on exit.
    """
    import repro.simnet.path as path_mod
    import repro.stack.host as host_mod
    import repro.web.pageload as pageload_mod

    patches = [
        (pageload_mod, "Simulator", RefSimulator),
        (path_mod, "Link", RefLink),
        (host_mod, "Nic", RefNic),
        (host_mod, "FqQdisc", RefFqQdisc),
        (host_mod, "FifoQdisc", RefFifoQdisc),
        (host_mod, "TcpEndpoint", RefTcpEndpoint),
    ]
    saved = [(mod, name, getattr(mod, name)) for mod, name, _new in patches]
    try:
        for mod, name, new in patches:
            setattr(mod, name, new)
        yield
    finally:
        for mod, name, old in saved:
            setattr(mod, name, old)
