"""Differential harness: live stack vs frozen reference."""
