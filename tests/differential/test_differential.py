"""Differential harness: vectorized stack vs the frozen reference.

``reference_stack.py`` holds verbatim pre-vectorization copies of every
refactored component (event loop, link, qdisc, NIC, TCP endpoint).  The
tests here run the *same* seeded visit through both stacks over a grid
of (site × defense × fault profile × seed) and assert, pairwise:

* **byte-identical traces** — times, directions and sizes hash equal;
* **identical link accounting** — the :class:`LinkStats` snapshots of
  both directions are equal field by field;
* **identical invariant obs metrics** — every ``tcp.*``, ``stob.*`` and
  ``pageload.*`` counter/histogram matches.  ``simnet.*`` metrics are
  deliberately excluded: the vectorized link posts one delivery event
  per packet where the reference posts a tx-done + deliver pair, so
  event *counts* legitimately differ while wire behaviour does not.

Golden digests (``tests/experiments/test_golden_trace*.py``) pin the
absolute bytes; this harness pins the live stack against the reference
*implementation*, so a regression pinpoints which behaviour diverged
rather than just "the digest changed".
"""

import hashlib
from contextlib import contextmanager

import numpy as np
import pytest

from repro.experiments.adverse_network import default_conditions
from repro.obs import runtime as obs_runtime
from repro.stob.actions import DelayAction, SplitAction
from repro.stob.controller import StobController
from repro.web import pageload as pageload_mod
from repro.web.pageload import PageLoadConfig, load_page, visit_seed_rng
from repro.web.sites import SITE_CATALOG

from tests.differential.reference_stack import reference_stack

#: The differential grid.  Every entry is one seeded visit simulated by
#: both stacks; defenses exercise the Stob hooks inside the refactored
#: segment-build path, the bursty fault profile exercises the legacy
#: per-packet link path plus loss recovery (SACK, RTO).
SITES = ["bing.com", "wikipedia.org"]
DEFENSES = ["none", "split", "delay"]
FAULTS = ["clean", "bursty"]
SEEDS = [0, 5]

GRID = [
    (site, defense, fault, seed)
    for site in SITES
    for defense in DEFENSES
    for fault in FAULTS
    for seed in SEEDS
]

#: Metric namespaces that must be invariant under the refactor.
INVARIANT_PREFIXES = ("tcp.", "stob.", "pageload.")


def _controller(defense, seed):
    if defense == "none":
        return None
    if defense == "split":
        return StobController(action=SplitAction(1200, 2))
    if defense == "delay":
        return StobController(
            action=DelayAction(0.02, 0.08, rng=np.random.default_rng(seed))
        )
    raise ValueError(defense)


def _config(fault):
    if fault == "bursty":
        return PageLoadConfig(fault_spec=default_conditions()["bursty"])
    return PageLoadConfig()


@contextmanager
def _capture_flow():
    """Intercept the flow ``load_page`` builds, to read link stats."""
    captured = []
    original = pageload_mod.make_flow

    def wrapper(*args, **kwargs):
        flow = original(*args, **kwargs)
        captured.append(flow)
        return flow

    pageload_mod.make_flow = wrapper
    try:
        yield captured
    finally:
        pageload_mod.make_flow = original


def _run_visit(site, defense, fault, seed):
    """One seeded visit; returns (trace, {direction: LinkStats})."""
    rng = visit_seed_rng(seed, site, 0)
    with _capture_flow() as captured:
        trace = load_page(
            SITE_CATALOG[site],
            _config(fault),
            rng,
            server_controller=_controller(defense, seed),
        )
    assert len(captured) == 1
    return trace, captured[0].link_stats()


def _digest(trace):
    digest = hashlib.sha256()
    digest.update(trace.times.tobytes())
    digest.update(trace.directions.tobytes())
    digest.update(trace.sizes.tobytes())
    return digest.hexdigest()


def _invariant_metrics(snapshot):
    """The refactor-invariant slice of a metrics snapshot."""
    kept = {}
    for section in ("counters", "histograms"):
        for name, state in snapshot[section].items():
            if name.startswith(INVARIANT_PREFIXES):
                kept[name] = state
    return kept


@pytest.mark.slow
@pytest.mark.parametrize("site,defense,fault,seed", GRID)
def test_trace_and_link_stats_identical(site, defense, fault, seed):
    """The vectorized stack reproduces the reference byte for byte."""
    live_trace, live_stats = _run_visit(site, defense, fault, seed)
    with reference_stack():
        ref_trace, ref_stats = _run_visit(site, defense, fault, seed)

    label = f"{site}/{defense}/{fault}/seed={seed}"
    assert _digest(live_trace) == _digest(ref_trace), (
        f"{label}: trace bytes diverged from the frozen reference stack"
    )
    assert set(live_stats) == set(ref_stats)
    for direction in live_stats:
        assert live_stats[direction] == ref_stats[direction], (
            f"{label}: {direction} LinkStats diverged "
            f"(live={live_stats[direction]}, ref={ref_stats[direction]})"
        )
        assert live_stats[direction].conserved()


@pytest.mark.slow
@pytest.mark.parametrize(
    "site,defense,fault,seed",
    # Metrics are aggregated per session; one representative visit per
    # (defense, fault) corner keeps the obs pass affordable.
    [(SITES[0], d, f, SEEDS[0]) for d in DEFENSES for f in FAULTS],
)
def test_invariant_obs_metrics_identical(site, defense, fault, seed):
    """tcp.* / stob.* / pageload.* metrics are refactor-invariant."""

    def metrics_for(run_reference):
        obs_runtime.disable()
        session = obs_runtime.enable()
        try:
            if run_reference:
                with reference_stack():
                    trace, _ = _run_visit(site, defense, fault, seed)
            else:
                trace, _ = _run_visit(site, defense, fault, seed)
            return _digest(trace), _invariant_metrics(
                session.registry.snapshot()
            )
        finally:
            obs_runtime.disable()

    live_digest, live_metrics = metrics_for(run_reference=False)
    ref_digest, ref_metrics = metrics_for(run_reference=True)
    label = f"{site}/{defense}/{fault}/seed={seed}"
    assert live_digest == ref_digest, f"{label}: traces diverged under obs"
    assert live_metrics, "instrumented run recorded no invariant metrics"
    assert live_metrics == ref_metrics, (
        f"{label}: invariant obs metrics diverged from the reference"
    )


def test_reference_stack_restores_patches():
    """The context manager must leave the live classes in place."""
    from repro.simnet.entities import Link
    from repro.stack import host as host_mod
    from repro.stack.nic import Nic
    from repro.stack.tcp import TcpEndpoint

    with reference_stack():
        assert host_mod.Nic is not Nic
        assert host_mod.TcpEndpoint is not TcpEndpoint
    assert host_mod.Nic is Nic
    assert host_mod.TcpEndpoint is TcpEndpoint
    assert pageload_mod.make_flow.__module__ == "repro.stack.host"


def test_grid_covers_every_axis():
    """The grid exercises each defense and fault kind at least twice."""
    assert len(GRID) == len(SITES) * len(DEFENSES) * len(FAULTS) * len(SEEDS)
    for defense in DEFENSES:
        assert sum(1 for g in GRID if g[1] == defense) >= 2
    for fault in FAULTS:
        assert sum(1 for g in GRID if g[2] == fault) >= 2
