"""QUIC-lite endpoint tests."""

import numpy as np
import pytest

from repro.capture.trace import IN
from repro.quic.endpoint import QuicConfig, QuicEndpoint, make_quic_flow
from repro.quic.packet import DATAGRAM_OVERHEAD, QuicPacket
from repro.quic.pageload import load_page_quic
from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stob.actions import SplitAction
from repro.stob.controller import StobController
from repro.units import mbps, msec, mib
from repro.web import PageLoadConfig, SITE_CATALOG


def make(rate=mbps(30), rtt=msec(20), cc="cubic", loss=0.0, seed=1,
         buffer_bdp=1.0):
    sim = Simulator()
    path = NetworkPath(rate=rate, rtt=rtt, buffer_bdp=buffer_bdp,
                       loss_rate=loss)
    client, server, fwd, rev = make_quic_flow(
        sim, path, QuicConfig(cc=cc), QuicConfig(cc=cc),
        rng=np.random.default_rng(seed),
    )
    return sim, client, server, fwd, rev


# -- packet -----------------------------------------------------------------------


def test_packet_accounting():
    packet = QuicPacket(
        flow_id=1, direction=-1, packet_number=5,
        stream_ranges=[(0, 1000), (2000, 2500)],
    )
    assert packet.stream_bytes == 1500
    assert packet.wire_size == DATAGRAM_OVERHEAD + 1500
    assert packet.is_ack_eliciting


def test_ack_only_packet_not_eliciting():
    packet = QuicPacket(
        flow_id=1, direction=1, packet_number=1, ack_largest=5,
        ack_ranges=((0, 6),),
    )
    assert not packet.is_ack_eliciting
    assert packet.wire_size > DATAGRAM_OVERHEAD


def test_packet_validation():
    with pytest.raises(ValueError):
        QuicPacket(flow_id=1, direction=0, packet_number=0)
    with pytest.raises(ValueError):
        QuicPacket(flow_id=1, direction=1, packet_number=0,
                   stream_ranges=[(5, 5)])
    with pytest.raises(ValueError):
        QuicPacket(flow_id=1, direction=1, packet_number=0, padding_bytes=-1)


def test_config_validation():
    with pytest.raises(ValueError):
        QuicConfig(datagram_size=10)
    with pytest.raises(ValueError):
        QuicConfig(ack_every=0)
    assert QuicConfig().max_payload > 1000


# -- connection ----------------------------------------------------------------------


def test_handshake_establishes():
    sim, client, server, _f, _r = make()
    client.connect()
    sim.run(until=1.0)
    assert client.established and server.established


def test_handshake_initial_is_padded_to_1200():
    sim, client, server, fwd, _r = make()
    sizes = []
    original = fwd.send

    def spy(packet):
        sizes.append(packet.wire_size)
        return original(packet)

    fwd.send = spy
    client.connect()
    sim.run(until=1.0)
    assert sizes[0] == 1200


@pytest.mark.parametrize("cc", ["reno", "cubic", "bbr"])
def test_transfer_completes(cc):
    sim, client, server, _f, _r = make(cc=cc)
    server.on_established = lambda: server.write(mib(2))
    client.connect()
    sim.run(until=20.0)
    assert client.receive_buffer.delivered == mib(2)


def test_transfer_survives_random_loss():
    sim, client, server, _f, rev = make(loss=0.01, seed=3)
    server.on_established = lambda: server.write(mib(1))
    client.connect()
    sim.run(until=30.0)
    assert client.receive_buffer.delivered == mib(1)
    assert server.lost_packets > 0


def test_lost_packets_match_drops_without_random_loss():
    sim, client, server, _f, rev = make(buffer_bdp=0.4)
    server.on_established = lambda: server.write(mib(4))
    client.connect()
    sim.run(until=30.0)
    assert client.receive_buffer.delivered == mib(4)
    drops = rev.queue.dropped
    assert drops > 0
    assert server.lost_packets <= drops + 5  # PTO probes allowed


def test_datagram_sizes_capped_by_pmtu():
    sim, client, server, _f, rev = make()
    sizes = []
    original = rev.send

    def spy(packet):
        sizes.append(packet.wire_size)
        return original(packet)

    rev.send = spy
    server.on_established = lambda: server.write(500_000)
    client.connect()
    sim.run(until=10.0)
    assert max(sizes) <= QuicConfig().datagram_size


def test_padding_injection_observable_but_not_data():
    sim, client, server, _f, _r = make()

    def start():
        server.inject_padding(1000)
        server.write(10_000)

    server.on_established = start
    client.connect()
    sim.run(until=5.0)
    assert client.receive_buffer.delivered == 10_000
    assert client.padding_received > 0


def test_rtt_estimate_reasonable():
    sim, client, server, _f, _r = make(rtt=msec(40))
    server.on_established = lambda: server.write(mib(1))
    client.connect()
    sim.run(until=20.0)
    assert 0.039 <= server.srtt < 0.5


def test_stob_controller_shapes_quic_datagrams():
    sim, client, server, _f, rev = make()
    server.segment_controller = StobController(action=SplitAction(700, 2))
    sizes = []
    original = rev.send

    def spy(packet):
        if packet.stream_bytes:
            sizes.append(packet.stream_bytes)
        return original(packet)

    rev.send = spy
    server.on_established = lambda: server.write(200_000)
    client.connect()
    sim.run(until=10.0)
    assert client.receive_buffer.delivered == 200_000
    assert max(sizes) <= 700


def test_quic_page_load_produces_trace():
    trace = load_page_quic(
        SITE_CATALOG["wikipedia.org"], PageLoadConfig(),
        np.random.default_rng(9),
    )
    assert len(trace) > 50
    assert trace.incoming_bytes > trace.outgoing_bytes
    assert set(np.unique(trace.directions)) <= {1, -1}


def test_quic_page_load_deterministic():
    cfg = PageLoadConfig()
    a = load_page_quic(SITE_CATALOG["bing.com"], cfg, np.random.default_rng(4))
    b = load_page_quic(SITE_CATALOG["bing.com"], cfg, np.random.default_rng(4))
    assert len(a) == len(b)
    assert np.allclose(a.times, b.times)
