"""Atomic publication guarantees: all-or-nothing, ENOSPC-clean, no
staging residue."""

import errno
import json
import os

import pytest

from repro import ioutil
from repro.ioutil import atomic_write_bytes, atomic_write_json, atomic_write_text


def _listdir(path):
    return sorted(os.listdir(path))


def test_bytes_round_trip_and_no_tmp_residue(tmp_path):
    target = str(tmp_path / "artifact.bin")
    atomic_write_bytes(target, b"\x00\x01payload")
    assert open(target, "rb").read() == b"\x00\x01payload"
    assert _listdir(tmp_path) == ["artifact.bin"]


def test_overwrite_replaces_completely(tmp_path):
    target = str(tmp_path / "artifact.bin")
    atomic_write_bytes(target, b"a much longer original payload")
    atomic_write_bytes(target, b"short")
    assert open(target, "rb").read() == b"short"


def test_creates_missing_parent_directories(tmp_path):
    target = str(tmp_path / "deep" / "nested" / "artifact.bin")
    atomic_write_bytes(target, b"x")
    assert open(target, "rb").read() == b"x"


def test_text_round_trip_utf8(tmp_path):
    target = str(tmp_path / "note.txt")
    atomic_write_text(target, "tête-à-tête\n")
    assert open(target, encoding="utf-8").read() == "tête-à-tête\n"


def test_json_is_deterministic_sorted_with_newline(tmp_path):
    target = str(tmp_path / "meta.json")
    atomic_write_json(target, {"b": 2, "a": [1, {"z": 0, "y": 1}]})
    text = open(target).read()
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')
    assert json.loads(text) == {"b": 2, "a": [1, {"z": 0, "y": 1}]}
    atomic_write_json(str(tmp_path / "again.json"), {"a": [1, {"y": 1, "z": 0}], "b": 2})
    assert open(str(tmp_path / "again.json")).read() == text


def test_failed_write_leaves_previous_file_and_no_tmp(tmp_path, monkeypatch):
    """Disk full mid-write: the destination keeps its previous complete
    content and the staging file is cleaned up."""
    target = str(tmp_path / "artifact.bin")
    atomic_write_bytes(target, b"previous complete content")

    def full_disk(fd):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(ioutil.os, "fsync", full_disk)
    with pytest.raises(OSError, match="No space left"):
        atomic_write_bytes(target, b"half-written garbage")
    monkeypatch.undo()
    assert open(target, "rb").read() == b"previous complete content"
    assert _listdir(tmp_path) == ["artifact.bin"]


def test_failed_first_write_leaves_nothing(tmp_path, monkeypatch):
    """ENOSPC on a brand-new path must not leave a partial or empty
    destination behind."""
    target = str(tmp_path / "artifact.bin")

    def full_disk(fd):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(ioutil.os, "fsync", full_disk)
    with pytest.raises(OSError):
        atomic_write_bytes(target, b"doomed")
    assert _listdir(tmp_path) == []


def test_staging_paths_are_unique_within_process(tmp_path):
    target = str(tmp_path / "artifact.bin")
    names = {ioutil._tmp_path(target) for _ in range(64)}
    assert len(names) == 64


def test_fsync_false_still_atomic(tmp_path):
    target = str(tmp_path / "artifact.bin")
    atomic_write_bytes(target, b"fast path", fsync=False)
    assert open(target, "rb").read() == b"fast path"
    assert _listdir(tmp_path) == ["artifact.bin"]
