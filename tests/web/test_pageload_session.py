"""Page-load driver internals: request/response round machinery."""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.units import mbps, msec
from repro.web.objects import PageSample
from repro.web.pageload import PageLoadConfig, _PageLoadSession, load_page
from repro.web.sites import SITE_CATALOG


def run_session(page, pipeline_depth=6, until=20.0):
    sim = Simulator()
    flow = make_flow(sim, NetworkPath(rate=mbps(30), rtt=msec(20)))
    session = _PageLoadSession(sim, flow, page, pipeline_depth, lambda: None)
    sim.run(until=until)
    return sim, flow, session


def simple_page(rounds, request=500, think=0.005, parse=0.01):
    return PageSample(
        site="test",
        rounds=rounds,
        request_sizes=[[request] * len(r) for r in rounds],
        think_times=[[think] * len(r) for r in rounds],
        parse_times=[parse] * len(rounds),
    )


def test_single_round_single_object():
    page = simple_page([[50_000]])
    _sim, flow, session = run_session(page)
    assert session.completed
    assert flow.client.receive_buffer.delivered == 50_000
    assert flow.server.receive_buffer.delivered == 500


def test_rounds_are_sequential():
    """Round 2's requests leave only after round 1 completes."""
    page = simple_page([[30_000], [30_000]], parse=0.05)
    sim = Simulator()
    flow = make_flow(sim, NetworkPath(rate=mbps(30), rtt=msec(20)))
    request_times = []
    flow.client_host.nic.add_tap(
        lambda p, t: request_times.append(t) if p.payload_len > 100 else None
    )
    session = _PageLoadSession(sim, flow, page, 6, lambda: None)
    sim.run(until=20.0)
    assert session.completed
    assert len(request_times) >= 2
    # Second request departs after the first response finished
    # (at 30 Mb/s, 30 kB takes ~8 ms + RTT + parse).
    assert request_times[1] - request_times[0] > 0.05


def test_pipelined_round_many_objects():
    page = simple_page([[10_000] * 8])
    _sim, flow, session = run_session(page)
    assert session.completed
    assert flow.client.receive_buffer.delivered == 80_000


def test_pipeline_depth_one_still_completes():
    page = simple_page([[10_000] * 5])
    _sim, _flow, session = run_session(page, pipeline_depth=1)
    assert session.completed


def test_completion_callback_fires_once():
    fired = []
    sim = Simulator()
    flow = make_flow(sim, NetworkPath(rate=mbps(30), rtt=msec(20)))
    page = simple_page([[20_000]])
    _PageLoadSession(sim, flow, page, 6, lambda: fired.append(sim.now))
    sim.run(until=20.0)
    assert len(fired) == 1


def test_load_page_stops_soon_after_completion():
    """The guard loop must not run the full max_duration for a page
    that completes quickly."""
    config = PageLoadConfig(max_duration=60.0)
    trace = load_page(
        SITE_CATALOG["whatsapp.net"], config, np.random.default_rng(3)
    )
    assert trace.duration < 10.0


def test_page_load_config_path_sampling_bounds(rng):
    config = PageLoadConfig(rate_mbps=50, rtt_ms=30,
                            rate_jitter=0.15, rtt_jitter=0.2)
    for _ in range(20):
        path = config.sample_path(rng)
        assert mbps(50 * 0.84) <= path.rate <= mbps(50 * 1.16)
        assert msec(30 * 0.79) <= path.rtt <= msec(30 * 1.21)
