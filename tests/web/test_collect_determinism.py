"""collect_dataset determinism: position-derived visit seeds + parallel
byte-identity.

Visit randomness must depend only on ``(seed, label, sample)``.  The
pre-fix implementation drew visit seeds from one sequential stream, so
adding a site (or a sample) reshuffled every subsequent visit — and
made parallel fan-out unsafe.
"""

import numpy as np

from repro.capture.serialize import save_dataset
from repro.web.pageload import PageLoadConfig, collect_dataset, visit_seed_rng

SITES = ["bing.com", "github.com"]


def traces_equal(t1, t2):
    return (
        np.array_equal(t1.times, t2.times)
        and np.array_equal(t1.directions, t2.directions)
        and np.array_equal(t1.sizes, t2.sizes)
    )


def test_visit_seed_depends_only_on_coordinates():
    a = visit_seed_rng(3, "bing.com", 1).integers(0, 2**31)
    b = visit_seed_rng(3, "bing.com", 1).integers(0, 2**31)
    c = visit_seed_rng(3, "bing.com", 2).integers(0, 2**31)
    d = visit_seed_rng(3, "github.com", 1).integers(0, 2**31)
    assert a == b
    assert len({a, c, d}) == 3


def test_site_subsetting_preserves_other_visits():
    config = PageLoadConfig()
    both = collect_dataset(n_samples=2, sites=SITES, config=config, seed=11)
    only_second = collect_dataset(
        n_samples=2, sites=["github.com"], config=config, seed=11
    )
    for t1, t2 in zip(both.traces["github.com"], only_second.traces["github.com"]):
        assert traces_equal(t1, t2), (
            "removing a site from the list must not reshuffle another "
            "site's visit randomness"
        )


def test_sample_count_extension_preserves_prefix():
    config = PageLoadConfig()
    short = collect_dataset(n_samples=1, sites=SITES, config=config, seed=11)
    long = collect_dataset(n_samples=2, sites=SITES, config=config, seed=11)
    for label in SITES:
        assert traces_equal(short.traces[label][0], long.traces[label][0]), (
            "raising n_samples must extend the dataset, not reshuffle it"
        )


def test_parallel_collection_is_byte_identical(tmp_path):
    config = PageLoadConfig()
    serial = collect_dataset(n_samples=2, sites=SITES, config=config, seed=5, workers=1)
    fanned = collect_dataset(n_samples=2, sites=SITES, config=config, seed=5, workers=2)
    p1, p2 = tmp_path / "serial.npz", tmp_path / "parallel.npz"
    save_dataset(serial, str(p1))
    save_dataset(fanned, str(p2))
    assert p1.read_bytes() == p2.read_bytes()


def test_parallel_collection_preserves_progress_and_stalls():
    """Stall logging and progress callbacks fire in grid order
    regardless of completion order."""
    config = PageLoadConfig(max_duration=0.01)  # everything stalls
    serial_log, fanned_log = [], []
    serial_progress, fanned_progress = [], []
    collect_dataset(
        n_samples=1, sites=SITES, config=config, seed=5,
        stall_log=serial_log, progress=lambda l, i: serial_progress.append((l, i)),
    )
    collect_dataset(
        n_samples=1, sites=SITES, config=config, seed=5, workers=2,
        stall_log=fanned_log, progress=lambda l, i: fanned_progress.append((l, i)),
    )
    assert [s.site for s in serial_log] == [s.site for s in fanned_log]
    assert serial_progress == fanned_progress
