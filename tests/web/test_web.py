"""Web workload tests: profiles, sampling, page loads, tracegen."""

import numpy as np
import pytest

from repro.capture.trace import IN, OUT
from repro.stob.actions import SplitAction
from repro.stob.controller import StobController
from repro.web.objects import ObjectClass, SiteProfile
from repro.web.pageload import PageLoadConfig, collect_dataset, load_page
from repro.web.sites import SITE_CATALOG, site_names
from repro.web.tracegen import StatisticalTraceGenerator


def test_catalog_has_the_papers_nine_sites():
    assert site_names() == [
        "bing.com", "github.com", "instagram.com", "netflix.com",
        "office.com", "spotify.com", "whatsapp.net", "wikipedia.org",
        "youtube.com",
    ]


def test_page_sample_structure(rng):
    profile = SITE_CATALOG["wikipedia.org"]
    page = profile.sample_page(rng)
    # Round 0 = TLS handshake, round 1 = HTML, then objects.
    assert len(page.rounds) >= 2
    assert len(page.rounds[0]) == 1
    assert page.rounds[0][0] == pytest.approx(
        np.mean(profile.cert_size), abs=(profile.cert_size[1] - profile.cert_size[0])
    )
    assert page.total_download_bytes > 10_000
    assert len(page.request_sizes) == len(page.rounds)
    assert len(page.think_times) == len(page.rounds)
    assert len(page.parse_times) == len(page.rounds)


def test_page_samples_vary_between_visits(rng):
    profile = SITE_CATALOG["youtube.com"]
    sizes = {profile.sample_page(rng).total_download_bytes for _ in range(5)}
    assert len(sizes) == 5


def test_object_class_sampling_bounds(rng):
    cls = ObjectClass("img", 10, 0.3, np.log(10_000), 0.5, min_size=500,
                      max_size=50_000)
    for _ in range(50):
        assert 500 <= cls.sample_size(rng) <= 50_000
    counts = [cls.sample_count(rng) for _ in range(50)]
    assert min(counts) >= 7 and max(counts) <= 13


def test_load_page_produces_full_trace(rng):
    trace = load_page(SITE_CATALOG["wikipedia.org"], PageLoadConfig(), rng)
    assert len(trace) > 50
    assert trace.times[0] == 0.0
    assert trace.incoming_bytes > trace.outgoing_bytes  # download-heavy
    assert set(np.unique(trace.directions)) == {IN, OUT}


def test_load_page_deterministic(rng):
    cfg = PageLoadConfig()
    a = load_page(SITE_CATALOG["bing.com"], cfg, np.random.default_rng(42))
    b = load_page(SITE_CATALOG["bing.com"], cfg, np.random.default_rng(42))
    assert len(a) == len(b)
    assert np.allclose(a.times, b.times)
    assert np.array_equal(a.sizes, b.sizes)


def test_load_page_with_stob_controller_shrinks_packets(rng):
    controller = StobController(action=SplitAction(1200, 2))
    trace = load_page(
        SITE_CATALOG["wikipedia.org"],
        PageLoadConfig(),
        np.random.default_rng(1),
        server_controller=controller,
    )
    incoming = trace.filter_direction(IN)
    assert incoming.sizes.max() <= 1200 + 52  # payload cap + headers


def test_collect_dataset_shape():
    dataset = collect_dataset(
        n_samples=2, sites=["wikipedia.org", "bing.com"], seed=5
    )
    assert dataset.labels == ["bing.com", "wikipedia.org"]
    assert dataset.num_traces == 4
    for _label, trace in dataset:
        assert len(trace) > 20


def test_tracegen_fast_and_distinct():
    generator = StatisticalTraceGenerator(seed=2)
    wiki = generator.generate(SITE_CATALOG["wikipedia.org"])
    tube = generator.generate(SITE_CATALOG["youtube.com"])
    assert tube.total_bytes > wiki.total_bytes  # youtube is much bigger
    assert np.all(np.diff(wiki.times) >= 0)


def test_tracegen_dataset(rng):
    generator = StatisticalTraceGenerator(seed=3)
    dataset = generator.generate_dataset(
        n_samples=3, sites=["bing.com", "github.com"], seed=3
    )
    assert dataset.num_traces == 6


def test_tracegen_validation():
    with pytest.raises(ValueError):
        StatisticalTraceGenerator(rate_bytes_per_sec=0)
    with pytest.raises(ValueError):
        StatisticalTraceGenerator(rtt=-1)
