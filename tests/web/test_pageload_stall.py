"""Stall semantics: completed vs deadline-truncated page loads."""

import numpy as np
import pytest

from repro.web.pageload import (
    PageLoadConfig,
    PageLoadStalled,
    collect_dataset,
    load_page,
    load_page_result,
    load_page_strict,
)
from repro.web.sites import SITE_CATALOG

SITE = "bing.com"


def test_normal_load_reports_completed():
    result = load_page_result(
        SITE_CATALOG[SITE], PageLoadConfig(), np.random.default_rng(1)
    )
    assert result.completed
    assert result.rounds_completed == result.total_rounds
    assert result.bytes_received > 0
    assert result.events_processed > 0
    assert len(result.trace) > 0


def test_truncated_load_reports_stall_diagnostics():
    config = PageLoadConfig(max_duration=0.05)  # far too short to finish
    result = load_page_result(
        SITE_CATALOG[SITE], config, np.random.default_rng(1)
    )
    assert not result.completed
    assert result.sim_time == pytest.approx(0.05)
    assert result.rounds_completed < result.total_rounds
    summary = result.stall_summary()
    assert "round" in summary and "sim_time" in summary


def test_strict_load_raises_structured_stall():
    config = PageLoadConfig(max_duration=0.05)
    with pytest.raises(PageLoadStalled) as excinfo:
        load_page_strict(
            SITE_CATALOG[SITE], SITE, config, np.random.default_rng(1)
        )
    error = excinfo.value
    assert error.site == SITE
    assert not error.result.completed
    assert SITE in str(error)


def test_legacy_load_page_still_returns_trace():
    trace = load_page(SITE_CATALOG[SITE], PageLoadConfig(), np.random.default_rng(2))
    assert len(trace) > 0


def test_watchdog_is_invoked_and_can_abort():
    calls = {"n": 0}

    class Abort(Exception):
        pass

    def watchdog():
        calls["n"] += 1
        if calls["n"] > 2:
            raise Abort()

    with pytest.raises(Abort):
        load_page_result(
            SITE_CATALOG["instagram.com"],
            PageLoadConfig(),
            np.random.default_rng(3),
            watchdog=watchdog,
        )
    assert calls["n"] > 2


def test_collect_dataset_drops_and_counts_stalled_loads():
    stalls = []
    dataset = collect_dataset(
        n_samples=2,
        sites=[SITE],
        config=PageLoadConfig(max_duration=0.05),
        seed=4,
        stall_log=stalls,
    )
    assert dataset.num_traces == 0, "partial traces must never be ingested"
    assert len(stalls) == 2
    assert all(isinstance(s, PageLoadStalled) for s in stalls)


def test_collect_dataset_keeps_completed_loads():
    stalls = []
    dataset = collect_dataset(
        n_samples=2, sites=[SITE], config=PageLoadConfig(), seed=4,
        stall_log=stalls,
    )
    assert dataset.num_traces == 2
    assert stalls == []
