"""Serial-vs-parallel bit-identity of the random forest.

Per-tree generators are spawned from the root seed before any fan-out
and prediction parallelises over rows (never trees), so every output —
trees, votes, leaf indices, OOB score — must match the serial path
exactly for any ``n_jobs``.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForest


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(150, 25))
    y = (X[:, 0] + X[:, 3] > 0).astype(np.int64) + rng.integers(0, 2, 150)
    X_test = rng.normal(size=(40, 25))
    return X, y, X_test


def fit(n_jobs, data, **kwargs):
    X, y, _ = data
    forest = RandomForest(
        n_estimators=10, random_state=7, oob_score=True, n_jobs=n_jobs, **kwargs
    )
    return forest.fit(X, y)


def test_fit_is_bit_identical(data):
    X, y, X_test = data
    serial = fit(1, data)
    parallel = fit(2, data)
    assert len(serial.trees_) == len(parallel.trees_)
    for t1, t2 in zip(serial.trees_, parallel.trees_):
        assert np.array_equal(t1.feature, t2.feature)
        assert np.array_equal(t1.threshold, t2.threshold)
        assert np.array_equal(t1.value, t2.value)
    assert serial.oob_score_ == parallel.oob_score_


def test_predictions_bit_identical_for_any_job_count(data):
    X, y, X_test = data
    serial = fit(1, data)
    for n_jobs in (2, 3):
        parallel = fit(n_jobs, data)
        assert np.array_equal(
            serial.predict_proba(X_test), parallel.predict_proba(X_test)
        )
        assert np.array_equal(serial.predict(X_test), parallel.predict(X_test))
        assert np.array_equal(serial.apply(X_test), parallel.apply(X_test))


def test_parallel_predict_on_serial_fit(data):
    """n_jobs only moves work around: a serially fitted forest
    predicted with row fan-out gives the same votes."""
    X, y, X_test = data
    serial = fit(1, data)
    fanned = fit(1, data)
    fanned.n_jobs = 2
    assert np.array_equal(serial.predict_proba(X_test), fanned.predict_proba(X_test))
    assert np.array_equal(serial.apply(X_test), fanned.apply(X_test))


def test_n_jobs_zero_means_all_cores(data):
    forest = fit(0, data)
    assert forest.n_jobs >= 1
    _, _, X_test = data
    assert np.array_equal(fit(1, data).predict(X_test), forest.predict(X_test))


def test_negative_n_jobs_rejected():
    with pytest.raises(ValueError):
        RandomForest(n_jobs=-2)
