"""Decision-tree and random-forest tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForest
from repro.ml.tree import DecisionTree


def blobs(rng, n_per=60, n_classes=3, d=5, sep=4.0):
    """Well-separated gaussian blobs."""
    X, y = [], []
    for cls in range(n_classes):
        center = rng.normal(0, 1, d) * 0 + cls * sep
        X.append(rng.normal(center, 1.0, size=(n_per, d)))
        y.extend([cls] * n_per)
    return np.vstack(X), np.asarray(y)


def test_tree_fits_separable_data(rng):
    X, y = blobs(rng)
    tree = DecisionTree(rng=rng).fit(X, y)
    assert np.mean(tree.predict(X) == y) > 0.98


def test_tree_pure_node_stops():
    X = np.zeros((10, 2))
    y = np.zeros(10, dtype=int)
    tree = DecisionTree().fit(X, y)
    assert tree.node_count == 1
    assert (tree.predict(X) == 0).all()


def test_tree_max_depth_respected(rng):
    X, y = blobs(rng)
    tree = DecisionTree(max_depth=2, rng=rng).fit(X, y)
    assert tree.max_reached_depth <= 2


def test_tree_min_samples_leaf(rng):
    X, y = blobs(rng, n_per=20)
    tree = DecisionTree(min_samples_leaf=8, rng=rng).fit(X, y)
    leaf_mask = tree.feature < 0
    leaf_sizes = tree.value[leaf_mask].sum(axis=1)
    assert leaf_sizes.min() >= 8


def test_tree_xor_requires_depth(rng):
    """XOR is not linearly separable; a depth-2 tree nails it."""
    X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 25, dtype=float)
    X = X + rng.normal(0, 0.05, X.shape)
    y = (X[:, 0].round().astype(int) ^ X[:, 1].round().astype(int))
    tree = DecisionTree(rng=rng).fit(X, y)
    assert np.mean(tree.predict(X) == y) > 0.95


def test_tree_apply_returns_leaves(rng):
    X, y = blobs(rng)
    tree = DecisionTree(rng=rng).fit(X, y)
    leaves = tree.apply(X)
    assert (tree.feature[leaves] == -1).all()


def test_tree_predict_proba_rows_sum_to_one(rng):
    X, y = blobs(rng)
    tree = DecisionTree(rng=rng).fit(X, y)
    proba = tree.predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_tree_validation(rng):
    with pytest.raises(ValueError):
        DecisionTree(min_samples_split=1)
    with pytest.raises(ValueError):
        DecisionTree(min_samples_leaf=0)
    with pytest.raises(ValueError):
        DecisionTree().fit(np.zeros((3, 2)), np.zeros(4, dtype=int))
    with pytest.raises(ValueError):
        DecisionTree().fit(np.zeros(3), np.zeros(3, dtype=int))
    with pytest.raises(RuntimeError):
        DecisionTree().predict(np.zeros((2, 2)))


def test_tree_constant_features_yield_single_leaf():
    X = np.ones((20, 3))
    y = np.array([0, 1] * 10)
    tree = DecisionTree().fit(X, y)
    assert tree.node_count == 1  # no valid split exists


# -- forest ------------------------------------------------------------------------


def test_forest_fits_and_beats_chance(rng):
    X, y = blobs(rng, sep=2.0)
    forest = RandomForest(n_estimators=30, random_state=0).fit(X, y)
    assert forest.score(X, y) > 0.9


def test_forest_generalises_to_test_split(rng):
    X, y = blobs(rng, n_per=100, sep=3.0)
    order = rng.permutation(len(y))
    X, y = X[order], y[order]
    forest = RandomForest(n_estimators=40, random_state=1).fit(X[:200], y[:200])
    assert forest.score(X[200:], y[200:]) > 0.9


def test_forest_deterministic_given_seed(rng):
    X, y = blobs(rng)
    a = RandomForest(n_estimators=10, random_state=5).fit(X, y).predict(X)
    b = RandomForest(n_estimators=10, random_state=5).fit(X, y).predict(X)
    assert np.array_equal(a, b)


def test_forest_oob_score(rng):
    X, y = blobs(rng, sep=3.0)
    forest = RandomForest(n_estimators=30, oob_score=True, random_state=2)
    forest.fit(X, y)
    assert forest.oob_score_ is not None
    assert forest.oob_score_ > 0.8


def test_forest_apply_shape(rng):
    X, y = blobs(rng)
    forest = RandomForest(n_estimators=7, random_state=3).fit(X, y)
    leaves = forest.apply(X)
    assert leaves.shape == (len(X), 7)


def test_forest_proba_shape_and_normalisation(rng):
    X, y = blobs(rng)
    forest = RandomForest(n_estimators=5, random_state=4).fit(X, y)
    proba = forest.predict_proba(X)
    assert proba.shape == (len(X), 3)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_forest_validation():
    with pytest.raises(ValueError):
        RandomForest(n_estimators=0)
    forest = RandomForest(n_estimators=2)
    with pytest.raises(RuntimeError):
        forest.predict(np.zeros((1, 2)))


@given(st.integers(2, 5), st.integers(20, 60))
@settings(max_examples=15, deadline=None)
def test_forest_training_accuracy_property(n_classes, n_per):
    """On well-separated blobs the forest is near-perfect in-sample."""
    rng = np.random.default_rng(n_classes * 100 + n_per)
    X, y = blobs(rng, n_per=n_per, n_classes=n_classes, sep=6.0)
    forest = RandomForest(n_estimators=15, random_state=0).fit(X, y)
    assert forest.score(X, y) > 0.95
