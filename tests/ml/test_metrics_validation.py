"""confusion_matrix label validation.

``np.add.at`` fancy indexing wraps negative labels silently — a ``-1``
increments the *last* row — so out-of-range labels must be rejected,
not absorbed into a corrupted matrix.
"""

import numpy as np
import pytest

from repro.ml.metrics import confusion_matrix, precision_recall_f1


def test_valid_labels_unchanged():
    matrix = confusion_matrix([0, 1, 2, 1], [0, 2, 2, 1], 3)
    assert matrix.tolist() == [[1, 0, 0], [0, 1, 1], [0, 0, 1]]
    assert matrix.sum() == 4


def test_negative_true_label_rejected():
    with pytest.raises(ValueError, match=r"y_true.*\[0, 3\).*-1"):
        confusion_matrix([0, -1, 2], [0, 1, 2], 3)


def test_negative_predicted_label_rejected():
    with pytest.raises(ValueError, match="y_pred"):
        confusion_matrix([0, 1, 2], [0, -1, 2], 3)


def test_label_at_or_above_n_classes_rejected():
    with pytest.raises(ValueError, match="y_true"):
        confusion_matrix([0, 3], [0, 1], 3)
    with pytest.raises(ValueError, match="y_pred"):
        confusion_matrix([0, 1], [0, 7], 3)


def test_invalid_n_classes_rejected():
    with pytest.raises(ValueError, match="n_classes"):
        confusion_matrix([0], [0], 0)


def test_empty_arrays_allowed():
    assert confusion_matrix([], [], 2).tolist() == [[0, 0], [0, 0]]


def test_precision_recall_inherits_validation():
    # The derived metrics go through confusion_matrix and therefore
    # reject the same corruption instead of silently mis-scoring.
    with pytest.raises(ValueError):
        precision_recall_f1(np.array([0, -1]), np.array([0, 1]), 2)
