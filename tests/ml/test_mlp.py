"""MLP backprop correctness (finite differences), determinism, and
training behaviour."""

import numpy as np
import pytest

from repro.ml.mlp import MlpClassifier, _log_softmax, _softmax


def _prepared(clf, X, y):
    """Set up normalisation + parameters without training (so the
    loss surface is fixed for gradient checking)."""
    X = np.asarray(X, dtype=np.float64)
    clf._mean = X.mean(axis=0)
    std = X.std(axis=0)
    clf._std = np.where(std > 0, std, 1.0)
    clf.n_classes_ = int(y.max()) + 1
    clf._init_params(X.shape[1], np.random.default_rng(clf.seed + 1))
    return clf._normalise(X)


def _finite_difference_check(clf, Xn, y, eps=1e-6, tol=1e-7):
    _, grads_W, grads_b = clf._loss_and_grads(Xn, y)
    worst = 0.0
    for params, grads in ((clf.weights_, grads_W), (clf.biases_, grads_b)):
        for layer, grad in zip(params, grads):
            flat = layer.reshape(-1)
            # Probe a spread of coordinates in every layer.
            for index in range(0, flat.size, max(1, flat.size // 7)):
                original = flat[index]
                flat[index] = original + eps
                up = clf._loss(Xn, y)
                flat[index] = original - eps
                down = clf._loss(Xn, y)
                flat[index] = original
                numeric = (up - down) / (2 * eps)
                worst = max(worst, abs(numeric - grad.reshape(-1)[index]))
    assert worst < tol, f"max |analytic - numeric| = {worst}"


def test_gradients_match_finite_differences_single_hidden(rng):
    X = rng.normal(size=(16, 6))
    y = rng.integers(0, 3, size=16)
    clf = MlpClassifier(hidden=(9,), seed=3, l2=1e-3)
    Xn = _prepared(clf, X, y)
    _finite_difference_check(clf, Xn, y)


def test_gradients_match_finite_differences_two_hidden(rng):
    X = rng.normal(size=(10, 4))
    y = rng.integers(0, 4, size=10)
    clf = MlpClassifier(hidden=(8, 5), seed=11, l2=0.0)
    Xn = _prepared(clf, X, y)
    _finite_difference_check(clf, Xn, y)


def test_loss_and_grads_loss_equals_loss(rng):
    X = rng.normal(size=(12, 5))
    y = rng.integers(0, 3, size=12)
    clf = MlpClassifier(hidden=(7,), seed=2, l2=1e-2)
    Xn = _prepared(clf, X, y)
    loss, _, _ = clf._loss_and_grads(Xn, y)
    assert loss == pytest.approx(clf._loss(Xn, y), abs=1e-12)


def test_softmax_helpers_are_stable():
    logits = np.array([[1e4, 1e4 - 1.0], [-1e4, 0.0]])
    proba = _softmax(logits)
    assert np.all(np.isfinite(proba))
    assert proba.sum(axis=1) == pytest.approx([1.0, 1.0])
    assert np.all(np.isfinite(_log_softmax(logits)))


def test_fit_separable_blobs_overfits(rng):
    X = np.vstack([rng.normal(loc=c, size=(30, 8)) for c in (0.0, 4.0, -4.0)])
    y = np.repeat([0, 1, 2], 30)
    clf = MlpClassifier(hidden=(16,), epochs=25, seed=5).fit(X, y)
    assert clf.score(X, y) == 1.0
    assert len(clf.history_) == 25
    assert clf.history_[-1] < clf.history_[0]


def test_equal_seeds_train_bit_identical_models(rng):
    X = rng.normal(size=(40, 10))
    y = rng.integers(0, 4, size=40)
    first = MlpClassifier(hidden=(12,), epochs=8, seed=9).fit(X, y)
    second = MlpClassifier(hidden=(12,), epochs=8, seed=9).fit(X, y)
    for a, b in zip(first.weights_, second.weights_):
        assert np.array_equal(a, b)
    for a, b in zip(first.biases_, second.biases_):
        assert np.array_equal(a, b)
    assert first.history_ == second.history_


def test_different_seeds_differ(rng):
    X = rng.normal(size=(30, 6))
    y = rng.integers(0, 3, size=30)
    first = MlpClassifier(epochs=2, seed=0).fit(X, y)
    second = MlpClassifier(epochs=2, seed=1).fit(X, y)
    assert not np.array_equal(first.weights_[0], second.weights_[0])


def test_predict_proba_rows_sum_to_one(rng):
    X = rng.normal(size=(20, 5))
    y = rng.integers(0, 2, size=20)
    clf = MlpClassifier(hidden=(6,), epochs=3, seed=1).fit(X, y)
    proba = clf.predict_proba(X)
    assert proba.shape == (20, 2)
    assert proba.sum(axis=1) == pytest.approx(np.ones(20))


def test_constant_feature_does_not_nan(rng):
    X = rng.normal(size=(18, 4))
    X[:, 2] = 7.0  # zero-variance column
    y = rng.integers(0, 2, size=18)
    clf = MlpClassifier(hidden=(5,), epochs=3, seed=0).fit(X, y)
    assert np.all(np.isfinite(clf.predict_proba(X)))


def test_constructor_validation():
    for bad in (
        dict(hidden=(0,)),
        dict(epochs=0),
        dict(batch_size=0),
        dict(learning_rate=0),
        dict(momentum=1.0),
        dict(momentum=-0.1),
        dict(l2=-1e-3),
    ):
        with pytest.raises(ValueError):
            MlpClassifier(**bad)


def test_unfitted_and_empty_errors():
    with pytest.raises(RuntimeError):
        MlpClassifier().predict(np.zeros((1, 3)))
    with pytest.raises(ValueError):
        MlpClassifier().fit(np.zeros((0, 3)), np.zeros(0, dtype=int))
    with pytest.raises(ValueError):
        MlpClassifier().fit(np.zeros((3, 2)), np.zeros(2, dtype=int))
