"""k-NN, metrics and cross-validation tests."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    mean_std,
    precision_recall_f1,
)
from repro.ml.validate import cross_validate_accuracy, stratified_kfold_indices


def test_knn_euclidean_nearest_wins():
    X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
    y = np.array([0, 0, 1, 1, 1])
    knn = KNeighborsClassifier(n_neighbors=3).fit(X, y)
    assert knn.predict(np.array([[0.05]]))[0] == 0
    assert knn.predict(np.array([[9.9]]))[0] == 1


def test_knn_hamming_over_codes():
    X = np.array([[1, 2, 3], [1, 2, 4], [9, 9, 9], [9, 9, 8]])
    y = np.array([0, 0, 1, 1])
    knn = KNeighborsClassifier(n_neighbors=2, metric="hamming").fit(X, y)
    assert knn.predict(np.array([[1, 2, 5]]))[0] == 0
    assert knn.predict(np.array([[9, 9, 7]]))[0] == 1


def test_knn_kneighbors_sorted_by_distance():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([0, 1, 2])
    knn = KNeighborsClassifier(n_neighbors=2).fit(X, y)
    neighbors = knn.kneighbors(np.array([[0.9]]))
    assert list(neighbors[0]) == [1, 0]


def test_knn_unanimous_vote():
    X = np.array([[0.0], [0.1], [5.0], [10.0]])
    y = np.array([0, 0, 1, 2])
    knn = KNeighborsClassifier(n_neighbors=2).fit(X, y)
    out = knn.predict_unanimous(np.array([[0.05], [7.0]]), fallback=-1)
    assert out[0] == 0
    assert out[1] == -1  # neighbours disagree (1 and 2)


def test_knn_validation():
    with pytest.raises(ValueError):
        KNeighborsClassifier(n_neighbors=0)
    with pytest.raises(ValueError):
        KNeighborsClassifier(metric="cosine")
    with pytest.raises(ValueError):
        KNeighborsClassifier(n_neighbors=5).fit(np.zeros((2, 1)), np.zeros(2))
    with pytest.raises(RuntimeError):
        KNeighborsClassifier().kneighbors(np.zeros((1, 1)))


def test_accuracy_score():
    assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        accuracy_score([1], [1, 2])
    with pytest.raises(ValueError):
        accuracy_score([], [])


def test_confusion_matrix():
    matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], n_classes=2)
    assert matrix.tolist() == [[1, 1], [0, 2]]


def test_precision_recall_f1_perfect_and_degenerate():
    p, r, f = precision_recall_f1([0, 1], [0, 1], 2)
    assert np.allclose(p, 1) and np.allclose(r, 1) and np.allclose(f, 1)
    # A class never predicted: precision 0 without NaN.
    p, r, f = precision_recall_f1([0, 1], [0, 0], 2)
    assert np.isfinite(p).all() and np.isfinite(f).all()


def test_mean_std_matches_paper_format():
    mean, std = mean_std([0.9, 1.0, 0.8])
    assert mean == pytest.approx(0.9)
    assert std == pytest.approx(0.1)
    mean, std = mean_std([0.5])
    assert std == 0.0
    with pytest.raises(ValueError):
        mean_std([])


def test_stratified_kfold_balances_classes(rng):
    y = np.array([0] * 10 + [1] * 20)
    for train_idx, test_idx in stratified_kfold_indices(y, 5, rng):
        assert (y[test_idx] == 0).sum() == 2
        assert (y[test_idx] == 1).sum() == 4
        assert len(set(train_idx) & set(test_idx)) == 0


def test_stratified_kfold_covers_everything(rng):
    y = np.array([0, 1] * 15)
    seen = []
    for _train, test in stratified_kfold_indices(y, 3, rng):
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(30))


def test_cross_validate_accuracy(rng):
    X = np.concatenate([rng.normal(0, 1, (30, 3)), rng.normal(8, 1, (30, 3))])
    y = np.array([0] * 30 + [1] * 30)
    scores = cross_validate_accuracy(
        lambda: KNeighborsClassifier(n_neighbors=3), X, y, n_folds=3, rng=rng
    )
    assert len(scores) == 3
    assert min(scores) > 0.9
