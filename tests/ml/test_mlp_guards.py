"""NaN/inf guards in MLP training.

Non-finite inputs are rejected before training; divergence (a loss or
weight going NaN/inf mid-run) aborts at the offending epoch with the
typed :class:`repro.errors.NonFiniteError` naming the hyper-parameters
— instead of 60 epochs of silent NaN propagation ending in a model
that predicts garbage.  Both paths tick the ``ml.nonfinite`` obs
counter so fleet runs can alarm on it.
"""

import numpy as np
import pytest

from repro.errors import NonFiniteError
from repro.ml.mlp import MlpClassifier
from repro.obs import runtime


@pytest.fixture(autouse=True)
def _clean_session():
    runtime.disable()
    yield
    runtime.disable()


def _data(rng):
    X = rng.normal(size=(24, 5))
    y = rng.integers(0, 3, size=24)
    return X, y


def test_nan_input_is_rejected_before_training():
    rng = np.random.default_rng(0)
    X, y = _data(rng)
    X[3, 2] = np.nan
    with pytest.raises(NonFiniteError, match="NaN/inf feature"):
        MlpClassifier(hidden=(6,), epochs=2, seed=0).fit(X, y)


def test_inf_input_is_rejected_before_training():
    rng = np.random.default_rng(1)
    X, y = _data(rng)
    X[0, 0] = np.inf
    with pytest.raises(NonFiniteError):
        MlpClassifier(hidden=(6,), epochs=2, seed=0).fit(X, y)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_divergence_aborts_at_the_offending_epoch():
    """An absurd learning rate makes the loss explode; the guard must
    name the epoch and hyper-parameters instead of finishing."""
    rng = np.random.default_rng(2)
    X, y = _data(rng)
    X = X * 1e6  # large activations: divergence within a few steps
    clf = MlpClassifier(hidden=(8,), epochs=50, learning_rate=1e9, seed=0)
    with pytest.raises(NonFiniteError, match="diverged at epoch"):
        clf.fit(X, y)


def test_nonfinite_counter_ticks_under_obs():
    session = runtime.enable()
    try:
        rng = np.random.default_rng(3)
        X, y = _data(rng)
        X[1, 1] = np.nan
        with pytest.raises(NonFiniteError):
            MlpClassifier(hidden=(6,), epochs=2, seed=0).fit(X, y)
        assert session.registry.counter("ml.nonfinite").value == 1
    finally:
        runtime.disable()


def test_clean_training_does_not_tick_the_counter():
    session = runtime.enable()
    try:
        rng = np.random.default_rng(4)
        X, y = _data(rng)
        MlpClassifier(hidden=(6,), epochs=3, seed=0).fit(X, y)
        assert "ml.nonfinite" not in session.registry
    finally:
        runtime.disable()
