"""Unit-level tests of the Figure-3 machinery (cheap configs)."""

import pytest

from repro.experiments.figure3 import (
    Figure3Config,
    Figure3Point,
    format_figure3,
    run_point,
)
from repro.stack.nic import CpuModel
from repro.units import usec


def test_config_defaults_match_paper_axis():
    config = Figure3Config()
    assert config.alphas == (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
    assert config.link_gbps == 100.0


def test_cpu_model_analytic_endpoints_bracket_paper_shape():
    """The calibrated cost model puts the analytic CPU-bound endpoints
    in the right ballpark: tens of Gb/s at default sizing, ~half that
    at the most aggressive reduction."""
    model = CpuModel()
    default = model.max_throughput(44 * 1448, 44) * 8 / 1e9
    assert 35 < default < 60
    # alpha=100 steady shape: ~12 packets of ~900 B payload.
    reduced = model.max_throughput(12 * 900, 12) * 8 / 1e9
    assert 15 < reduced < 30
    assert reduced < default


def test_run_point_measures_window_only():
    config = Figure3Config(alphas=(0,), warmup=0.004, measure=0.006)
    point = run_point(0, config)
    assert isinstance(point, Figure3Point)
    assert point.goodput_gbps > 0
    assert point.cpu_utilization <= 1.0
    # Steady-state shape statistics, not cold-start averages.
    assert point.mean_tso_packets >= 1


def test_alpha_changes_wire_shape_quickly():
    config = Figure3Config(alphas=(0,), warmup=0.004, measure=0.006)
    base = run_point(0, config)
    swept = run_point(100, config)
    assert swept.mean_packet_size < base.mean_packet_size
    assert swept.mean_tso_packets < base.mean_tso_packets


def test_format_contains_all_points():
    points = [
        Figure3Point(0, 45.0, 1500.0, 44.0, 1.0, 0),
        Figure3Point(100, 24.0, 955.0, 12.0, 1.0, 0),
    ]
    rendered = format_figure3(points)
    assert "45.0" in rendered and "24.0" in rendered
    assert rendered.count("\n") >= 3
