"""Extended golden-trace digests: every trace-producing surface.

``tests/experiments/test_golden_trace.py`` pins the Table-2 collection
path (clean TCP page loads).  The vectorized hot path (DESIGN §13)
touches the engine, the TCP stack, the qdisc and the NIC, so this
module extends the digest net to the remaining trace-producing
surfaces:

* **adverse** — page loads under a Gilbert–Elliott bursty-loss fault
  profile (exercises the legacy per-packet link path, retransmission
  and RTO machinery);
* **adverse + workers=2** — the same collection through the parallel
  executor (bit-identity for any worker count must hold on the faulty
  path too, not just the clean Table-2 path);
* **quic** — QUIC page loads (the second transport implementation
  shares the engine/link/pacing substrate);
* **generated** — campaign-generated synthetic sites from
  :mod:`repro.web.generator` (the million-trace workload's site
  source);
* **defended_split / defended_delay** — Stob-defended loads (the
  segment-controller hooks sit inside the refactored segment build
  path).

All digests were generated from the pre-vectorization stack, so they
are an exact byte-identity oracle for the refactor.  Regenerate (only
for *intended* trace changes) with::

    PYTHONPATH=src:. python -m tests.experiments.test_golden_trace_extended

which rewrites ``tests/data/golden_extended.json``.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.experiments.adverse_network import default_conditions
from repro.quic.pageload import collect_quic_dataset
from repro.stob.actions import DelayAction, SplitAction
from repro.stob.controller import StobController
from repro.web.generator import generate_profile, site_name
from repro.web.pageload import (
    PageLoadConfig,
    collect_dataset,
    load_page,
    visit_seed_rng,
)
from repro.web.sites import SITE_CATALOG

from tests.experiments.test_golden_trace import dataset_digest

GOLDEN_EXT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_extended.json"
)

#: The fixed grid every digest below derives from.  Changing any of
#: these invalidates the committed digests — regenerate deliberately.
SITES = ["bing.com", "wikipedia.org"]
N_SAMPLES = 2
SEED = 7
GEN_SEED = 11
GEN_INDICES = (0, 1, 2)


def load_golden_ext():
    with open(GOLDEN_EXT_PATH) as handle:
        return json.load(handle)


def trace_digest(labelled_traces):
    """SHA-256 over (label, times, directions, sizes) tuples in order."""
    digest = hashlib.sha256()
    for label, trace in labelled_traces:
        digest.update(label.encode())
        digest.update(trace.times.tobytes())
        digest.update(trace.directions.tobytes())
        digest.update(trace.sizes.tobytes())
    return digest.hexdigest()


def collect_adverse(workers=1):
    config = PageLoadConfig(fault_spec=default_conditions()["bursty"])
    return collect_dataset(
        n_samples=N_SAMPLES, sites=SITES, config=config, seed=SEED,
        workers=workers,
    )


def collect_quic():
    return collect_quic_dataset(n_samples=N_SAMPLES, sites=SITES, seed=SEED)


def collect_generated():
    traces = []
    for index in GEN_INDICES:
        profile = generate_profile(GEN_SEED, index)
        label = site_name(index)
        rng = visit_seed_rng(GEN_SEED, label, 0)
        traces.append((label, load_page(profile, PageLoadConfig(), rng)))
    return traces


def collect_defended(kind):
    traces = []
    for label in SITES:
        rng = visit_seed_rng(SEED, label, 0)
        if kind == "split":
            controller = StobController(action=SplitAction(1200, 2))
        elif kind == "delay":
            controller = StobController(
                action=DelayAction(0.02, 0.08, rng=np.random.default_rng(SEED))
            )
        else:
            raise ValueError(kind)
        traces.append(
            (
                label,
                load_page(
                    SITE_CATALOG[label],
                    PageLoadConfig(),
                    rng,
                    server_controller=controller,
                ),
            )
        )
    return traces


def test_golden_ext_file_shape():
    golden = load_golden_ext()
    for key in ("adverse", "quic", "generated", "defended_split",
                "defended_delay"):
        assert key in golden, f"missing digest entry {key!r}"
        assert len(golden[key]) == 64
    assert set(golden["sites"]) <= set(SITE_CATALOG)


@pytest.mark.slow
def test_adverse_matches_golden_digest():
    golden = load_golden_ext()
    assert dataset_digest(collect_adverse(workers=1)) == golden["adverse"], (
        "adverse-network (bursty-loss) collection changed; the faulty "
        "per-packet link path or TCP loss recovery is no longer "
        "byte-identical (regeneration procedure in the module docstring)"
    )


@pytest.mark.slow
def test_adverse_parallel_matches_golden_digest():
    golden = load_golden_ext()
    assert dataset_digest(collect_adverse(workers=2)) == golden["adverse"], (
        "workers=2 adverse collection diverged from the serial digest — "
        "parallel determinism is broken on the fault-injected path"
    )


@pytest.mark.slow
def test_quic_matches_golden_digest():
    golden = load_golden_ext()
    assert dataset_digest(collect_quic()) == golden["quic"], (
        "QUIC collection changed; the QUIC endpoint shares the "
        "engine/link/pacing substrate with TCP — check the vectorized "
        "hot path (regeneration procedure in the module docstring)"
    )


@pytest.mark.slow
def test_generated_sites_match_golden_digest():
    golden = load_golden_ext()
    assert trace_digest(collect_generated()) == golden["generated"], (
        "campaign-generated synthetic site traces changed (generator "
        "derivation or simulator bytes)"
    )


@pytest.mark.slow
def test_defended_split_matches_golden_digest():
    golden = load_golden_ext()
    assert trace_digest(collect_defended("split")) == golden["defended_split"], (
        "Stob split-defended traces changed; the segment-controller "
        "hooks inside the segment build path are no longer byte-stable"
    )


@pytest.mark.slow
def test_defended_delay_matches_golden_digest():
    golden = load_golden_ext()
    assert trace_digest(collect_defended("delay")) == golden["defended_delay"], (
        "Stob delay-defended traces changed; departure-gap handling in "
        "pacing/qdisc is no longer byte-stable"
    )


def regenerate():
    """Recompute every digest and rewrite the golden file."""
    golden = {
        "sites": SITES,
        "n_samples": N_SAMPLES,
        "seed": SEED,
        "generator_seed": GEN_SEED,
        "generator_indices": list(GEN_INDICES),
        "adverse": dataset_digest(collect_adverse(workers=1)),
        "quic": dataset_digest(collect_quic()),
        "generated": trace_digest(collect_generated()),
        "defended_split": trace_digest(collect_defended("split")),
        "defended_delay": trace_digest(collect_defended("delay")),
    }
    assert dataset_digest(collect_adverse(workers=2)) == golden["adverse"]
    with open(GOLDEN_EXT_PATH, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return golden


if __name__ == "__main__":
    for key, value in sorted(regenerate().items()):
        print(f"{key}: {value}")
