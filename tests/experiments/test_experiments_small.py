"""Scaled-down experiment pipeline tests.

These run the same code paths as the benchmarks with tiny parameters,
so pipeline regressions surface in the unit suite rather than only in
multi-minute bench runs.
"""

import numpy as np
import pytest

from repro.capture.sanitize import sanitize_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.censorship import (
    detection_delay,
    format_censorship,
    run_censorship_curve,
)
from repro.experiments.figure3 import (
    Figure3Config,
    format_figure3,
    run_figure3,
    run_point,
)
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import (
    Table2Cell,
    build_datasets,
    evaluate_dataset,
    format_table2,
    make_defenses,
    run_table2,
)
from repro.web.tracegen import StatisticalTraceGenerator


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        n_samples=8, n_folds=2, n_estimators=15, balance_to=8, seed=1
    )


@pytest.fixture(scope="module")
def tiny_dataset():
    generator = StatisticalTraceGenerator(seed=1)
    return generator.generate_dataset(n_samples=8, seed=1)


def test_make_defenses_has_paper_conditions(tiny_config):
    defenses = make_defenses(0)
    assert set(defenses) == {"original", "split", "delayed", "combined"}


def test_build_datasets_sixteen(tiny_dataset, tiny_config):
    clean, _ = sanitize_dataset(tiny_dataset, balance_to=8)
    datasets = build_datasets(clean, seed=0)
    assert len(datasets) == 16
    for (name, n), ds in datasets.items():
        assert ds.num_traces == clean.num_traces
        if isinstance(n, int):
            assert max(len(t) for _l, t in ds) <= n * 2 + 2  # split can grow


def test_evaluate_dataset_returns_fold_scores(tiny_dataset, tiny_config):
    scores = evaluate_dataset(tiny_dataset, tiny_config)
    assert len(scores) == tiny_config.n_folds
    assert all(0 <= s <= 1 for s in scores)
    # 9-class chance is ~0.11; features must do much better.
    assert np.mean(scores) > 0.4


def test_run_table2_on_prebuilt_dataset(tiny_dataset, tiny_config):
    table = run_table2(tiny_config, dataset=tiny_dataset)
    assert len(table) == 16
    rendered = format_table2(table)
    assert "Original" in rendered and "Split" in rendered
    for cell in table.values():
        assert isinstance(cell, Table2Cell)
        assert 0 <= cell.mean <= 1


def test_run_table1_measures_implemented_defenses(tiny_config, tiny_dataset):
    rows = run_table1(tiny_config, dataset=tiny_dataset, max_traces=10)
    measured = [r for r in rows if r.bandwidth is not None]
    assert len(measured) >= 8
    by_system = {r.info.system: r for r in rows}
    # Padding defenses cost bandwidth; pure delaying does not.
    assert by_system["FRONT"].bandwidth > 0.2
    assert by_system["Stob-Delay"].bandwidth == pytest.approx(0.0)
    assert by_system["Stob-Delay"].latency > 0
    # Splitting costs only duplicated headers: small but nonzero.
    assert 0 < by_system["Stob-Split"].bandwidth < 0.1
    assert "FRONT" in format_table1(rows)


def test_run_figure3_single_cheap_point():
    config = Figure3Config(alphas=(0,), warmup=0.004, measure=0.008)
    point = run_point(0, config)
    assert point.goodput_gbps > 1.0
    assert point.mean_tso_packets > 1


def test_run_figure3_formats(monkeypatch):
    config = Figure3Config(alphas=(0, 100), warmup=0.004, measure=0.008)
    points = run_figure3(config)
    assert len(points) == 2
    rendered = format_figure3(points)
    assert "alpha" in rendered and "goodput" in rendered


def test_censorship_curve_and_delay_metric(tiny_dataset, tiny_config):
    points = run_censorship_curve(
        tiny_config, dataset=tiny_dataset, prefixes=(10, 40)
    )
    assert len(points) == 4 * 2  # four defenses x two prefixes
    delays = detection_delay(points, threshold=0.0)
    assert set(delays) == {"original", "split", "delayed", "combined"}
    assert all(n == 10 for n in delays.values())  # threshold 0 -> first
    assert "N" in format_censorship(points)
