"""Resilient-runner tests: determinism, resume, retries, failure log."""

import numpy as np
import pytest

from repro.capture.serialize import save_dataset
from repro.capture.trace import Trace
from repro.errors import TrialError
from repro.experiments.runner import (
    CollectionReport,
    ResilientRunner,
    RetryPolicy,
    RunnerConfig,
    TrialDeadlineExceeded,
    collect_resilient,
    pageload_trial_fn,
    trial_seed_rng,
)
from repro.web.pageload import PageLoadConfig, PageLoadStalled, load_page_result
from repro.web.sites import SITE_CATALOG

SITES = ["bing.com", "github.com"]


def synthetic_trial_fn(label, index, rng, watchdog):
    """A fast deterministic trial: a tiny rng-derived trace."""
    n = int(rng.integers(5, 15))
    times = np.cumsum(rng.exponential(0.01, n))
    dirs = np.where(rng.random(n) < 0.7, -1, 1).astype(np.int8)
    sizes = rng.integers(60, 1500, n)
    return Trace(times - times[0], dirs, sizes)


def datasets_equal(a, b) -> bool:
    if a.labels != b.labels:
        return False
    for label in a.labels:
        left, right = a.traces[label], b.traces[label]
        if len(left) != len(right):
            return False
        for t1, t2 in zip(left, right):
            if not (
                np.array_equal(t1.times, t2.times)
                and np.array_equal(t1.directions, t2.directions)
                and np.array_equal(t1.sizes, t2.sizes)
            ):
                return False
    return True


def no_sleep_runner(config=None):
    return ResilientRunner(config, sleep=lambda s: None)


# -- retry / backoff / failure log -------------------------------------------


def test_retry_policy_backoff_shape():
    policy = RetryPolicy(max_attempts=5, backoff_base=0.5, backoff_factor=2.0,
                         backoff_max=3.0)
    assert policy.delay(1) == 0.5
    assert policy.delay(2) == 1.0
    assert policy.delay(3) == 2.0
    assert policy.delay(4) == 3.0  # capped


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_flaky_trial_is_retried_with_fresh_seed_and_backoff():
    attempts = []
    slept = []

    def flaky(label, index, rng, watchdog):
        attempts.append(int(rng.integers(0, 2**31)))  # proves reseeding
        if len(attempts) < 3:
            raise TrialError("transient")
        return synthetic_trial_fn(label, index, rng, watchdog)

    runner = ResilientRunner(
        RunnerConfig(retry=RetryPolicy(max_attempts=3, backoff_base=0.1)),
        sleep=slept.append,
    )
    dataset, report = runner.collect(["bing.com"], 1, flaky, master_seed=0)
    assert dataset.num_traces == 1
    assert report.retries == 2
    assert len(set(attempts)) == 3, "each attempt must draw a fresh seed"
    assert slept == [pytest.approx(0.1), pytest.approx(0.2)]
    assert report.failures == []


def test_exhausted_budget_lands_in_structured_failure_log():
    def always_stalling(label, index, rng, watchdog):
        if label == "bing.com" and index == 1:
            result = load_page_result(
                SITE_CATALOG[label], PageLoadConfig(max_duration=0.05), rng
            )
            raise PageLoadStalled(label, result)
        return synthetic_trial_fn(label, index, rng, watchdog)

    runner = no_sleep_runner(RunnerConfig(retry=RetryPolicy(max_attempts=2)))
    dataset, report = runner.collect(SITES, 2, always_stalling, master_seed=1)
    # The run completes gracefully with reduced samples...
    assert dataset.num_traces == 3
    assert len(dataset.traces["bing.com"]) == 1
    # ...and reports exactly which trial was dropped.
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert (failure.label, failure.index) == ("bing.com", 1)
    assert failure.attempts == 2
    assert failure.error == "PageLoadStalled"
    assert report.stalls == 2


def test_wall_clock_deadline_aborts_via_watchdog():
    ticks = iter(range(100))

    def deadline_trial(label, index, rng, watchdog):
        for _ in range(10):
            watchdog()
        return synthetic_trial_fn(label, index, rng, watchdog)

    runner = ResilientRunner(
        RunnerConfig(
            retry=RetryPolicy(max_attempts=1),
            trial_wall_deadline=3.0,
        ),
        sleep=lambda s: None,
        clock=lambda: float(next(ticks)),
    )
    dataset, report = runner.collect(["bing.com"], 1, deadline_trial, master_seed=0)
    assert dataset.num_traces == 0
    assert report.failures[0].error == "TrialDeadlineExceeded"


# -- determinism and resume ---------------------------------------------------


def test_trial_seeds_depend_only_on_position():
    a = trial_seed_rng(7, 1, 3, 0).integers(0, 2**31)
    b = trial_seed_rng(7, 1, 3, 0).integers(0, 2**31)
    c = trial_seed_rng(7, 1, 3, 1).integers(0, 2**31)
    assert a == b != c


def test_same_seed_same_faults_byte_identical_datasets(tmp_path):
    """Two independent real collections over a bursty path must agree
    byte-for-byte once serialised (hence identical k-FP accuracy: the
    evaluation is a pure seeded function of the dataset)."""
    from repro.simnet.faults import bursty_loss_spec

    config = PageLoadConfig(fault_spec=bursty_loss_spec(), max_duration=30.0)

    def run(path):
        dataset, _ = collect_resilient(
            SITES, 2, pageload_config=config, seed=42,
            runner_config=RunnerConfig(checkpoint_every=0),
        )
        save_dataset(dataset, str(path))
        return dataset

    first = run(tmp_path / "a.npz")
    second = run(tmp_path / "b.npz")
    assert datasets_equal(first, second)
    assert (tmp_path / "a.npz").read_bytes() == (tmp_path / "b.npz").read_bytes()


def test_interrupted_run_resumes_to_identical_dataset(tmp_path):
    checkpoint = str(tmp_path / "run.ckpt.npz")
    uninterrupted, _ = no_sleep_runner().collect(
        SITES, 3, synthetic_trial_fn, master_seed=9
    )

    interrupted_after = 2
    calls = {"n": 0}

    def interrupting(label, index, rng, watchdog):
        if calls["n"] == interrupted_after:
            raise KeyboardInterrupt()
        calls["n"] += 1
        return synthetic_trial_fn(label, index, rng, watchdog)

    runner = no_sleep_runner(
        RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint)
    )
    with pytest.raises(KeyboardInterrupt):
        runner.collect(SITES, 3, interrupting, master_seed=9)

    resumed_runner = no_sleep_runner(
        RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint)
    )
    resumed, report = resumed_runner.collect(
        SITES, 3, synthetic_trial_fn, master_seed=9, resume=True
    )
    assert report.resumed_trials == interrupted_after
    assert report.completed_trials == 6
    assert datasets_equal(resumed, uninterrupted)


def test_resume_finds_checkpoint_without_npz_extension(tmp_path):
    """np.savez appends ".npz" to extension-less paths; the load side
    must look for the file that was actually written, or resume
    silently re-collects everything."""
    checkpoint = str(tmp_path / "run.ckpt")  # no .npz
    config = RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint)
    no_sleep_runner(config).collect(SITES, 2, synthetic_trial_fn, master_seed=4)
    assert (tmp_path / "run.ckpt.npz").exists()
    _, report = no_sleep_runner(config).collect(
        SITES, 2, synthetic_trial_fn, master_seed=4, resume=True
    )
    assert report.resumed_trials == 4


def test_resume_requires_checkpoint_path():
    with pytest.raises(ValueError):
        no_sleep_runner().collect(
            SITES, 1, synthetic_trial_fn, master_seed=0, resume=True
        )


def test_resume_rejects_mismatched_configuration(tmp_path):
    checkpoint = str(tmp_path / "run.ckpt.npz")
    runner = no_sleep_runner(
        RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint)
    )
    runner.collect(SITES, 1, synthetic_trial_fn, master_seed=0)
    with pytest.raises(ValueError, match="different run configuration"):
        runner.collect(SITES, 2, synthetic_trial_fn, master_seed=0, resume=True)


def test_resume_with_missing_checkpoint_starts_fresh(tmp_path):
    checkpoint = str(tmp_path / "never_written.npz")
    runner = no_sleep_runner(
        RunnerConfig(checkpoint_every=0, checkpoint_path=checkpoint)
    )
    dataset, report = runner.collect(
        SITES, 1, synthetic_trial_fn, master_seed=3, resume=True
    )
    assert report.resumed_trials == 0
    assert dataset.num_traces == 2


def test_failures_survive_resume(tmp_path):
    checkpoint = str(tmp_path / "run.ckpt.npz")

    def failing(label, index, rng, watchdog):
        if label == "bing.com" and index == 0:
            raise TrialError("permanent")
        return synthetic_trial_fn(label, index, rng, watchdog)

    config = RunnerConfig(
        retry=RetryPolicy(max_attempts=2), checkpoint_every=1,
        checkpoint_path=checkpoint,
    )
    _, first_report = no_sleep_runner(config).collect(
        SITES, 2, failing, master_seed=5
    )
    assert len(first_report.failures) == 1
    resumed, report = no_sleep_runner(config).collect(
        SITES, 2, synthetic_trial_fn, master_seed=5, resume=True
    )
    # The failed trial is remembered, not silently re-run.
    assert len(report.failures) == 1
    assert resumed.num_traces == 3


def test_report_summary_mentions_key_counts():
    report = CollectionReport(completed_trials=5, retries=2, stalls=1)
    text = report.summary()
    assert "5 trials" in text and "2 retries" in text and "1 stalls" in text


def test_pageload_trial_fn_runs_a_real_load():
    trial = pageload_trial_fn(PageLoadConfig())
    trace = trial("bing.com", 0, np.random.default_rng(0), None)
    assert len(trace) > 0
