"""Tests for the extension experiments: work conservation, open world,
QUIC-vs-TCP (tiny scales)."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.open_world import (
    build_open_world,
    evaluate_open_world,
    format_open_world,
    run_open_world,
)
from repro.experiments.quic_vs_tcp import format_quic_vs_tcp, run_quic_vs_tcp
from repro.experiments.work_conservation import (
    format_work_conservation,
    run_work_conservation,
)
from repro.web.sites import random_profile


def test_random_profiles_are_distinct_and_valid():
    rng = np.random.default_rng(1)
    profiles = [random_profile(f"bg{i}", rng) for i in range(5)]
    sizes = set()
    for profile in profiles:
        page = profile.sample_page(np.random.default_rng(0))
        assert page.total_download_bytes > 10_000
        sizes.add(page.total_download_bytes)
    assert len(sizes) == 5  # parameter draws differ


def test_work_conservation_shape():
    results = run_work_conservation(duration=2.0)
    by_primitive = {r.primitive: r for r in results}
    assert set(by_primitive) == {"none", "delay", "split", "padding"}
    base = by_primitive["none"].victim_goodput_mbps
    assert base > 10
    assert by_primitive["delay"].victim_goodput_mbps > 0.85 * base
    assert by_primitive["padding"].victim_goodput_mbps < base
    assert by_primitive["padding"].cover_mbps > 5
    assert "padding" in format_work_conservation(results)


def test_open_world_build_and_eval_tiny():
    monitored, background = build_open_world(
        n_monitored_samples=8, n_background_sites=10, seed=2
    )
    assert monitored.num_traces == 72
    assert len(background.labels) == 10
    result = evaluate_open_world(
        monitored, background, n_estimators=20, seed=2
    )
    assert 0 <= result.precision <= 1
    assert 0 <= result.recall <= 1
    assert result.n_background_test > 0


def test_open_world_runner_formats():
    results = run_open_world(
        seed=4, n_monitored_samples=8, n_background_sites=10
    )
    assert len(results) == 2
    assert "precision" in format_open_world(results)


@pytest.mark.slow
def test_quic_vs_tcp_tiny():
    config = ExperimentConfig(
        n_samples=6, n_folds=2, n_estimators=15, balance_to=6, seed=8
    )
    result = run_quic_vs_tcp(config)
    rendered = format_quic_vs_tcp(result)
    assert "QUIC" in rendered
    # Both transports beat 9-class chance clearly even at tiny scale.
    assert result.accuracy_tcp[0] > 0.3
    assert result.accuracy_quic[0] > 0.3
    assert 0 <= result.cross_transport_accuracy <= 1


def test_attack_robustness_tiny():
    from repro.experiments.attack_robustness import (
        format_attack_robustness,
        run_attack_robustness,
    )
    from repro.web.tracegen import StatisticalTraceGenerator

    config = ExperimentConfig(
        n_samples=10, n_folds=2, n_estimators=15, balance_to=10, seed=6
    )
    dataset = StatisticalTraceGenerator(seed=6).generate_dataset(
        n_samples=10, seed=6
    )
    cells = run_attack_robustness(config, dataset=dataset)
    assert len(cells) == 16  # 4 attacks x 4 defenses
    rendered = format_attack_robustness(cells)
    assert "cumul" in rendered and "tam-mlp" in rendered
    grid = {(c.attack, c.defense): c.accuracy for c in cells}
    # Delaying leaves CUMUL's features untouched.
    assert abs(grid[("cumul", "delayed")] - grid[("cumul", "original")]) < 0.25


def test_parameter_sweep_tiny():
    from repro.experiments.parameter_sweep import (
        SweepConfig,
        format_parameter_sweep,
        run_parameter_sweep,
    )
    from repro.web.tracegen import StatisticalTraceGenerator

    config = SweepConfig(
        base=ExperimentConfig(
            n_samples=8, n_folds=2, n_estimators=12, balance_to=8, seed=9
        ),
        thresholds=(1200,),
        delay_ranges=((0.10, 0.30), (0.50, 1.50)),
    )
    dataset = StatisticalTraceGenerator(seed=9).generate_dataset(
        n_samples=8, seed=9
    )
    points = run_parameter_sweep(config, dataset=dataset)
    assert len(points) == 2
    rendered = format_parameter_sweep(points)
    assert "split" in rendered
    mild, harsh = points
    assert harsh.latency_overhead > mild.latency_overhead
    assert mild.bandwidth_overhead == harsh.bandwidth_overhead == 0.0
