"""Parallel trial executor: bit-identity, retries, checkpoint/resume.

The invariant under test everywhere: because trial seeds are
position-derived, the runner's output is a pure function of
(sites, n_samples, master_seed, trial_fn) — the worker count only
changes wall-clock time.
"""

import numpy as np
import pytest

from repro.capture.serialize import save_dataset
from repro.errors import TrialError
from repro.experiments.runner import (
    ResilientRunner,
    RetryPolicy,
    RunnerConfig,
    collect_resilient,
    execute_trial,
    trial_seed_rng,
)
from repro.web.pageload import PageLoadConfig
from tests.experiments.test_runner import datasets_equal, synthetic_trial_fn

SITES = ["bing.com", "github.com"]


# Module-level (hence picklable) trial functions for pool workers.


def permanently_failing_trial(label, index, rng, watchdog):
    if label == "github.com" and index == 1:
        raise TrialError("permanent")
    return synthetic_trial_fn(label, index, rng, watchdog)


def coin_flip_trial(label, index, rng, watchdog):
    """Fails or succeeds deterministically per (coordinate, attempt):
    the retry/stall accounting must match serial bit for bit."""
    if int(rng.integers(0, 3)) == 0:
        raise TrialError("transient")
    return synthetic_trial_fn(label, index, rng, watchdog)


def no_sleep_runner(config):
    return ResilientRunner(config, sleep=lambda s: None)


def test_parallel_collection_bit_identical(tmp_path):
    serial, serial_report = no_sleep_runner(RunnerConfig(workers=1)).collect(
        SITES, 6, synthetic_trial_fn, master_seed=13
    )
    fanned, fanned_report = no_sleep_runner(RunnerConfig(workers=2)).collect(
        SITES, 6, synthetic_trial_fn, master_seed=13
    )
    assert datasets_equal(serial, fanned)
    p1, p2 = tmp_path / "serial.npz", tmp_path / "fanned.npz"
    save_dataset(serial, str(p1))
    save_dataset(fanned, str(p2))
    assert p1.read_bytes() == p2.read_bytes()
    assert serial_report.completed_trials == fanned_report.completed_trials == 12


def test_parallel_chunk_size_never_changes_results():
    baseline, _ = no_sleep_runner(RunnerConfig(workers=1)).collect(
        SITES, 5, synthetic_trial_fn, master_seed=3
    )
    for chunk_size in (1, 3, 100):
        fanned, _ = no_sleep_runner(
            RunnerConfig(workers=2, chunk_size=chunk_size)
        ).collect(SITES, 5, synthetic_trial_fn, master_seed=3)
        assert datasets_equal(baseline, fanned)


def test_parallel_retry_and_failure_accounting_matches_serial():
    config = RunnerConfig(retry=RetryPolicy(max_attempts=2, backoff_base=0.0))
    serial, serial_report = no_sleep_runner(config).collect(
        SITES, 6, coin_flip_trial, master_seed=21
    )
    fanned, fanned_report = ResilientRunner(
        RunnerConfig(retry=config.retry, workers=2)
    ).collect(SITES, 6, coin_flip_trial, master_seed=21)
    assert datasets_equal(serial, fanned)
    assert serial_report.retries == fanned_report.retries
    assert serial_report.stalls == fanned_report.stalls
    assert [
        (f.label, f.index, f.attempts, f.error) for f in serial_report.failures
    ] == [(f.label, f.index, f.attempts, f.error) for f in fanned_report.failures]


def test_parallel_failures_sorted_deterministically():
    _, report = ResilientRunner(
        RunnerConfig(retry=RetryPolicy(max_attempts=1), workers=2, chunk_size=1)
    ).collect(SITES, 3, permanently_failing_trial, master_seed=0)
    assert [(f.label, f.index) for f in report.failures] == [("github.com", 1)]


def test_checkpoint_written_parallel_resumes_serial(tmp_path):
    """Worker count is not part of the checkpoint contract: a run may
    checkpoint with N workers and resume with M."""
    checkpoint = str(tmp_path / "run.ckpt.npz")
    uninterrupted, _ = no_sleep_runner(RunnerConfig(workers=1)).collect(
        SITES, 4, synthetic_trial_fn, master_seed=9
    )
    # Parallel partial run: every chunk checkpoints, then interrupt.
    calls = {"n": 0}

    def interrupting(label, index, rng, watchdog):
        if calls["n"] >= 3:
            raise KeyboardInterrupt()
        calls["n"] += 1
        return synthetic_trial_fn(label, index, rng, watchdog)

    # The interrupting closure is not picklable state across processes,
    # so drive the partial phase serially and the resume in parallel —
    # the checkpoint file is identical either way.
    with pytest.raises(KeyboardInterrupt):
        no_sleep_runner(
            RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint)
        ).collect(SITES, 4, interrupting, master_seed=9)
    resumed, report = ResilientRunner(
        RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint, workers=2)
    ).collect(SITES, 4, synthetic_trial_fn, master_seed=9, resume=True)
    assert report.resumed_trials == 3
    assert datasets_equal(resumed, uninterrupted)


def test_parallel_then_serial_resume_roundtrip(tmp_path):
    checkpoint = str(tmp_path / "run.ckpt.npz")
    full, _ = no_sleep_runner(RunnerConfig(workers=1)).collect(
        SITES, 3, synthetic_trial_fn, master_seed=2
    )
    # Complete parallel run writes a final checkpoint; a serial resume
    # finds nothing left to do and reproduces the dataset exactly.
    first, _ = ResilientRunner(
        RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint, workers=2)
    ).collect(SITES, 3, synthetic_trial_fn, master_seed=2)
    resumed, report = no_sleep_runner(
        RunnerConfig(checkpoint_every=1, checkpoint_path=checkpoint)
    ).collect(SITES, 3, synthetic_trial_fn, master_seed=2, resume=True)
    assert report.resumed_trials == 6
    assert report.completed_trials == 6
    assert datasets_equal(first, full)
    assert datasets_equal(resumed, full)


def test_execute_trial_reseeds_per_attempt():
    seen = []

    def failing(label, index, rng, watchdog):
        seen.append(int(rng.integers(0, 2**31)))
        raise TrialError("always")

    outcome = execute_trial(
        failing, "bing.com", 0, 0, 5, RetryPolicy(max_attempts=3),
        sleep=lambda s: None,
    )
    assert outcome.trace is None
    assert outcome.failure is not None
    assert outcome.retries == 2
    assert len(set(seen)) == 3
    expected = [
        int(trial_seed_rng(5, 0, 0, attempt).integers(0, 2**31))
        for attempt in range(3)
    ]
    assert seen == expected


def test_real_pageloads_parallel_identical_to_serial(tmp_path):
    """End-to-end: real simulated page loads through the pool match the
    in-process path byte for byte once serialised."""
    config = PageLoadConfig()
    serial, _ = collect_resilient(
        SITES, 1, pageload_config=config, seed=4,
        runner_config=RunnerConfig(workers=1),
    )
    fanned, _ = collect_resilient(
        SITES, 1, pageload_config=config, seed=4,
        runner_config=RunnerConfig(workers=2),
    )
    p1, p2 = tmp_path / "serial.npz", tmp_path / "fanned.npz"
    save_dataset(serial, str(p1))
    save_dataset(fanned, str(p2))
    assert p1.read_bytes() == p2.read_bytes()


def test_workers_zero_resolves_to_cores():
    dataset, _ = ResilientRunner(RunnerConfig(workers=0)).collect(
        SITES, 2, synthetic_trial_fn, master_seed=1
    )
    baseline, _ = no_sleep_runner(RunnerConfig(workers=1)).collect(
        SITES, 2, synthetic_trial_fn, master_seed=1
    )
    assert datasets_equal(dataset, baseline)
