"""Small-scale tests of the §5 ablation experiments and the
emulation-vs-enforcement pipeline."""

import numpy as np
import pytest

from repro.attacks.cca_id import CcaIdentifier, bulk_flow_trace, collect_cca_traces
from repro.capture.trace import IN
from repro.experiments.cca_interplay import (
    format_interplay,
    run_interplay,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.enforcement import (
    collect_enforced_dataset,
    format_enforcement,
    run_enforcement_gap,
)
from repro.web.pageload import PageLoadConfig, collect_dataset


def test_bulk_flow_trace_basic():
    trace = bulk_flow_trace("cubic", np.random.default_rng(1), duration=1.5)
    assert len(trace) > 100
    assert trace.incoming_bytes > trace.outgoing_bytes


def test_cca_identifier_learns_in_sample():
    traces, y = collect_cca_traces(3, seed=2)
    identifier = CcaIdentifier(n_estimators=20, random_state=2)
    identifier.fit(traces, y)
    assert identifier.score(traces, y) > 0.9  # in-sample sanity


def test_interplay_grid_runs_and_formats():
    results = run_interplay(
        ccas=("cubic",),
        actions=("none", "delay"),
        transfer_mib=2,
        duration=1.5,
    )
    assert len(results) == 2
    rendered = format_interplay(results)
    assert "cubic" in rendered
    by_action = {r.action: r for r in results}
    assert by_action["none"].goodput_mbps > 1.0
    assert by_action["delay"].goodput_mbps > 0.5


def test_interplay_bbr_reports_bw_estimate():
    results = run_interplay(
        ccas=("bbr",), actions=("none",), transfer_mib=2, duration=1.5
    )
    assert results[0].bw_estimate_ratio is not None
    assert results[0].bw_estimate_ratio > 0.1


def test_interplay_rejects_unknown_action():
    with pytest.raises(ValueError):
        run_interplay(ccas=("cubic",), actions=("teleport",), duration=0.5)


def test_enforced_dataset_differs_from_stock():
    config = PageLoadConfig()
    stock = collect_dataset(n_samples=2, sites=["wikipedia.org"], seed=9,
                            config=config)
    enforced = collect_enforced_dataset(n_samples=2, config=config, seed=9)
    wiki = enforced.traces["wikipedia.org"]
    assert len(wiki) == 2
    # Splitting caps incoming payloads in the enforced traces.
    for trace in wiki:
        assert trace.filter_direction(IN).sizes.max() <= 1200 + 52
    # And produces more packets than stock for the same site.
    stock_mean = np.mean([len(t) for t in stock.traces["wikipedia.org"]])
    enforced_mean = np.mean([len(t) for t in wiki])
    assert enforced_mean > stock_mean


@pytest.mark.slow
def test_enforcement_gap_pipeline_tiny():
    config = ExperimentConfig(
        n_samples=4, n_folds=2, n_estimators=10, balance_to=4, seed=5
    )
    result = run_enforcement_gap(config)
    rendered = format_enforcement(result)
    assert "enforced" in rendered
    assert 0 <= result.transfer_accuracy <= 1
    assert result.mean_packets_enforced > result.mean_packets_original
