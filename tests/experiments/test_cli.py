"""CLI tests (cheap subcommands only)."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in (
        "collect", "table1", "table2", "figure3", "censorship",
        "cca-interplay", "cca-id",
    ):
        assert command in text


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_table1_runs(capsys):
    assert main(["table1", "--samples", "4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "FRONT" in out


def test_figure3_with_custom_alphas(capsys, monkeypatch):
    import repro.experiments.figure3 as f3

    monkeypatch.setattr(
        f3, "run_figure3",
        lambda config: [f3.Figure3Point(0, 40.0, 1500.0, 44.0, 1.0, 0)],
    )
    assert main(["figure3", "--alphas", "0"]) == 0
    assert "goodput" in capsys.readouterr().out


def test_collect_and_table2_roundtrip(tmp_path, capsys):
    out = str(tmp_path / "tiny.npz")
    assert main(["collect", "--samples", "1", "--seed", "2", "--out", out]) == 0
    # table2 on one sample/site cannot do 5-fold CV; only check that the
    # dataset file loads through the CLI path.
    from repro.capture.serialize import load_dataset

    ds = load_dataset(out)
    assert ds.num_traces == 9
