"""CLI coverage for the extension subcommands (parser level — the
heavy runners have their own tests)."""

import pytest

from repro.cli import build_parser


@pytest.mark.parametrize(
    "command",
    [
        "work-conservation",
        "open-world",
        "quic-vs-tcp",
        "enforcement",
        "cca-interplay",
        "cca-id",
    ],
)
def test_extension_subcommands_parse(command):
    parser = build_parser()
    args = parser.parse_args([command, "--seed", "7"])
    assert args.seed == 7
    assert callable(args.func)


def test_dataset_flag_available_everywhere():
    parser = build_parser()
    args = parser.parse_args(["quic-vs-tcp", "--dataset", "x.npz"])
    assert args.dataset == "x.npz"


def test_help_mentions_every_experiment():
    text = build_parser().format_help()
    for name in ("table1", "table2", "figure3", "censorship",
                 "work-conservation", "open-world", "quic-vs-tcp",
                 "enforcement"):
        assert name in text
