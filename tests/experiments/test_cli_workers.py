"""CLI: --workers flag and the sweep subcommand."""

import pytest

from repro.cli import build_parser, main


@pytest.mark.parametrize("command", ["collect", "table2", "adverse", "sweep"])
def test_workers_flag_parses(command):
    args = build_parser().parse_args([command, "--workers", "2"])
    assert args.workers == 2


@pytest.mark.parametrize("command", ["collect", "table2", "adverse", "sweep"])
def test_workers_defaults_to_in_process(command):
    assert build_parser().parse_args([command]).workers == 1


def test_negative_workers_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["collect", "--workers", "-1", "--out", "x.npz"])
    assert "--workers" in capsys.readouterr().err


def test_sweep_subcommand_listed():
    assert "sweep" in build_parser().format_help()


def test_sweep_wires_dataset_and_workers(tmp_path, capsys, monkeypatch):
    import repro.experiments.parameter_sweep as ps

    out = str(tmp_path / "tiny.npz")
    assert main(["collect", "--samples", "1", "--seed", "2", "--out", out]) == 0
    capsys.readouterr()
    seen = {}

    def fake_sweep(config, dataset=None, **kwargs):
        seen["workers"] = config.workers
        seen["n_traces"] = dataset.num_traces
        return [ps.SweepPoint(1200, 0.1, 0.3, 0.5, 0.01, 0.1, 0.05)]

    monkeypatch.setattr(ps, "run_parameter_sweep", fake_sweep)
    assert main([
        "sweep", "--dataset", out, "--samples", "1", "--seed", "2",
        "--workers", "2",
    ]) == 0
    text = capsys.readouterr().out
    assert "parameter sweep" in text
    assert seen == {"workers": 2, "n_traces": 9}


def test_collect_parallel_matches_serial_bytes(tmp_path, capsys):
    serial = str(tmp_path / "serial.npz")
    fanned = str(tmp_path / "fanned.npz")
    assert main(["collect", "--samples", "1", "--seed", "3", "--out", serial]) == 0
    assert main([
        "collect", "--samples", "1", "--seed", "3", "--out", fanned,
        "--workers", "2",
    ]) == 0
    assert (tmp_path / "serial.npz").read_bytes() == (
        tmp_path / "fanned.npz"
    ).read_bytes()
