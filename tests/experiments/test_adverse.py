"""Adverse-network experiment tests (tiny scale)."""

import numpy as np
import pytest

from repro.experiments.adverse_network import (
    AdverseConfig,
    default_conditions,
    format_adverse,
    run_adverse,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RetryPolicy, RunnerConfig
from repro.web.pageload import PageLoadConfig

TINY_SITES = ["bing.com", "github.com", "wikipedia.org"]


def tiny_config(**kwargs) -> AdverseConfig:
    base = ExperimentConfig(
        n_samples=6, n_folds=2, n_estimators=12, balance_to=4, seed=11
    )
    return AdverseConfig(base=base, sites=TINY_SITES, **kwargs)


def test_default_conditions_cover_the_grid():
    conditions = default_conditions()
    assert set(conditions) == {"clean", "bursty", "flap"}
    assert conditions["clean"] is None
    assert conditions["bursty"] is not None and conditions["flap"] is not None


def test_run_adverse_produces_full_grid_and_reports():
    result = run_adverse(tiny_config())
    for condition in ("clean", "bursty", "flap"):
        for defense in ("original", "split", "delayed", "combined"):
            cell = result.cells[(condition, defense)]
            assert 0.0 <= cell.mean <= 1.0
            assert cell.fold_scores
        report = result.reports[condition]
        assert report.completed_trials + report.dropped_trials == len(TINY_SITES) * 6
    rendered = format_adverse(result)
    assert "clean" in rendered and "bursty" in rendered and "flap" in rendered
    assert "Collection reliability" in rendered


def test_run_adverse_is_deterministic():
    subset = {"bursty": default_conditions()["bursty"]}
    first = run_adverse(tiny_config(conditions=subset))
    second = run_adverse(tiny_config(conditions=subset))
    for key, cell in first.cells.items():
        assert cell.fold_scores == second.cells[key].fold_scores, key


def test_run_adverse_checkpoints_per_condition(tmp_path):
    config = tiny_config(
        conditions={"clean": None},
        checkpoint_dir=str(tmp_path),
        runner=RunnerConfig(retry=RetryPolicy(max_attempts=2), checkpoint_every=1),
    )
    run_adverse(config)
    assert (tmp_path / "adverse_clean.ckpt.npz").exists()
    assert (tmp_path / "adverse_clean.ckpt.npz.manifest.json").exists()
    # Resuming a completed run is a no-op that reuses the checkpoint.
    result = run_adverse(config, resume=True)
    report = result.reports["clean"]
    assert report.resumed_trials == report.completed_trials


def test_stalls_under_faults_reduce_samples_not_poison():
    """With an absurdly tight sim deadline every load stalls; the
    experiment must fail with a clear reliability message, never
    ingest partial traces."""
    base = ExperimentConfig(
        n_samples=2, n_folds=2, seed=3,
        pageload=PageLoadConfig(max_duration=0.05),
    )
    config = AdverseConfig(
        base=base,
        sites=["bing.com"],
        conditions={"clean": None},
        runner=RunnerConfig(retry=RetryPolicy(max_attempts=2, backoff_base=0.0)),
    )
    with pytest.raises(RuntimeError, match="zero usable traces"):
        run_adverse(config)
