"""Golden-trace regression test.

A fixed 2-site x 3-sample collection is digested and compared against
the committed golden digest in ``tests/data/golden_collect.json``.
Any change to the simulator, TCP stack, page-load model, or seeding
that alters the bytes-on-the-wire of this tiny dataset fails here —
intentional changes must regenerate the golden file (procedure in
README.md, "Updating the golden trace").

The digest is also recomputed with ``workers=2``: parallel collection
promises bit-identical datasets for any worker count, and this is the
test that holds it to that.
"""

import hashlib
import json
import os

import pytest

from repro.web.pageload import collect_dataset
from repro.web.sites import SITE_CATALOG

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "data",
                           "golden_collect.json")


def load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def dataset_digest(dataset):
    """SHA-256 over every trace's label and raw arrays, in the
    dataset's deterministic (label-sorted) iteration order."""
    digest = hashlib.sha256()
    for label, trace in dataset:
        digest.update(label.encode())
        digest.update(trace.times.tobytes())
        digest.update(trace.directions.tobytes())
        digest.update(trace.sizes.tobytes())
    return digest.hexdigest()


def collect_golden_dataset(workers=1):
    golden = load_golden()
    return collect_dataset(
        n_samples=golden["n_samples"],
        sites=golden["sites"],
        seed=golden["seed"],
        workers=workers,
    )


def test_golden_file_describes_real_sites():
    golden = load_golden()
    assert set(golden["sites"]) <= set(SITE_CATALOG)
    assert golden["n_samples"] >= 2
    assert len(golden["digest"]) == 64


@pytest.mark.slow
def test_collect_matches_golden_digest():
    golden = load_golden()
    dataset = collect_golden_dataset(workers=1)
    assert dataset.num_traces == len(golden["sites"]) * golden["n_samples"]
    assert dataset_digest(dataset) == golden["digest"], (
        "collect_dataset output changed; if intentional, regenerate "
        "tests/data/golden_collect.json (see README.md)"
    )


@pytest.mark.slow
def test_parallel_collect_matches_golden_digest():
    golden = load_golden()
    assert dataset_digest(collect_golden_dataset(workers=2)) == golden["digest"], (
        "workers=2 produced different bytes than the golden serial "
        "collection — parallel determinism is broken"
    )
