"""CLI consistency: --seed/--out/--resume everywhere, parser.error
instead of tracebacks, and the adverse subcommand."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_adverse_subcommand_registered():
    text = build_parser().format_help()
    assert "adverse" in text


@pytest.mark.parametrize(
    "command", ["collect", "table2", "censorship", "quic-vs-tcp", "enforcement", "adverse"]
)
def test_dataset_producing_subcommands_accept_seed_out_resume(command):
    parser = build_parser()
    text = None
    for action in parser._subparsers._group_actions[0].choices.items():
        if action[0] == command:
            text = action[1].format_help()
    assert text is not None
    for option in ("--seed", "--out", "--resume", "--checkpoint"):
        assert option in text, f"{command} must accept {option}"


def _flag_defaults(command):
    parser = build_parser()
    sub = parser._subparsers._group_actions[0].choices[command]
    defaults = {}
    for action in sub._actions:
        for option in action.option_strings:
            defaults[option] = action.default
    return defaults


@pytest.mark.parametrize("command", ["collect", "table2", "adverse", "sweep"])
def test_shared_flags_have_identical_defaults(command):
    """The audited flag set carries one spelling and one default on
    every dataset-producing subcommand (`--out` differs only on
    collect, whose output is the dataset itself)."""
    defaults = _flag_defaults(command)
    assert defaults["--seed"] == 2025
    assert defaults["--workers"] == 1
    assert defaults["--checkpoint"] is None
    assert defaults["--folds"] == 5
    assert defaults["--cache"] is None
    assert defaults["--no-cache"] is False
    assert defaults["--out"] == ("dataset.npz" if command == "collect" else None)


@pytest.mark.parametrize(
    "argv",
    [
        ["table2", "--workers", "-2"],
        ["sweep", "--workers", "-1"],
        ["adverse", "--folds", "1"],
        ["table2", "--samples", "0"],
        ["collect", "--seed", "-3"],
        ["table2", "--dataset", "/nonexistent/file.npz"],
        ["table2", "--resume"],  # --resume without --checkpoint
        ["table2", "--resume", "--checkpoint", "x.npz", "--dataset", "d.npz"],
        ["figure3", "--alphas", "ten,20"],
        ["adverse", "--conditions", "clean,marsquake"],
        ["table2", "--attack", "deepcorr"],
        ["open-world", "--attack", "nope"],
        ["robustness", "--attack", "bogus"],
    ],
)
def test_bad_arguments_exit_via_parser_error(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2  # argparse error exit, not a traceback
    err = capsys.readouterr().err
    assert "usage:" in err or "error:" in err


def test_attacks_subcommand_lists_registry(capsys):
    from repro.attacks.registry import implemented_attacks

    assert main(["attacks"]) == 0
    out = capsys.readouterr().out
    for name in implemented_attacks():
        assert name in out
    assert "deep-learning-class" in out


def test_attack_flag_present_on_attack_subcommands():
    parser = build_parser()
    choices = parser._subparsers._group_actions[0].choices
    for command in ("table2", "open-world", "robustness"):
        assert "--attack" in choices[command].format_help()
    # table2/open-world default to the paper's k-FP; robustness runs all.
    assert _flag_defaults("table2")["--attack"] == "kfp"
    assert _flag_defaults("open-world")["--attack"] == "kfp"
    assert _flag_defaults("robustness")["--attack"] is None


def test_robustness_cli_runs_stubbed_grid(tmp_path, monkeypatch):
    import repro.experiments.attack_robustness as rob

    def fake_run(config, dataset=None, test_fraction=0.3, attacks=None):
        from repro.experiments.attack_robustness import RobustnessCell

        names = attacks or ("kfp", "tam-mlp")
        return [
            RobustnessCell(attack=a, defense="original", accuracy=0.5)
            for a in names
        ]

    monkeypatch.setattr(rob, "run_attack_robustness", fake_run)
    out = str(tmp_path / "robustness.txt")
    assert main(["robustness", "--attack", "tam-mlp", "--out", out]) == 0
    text = (tmp_path / "robustness.txt").read_text()
    assert "tam-mlp" in text and "kfp" not in text


def test_collect_with_checkpoint_then_resume(tmp_path, capsys):
    out = str(tmp_path / "tiny.npz")
    ckpt = str(tmp_path / "tiny.ckpt.npz")
    assert main([
        "collect", "--samples", "1", "--seed", "2",
        "--out", out, "--checkpoint", ckpt,
    ]) == 0
    assert (tmp_path / "tiny.ckpt.npz").exists()
    # Resuming the finished run re-saves the same dataset from checkpoint.
    assert main([
        "collect", "--samples", "1", "--seed", "2",
        "--out", out, "--checkpoint", ckpt, "--resume",
    ]) == 0
    from repro.capture.serialize import load_dataset

    assert load_dataset(out).num_traces == 9


def test_resilient_collect_cli_is_deterministic(tmp_path):
    from repro.capture.serialize import load_dataset

    paths = []
    for name in ("a.npz", "b.npz"):
        out = str(tmp_path / name)
        assert main([
            "collect", "--samples", "1", "--seed", "5",
            "--out", out, "--checkpoint", str(tmp_path / (name + ".ckpt")),
        ]) == 0
        paths.append(out)
    first, second = (load_dataset(p) for p in paths)
    assert first.labels == second.labels
    for label in first.labels:
        for t1, t2 in zip(first.traces[label], second.traces[label]):
            assert np.array_equal(t1.times, t2.times)
            assert np.array_equal(t1.sizes, t2.sizes)


def test_out_writes_results_file(tmp_path, monkeypatch):
    import repro.experiments.table2 as t2

    monkeypatch.setattr(
        t2, "run_table2", lambda config, dataset=None, cache=None, attack="kfp": {}
    )
    monkeypatch.setattr(
        t2, "format_table2", lambda table, attack="kfp": "TABLE2 RENDERED"
    )
    monkeypatch.setattr(
        "repro.cli._load_or_collect", lambda args, config, cache=None: object()
    )
    out = str(tmp_path / "results" / "table2.txt")
    assert main(["table2", "--out", out]) == 0
    assert (tmp_path / "results" / "table2.txt").read_text() == "TABLE2 RENDERED\n"


def test_adverse_cli_runs_tiny_grid(tmp_path, monkeypatch):
    """End-to-end `repro adverse` on a stubbed-down grid."""
    import repro.experiments.adverse_network as adv

    def fake_run(config, resume=False, cache=None):
        from repro.experiments.adverse_network import AdverseCell, AdverseResult
        from repro.experiments.runner import CollectionReport

        cells = {
            (c, d): AdverseCell(c, d, 0.5, 0.01, [0.5])
            for c in ("clean", "bursty", "flap")
            for d in ("original", "split", "delayed", "combined")
        }
        return AdverseResult(cells=cells, reports={"clean": CollectionReport()})

    monkeypatch.setattr(adv, "run_adverse", fake_run)
    out = str(tmp_path / "adverse.txt")
    assert main(["adverse", "--samples", "2", "--out", out]) == 0
    text = (tmp_path / "adverse.txt").read_text()
    assert "Adverse-network" in text and "bursty" in text
