"""Dataset, sanitisation and serialisation tests."""

import numpy as np
import pytest

from repro.capture.dataset import Dataset
from repro.capture.sanitize import iqr_filter, is_error_trace, sanitize_dataset
from repro.capture.serialize import load_dataset, save_dataset
from repro.capture.trace import IN, OUT, Trace


def make_trace(rng, n=50, scale=1000):
    times = np.cumsum(rng.exponential(0.01, n))
    dirs = rng.choice([IN, IN, OUT], n).astype(np.int8)
    sizes = rng.integers(100, scale + 1, n)
    return Trace(times - times[0], dirs, sizes)


def make_dataset(rng, labels=("x", "y", "z"), per_label=12):
    ds = Dataset()
    for label in labels:
        for _ in range(per_label):
            ds.add(label, make_trace(rng))
    return ds


def test_labels_sorted_and_counts(rng):
    ds = make_dataset(rng, labels=("b", "a"))
    assert ds.labels == ["a", "b"]
    assert ds.num_traces == 24


def test_map_and_truncate(rng):
    ds = make_dataset(rng)
    truncated = ds.truncate(5)
    assert all(len(t) == 5 for _l, t in truncated)
    doubled = ds.map(lambda t: t.concat(t))
    assert all(len(t) == 100 for _l, t in doubled)


def test_subset_and_balanced(rng):
    ds = make_dataset(rng)
    sub = ds.subset(["x"])
    assert sub.labels == ["x"]
    with pytest.raises(KeyError):
        ds.subset(["nope"])
    balanced = ds.balanced(5)
    assert all(len(balanced.traces[l]) == 5 for l in balanced.labels)
    with pytest.raises(ValueError):
        ds.balanced(100)


def test_to_arrays_label_order(rng):
    ds = make_dataset(rng, labels=("b", "a"), per_label=2)
    traces, y = ds.to_arrays()
    assert len(traces) == 4
    assert list(y) == [0, 0, 1, 1]


def test_train_test_split_stratified(rng):
    ds = make_dataset(rng, per_label=10)
    train, test = ds.train_test_split(0.3, rng)
    for label in ds.labels:
        assert len(test.traces[label]) == 3
        assert len(train.traces[label]) == 7
    with pytest.raises(ValueError):
        ds.train_test_split(1.5, rng)


def test_kfold_partitions_each_label(rng):
    ds = make_dataset(rng, per_label=9)
    folds = list(ds.kfold(3, rng))
    assert len(folds) == 3
    for train, test in folds:
        for label in ds.labels:
            assert len(test.traces[label]) == 3
            assert len(train.traces[label]) == 6
    with pytest.raises(ValueError):
        list(ds.kfold(1, rng))
    with pytest.raises(ValueError):
        list(make_dataset(rng, per_label=2).kfold(5, rng))


# -- sanitisation -----------------------------------------------------------------


def test_iqr_filter_drops_outliers():
    values = np.array([10.0] * 20 + [10000.0])
    mask = iqr_filter(values)
    assert mask[:-1].all()
    assert not mask[-1]
    assert iqr_filter(np.empty(0)).shape == (0,)


def test_is_error_trace():
    assert is_error_trace(Trace.empty())
    tiny = Trace.from_records([(0.0, OUT, 100)])
    assert is_error_trace(tiny)
    no_download = Trace.from_records([(0.001 * i, OUT, 100) for i in range(20)])
    assert is_error_trace(no_download)


def test_sanitize_dataset_reports_and_balances(rng):
    ds = make_dataset(rng, per_label=12)
    # Inject an error trace and an outlier.
    ds.traces["x"].append(Trace.empty())
    big = make_trace(rng, n=50, scale=100000)
    ds.traces["y"].append(big)
    clean, report = sanitize_dataset(ds, balance_to=10)
    assert report["_balanced_to"] <= 10
    kept_x, err_x, _iqr_x = report["x"]
    assert err_x == 1
    for label in clean.labels:
        assert len(clean.traces[label]) == report["_balanced_to"]


# -- serialisation -----------------------------------------------------------------


def test_save_load_roundtrip(rng, tmp_path):
    ds = make_dataset(rng, per_label=4)
    path = str(tmp_path / "ds.npz")
    save_dataset(ds, path)
    loaded = load_dataset(path)
    assert loaded.labels == ds.labels
    assert loaded.num_traces == ds.num_traces
    for label in ds.labels:
        for original, restored in zip(ds.traces[label], loaded.traces[label]):
            assert np.allclose(original.times, restored.times)
            assert np.array_equal(original.directions, restored.directions)
            assert np.array_equal(original.sizes, restored.sizes)


def test_save_load_empty_label(rng, tmp_path):
    ds = Dataset()
    ds.traces["empty"] = []
    ds.add("full", make_trace(rng))
    path = str(tmp_path / "ds2.npz")
    save_dataset(ds, path)
    loaded = load_dataset(path)
    assert loaded.labels == ["empty", "full"]
