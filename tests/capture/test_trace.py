"""Trace container tests, with hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture.trace import IN, OUT, Trace, TraceObserver


def test_validation_rejects_bad_arrays():
    with pytest.raises(ValueError):
        Trace(np.array([0.0, 1.0]), np.array([1], dtype=np.int8), np.array([1, 2]))
    with pytest.raises(ValueError):
        Trace(np.array([1.0, 0.0]), np.array([1, 1], dtype=np.int8), np.array([1, 1]))
    with pytest.raises(ValueError):
        Trace(np.array([0.0]), np.array([2], dtype=np.int8), np.array([1]))
    with pytest.raises(ValueError):
        Trace(np.array([0.0]), np.array([1], dtype=np.int8), np.array([0]))


def test_from_records_sorts(simple_trace):
    records = [(1.0, IN, 100), (0.5, OUT, 50)]
    trace = Trace.from_records(records)
    assert list(trace.times) == [0.5, 1.0]
    assert Trace.from_records([]).times.shape == (0,)


def test_head_and_tail(simple_trace):
    head = simple_trace.head(3)
    tail = simple_trace.tail_after(3)
    assert len(head) == 3
    assert len(tail) == len(simple_trace) - 3
    merged = head.concat(tail)
    assert np.allclose(merged.times, simple_trace.times)


def test_filter_direction(simple_trace):
    incoming = simple_trace.filter_direction(IN)
    assert np.all(incoming.directions == IN)
    outgoing = simple_trace.filter_direction(OUT)
    assert len(incoming) + len(outgoing) == len(simple_trace)


def test_byte_accounting(simple_trace):
    assert (
        simple_trace.incoming_bytes + simple_trace.outgoing_bytes
        == simple_trace.total_bytes
    )


def test_shifted_to_zero(random_trace):
    shifted = Trace(
        random_trace.times + 5.0, random_trace.directions, random_trace.sizes
    ).shifted_to_zero()
    assert shifted.times[0] == 0.0
    assert shifted.duration == pytest.approx(random_trace.duration)


def test_interarrival_times(simple_trace):
    iats = simple_trace.interarrival_times()
    assert len(iats) == len(simple_trace) - 1
    assert np.all(iats >= 0)
    assert Trace.empty().interarrival_times().shape == (0,)


def test_concat_is_time_sorted(rng):
    a = Trace.from_records([(0.0, IN, 10), (2.0, IN, 10)])
    b = Trace.from_records([(1.0, OUT, 20)])
    merged = a.concat(b)
    assert list(merged.times) == [0.0, 1.0, 2.0]
    assert list(merged.sizes) == [10, 20, 10]


def test_observer_collects_and_sorts():
    class P:
        wire_size = 100

    observer = TraceObserver()
    observer.tap_incoming(P(), 1.0)
    observer.tap_outgoing(P(), 0.5)
    trace = observer.trace()
    assert len(trace) == 2
    assert trace.times[0] == 0.0  # zero-based
    assert list(trace.directions) == [OUT, IN]
    observer.reset()
    assert len(observer.trace()) == 0


trace_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.sampled_from([IN, OUT]),
        st.integers(1, 2000),
    ),
    min_size=0,
    max_size=60,
)


@given(trace_strategy)
@settings(max_examples=120)
def test_trace_invariants_hold_from_any_records(records):
    trace = Trace.from_records(records)
    assert len(trace) == len(records)
    if len(trace):
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.total_bytes == sum(r[2] for r in records)


@given(trace_strategy, st.integers(0, 80))
@settings(max_examples=120)
def test_head_tail_partition(records, n):
    trace = Trace.from_records(records)
    head, tail = trace.head(n), trace.tail_after(n)
    assert len(head) + len(tail) == len(trace)
    assert head.total_bytes + tail.total_bytes == trace.total_bytes
