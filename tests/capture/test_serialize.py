"""Serialisation safety: pickle-free archives + legacy compatibility.

``save_dataset`` once passed ``allow_pickle=True`` to
``np.savez_compressed`` — not a kwarg of savez, so numpy silently
stored a bogus boolean array under the key ``"allow_pickle"`` in every
archive, and object-dtype labels forced ``allow_pickle=True`` on load.
Current archives must load with ``allow_pickle=False``; legacy ones
must keep loading.
"""

import io
import zipfile

import numpy as np
import pytest

from repro.capture.dataset import Dataset
from repro.capture.serialize import is_legacy_archive, load_dataset, save_dataset
from repro.capture.trace import IN, OUT, Trace


def make_dataset(rng, labels=("alpha", "beta"), per_label=3):
    ds = Dataset()
    for label in labels:
        for _ in range(per_label):
            n = int(rng.integers(5, 20))
            times = np.cumsum(rng.exponential(0.01, n))
            dirs = rng.choice([IN, OUT], n).astype(np.int8)
            sizes = rng.integers(60, 1500, n)
            ds.add(label, Trace(times - times[0], dirs, sizes))
    return ds


def save_legacy(dataset, path):
    """Reproduce the pre-fix on-disk format: object-dtype labels plus
    the stray ``allow_pickle`` member.

    On NumPy < 2.0 ``savez_compressed`` had no ``allow_pickle``
    parameter, so the old ``save_dataset`` call silently stored the
    kwarg as an array; newer NumPy accepts the kwarg, so the stray
    member is written explicitly here to match old archives on disk.
    """
    payload = {"_labels": np.array(dataset.labels, dtype=object)}
    for label in dataset.labels:
        traces = dataset.traces[label]
        offsets = np.cumsum([len(t) for t in traces])[:-1]
        payload[f"{label}/times"] = np.concatenate([t.times for t in traces])
        payload[f"{label}/dirs"] = np.concatenate([t.directions for t in traces])
        payload[f"{label}/sizes"] = np.concatenate([t.sizes for t in traces])
        payload[f"{label}/offsets"] = np.asarray(offsets, dtype=np.int64)
    np.savez_compressed(path, **payload)
    # ``**payload`` can't carry the stray member on NumPy >= 2.0 (the
    # key now collides with a real kwarg), so append it to the zip the
    # way legacy NumPy stored it.
    buf = io.BytesIO()
    np.lib.format.write_array(buf, np.asarray(True))
    with zipfile.ZipFile(path, "a") as zf:
        zf.writestr("allow_pickle.npy", buf.getvalue())


def datasets_equal(a, b):
    if a.labels != b.labels:
        return False
    return all(
        np.array_equal(t1.times, t2.times)
        and np.array_equal(t1.directions, t2.directions)
        and np.array_equal(t1.sizes, t2.sizes)
        for label in a.labels
        for t1, t2 in zip(a.traces[label], b.traces[label])
    )


def test_roundtrip_loads_without_pickle(tmp_path, rng):
    ds = make_dataset(rng)
    path = str(tmp_path / "ds.npz")
    save_dataset(ds, path)
    # The archive must be fully readable with pickle disabled...
    with np.load(path, allow_pickle=False) as archive:
        for key in archive.files:
            archive[key]
        assert archive["_labels"].dtype.kind == "U"
    assert datasets_equal(ds, load_dataset(path))


def test_no_stray_allow_pickle_key(tmp_path, rng):
    path = str(tmp_path / "ds.npz")
    save_dataset(make_dataset(rng), path)
    with np.load(path, allow_pickle=False) as archive:
        assert "allow_pickle" not in archive.files
    with zipfile.ZipFile(path) as zf:
        assert "allow_pickle.npy" not in zf.namelist()
    assert not is_legacy_archive(path)


def test_legacy_archive_still_loads(tmp_path, rng):
    ds = make_dataset(rng)
    path = str(tmp_path / "legacy.npz")
    save_legacy(ds, path)
    # Prove the fixture really reproduces the old defect...
    with zipfile.ZipFile(path) as zf:
        assert "allow_pickle.npy" in zf.namelist()
    with np.load(path, allow_pickle=False) as archive:
        with pytest.raises(ValueError):
            archive["_labels"]
    assert is_legacy_archive(path)
    # ...and that the loader copes with both quirks.
    assert datasets_equal(ds, load_dataset(path))


def test_resave_modernises_legacy_archive(tmp_path, rng):
    ds = make_dataset(rng)
    legacy = str(tmp_path / "legacy.npz")
    modern = str(tmp_path / "modern.npz")
    save_legacy(ds, legacy)
    save_dataset(load_dataset(legacy), modern)
    with np.load(modern, allow_pickle=False) as archive:
        assert "allow_pickle" not in archive.files
        assert archive["_labels"].dtype.kind == "U"


def test_empty_dataset_roundtrip(tmp_path):
    path = str(tmp_path / "empty.npz")
    save_dataset(Dataset(), path)
    loaded = load_dataset(path)
    assert loaded.labels == []
    assert loaded.num_traces == 0
