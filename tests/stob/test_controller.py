"""Stob controller and constraint tests, including in-stack enforcement."""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.cc.base import CcPhase
from repro.stack.host import make_flow
from repro.stack.tcp import TcpConfig
from repro.stob.actions import DelayAction, NoOpAction, SplitAction, StobAction
from repro.stob.constraints import ConstraintReport, PhaseGate
from repro.stob.controller import StobController, attach_stob
from repro.stob.policy import ObfuscationPolicy
from repro.units import mbps, msec, mib


class OversizedAction(StobAction):
    """Misbehaving action that tries to be more aggressive."""

    def packet_sizes(self, nbytes, mss):
        return [mss * 2]  # bigger than MSS: must be clamped

    def tso_size(self, default_segs):
        return default_segs * 10  # must be clamped down

    def departure_gap(self, now, last_departure):
        return -1.0  # negative: must be clamped to 0


def make_test_flow(controller=None, cc="cubic"):
    sim = Simulator()
    path = NetworkPath(rate=mbps(20), rtt=msec(20))
    flow = make_flow(
        sim, path, client_config=TcpConfig(cc=cc), server_config=TcpConfig(cc=cc)
    )
    if controller is not None:
        flow.server.segment_controller = controller
    return sim, flow


def test_constraints_clamp_aggressive_actions():
    controller = StobController(action=OversizedAction())
    sim, flow = make_test_flow(controller)
    flow.server.on_established = lambda: flow.server.write(200_000)
    flow.connect()
    sim.run(until=10.0)
    assert flow.client.receive_buffer.delivered == 200_000
    assert controller.report.oversized_packets > 0
    assert controller.report.oversized_tso > 0
    assert controller.report.negative_gaps > 0
    assert controller.report.total_violations > 0


def test_split_action_shrinks_wire_packets():
    controller = StobController(action=SplitAction(1200, 2))
    sim, flow = make_test_flow(controller)
    sizes = []
    flow.server_host.nic.add_tap(
        lambda p, t: sizes.append(p.payload_len) if p.payload_len else None
    )
    flow.server.on_established = lambda: flow.server.write(100_000)
    flow.connect()
    sim.run(until=10.0)
    assert flow.client.receive_buffer.delivered == 100_000
    assert max(sizes) <= 1200


def test_delay_action_stretches_trace():
    def run(action):
        controller = StobController(action=action)
        sim, flow = make_test_flow(controller)
        times = []
        flow.server_host.nic.add_tap(
            lambda p, t: times.append(t) if p.payload_len else None
        )
        flow.server.on_established = lambda: flow.server.write(400_000)
        flow.connect()
        sim.run(until=20.0)
        assert flow.client.receive_buffer.delivered == 400_000
        return times[-1] - times[0]

    base = run(NoOpAction())
    delayed = run(DelayAction(0.2, 0.2, rng=np.random.default_rng(0)))
    assert delayed > base * 1.05


def test_phase_gate_blocks_in_gated_phase():
    gate = PhaseGate(gated=(CcPhase.SLOW_START,))
    assert not gate.allows(CcPhase.SLOW_START)
    assert gate.allows(CcPhase.CONGESTION_AVOIDANCE)
    # Recovery always gated by default.
    assert not gate.allows(CcPhase.RECOVERY)
    open_gate = PhaseGate(always_gate_recovery=False)
    assert open_gate.allows(CcPhase.RECOVERY)


def test_gated_controller_counts_gated_segments():
    controller = StobController(
        action=SplitAction(1200),
        gate=PhaseGate(gated=(CcPhase.SLOW_START,)),
    )
    sim, flow = make_test_flow(controller)
    flow.server.on_established = lambda: flow.server.write(50_000)
    flow.connect()
    sim.run(until=5.0)
    # Whole transfer fits in slow start: everything gated.
    assert controller.report.gated_segments > 0
    assert flow.client.receive_buffer.delivered == 50_000


def test_attach_stob_with_policy():
    sim, flow = make_test_flow()
    controller = attach_stob(
        flow.server, policy=ObfuscationPolicy(split_threshold=1200)
    )
    assert flow.server.segment_controller is controller
    assert isinstance(controller.action, SplitAction)


def test_attach_stob_requires_exactly_one_source():
    _sim, flow = make_test_flow()
    with pytest.raises(ValueError):
        attach_stob(flow.server)
    with pytest.raises(ValueError):
        attach_stob(
            flow.server,
            action=NoOpAction(),
            policy=ObfuscationPolicy(),
        )


def test_clamp_packet_sizes_fallback_to_stock():
    report = ConstraintReport()
    assert report.clamp_packet_sizes(None, 1000, 1448) is None
    assert report.clamp_packet_sizes([0, -5], 1000, 1448) is None
    cleaned = report.clamp_packet_sizes([4000], 1000, 1448)
    assert cleaned == [1000]


def test_clamp_packet_sizes_trims_over_budget():
    report = ConstraintReport()
    cleaned = report.clamp_packet_sizes([600, 600, 600], 1000, 1448)
    assert cleaned == [600, 400]
    assert sum(cleaned) <= 1000
