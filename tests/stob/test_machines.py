"""Maybenot-style machine framework tests."""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stob.machines import (
    END,
    ActionKind,
    Machine,
    MachineEvent,
    MachineRunner,
    MachineState,
    StateAction,
    attach_machine,
    burst_block_machine,
    constant_rate_machine,
    front_machine,
)
from repro.units import mbps, msec


def make_env():
    sim = Simulator()
    flow = make_flow(sim, NetworkPath(rate=mbps(20), rtt=msec(20)))
    return sim, flow


# -- validation -------------------------------------------------------------------


def test_machine_validation():
    with pytest.raises(ValueError):
        Machine(name="empty", states=[])
    state = MachineState(name="s")
    with pytest.raises(ValueError):
        Machine(name="bad-start", states=[state], start_state=5)
    bad = MachineState(
        name="over",
        transitions={MachineEvent.TIMEOUT: [(0, 0.7), (0, 0.7)]},
    )
    with pytest.raises(ValueError):
        Machine(name="overprob", states=[bad])
    dangling = MachineState(
        name="dangling",
        transitions={MachineEvent.TIMEOUT: [(7, 0.5)]},
    )
    with pytest.raises(ValueError):
        Machine(name="dangling", states=[dangling])


def test_reference_machine_validation():
    with pytest.raises(ValueError):
        front_machine(n_padding=0)
    with pytest.raises(ValueError):
        constant_rate_machine(0)


# -- semantics ---------------------------------------------------------------------


def test_constant_rate_machine_pads_at_rate():
    sim, flow = make_env()
    machine = constant_rate_machine(rate_bytes_per_sec=14480.0)  # 10 pkt/s
    runner = attach_machine(sim, flow.server, machine,
                            rng=np.random.default_rng(0))
    flow.connect()
    sim.run(until=2.0)
    # ~10 packets/s for ~2s of established time.
    assert 10 <= runner.padding_injected // 1448 <= 22


def test_front_machine_respects_budget_and_stops():
    sim, flow = make_env()
    machine = front_machine(n_padding=20, window=0.5)
    runner = attach_machine(sim, flow.server, machine,
                            rng=np.random.default_rng(1))
    flow.connect()
    sim.run(until=5.0)
    assert runner.padding_injected <= 20 * 1448
    assert not runner.running  # self-terminated at the action limit


def test_padding_observable_on_wire():
    sim, flow = make_env()
    dummies = []
    flow.server_host.nic.add_tap(
        lambda p, t: dummies.append(p) if p.dummy else None
    )
    attach_machine(
        sim, flow.server, constant_rate_machine(28960.0),
        rng=np.random.default_rng(2),
    )
    flow.server.on_established = lambda: flow.server.write(50_000)
    flow.connect()
    sim.run(until=2.0)
    assert len(dummies) > 5
    assert flow.client.receive_buffer.delivered == 50_000


def test_block_machine_delays_segments():
    def run(machine):
        sim, flow = make_env()
        times = []
        flow.server_host.nic.add_tap(
            lambda p, t: times.append(t) if p.payload_len else None
        )
        if machine is not None:
            attach_machine(sim, flow.server, machine,
                           rng=np.random.default_rng(3))
        flow.server.on_established = lambda: flow.server.write(400_000)
        flow.connect()
        sim.run(until=20.0)
        assert flow.client.receive_buffer.delivered == 400_000
        return times[-1] - times[0]

    base = run(None)
    blocked = run(burst_block_machine(gap=0.05, every=5))
    assert blocked > base


def test_transitions_follow_probabilities():
    # Deterministic 2-state ping-pong on TIMEOUT.
    a = MachineState(
        name="a",
        timeout_sampler=lambda rng: 0.01,
        transitions={MachineEvent.TIMEOUT: [(1, 1.0)]},
    )
    b = MachineState(
        name="b",
        timeout_sampler=lambda rng: 0.01,
        transitions={MachineEvent.TIMEOUT: [(0, 1.0)]},
    )
    machine = Machine(name="pingpong", states=[a, b])
    sim, flow = make_env()
    runner = MachineRunner(sim, flow.server, machine,
                           rng=np.random.default_rng(4))
    runner.start()
    sim.run(until=0.1)
    assert runner.transitions_taken >= 8


def test_end_transition_stops_machine():
    state = MachineState(
        name="once",
        timeout_sampler=lambda rng: 0.01,
        action=StateAction(kind=ActionKind.PAD),
        transitions={MachineEvent.TIMEOUT: [(END, 1.0)]},
    )
    machine = Machine(name="oneshot", states=[state])
    sim, flow = make_env()
    runner = attach_machine(sim, flow.server, machine,
                            rng=np.random.default_rng(5))
    flow.connect()
    sim.run(until=1.0)
    assert not runner.running
    assert runner.padding_injected <= 1448  # at most one action


def test_machine_composes_with_base_controller():
    from repro.stob.actions import SplitAction
    from repro.stob.controller import StobController

    sim, flow = make_env()
    base = StobController(action=SplitAction(1200, 2))
    attach_machine(
        sim, flow.server, constant_rate_machine(14480.0),
        rng=np.random.default_rng(6), base=base,
    )
    real_sizes = []
    flow.server_host.nic.add_tap(
        lambda p, t: real_sizes.append(p.payload_len)
        if p.payload_len and not p.dummy
        else None
    )
    flow.server.on_established = lambda: flow.server.write(100_000)
    flow.connect()
    sim.run(until=5.0)
    assert flow.client.receive_buffer.delivered == 100_000
    assert max(real_sizes) <= 1200  # base split still enforced
