"""Cover-traffic shaper tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stob.cover import CoverTrafficShaper
from repro.units import mbps, msec


def make(rate=mbps(20)):
    sim = Simulator()
    flow = make_flow(sim, NetworkPath(rate=rate, rtt=msec(20)))
    return sim, flow


def test_shaper_injects_at_configured_rate():
    sim, flow = make()
    shaper = CoverTrafficShaper(sim, flow.server, rate_bytes_per_sec=mbps(5))
    flow.server.on_established = shaper.start
    flow.connect()
    sim.run(until=2.0)
    expected = mbps(5) * 1.9  # minus handshake time
    assert shaper.injected_bytes == pytest.approx(expected, rel=0.15)


def test_dummies_visible_on_wire_but_not_delivered():
    sim, flow = make()
    dummy_packets = []
    flow.server_host.nic.add_tap(
        lambda p, t: dummy_packets.append(p) if p.dummy else None
    )
    shaper = CoverTrafficShaper(sim, flow.server, rate_bytes_per_sec=mbps(2))

    def start():
        shaper.start()
        flow.server.write(50_000)

    flow.server.on_established = start
    flow.connect()
    sim.run(until=3.0)
    assert len(dummy_packets) > 10
    assert flow.client.receive_buffer.delivered == 50_000


def test_stop_is_idempotent_and_halts_injection():
    sim, flow = make()
    shaper = CoverTrafficShaper(sim, flow.server, rate_bytes_per_sec=mbps(5))
    flow.server.on_established = shaper.start
    flow.connect()
    sim.run(until=1.0)
    shaper.stop()
    shaper.stop()
    injected = shaper.injected_bytes
    sim.run(until=2.0)
    assert shaper.injected_bytes == injected
    shaper.start()
    sim.run(until=2.5)
    assert shaper.injected_bytes > injected


def test_validation():
    sim, flow = make()
    with pytest.raises(ValueError):
        CoverTrafficShaper(sim, flow.server, rate_bytes_per_sec=0)
    with pytest.raises(ValueError):
        CoverTrafficShaper(sim, flow.server, 1000.0, packet_size=0)


def test_interval_property():
    sim, flow = make()
    shaper = CoverTrafficShaper(
        sim, flow.server, rate_bytes_per_sec=14480.0, packet_size=1448
    )
    assert shaper.interval == pytest.approx(0.1)
