"""Policy and registry tests."""

import numpy as np
import pytest

from repro.stack.cc.base import CcPhase
from repro.stob.policy import GapDistribution, ObfuscationPolicy, SizeDistribution
from repro.stob.registry import PolicyRegistry


def test_size_distribution_sampling():
    dist = SizeDistribution([500, 1000, 1448], [1, 1, 2])
    rng = np.random.default_rng(0)
    samples = {dist.sample(rng) for _ in range(100)}
    assert samples <= {500.0, 1000.0, 1448.0}
    assert dist.mean() == pytest.approx((500 + 1000 + 2 * 1448) / 4)


def test_size_distribution_uniform_constructor():
    dist = SizeDistribution.uniform(500, 1500, step=500)
    assert list(dist.values) == [500, 1000, 1500]


def test_size_distribution_rejects_bad_input():
    with pytest.raises(ValueError):
        SizeDistribution([], [])
    with pytest.raises(ValueError):
        SizeDistribution([100], [1, 2])
    with pytest.raises(ValueError):
        SizeDistribution([-5], [1])
    with pytest.raises(ValueError):
        SizeDistribution([100], [0])


def test_gap_distribution_rejects_negative_gaps():
    with pytest.raises(ValueError):
        GapDistribution([-0.1], [1])


def test_gap_exponential_bins_shape():
    dist = GapDistribution.exponential_bins(scale=0.01, n_bins=8)
    assert len(dist.values) == 8
    assert np.all(np.diff(dist.values) > 0)
    # Short gaps more likely than long ones.
    assert dist.probabilities[0] > dist.probabilities[-1]


def test_histogram_roundtrip():
    dist = SizeDistribution([500, 1000], [1, 3])
    clone = SizeDistribution.from_dict(dist.to_dict())
    assert np.allclose(clone.values, dist.values)
    assert np.allclose(clone.probabilities, dist.probabilities)


def test_policy_validation():
    with pytest.raises(ValueError):
        ObfuscationPolicy(split_threshold=0)
    with pytest.raises(ValueError):
        ObfuscationPolicy(split_factor=1)
    with pytest.raises(ValueError):
        ObfuscationPolicy(delay_fraction_range=(0.5, 0.1))
    with pytest.raises(ValueError):
        ObfuscationPolicy(max_tso_segs=0)


def test_policy_roundtrip_through_shared_memory_form():
    policy = ObfuscationPolicy(
        name="full",
        size_distribution=SizeDistribution([500, 1000], [1, 1]),
        gap_distribution=GapDistribution([0.001], [1]),
        split_threshold=1200,
        delay_fraction_range=(0.1, 0.3),
        size_sweep_degree=40,
        max_tso_segs=8,
        gated_phases=(CcPhase.STARTUP,),
        seed=9,
    )
    clone = ObfuscationPolicy.from_dict(policy.to_dict())
    assert clone.name == "full"
    assert clone.split_threshold == 1200
    assert clone.delay_fraction_range == (0.1, 0.3)
    assert clone.size_sweep_degree == 40
    assert clone.max_tso_segs == 8
    assert clone.gated_phases == (CcPhase.STARTUP,)
    assert clone.size_distribution is not None
    assert clone.gap_distribution is not None


def test_registry_lookup_specific_over_wildcard():
    registry = PolicyRegistry()
    wildcard = ObfuscationPolicy(name="wild")
    specific = ObfuscationPolicy(name="spec")
    registry.register("*", wildcard)
    registry.register("example.com", specific)
    assert registry.lookup("example.com").name == "spec"
    assert registry.lookup("other.org").name == "wild"
    assert registry.hits == 2


def test_registry_miss_returns_none():
    registry = PolicyRegistry()
    assert registry.lookup("nothing") is None
    assert registry.lookups == 1
    assert registry.hits == 0


def test_registry_unregister_and_len():
    registry = PolicyRegistry()
    registry.register("a", ObfuscationPolicy(name="a"))
    assert len(registry) == 1
    registry.unregister("a")
    assert len(registry) == 0
    with pytest.raises(KeyError):
        registry.unregister("a")


def test_registry_roundtrip():
    registry = PolicyRegistry()
    registry.register("a.com", ObfuscationPolicy(name="a", split_threshold=1000))
    registry.register("*", ObfuscationPolicy(name="default"))
    clone = PolicyRegistry.from_dict(registry.to_dict())
    assert sorted(clone) == ["*", "a.com"]
    assert clone.lookup("a.com").split_threshold == 1000


def test_registry_rejects_empty_key():
    with pytest.raises(ValueError):
        PolicyRegistry().register("", ObfuscationPolicy())
