"""Stob action unit tests."""

import numpy as np
import pytest

from repro.stob.actions import (
    ComposedAction,
    DelayAction,
    HistogramAction,
    NoOpAction,
    SizeSweepAction,
    SplitAction,
    action_from_policy,
)
from repro.stob.policy import GapDistribution, ObfuscationPolicy, SizeDistribution


def test_noop_is_passthrough():
    action = NoOpAction()
    assert action.packet_sizes(1000, 1448) is None
    assert action.tso_size(44) == 44
    assert action.departure_gap(1.0, 0.5) == 0.0


# -- SplitAction ----------------------------------------------------------------


def test_split_divides_large_chunks():
    action = SplitAction(threshold=1200, factor=2)
    sizes = action.packet_sizes(1448, 1448)
    assert sizes == [724, 724]


def test_split_leaves_small_chunks_alone():
    action = SplitAction(threshold=1200)
    assert action.packet_sizes(1000, 1448) == [1000]


def test_split_handles_multiple_mss():
    action = SplitAction(threshold=1200, factor=2)
    sizes = action.packet_sizes(3000, 1448)
    # Chunks: 1448 -> 724+724, 1448 -> 724+724, 104 -> 104
    assert sizes == [724, 724, 724, 724, 104]
    assert sum(sizes) == 3000


def test_split_odd_sizes_conserve_bytes():
    action = SplitAction(threshold=1200, factor=3)
    sizes = action.packet_sizes(1447, 1447)
    assert sum(sizes) == 1447
    assert len(sizes) == 3


def test_split_validation():
    with pytest.raises(ValueError):
        SplitAction(threshold=0)
    with pytest.raises(ValueError):
        SplitAction(factor=1)


# -- DelayAction ----------------------------------------------------------------


def test_delay_proportional_to_elapsed():
    action = DelayAction(0.10, 0.30, rng=np.random.default_rng(0))
    gaps = [action.departure_gap(1.0, 0.0) for _ in range(200)]
    assert all(0.10 <= g <= 0.30 for g in gaps)


def test_delay_zero_without_history():
    action = DelayAction()
    assert action.departure_gap(5.0, -1.0) == 0.0


def test_delay_validation():
    with pytest.raises(ValueError):
        DelayAction(0.3, 0.1)
    with pytest.raises(ValueError):
        DelayAction(-0.1, 0.2)


# -- SizeSweepAction -------------------------------------------------------------


def test_sweep_alpha_zero_is_constant():
    action = SizeSweepAction(0)
    assert [action.tso_size(44) for _ in range(5)] == [44] * 5
    sizes = action.packet_sizes(1448 * 3, 1448)
    assert all(size == 1448 for size in sizes)


def test_sweep_packet_cycle_matches_paper_formula():
    action = SizeSweepAction(100, header_bytes=52)
    # Wire sizes: 1500, 1400, ..., 500, then reset to 1500.
    wire = [action._next_packet_size() for _ in range(12)]
    assert wire[:11] == [1500 - 100 * k for k in range(11)]
    assert wire[11] == 1500


def test_sweep_tso_cycle_clamps_at_one():
    action = SizeSweepAction(100)
    values = [action.tso_size(44) for _ in range(9)]
    # 44, 19, then clamped at 1 for the rest of the cycle.
    assert values[0] == 44
    assert values[1] == 19
    assert all(v == 1 for v in values[2:])


def test_sweep_mean_tso_decreases_with_alpha():
    def mean_tso(alpha):
        action = SizeSweepAction(alpha)
        return np.mean([action.tso_size(44) for _ in range(90)])

    means = [mean_tso(a) for a in (0, 20, 60, 100)]
    assert all(a >= b for a, b in zip(means, means[1:]))


def test_sweep_packet_sizes_respect_mss_and_total():
    action = SizeSweepAction(60)
    sizes = action.packet_sizes(10_000, 1448)
    assert sum(sizes) == 10_000
    assert all(1 <= s <= 1448 for s in sizes)


def test_sweep_reset():
    action = SizeSweepAction(40)
    action.tso_size(44)
    action.tso_size(44)
    action.reset()
    assert action.tso_size(44) == 44


def test_sweep_rejects_negative_alpha():
    with pytest.raises(ValueError):
        SizeSweepAction(-1)


# -- HistogramAction --------------------------------------------------------------


def test_histogram_action_draws_from_distributions():
    policy = ObfuscationPolicy(
        name="h",
        size_distribution=SizeDistribution([500, 1000], [1, 1]),
        gap_distribution=GapDistribution([0.001, 0.002], [1, 1]),
        seed=42,
    )
    action = HistogramAction(policy)
    sizes = action.packet_sizes(5000, 1448)
    assert sum(sizes) == 5000
    assert set(sizes) <= {500, 1000} | {s for s in sizes if s < 1000}
    gap = action.departure_gap(0.0, -1.0)
    assert gap in (0.001, 0.002)


def test_histogram_action_deterministic_after_reset():
    policy = ObfuscationPolicy(
        name="h",
        size_distribution=SizeDistribution([400, 800, 1200], [1, 2, 1]),
        seed=7,
    )
    action = HistogramAction(policy)
    first = action.packet_sizes(6000, 1448)
    action.reset()
    second = action.packet_sizes(6000, 1448)
    assert first == second


# -- ComposedAction ---------------------------------------------------------------


def test_composed_takes_min_tso_and_sums_gaps():
    class FixedGap(NoOpAction):
        def __init__(self, gap, tso):
            self._gap, self._tso = gap, tso

        def departure_gap(self, now, last):
            return self._gap

        def tso_size(self, default):
            return self._tso

    action = ComposedAction(FixedGap(0.1, 30), FixedGap(0.2, 10))
    assert action.tso_size(44) == 10
    assert action.departure_gap(0.0, 0.0) == pytest.approx(0.3)


def test_composed_first_packetizer_wins():
    action = ComposedAction(NoOpAction(), SplitAction(1200))
    assert action.packet_sizes(1448, 1448) == [724, 724]


def test_composed_requires_actions():
    with pytest.raises(ValueError):
        ComposedAction()


# -- action_from_policy -----------------------------------------------------------


def test_policy_compilation():
    assert isinstance(action_from_policy(ObfuscationPolicy()), NoOpAction)
    assert isinstance(
        action_from_policy(ObfuscationPolicy(split_threshold=1200)), SplitAction
    )
    assert isinstance(
        action_from_policy(ObfuscationPolicy(delay_fraction_range=(0.1, 0.3))),
        DelayAction,
    )
    assert isinstance(
        action_from_policy(ObfuscationPolicy(size_sweep_degree=40)),
        SizeSweepAction,
    )
    combined = action_from_policy(
        ObfuscationPolicy(split_threshold=1200, delay_fraction_range=(0.1, 0.3))
    )
    assert isinstance(combined, ComposedAction)
