"""The `repro fuzz` CLI surface: exit codes and argument probes."""

import json

import pytest

from repro.cli import main
from repro.defenses import build_defense
from repro.fuzz.corpus import QuarantineCorpus
from repro.fuzz.scenario import ScenarioSpec, SyntheticSpec


def quarantined_reproducer(tmp_path):
    """Plant one genuine reproducer (unknown-defense bug) on disk."""
    spec = ScenarioSpec(
        seed=0,
        index=0,
        source="synthetic",
        synthetic=(SyntheticSpec(kind="mixed", n_traces=1, n_packets=10),),
        sanitize=False,
        defense="nonexistent",
        attack="knn",
    )
    try:
        build_defense("nonexistent")
    except ValueError as exc:
        entry = QuarantineCorpus(tmp_path / "corpus").add(exc, spec, spec, {})
    return entry.path


def test_cli_run_exits_zero_on_a_clean_campaign(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    assert main(["fuzz", "run", "--seed", "0", "--budget", "2", "--corpus", corpus]) == 0
    out = capsys.readouterr().out
    assert "2 scenarios, 0 findings" in out
    assert "campaign digest" in out


def test_cli_replay_exit_codes_track_reproduction(tmp_path, capsys):
    path = quarantined_reproducer(tmp_path)
    # Exit 1 while the bug is live: replay is the regression gate.
    assert main(["fuzz", "replay", str(path)]) == 1
    assert "reproduced" in capsys.readouterr().out

    data = json.loads(path.read_text())
    data["scenario"]["defense"] = "original"  # the "fix" lands
    path.write_text(json.dumps(data))
    assert main(["fuzz", "replay", str(path)]) == 0
    assert "fixed" in capsys.readouterr().out


def test_cli_corpus_lists_buckets(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    quarantined_reproducer(tmp_path)
    assert main(["fuzz", "corpus", corpus]) == 0
    out = capsys.readouterr().out
    assert "1 reproducers in 1 buckets" in out
    assert "ValueError@registry.py:build_defense" in out


def test_cli_corpus_on_an_empty_directory(tmp_path, capsys):
    assert main(["fuzz", "corpus", str(tmp_path / "nothing")]) == 0
    assert "0 reproducers" in capsys.readouterr().out


@pytest.mark.parametrize(
    "argv",
    [
        ["fuzz", "run", "--budget", "0"],
        ["fuzz", "run", "--budget", "-5"],
        ["fuzz", "replay", "/nonexistent-reproducer.json"],
    ],
)
def test_cli_rejects_bad_arguments_with_named_error(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "error:" in capsys.readouterr().err
