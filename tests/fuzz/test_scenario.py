"""Scenario sampling: determinism, JSON round-trip, corner coverage."""

import numpy as np
import pytest

from repro.fuzz.scenario import (
    SITE_KINDS,
    SYNTHETIC_KINDS,
    ScenarioSpec,
    SiteSpec,
    SyntheticSpec,
    sample_scenario,
    scenario_from_jsonable,
    scenario_to_jsonable,
)


def test_sampling_is_a_pure_function_of_coordinates():
    for index in range(20):
        assert sample_scenario(7, index) == sample_scenario(7, index)
    assert sample_scenario(7, 3) != sample_scenario(8, 3)
    assert sample_scenario(7, 3) != sample_scenario(7, 4)


def test_sampling_is_position_derived_not_sequential():
    """Scenario i is independent of whether scenarios 0..i-1 were ever
    sampled — the property that makes shards and replays composable."""
    cold = sample_scenario(0, 42)
    for i in range(42):
        sample_scenario(0, i)
    assert sample_scenario(0, 42) == cold


@pytest.mark.parametrize("index", range(30))
def test_json_round_trip(index):
    spec = sample_scenario(0, index)
    rebuilt = scenario_from_jsonable(scenario_to_jsonable(spec))
    assert rebuilt == spec


def test_round_trip_survives_json_serialisation():
    import json

    spec = sample_scenario(3, 5)
    over_the_wire = json.loads(json.dumps(scenario_to_jsonable(spec)))
    assert scenario_from_jsonable(over_the_wire) == spec


def test_campaign_covers_the_pathological_corners():
    """A modest budget must visit every site kind, every synthetic
    family and scenarios with faults — the corners are the point."""
    site_kinds, syn_kinds = set(), set()
    faulted = defended = 0
    for i in range(300):
        spec = sample_scenario(0, i)
        site_kinds.update(s.kind for s in spec.sites)
        syn_kinds.update(f.kind for f in spec.synthetic)
        faulted += spec.fault is not None
        defended += spec.defense != "original"
    assert site_kinds == set(SITE_KINDS)
    assert syn_kinds == set(SYNTHETIC_KINDS)
    assert faulted > 30
    assert defended > 150


def test_site_spec_profiles_build():
    rng = np.random.default_rng(0)
    for kind in SITE_KINDS:
        profile = SiteSpec(kind=kind, index=3).profile()
        page = profile.sample_page(rng)
        assert len(page.rounds) >= 2  # handshake + HTML at minimum


def test_zero_object_site_is_actually_object_free():
    profile = SiteSpec(kind="zero-object").profile()
    assert profile.object_classes == []


def test_synthetic_families_build_valid_traces():
    rng = np.random.default_rng(1)
    for kind in SYNTHETIC_KINDS:
        spec = SyntheticSpec(kind=kind, n_traces=3, n_packets=5)
        traces = spec.build_traces(rng)
        assert len(traces) == 3
        for trace in traces:
            if kind == "empty":
                assert len(trace) == 0
            elif kind == "single-packet":
                assert len(trace) == 1
            else:
                assert len(trace) == 5


def test_invalid_specs_are_rejected():
    with pytest.raises(ValueError):
        SiteSpec(kind="nope")
    with pytest.raises(ValueError):
        SyntheticSpec(kind="nope")
    with pytest.raises(ValueError):
        SyntheticSpec(kind="empty", n_traces=0)
    with pytest.raises(ValueError):
        ScenarioSpec(seed=0, index=0, source="simulated", sites=())
    with pytest.raises(ValueError):
        ScenarioSpec(seed=0, index=0, source="synthetic", synthetic=())
    with pytest.raises(ValueError):
        ScenarioSpec(seed=0, index=0, source="nope")
