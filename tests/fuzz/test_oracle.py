"""The invariant oracle: violations are caught, honest runs digest
deterministically, deadlines turn hangs into findings."""

import dataclasses
import time

import numpy as np
import pytest

from repro.capture.trace import IN, OUT, Trace
from repro.fuzz.oracle import (
    HangDetected,
    InvariantViolation,
    check_trace,
    check_visit,
    run_scenario,
)
from repro.fuzz.scenario import (
    ScenarioSpec,
    SiteSpec,
    SyntheticSpec,
    sample_scenario,
)


def synthetic_spec(**overrides) -> ScenarioSpec:
    base = dict(
        seed=0,
        index=0,
        source="synthetic",
        synthetic=(
            SyntheticSpec(kind="mixed", n_traces=3, n_packets=30),
            SyntheticSpec(kind="mixed", n_traces=3, n_packets=60),
        ),
        sanitize=False,
        defense="original",
        attack="knn",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def test_honest_synthetic_scenario_passes_and_digests_stably():
    first = run_scenario(synthetic_spec())
    second = run_scenario(synthetic_spec())
    assert first.digest == second.digest
    assert first.n_traces == 6
    assert first.eval_skipped is None
    assert first.stages["eval"]["accuracy"] is not None


def test_digest_reflects_content():
    a = run_scenario(synthetic_spec())
    b = run_scenario(synthetic_spec(defense="front"))
    assert a.digest != b.digest


def test_simulated_scenario_checks_the_stack():
    spec = ScenarioSpec(
        seed=0,
        index=1,
        source="simulated",
        sites=(SiteSpec(kind="zero-object"), SiteSpec(kind="catalog", index=0)),
        n_samples=2,
        max_duration=8.0,
        sanitize=False,
        defense="original",
        attack="knn",
    )
    outcome = run_scenario(spec)
    assert outcome.n_traces == 4
    assert outcome.stalls == 0


def test_check_trace_rejects_malformed_arrays():
    good = Trace(
        np.array([0.0, 1.0]),
        np.array([OUT, IN], dtype=np.int8),
        np.array([100, 200]),
    )
    check_trace(good, "t")  # must not raise

    bad_dir = dataclasses.replace(good)
    bad_dir.directions[0] = 3
    with pytest.raises(InvariantViolation, match="trace.directions"):
        check_trace(bad_dir, "t")

    bad_time = Trace(
        np.array([0.0, 1.0]),
        np.array([OUT, IN], dtype=np.int8),
        np.array([100, 200]),
    )
    bad_time.times[1] = np.inf
    with pytest.raises(InvariantViolation, match="trace.finite-times"):
        check_trace(bad_time, "t")

    bad_size = Trace(
        np.array([0.0, 1.0]),
        np.array([OUT, IN], dtype=np.int8),
        np.array([100, 200]),
    )
    bad_size.sizes[0] = -5
    with pytest.raises(InvariantViolation, match="trace.positive-sizes"):
        check_trace(bad_size, "t")


def test_check_visit_catches_corrupted_link_accounting():
    """Tamper with a finished flow's stats: conservation must fire."""
    from repro.web.pageload import PageLoadConfig, load_page_result, visit_seed_rng

    flows = []
    config = PageLoadConfig(max_duration=8.0)
    result = load_page_result(
        SiteSpec(kind="zero-object").profile(),
        config,
        visit_seed_rng(0, "x", 0),
        on_flow=flows.append,
    )
    flow = flows[0]
    check_visit(flow, result, config, "untampered")  # sanity: passes
    flow.forward_link.delivered += 1  # corrupt the books
    with pytest.raises(InvariantViolation, match="link.conservation"):
        check_visit(flow, result, config, "tampered")


def test_deadline_turns_a_hang_into_a_finding(monkeypatch):
    """A scenario whose page loads burn wall-clock time must be killed
    and reported as HangDetected, not waited out."""
    import repro.fuzz.oracle as oracle_mod

    # A clock that leaps ten minutes per reading: whatever instant the
    # deadline anchors on, the very next watchdog check is past it.
    ticks = iter(range(0, 10**9, 600))
    monkeypatch.setattr(oracle_mod.time, "monotonic", lambda: float(next(ticks)))
    spec = sample_scenario(0, 0)
    with pytest.raises(HangDetected):
        run_scenario(spec, deadline=30.0)


def test_eval_skips_single_class_scenarios_with_a_reason():
    spec = synthetic_spec(
        synthetic=(SyntheticSpec(kind="mixed", n_traces=4, n_packets=30),)
    )
    outcome = run_scenario(spec)
    assert outcome.eval_skipped is not None
    assert "classes" in outcome.eval_skipped
