"""Shrinker mechanics against fake acceptance oracles.

``still_fails`` is injected as a plain closure here, so these tests
exercise the delta-debugging search itself — candidate generation,
acceptance, fixpoint detection — without paying for the real oracle.
End-to-end shrinking of a genuine finding lives in ``test_runner.py``.
"""

import dataclasses

from repro.fuzz.scenario import (
    FaultSpec,
    BlackoutSpec,
    ReorderSpec,
    ScenarioSpec,
    SiteSpec,
    SyntheticSpec,
)
from repro.fuzz.shrink import _candidates, shrink_scenario


def loaded_synthetic_spec() -> ScenarioSpec:
    """A synthetic spec with every shrinkable component engaged."""
    return ScenarioSpec(
        seed=0,
        index=0,
        source="synthetic",
        synthetic=(
            SyntheticSpec(kind="mixed", n_traces=2, n_packets=8),
            SyntheticSpec(kind="empty", n_traces=2, n_packets=0),
        ),
        sanitize=True,
        check_workers=True,
        defense="front",
        attack="kfp",
        fault=FaultSpec((BlackoutSpec(start=1.0, duration=1.0),)),
    )


def loaded_simulated_spec() -> ScenarioSpec:
    return ScenarioSpec(
        seed=0,
        index=0,
        source="simulated",
        sites=(SiteSpec(kind="catalog"), SiteSpec(kind="one-byte")),
        n_samples=4,
        rate_mbps=0.5,
        rtt_ms=300.0,
        loss_rate=0.2,
        buffer_bdp=0.25,
        cca="bbr",
        max_duration=8.0,
        defense="tamaraw",
        attack="cumul",
        fault=FaultSpec(
            (BlackoutSpec(start=1.0, duration=1.0), ReorderSpec(prob=0.1))
        ),
    )


def test_unconditional_failure_shrinks_to_the_floor():
    """When everything still fails, the fixpoint is the minimal spec:
    no fault, no defense, cheapest attack, one tiny family."""
    result = shrink_scenario(loaded_synthetic_spec(), lambda _spec: True)
    spec = result.spec
    assert spec.fault is None
    assert spec.defense == "original"
    assert spec.attack == "knn"
    assert spec.sanitize is False
    assert spec.check_workers is False
    assert len(spec.synthetic) == 1
    assert spec.synthetic[0].n_traces == 1
    assert spec.synthetic[0].n_packets == 0
    assert result.accepted > 0
    assert result.rounds == result.accepted + 1  # +1 fixpoint sweep


def test_simulated_spec_shrinks_sites_samples_and_link():
    result = shrink_scenario(loaded_simulated_spec(), lambda _spec: True)
    spec = result.spec
    assert len(spec.sites) == 1
    assert spec.n_samples == 1
    assert (spec.rate_mbps, spec.rtt_ms, spec.loss_rate) == (50.0, 30.0, 0.0)
    assert spec.cca == "cubic"
    assert spec.max_duration == 4.0
    assert spec.fault is None and spec.defense == "original"


def test_load_bearing_component_is_kept():
    """If the bug needs the defense, every candidate that removes it is
    rejected — the minimal spec still names the culprit."""
    still_fails = lambda spec: spec.defense == "front"  # noqa: E731
    result = shrink_scenario(loaded_synthetic_spec(), still_fails)
    assert result.spec.defense == "front"
    assert result.spec.fault is None  # everything else still dropped
    assert len(result.spec.synthetic) == 1


def test_nothing_accepted_returns_the_original():
    original = loaded_synthetic_spec()
    result = shrink_scenario(original, lambda _spec: False)
    assert result.spec == original
    assert result.accepted == 0
    assert result.rounds == 1
    assert result.tried == len(_candidates(original))


def test_candidates_are_single_edits():
    """Every candidate differs from its parent in a bounded way — this
    is what makes acceptance attribution meaningful."""
    for parent in (loaded_synthetic_spec(), loaded_simulated_spec()):
        for candidate in _candidates(parent):
            assert candidate != parent
            changed = [
                f.name
                for f in dataclasses.fields(parent)
                if getattr(candidate, f.name) != getattr(parent, f.name)
            ]
            # Link-parameter reset touches up to five fields at once;
            # every other edit is a one-field change.
            assert 1 <= len(changed) <= 5


def test_shrinking_is_deterministic():
    still_fails = lambda spec: spec.attack == "kfp"  # noqa: E731
    a = shrink_scenario(loaded_synthetic_spec(), still_fails)
    b = shrink_scenario(loaded_synthetic_spec(), still_fails)
    assert a == b
