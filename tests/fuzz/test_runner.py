"""The fuzz campaign driver end to end, with one real injected bug.

A scenario whose defense name does not exist raises a genuine
``ValueError`` from the defense registry — a stable crash bucket the
runner must triage, shrink (provably keeping the broken defense while
discarding everything else) and quarantine, and that ``replay`` must
re-trigger until the spec is "fixed"."""

import dataclasses
import json

import pytest

import repro.fuzz.runner as runner_mod
from repro.errors import RunTerminated
from repro.fuzz import run_fuzz, replay_reproducer
from repro.fuzz.corpus import load_reproducer
from repro.fuzz.scenario import ScenarioSpec, SyntheticSpec
from repro.obs import runtime

BROKEN_BUCKET = "ValueError@registry.py:build_defense"


def clean_spec(seed, index) -> ScenarioSpec:
    return ScenarioSpec(
        seed=seed,
        index=index,
        source="synthetic",
        synthetic=(
            SyntheticSpec(kind="mixed", n_traces=2, n_packets=20),
            SyntheticSpec(kind="mixed", n_traces=2, n_packets=40),
        ),
        sanitize=False,
        defense="original",
        attack="knn",
    )


def broken_spec(seed, index) -> ScenarioSpec:
    """Engages fault + sanitize so the shrinker has work to do."""
    from repro.fuzz.scenario import BlackoutSpec, FaultSpec

    return dataclasses.replace(
        clean_spec(seed, index),
        defense="nonexistent",
        sanitize=True,
        fault=FaultSpec((BlackoutSpec(start=1.0, duration=1.0),)),
    )


@pytest.fixture()
def inject(monkeypatch):
    """Replace the sampler: index 0 is broken, the rest are clean."""

    def fake_sample(seed, index):
        return broken_spec(seed, index) if index == 0 else clean_spec(seed, index)

    monkeypatch.setattr(runner_mod, "sample_scenario", fake_sample)


def test_finding_is_triaged_shrunk_and_quarantined(tmp_path, inject):
    report = run_fuzz(seed=0, budget=2, corpus_dir=tmp_path / "c")
    assert report.scenarios == 2
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.bucket_id == BROKEN_BUCKET
    assert finding.new
    assert report.new_entries == 1
    assert report.bucket_counts() == {BROKEN_BUCKET: 1}

    # The shrinker kept the culprit and dropped the incidentals.
    minimal = finding.shrink.spec
    assert minimal.defense == "nonexistent"
    assert minimal.fault is None
    assert minimal.sanitize is False
    assert finding.shrink.accepted >= 2

    data = load_reproducer(finding.reproducer)
    assert data["bucket"]["id"] == BROKEN_BUCKET
    assert data["scenario"]["defense"] == "nonexistent"
    assert data["original_scenario"]["fault"] is not None


def test_refinding_a_known_bug_is_idempotent(tmp_path, inject):
    first = run_fuzz(seed=0, budget=2, corpus_dir=tmp_path / "c")
    second = run_fuzz(seed=0, budget=2, corpus_dir=tmp_path / "c")
    assert first.campaign_digest == second.campaign_digest
    assert first.corpus_digest == second.corpus_digest
    assert first.new_entries == 1
    assert second.new_entries == 0  # known bucket+scenario: nothing new
    assert len(second.findings) == 1  # ...but still reported


def test_replay_reproduces_until_fixed(tmp_path, inject):
    report = run_fuzz(seed=0, budget=1, corpus_dir=tmp_path / "c")
    path = report.findings[0].reproducer

    live = replay_reproducer(path)
    assert live.reproduced
    assert live.observed_bucket == BROKEN_BUCKET

    # "Fix" the bug by editing the quarantined scenario to a valid
    # defense: the recorded bucket no longer fires.
    data = json.loads(open(path).read())
    data["scenario"]["defense"] = "original"
    with open(path, "w") as handle:
        json.dump(data, handle)
    fixed = replay_reproducer(path)
    assert not fixed.reproduced
    assert fixed.observed_bucket is None


def test_operator_abort_is_not_a_finding(tmp_path, monkeypatch):
    def bail(spec, deadline=None):
        raise RunTerminated("operator abort")

    monkeypatch.setattr(runner_mod, "run_scenario", bail)
    with pytest.raises(RunTerminated):
        run_fuzz(seed=0, budget=3, corpus_dir=tmp_path / "c")
    assert not (tmp_path / "c" / "reproducers").exists()


def test_budget_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="budget"):
        run_fuzz(seed=0, budget=0, corpus_dir=tmp_path / "c")


def test_obs_counters_tick(tmp_path, inject):
    session = runtime.enable()
    try:
        run_fuzz(seed=0, budget=2, corpus_dir=tmp_path / "c")
        assert session.registry.counter("fuzz.scenarios").value == 2
        assert session.registry.counter("fuzz.findings").value == 1
    finally:
        runtime.disable()
