"""The mini-fuzz regression gate: 25 scenarios of campaign seed 0.

Two assertions, both load-bearing:

* **Clean** — no scenario in the frozen window violates an invariant.
  A failure here is a genuine finding; run ``repro fuzz run --seed 0
  --budget 25`` to get the shrunk reproducer, fix the bug, and keep
  the reproducer replaying green.
* **Frozen digest** — the campaign digest (every scenario's stage
  digests hashed in order) matches the recorded constant.  This pins
  scenario sampling *and* the end-to-end pipeline bit-for-bit: any
  intentional change to the sampler, simulator, defenses, feature
  extractors or oracle digesting shows up here, and the constant must
  be re-frozen in the same commit (and said out loud in review).
"""

import pytest

from repro.fuzz import run_fuzz

pytestmark = pytest.mark.slow

#: sha256 over ``{index}:ok:{outcome digest}`` for scenarios 0..24 of
#: campaign seed 0.  Re-freeze with:
#:   PYTHONPATH=src python -c "import tempfile; from repro.fuzz import \
#:     run_fuzz; print(run_fuzz(0, 25, tempfile.mkdtemp()).campaign_digest)"
FROZEN_CAMPAIGN_DIGEST = (
    "4a285962605e343d9bb28f4d15160fab78d05631a16f5e6f923c8cc5ca2f754a"
)

#: sha256 of an empty corpus (no reproducers quarantined).
EMPTY_CORPUS_DIGEST = (
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
)


def test_mini_fuzz_campaign_is_clean_and_frozen(tmp_path):
    report = run_fuzz(seed=0, budget=25, corpus_dir=tmp_path / "corpus")
    assert report.findings == [], (
        "mini-fuzz found a bug — reproducers under "
        f"{tmp_path / 'corpus'}: {report.bucket_counts()}"
    )
    assert report.scenarios == 25
    assert report.corpus_digest == EMPTY_CORPUS_DIGEST
    assert report.campaign_digest == FROZEN_CAMPAIGN_DIGEST, (
        "campaign digest drifted — the sampler or the pipeline changed "
        "behaviour; if intentional, re-freeze FROZEN_CAMPAIGN_DIGEST"
    )
    # The frozen window is not trivial: faults stall visits and some
    # scenarios legitimately skip eval — the corners stay exercised.
    assert report.stalls == 39
    assert report.eval_skipped == 13
