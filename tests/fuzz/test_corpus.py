"""Crash bucketing and the quarantine corpus on disk."""

import dataclasses
import json

import pytest

from repro.defenses import build_defense
from repro.fuzz.corpus import (
    SCHEMA,
    QuarantineCorpus,
    bucket_for,
    load_reproducer,
    scenario_digest,
)
from repro.fuzz.scenario import ScenarioSpec, SyntheticSpec


def small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        seed=0,
        index=0,
        source="synthetic",
        synthetic=(SyntheticSpec(kind="mixed", n_traces=1, n_packets=10),),
        sanitize=False,
        defense="original",
        attack="knn",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def catch(callable_):
    try:
        callable_()
    except Exception as exc:  # noqa: BLE001 — the exception is the fixture
        return exc
    raise AssertionError("expected an exception")


def test_bucket_pins_the_innermost_repro_frame():
    """The bucket names *our* raising line, not the call site here."""
    exc = catch(lambda: build_defense("nonexistent", seed=0))
    bucket = bucket_for(exc)
    assert bucket.etype == "ValueError"
    assert bucket.frame == "registry.py:build_defense"
    assert bucket.id == "ValueError@registry.py:build_defense"


def test_bucket_falls_back_to_the_innermost_frame():
    """An exception that never touches repro code still buckets."""

    def boom():
        raise RuntimeError("outside")

    bucket = bucket_for(catch(boom))
    assert bucket.etype == "RuntimeError"
    assert bucket.frame.startswith("test_corpus.py:")


def test_same_bug_from_different_scenarios_is_one_bucket():
    a = bucket_for(catch(lambda: build_defense("nonexistent")))
    b = bucket_for(catch(lambda: build_defense("also-nonexistent")))
    assert a == b


def test_corpus_add_is_idempotent(tmp_path):
    corpus = QuarantineCorpus(tmp_path / "corpus")
    exc = catch(lambda: build_defense("nonexistent"))
    spec = small_spec(defense="original")  # the (pretend-)shrunk spec
    audit = {"rounds": 1, "tried": 2, "accepted": 0}

    first = corpus.add(exc, spec, small_spec(defense="front"), audit)
    assert first.new and first.path.exists()
    second = corpus.add(exc, spec, small_spec(defense="front"), audit)
    assert not second.new
    assert second.path == first.path
    assert len(corpus.entries()) == 1


def test_corpus_digest_tracks_content(tmp_path):
    corpus = QuarantineCorpus(tmp_path / "corpus")
    assert corpus.entries() == [] and corpus.buckets() == {}
    empty = corpus.digest()

    exc = catch(lambda: build_defense("nonexistent"))
    corpus.add(exc, small_spec(), small_spec(), {})
    one = corpus.digest()
    assert one != empty

    # A second scenario hitting the same bucket is a distinct entry.
    corpus.add(exc, small_spec(index=7), small_spec(index=7), {})
    assert corpus.digest() != one
    assert len(corpus.buckets()) == 1
    assert len(corpus.entries()) == 2


def test_reproducer_payload_round_trips(tmp_path):
    corpus = QuarantineCorpus(tmp_path / "corpus")
    exc = catch(lambda: build_defense("nonexistent"))
    original = small_spec(defense="front", seed=3, index=11)
    minimal = small_spec(seed=3, index=11)
    entry = corpus.add(exc, minimal, original, {"rounds": 2})

    data = load_reproducer(entry.path)
    assert data["schema"] == SCHEMA
    assert data["bucket"]["id"] == entry.bucket.id
    assert data["campaign"] == {"seed": 3, "index": 11}
    assert "unknown defense" in data["message"]
    from repro.fuzz.scenario import scenario_from_jsonable

    assert scenario_from_jsonable(data["scenario"]) == minimal
    assert scenario_from_jsonable(data["original_scenario"]) == original


def test_load_reproducer_rejects_foreign_json(tmp_path):
    path = tmp_path / "not-a-repro.json"
    path.write_text(json.dumps({"schema": "something.else.v9"}))
    with pytest.raises(ValueError, match="not a fuzz reproducer"):
        load_reproducer(path)


def test_scenario_digest_is_content_addressed():
    spec = small_spec()
    assert scenario_digest(spec) == scenario_digest(dataclasses.replace(spec))
    assert scenario_digest(spec) != scenario_digest(small_spec(index=1))
