"""kTLS record-layer tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.tls import (
    AEAD_TAG,
    MAX_RECORD_PLAINTEXT,
    RECORD_HEADER,
    RECORD_OVERHEAD,
    RecordPaddingPolicy,
    TlsSession,
)
from repro.units import mbps, msec


def collector():
    sent = []
    return sent, lambda n: (sent.append(n), n)[1]


def test_small_message_single_record():
    sent, sink = collector()
    session = TlsSession(sink)
    out = session.send(1000)
    assert sent == [1000 + RECORD_OVERHEAD]
    assert out == 1000 + RECORD_OVERHEAD
    assert session.records == 1


def test_large_message_segments_into_records():
    sent, sink = collector()
    session = TlsSession(sink)
    session.send(MAX_RECORD_PLAINTEXT * 2 + 100)
    assert len(sent) == 3
    assert sent[0] == MAX_RECORD_PLAINTEXT + RECORD_OVERHEAD
    assert sent[2] == 100 + RECORD_OVERHEAD
    assert session.plaintext_bytes == MAX_RECORD_PLAINTEXT * 2 + 100


def test_record_padding_rounds_up():
    sent, sink = collector()
    session = TlsSession(sink, padding=RecordPaddingPolicy(quantum=512))
    session.send(100)
    assert sent == [512]
    assert session.padding_bytes == 512 - 100 - RECORD_OVERHEAD
    assert session.expansion > 1.0


def test_fixed_length_records_hide_sizes():
    quantum = MAX_RECORD_PLAINTEXT + RECORD_OVERHEAD
    sent, sink = collector()
    session = TlsSession(
        sink, padding=RecordPaddingPolicy(quantum=quantum)
    )
    session.send(10)
    session.send(9000)
    assert sent == [quantum, quantum]  # indistinguishable lengths


def test_expansion_default_is_overhead_only():
    sent, sink = collector()
    session = TlsSession(sink)
    session.send(MAX_RECORD_PLAINTEXT)
    assert session.expansion == pytest.approx(
        (MAX_RECORD_PLAINTEXT + RECORD_OVERHEAD) / MAX_RECORD_PLAINTEXT
    )
    assert TlsSession(sink).expansion == 1.0


def test_validation():
    with pytest.raises(ValueError):
        RecordPaddingPolicy(quantum=0)
    with pytest.raises(ValueError):
        TlsSession(lambda n: n, max_record=0)
    with pytest.raises(ValueError):
        TlsSession(lambda n: n).send(-1)


def test_tls_over_simulated_tcp():
    """Integration: kTLS on top of the TCP endpoint delivers the
    ciphertext byte count end to end."""
    sim = Simulator()
    path = NetworkPath(rate=mbps(20), rtt=msec(20))
    flow = make_flow(sim, path)
    session = TlsSession(flow.server.write)
    flow.server.on_established = lambda: session.send(100_000)
    flow.connect()
    sim.run(until=10.0)
    expected = 100_000 + session.records * RECORD_OVERHEAD
    assert flow.client.receive_buffer.delivered == expected
    assert session.records == 7  # ceil(100000 / 16384)
    assert RECORD_HEADER + AEAD_TAG == RECORD_OVERHEAD
