"""Flow pacer tests."""

import pytest

from repro.stack.pacing import FlowPacer


def test_unpaced_departs_immediately():
    pacer = FlowPacer()
    assert pacer.schedule(1.0, 1500, None) == 1.0
    assert pacer.schedule(1.0, 1500, 0.0) == 1.0


def test_paced_segments_are_spaced_by_serialization_time():
    pacer = FlowPacer()
    first = pacer.schedule(0.0, 1000, 1000.0)  # 1 second per segment
    second = pacer.schedule(0.0, 1000, 1000.0)
    assert first == 0.0
    assert second == pytest.approx(1.0)


def test_idle_flow_does_not_accumulate_credit_debt():
    pacer = FlowPacer()
    pacer.schedule(0.0, 1000, 1000.0)
    # Long idle: next departure is "now", not the stale next_allowed.
    assert pacer.schedule(10.0, 1000, 1000.0) == 10.0


def test_extra_gap_delays_and_is_cumulative():
    pacer = FlowPacer()
    first = pacer.schedule(0.0, 1000, 1000.0, extra_gap=0.5)
    second = pacer.schedule(0.0, 1000, 1000.0)
    assert first == pytest.approx(0.5)
    # The gap pushed next_allowed too: 0.5 + 1.0 serialization.
    assert second == pytest.approx(1.5)


def test_negative_gap_rejected():
    pacer = FlowPacer()
    with pytest.raises(ValueError):
        pacer.schedule(0.0, 100, None, extra_gap=-0.1)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        FlowPacer().schedule(0.0, -1, None)


def test_gap_accounting():
    pacer = FlowPacer()
    pacer.schedule(0.0, 100, None, extra_gap=0.2)
    pacer.schedule(0.0, 100, None, extra_gap=0.3)
    assert pacer.total_extra_gap == pytest.approx(0.5)
    assert pacer.scheduled_segments == 2


def test_reset():
    pacer = FlowPacer()
    pacer.schedule(0.0, 1000, 10.0)
    pacer.reset()
    assert pacer.next_allowed == 0.0
