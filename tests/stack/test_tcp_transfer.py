"""TCP endpoint integration tests over the simulated network.

These exercise the full transmit path: handshake, window growth,
TSO + pacing + qdisc, loss recovery and delivery guarantees.
"""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.tcp import TcpConfig
from repro.units import mbps, msec, mib


def run_transfer(
    nbytes,
    rate=mbps(50),
    rtt=msec(20),
    cc="cubic",
    loss=0.0,
    duration=30.0,
    buffer_bdp=1.0,
    seed=7,
):
    sim = Simulator()
    path = NetworkPath(
        rate=rate, rtt=rtt, buffer_bdp=buffer_bdp, loss_rate=loss
    )
    flow = make_flow(
        sim,
        path,
        client_config=TcpConfig(cc=cc),
        server_config=TcpConfig(cc=cc),
        rng=np.random.default_rng(seed),
    )
    flow.server.on_established = lambda: flow.server.write(nbytes)
    flow.connect()
    sim.run(until=duration)
    return sim, flow


def test_handshake_establishes_both_sides():
    sim, flow = run_transfer(0, duration=1.0)
    assert flow.client.established
    assert flow.server.established


def test_small_transfer_delivers_exactly():
    _sim, flow = run_transfer(10_000, duration=5.0)
    assert flow.client.receive_buffer.delivered == 10_000


@pytest.mark.parametrize("cc", ["reno", "cubic", "bbr"])
def test_bulk_transfer_completes_for_every_cca(cc):
    _sim, flow = run_transfer(mib(5), cc=cc, duration=20.0)
    assert flow.client.receive_buffer.delivered == mib(5)


def test_goodput_approaches_line_rate():
    nbytes = mib(10)
    sim, flow = run_transfer(nbytes, rate=mbps(50), duration=60.0)
    assert flow.client.receive_buffer.delivered == nbytes
    # 10 MiB at 50 Mb/s is ~1.7s ideal; allow generous protocol slack.
    # Completion implied by delivered == nbytes before the 60s horizon;
    # check the stack was not pathologically slow.
    assert flow.server.timeouts <= 2


def test_transfer_survives_random_loss():
    nbytes = mib(2)
    _sim, flow = run_transfer(nbytes, loss=0.01, duration=60.0, seed=3)
    assert flow.client.receive_buffer.delivered == nbytes
    assert flow.server.retransmissions > 0


def test_transfer_survives_tiny_buffer():
    nbytes = mib(3)
    _sim, flow = run_transfer(nbytes, buffer_bdp=0.3, duration=60.0)
    assert flow.client.receive_buffer.delivered == nbytes


def test_retransmissions_match_drops_without_random_loss():
    """Every retransmission should correspond to a genuine drop."""
    _sim, flow = run_transfer(mib(8), buffer_bdp=0.5, duration=60.0)
    drops = flow.reverse_link.queue.dropped
    assert flow.client.receive_buffer.delivered == mib(8)
    assert drops > 0
    # With the RACK-style knowledge horizon, retransmissions should
    # track genuine drops closely.
    assert flow.server.retransmissions <= 1.2 * drops + 20


def test_fin_signals_receiver():
    sim = Simulator()
    path = NetworkPath(rate=mbps(10), rtt=msec(10))
    flow = make_flow(sim, path)
    got_fin = []
    flow.client.on_fin = lambda: got_fin.append(sim.now)

    def start():
        flow.server.write(5000)
        flow.server.close()

    flow.server.on_established = start
    flow.connect()
    sim.run(until=5.0)
    assert flow.client.receive_buffer.delivered == 5000
    assert got_fin


def test_write_then_callback_fires_after_full_ack():
    sim = Simulator()
    path = NetworkPath(rate=mbps(10), rtt=msec(10))
    flow = make_flow(sim, path)
    acked = []
    flow.server.on_established = lambda: flow.server.write_then(
        20_000, lambda: acked.append(sim.now)
    )
    flow.connect()
    sim.run(until=5.0)
    assert acked
    assert flow.client.receive_buffer.delivered == 20_000


def test_duplex_transfer():
    """Both directions carry data simultaneously."""
    sim = Simulator()
    path = NetworkPath(rate=mbps(20), rtt=msec(20))
    flow = make_flow(sim, path)

    def start():
        flow.server.write(500_000)
        flow.client.write(100_000)

    flow.server.on_established = start
    flow.connect()
    sim.run(until=20.0)
    assert flow.client.receive_buffer.delivered == 500_000
    assert flow.server.receive_buffer.delivered == 100_000


def test_rtt_estimate_close_to_path_rtt():
    _sim, flow = run_transfer(mib(1), rtt=msec(40), duration=20.0)
    # srtt includes queueing; it must be at least the propagation RTT
    # and within a small multiple of it for a short transfer.
    assert flow.server.srtt >= 0.039
    assert flow.server.srtt < 0.40


def test_dummy_packets_are_not_delivered_as_data():
    sim = Simulator()
    path = NetworkPath(rate=mbps(10), rtt=msec(10))
    flow = make_flow(sim, path)

    def start():
        flow.server.inject_dummy(10_000)
        flow.server.write(5_000)

    flow.server.on_established = start
    flow.connect()
    sim.run(until=5.0)
    assert flow.client.receive_buffer.delivered == 5_000


def test_pacing_disabled_still_delivers():
    sim = Simulator()
    path = NetworkPath(rate=mbps(20), rtt=msec(20))
    flow = make_flow(
        sim,
        path,
        client_config=TcpConfig(pacing=False),
        server_config=TcpConfig(pacing=False),
    )
    flow.server.on_established = lambda: flow.server.write(mib(1))
    flow.connect()
    sim.run(until=20.0)
    assert flow.client.receive_buffer.delivered == mib(1)
