"""Congestion-control unit tests."""

import pytest

from repro.stack.cc import BbrLite, Cubic, Reno, make_cca
from repro.stack.cc.base import AckSample, CcPhase

MSS = 1448


def ack(bytes_=MSS, rtt=0.02, now=0.0, in_flight=0, rate=0.0):
    return AckSample(
        acked_bytes=bytes_, rtt=rtt, now=now, in_flight=in_flight,
        delivery_rate=rate,
    )


def test_factory():
    assert isinstance(make_cca("reno", MSS), Reno)
    assert isinstance(make_cca("CUBIC", MSS), Cubic)
    assert isinstance(make_cca("bbr", MSS), BbrLite)
    with pytest.raises(ValueError):
        make_cca("vegas", MSS)


def test_initial_window_is_iw10():
    assert Reno(MSS).cwnd == 10 * MSS


def test_reno_slow_start_doubles_per_acked_window():
    cca = Reno(MSS)
    start = cca.cwnd
    cca.on_ack(ack(bytes_=start))
    assert cca.cwnd == 2 * start
    assert cca.phase is CcPhase.SLOW_START


def test_reno_congestion_avoidance_grows_one_mss_per_window():
    cca = Reno(MSS)
    cca.ssthresh = cca.cwnd  # force CA
    before = cca.cwnd
    cca.on_ack(ack(bytes_=before))
    assert cca.cwnd == before + MSS
    assert cca.phase is CcPhase.CONGESTION_AVOIDANCE


def test_reno_loss_halves_and_freezes_in_recovery():
    cca = Reno(MSS)
    cca.cwnd = 100 * MSS
    cca.on_loss(0.0, 100 * MSS)
    assert cca.cwnd == 50 * MSS
    assert cca.phase is CcPhase.RECOVERY
    frozen = cca.cwnd
    cca.on_ack(ack())
    assert cca.cwnd == frozen
    cca.on_recovery_exit(0.1)
    assert cca.phase is not CcPhase.RECOVERY


def test_rto_collapses_to_one_mss_and_clears_recovery():
    for cls in (Reno, Cubic):
        cca = cls(MSS)
        cca.cwnd = 100 * MSS
        cca.on_loss(0.0, 0)
        cca.on_rto(1.0)
        assert cca.cwnd == MSS
        assert cca.phase is CcPhase.SLOW_START  # not stuck in recovery
        before = cca.cwnd
        cca.on_ack(ack(bytes_=MSS))
        assert cca.cwnd > before  # growth resumed


def test_cubic_reduces_by_beta_on_loss():
    cca = Cubic(MSS)
    cca.cwnd = 100 * MSS
    cca.ssthresh = 50 * MSS
    cca.on_loss(0.0, 0)
    assert cca.cwnd == pytest.approx(70 * MSS, rel=0.02)


def test_cubic_grows_toward_wmax_in_ca():
    cca = Cubic(MSS)
    cca.cwnd = 100 * MSS
    cca.on_loss(0.0, 0)
    cca.on_recovery_exit(0.0)
    start = cca.cwnd
    for step in range(200):
        cca.on_ack(ack(now=step * 0.01))
    assert cca.cwnd > start


def test_pacing_rate_ratio_slow_start_vs_ca():
    cca = Reno(MSS)
    srtt = 0.1
    ss_rate = cca.pacing_rate(srtt)
    assert ss_rate == pytest.approx(2.0 * cca.cwnd / srtt)
    cca.ssthresh = cca.cwnd  # CA
    ca_rate = cca.pacing_rate(srtt)
    assert ca_rate == pytest.approx(1.2 * cca.cwnd / srtt)
    assert cca.pacing_rate(-1.0) is None


def test_bbr_startup_exits_when_bandwidth_plateaus():
    cca = BbrLite(MSS)
    assert cca.phase is CcPhase.STARTUP
    for round_index in range(20):
        # Constant delivery rate: no 25% growth -> exit startup.
        cca.on_ack(
            ack(bytes_=cca.cwnd, rtt=0.02, now=round_index * 0.02, rate=1e6)
        )
        if cca.phase is not CcPhase.STARTUP:
            break
    assert cca.phase in (CcPhase.DRAIN, CcPhase.PROBE_BW)


def test_bbr_drain_exits_at_bdp():
    cca = BbrLite(MSS)
    for round_index in range(20):
        cca.on_ack(
            ack(bytes_=cca.cwnd, rtt=0.02, now=round_index * 0.02, rate=1e6)
        )
    cca.check_drain_exit(in_flight=0, now=1.0)
    assert cca.phase is CcPhase.PROBE_BW


def test_bbr_pacing_follows_btl_bw_and_gain():
    cca = BbrLite(MSS)
    cca._update_bw(2e6)
    rate = cca.pacing_rate(0.02)
    assert rate == pytest.approx(cca.pacing_gain * 2e6)


def test_bbr_min_rtt_filter():
    cca = BbrLite(MSS)
    cca.on_ack(ack(rtt=0.030))
    cca.on_ack(ack(rtt=0.020))
    cca.on_ack(ack(rtt=0.025))
    assert cca.min_rtt == pytest.approx(0.020)


def test_bbr_bw_window_expires_old_samples():
    cca = BbrLite(MSS)
    cca._update_bw(5e6)
    # Push many rounds with lower bandwidth; the old max must age out.
    for _ in range(40):
        cca._round += 1
        cca._update_bw(1e6)
    assert cca.btl_bw == pytest.approx(1e6)


def test_invalid_mss_rejected():
    with pytest.raises(ValueError):
        Reno(0)
