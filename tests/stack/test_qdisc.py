"""Qdisc tests: ordering, departure times, TSQ accounting."""

import pytest

from repro.simnet.engine import Simulator
from repro.stack.packet import TsoSegment
from repro.stack.qdisc import FifoQdisc, FqQdisc


def seg(flow_id=1, size=1000, not_before=-1.0):
    return TsoSegment(
        flow_id=flow_id,
        direction=1,
        seq=0,
        ack=0,
        packet_sizes=[size],
        not_before=not_before,
    )


def test_fifo_releases_in_order_asynchronously():
    sim = Simulator()
    got = []
    qdisc = FifoQdisc(sim, got.append)
    a, b = seg(), seg()
    qdisc.enqueue(a)
    qdisc.enqueue(b)
    assert got == []  # not released in the enqueue context
    sim.run()
    assert got == [a, b]


def test_fq_honours_departure_times_across_flows():
    sim = Simulator()
    got = []
    qdisc = FqQdisc(sim, lambda s: got.append((sim.now, s)))
    late = seg(flow_id=1, not_before=2.0)
    early = seg(flow_id=2, not_before=1.0)
    qdisc.enqueue(late)
    qdisc.enqueue(early)
    sim.run()
    assert [s for _t, s in got] == [early, late]
    assert got[0][0] == pytest.approx(1.0)
    assert got[1][0] == pytest.approx(2.0)


def test_fq_keeps_each_flow_fifo():
    """A later same-flow segment with an earlier departure time must
    not overtake (fq is per-flow FIFO); it departs with the queue."""
    sim = Simulator()
    got = []
    qdisc = FqQdisc(sim, lambda s: got.append((sim.now, s)))
    first = seg(flow_id=1, not_before=2.0)
    second = seg(flow_id=1, not_before=0.5)  # e.g. an unpaced retransmit
    qdisc.enqueue(first)
    qdisc.enqueue(second)
    sim.run()
    assert [s for _t, s in got] == [first, second]
    assert got[1][0] >= got[0][0]


def test_fq_releases_due_segments_immediately():
    sim = Simulator()
    got = []
    qdisc = FqQdisc(sim, got.append)
    qdisc.enqueue(seg(not_before=-1.0))
    sim.run()
    assert len(got) == 1


def test_tsq_budget_accounting():
    sim = Simulator()
    qdisc = FqQdisc(sim, lambda s: None, tsq_bytes=5000)
    assert qdisc.budget(1) == 5000
    segment = seg(flow_id=1, size=1000, not_before=100.0)
    qdisc.enqueue(segment)
    assert qdisc.budget(1) == 5000 - segment.wire_size
    assert qdisc.queued_bytes(1) == segment.wire_size
    assert qdisc.budget(2) == 5000  # per-flow


def test_tsq_drain_callback_fires_on_release():
    sim = Simulator()
    qdisc = FqQdisc(sim, lambda s: None)
    fired = []
    qdisc.on_drain(1, lambda: fired.append(sim.now))
    qdisc.enqueue(seg(flow_id=1, not_before=1.5))
    sim.run()
    assert fired == [pytest.approx(1.5)]
    assert qdisc.queued_bytes(1) == 0


def test_fq_timer_rearm_on_earlier_arrival():
    sim = Simulator()
    got = []
    qdisc = FqQdisc(sim, lambda s: got.append(sim.now))
    qdisc.enqueue(seg(flow_id=1, not_before=5.0))
    sim.run(until=0.5)
    qdisc.enqueue(seg(flow_id=2, not_before=1.0))
    sim.run()
    assert got == [pytest.approx(1.0), pytest.approx(5.0)]


def test_backlog_counts():
    sim = Simulator()
    qdisc = FqQdisc(sim, lambda s: None)
    qdisc.enqueue(seg(not_before=10.0))
    qdisc.enqueue(seg(not_before=20.0))
    assert qdisc.backlog == 2
    assert qdisc.next_departure() == pytest.approx(10.0)
    sim.run()
    assert qdisc.backlog == 0
    assert qdisc.next_departure() is None


def test_invalid_tsq():
    with pytest.raises(ValueError):
        FqQdisc(Simulator(), lambda s: None, tsq_bytes=0)
