"""Cross-cutting hypothesis properties of stack primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stack.pacing import FlowPacer
from repro.stack.tso import TsoPolicy
from repro.stob.actions import SizeSweepAction, SplitAction
from repro.stob.constraints import ConstraintReport


@given(
    st.lists(
        st.tuples(
            st.floats(0, 10, allow_nan=False),  # now (monotonic-ised)
            st.integers(40, 65_000),            # wire bytes
            st.floats(1e3, 1e9),                # pacing rate
            st.floats(0, 0.1),                  # extra gap
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=150)
def test_pacer_departures_never_decrease(calls):
    """fq invariant: a flow's departures are non-decreasing, whatever
    the call pattern."""
    pacer = FlowPacer()
    now = 0.0
    last = 0.0
    for delta, nbytes, rate, gap in calls:
        now += delta / 10
        departure = pacer.schedule(now, nbytes, rate, gap)
        assert departure >= now - 1e-12
        assert departure >= last - 1e-12
        last = departure


@given(
    st.floats(0, 1e12, allow_nan=False),
    st.integers(100, 9000),
)
@settings(max_examples=150)
def test_autosize_always_within_bounds(rate, mss):
    policy = TsoPolicy()
    segs = policy.autosize(rate, mss)
    assert 1 <= segs <= 44
    assert segs * mss <= 65536 or segs == 1


@given(st.integers(1, 200_000), st.integers(537, 9000))
@settings(max_examples=150)
def test_split_action_conserves_bytes(nbytes, mss):
    action = SplitAction(threshold=1200, factor=2)
    sizes = action.packet_sizes(nbytes, mss)
    assert sum(sizes) == nbytes
    assert all(0 < s <= mss for s in sizes)


@given(st.integers(0, 100), st.integers(1, 300))
@settings(max_examples=100)
def test_size_sweep_emits_valid_sizes_forever(alpha, steps):
    action = SizeSweepAction(alpha)
    for _ in range(steps):
        segs = action.tso_size(44)
        assert 1 <= segs <= 44
    sizes = action.packet_sizes(50_000, 1448)
    assert sum(sizes) == 50_000
    assert all(1 <= s <= 1448 for s in sizes)


@given(
    st.lists(st.integers(-2000, 4000), min_size=0, max_size=20),
    st.integers(1, 5000),
    st.integers(100, 2000),
)
@settings(max_examples=150)
def test_constraint_clamp_output_always_legal(sizes, nbytes, mss):
    """Whatever garbage an action returns, the clamped packetisation is
    legal: positive sizes, each <= mss, total <= nbytes."""
    report = ConstraintReport()
    cleaned = report.clamp_packet_sizes(list(sizes), nbytes, mss)
    if cleaned is not None:
        assert all(0 < s <= mss for s in cleaned)
        assert sum(cleaned) <= nbytes


@given(st.lists(st.integers(0, 400), min_size=1, max_size=60, unique=True))
@settings(max_examples=100)
def test_quic_stream_reassembly_any_order(offsets):
    """QUIC receive: byte ranges delivered in any order reassemble."""
    from repro.stack.buffers import ReceiveBuffer

    chunk = 100
    buf = ReceiveBuffer()
    contiguous = sorted(offsets) == list(range(len(offsets)))
    for offset in offsets:
        buf.receive(offset * chunk, chunk)
    # rcv_nxt equals the length of the initial contiguous run.
    run = 0
    have = set(offsets)
    while run in have:
        run += 1
    assert buf.rcv_nxt == run * chunk
