"""Cross-cutting hypothesis properties of stack primitives.

The batch/vectorized primitives of DESIGN §13 are pinned against their
sequential folds here: any divergence between ``add_many`` and repeated
``add``, ``schedule_batch`` and repeated ``schedule``, or the event
batch API and repeated ``call_at`` would silently break the
byte-identity guarantee the differential harness enforces end to end.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import EventLoop
from repro.stack.intervals import RangeSet
from repro.stack.packet import HEADER_BYTES, TsoSegment
from repro.stack.pacing import FlowPacer
from repro.stack.tso import TsoPolicy
from repro.stob.actions import SizeSweepAction, SplitAction
from repro.stob.constraints import ConstraintReport


@given(
    st.lists(
        st.tuples(
            st.floats(0, 10, allow_nan=False),  # now (monotonic-ised)
            st.integers(40, 65_000),            # wire bytes
            st.floats(1e3, 1e9),                # pacing rate
            st.floats(0, 0.1),                  # extra gap
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=150)
def test_pacer_departures_never_decrease(calls):
    """fq invariant: a flow's departures are non-decreasing, whatever
    the call pattern."""
    pacer = FlowPacer()
    now = 0.0
    last = 0.0
    for delta, nbytes, rate, gap in calls:
        now += delta / 10
        departure = pacer.schedule(now, nbytes, rate, gap)
        assert departure >= now - 1e-12
        assert departure >= last - 1e-12
        last = departure


@given(
    st.floats(0, 1e12, allow_nan=False),
    st.integers(100, 9000),
)
@settings(max_examples=150)
def test_autosize_always_within_bounds(rate, mss):
    policy = TsoPolicy()
    segs = policy.autosize(rate, mss)
    assert 1 <= segs <= 44
    assert segs * mss <= 65536 or segs == 1


@given(st.integers(1, 200_000), st.integers(537, 9000))
@settings(max_examples=150)
def test_split_action_conserves_bytes(nbytes, mss):
    action = SplitAction(threshold=1200, factor=2)
    sizes = action.packet_sizes(nbytes, mss)
    assert sum(sizes) == nbytes
    assert all(0 < s <= mss for s in sizes)


@given(st.integers(0, 100), st.integers(1, 300))
@settings(max_examples=100)
def test_size_sweep_emits_valid_sizes_forever(alpha, steps):
    action = SizeSweepAction(alpha)
    for _ in range(steps):
        segs = action.tso_size(44)
        assert 1 <= segs <= 44
    sizes = action.packet_sizes(50_000, 1448)
    assert sum(sizes) == 50_000
    assert all(1 <= s <= 1448 for s in sizes)


@given(
    st.lists(st.integers(-2000, 4000), min_size=0, max_size=20),
    st.integers(1, 5000),
    st.integers(100, 2000),
)
@settings(max_examples=150)
def test_constraint_clamp_output_always_legal(sizes, nbytes, mss):
    """Whatever garbage an action returns, the clamped packetisation is
    legal: positive sizes, each <= mss, total <= nbytes."""
    report = ConstraintReport()
    cleaned = report.clamp_packet_sizes(list(sizes), nbytes, mss)
    if cleaned is not None:
        assert all(0 < s <= mss for s in cleaned)
        assert sum(cleaned) <= nbytes


_range_strategy = st.tuples(
    st.integers(0, 100_000), st.integers(-500, 5_000)
).map(lambda t: (t[0], t[0] + t[1]))


@given(st.lists(_range_strategy, min_size=0, max_size=40))
@settings(max_examples=200)
def test_add_many_equals_per_range_fold(ranges):
    """Bulk SACK arithmetic: ``add_many`` produces the same set, byte
    total and newly-covered count as folding ``add`` range by range."""
    folded = RangeSet()
    newly_folded = 0
    for start, end in ranges:
        newly_folded += folded.add(start, end)
    batched = RangeSet()
    newly_batched = batched.add_many(ranges)
    assert batched.ranges == folded.ranges
    assert batched.total == folded.total
    assert newly_batched == newly_folded


@given(
    st.floats(0, 100, allow_nan=False),
    st.lists(st.integers(0, 65_000), min_size=1, max_size=50),
    st.one_of(st.none(), st.floats(1e3, 1e9)),
    st.floats(0, 0.05, allow_nan=False),
)
@settings(max_examples=200)
def test_pacer_batch_equals_per_segment_fold(now, sizes, rate, gap):
    """``schedule_batch`` release times are bit-identical to the
    per-segment ``schedule`` fold (same left-to-right float additions),
    including the pacer's carried state and stats."""
    sequential = FlowPacer()
    expected = [sequential.schedule(now, nbytes, rate, gap) for nbytes in sizes]
    batched = FlowPacer()
    departures = batched.schedule_batch(now, sizes, rate, gap)
    assert departures == expected  # exact float equality, no tolerance
    assert batched.next_allowed == sequential.next_allowed
    assert batched.scheduled_segments == sequential.scheduled_segments
    assert batched.total_extra_gap == sequential.total_extra_gap


@given(
    st.lists(st.integers(1, 1448), min_size=1, max_size=45),
    st.integers(0, 1 << 20),
    # SYN+FIN on one data segment cannot occur (handshake packets are
    # flag-only), so the roundtrip is only pinned for real combinations.
    st.sampled_from([(False, False), (True, False), (False, True)]),
)
@settings(max_examples=200)
def test_tso_split_merge_roundtrip(sizes, seq, flags):
    """A TSO split reassembles into exactly the segment that produced
    it: contiguous sequence space, per-packet sizes, flag placement."""
    syn, fin = flags
    segment = TsoSegment(
        flow_id=7, direction=1, seq=seq, ack=3, packet_sizes=sizes,
        is_syn=syn, is_fin=fin, ts_val=1.5, ts_ecr=0.5,
    )
    ids = itertools.count(1)
    packets = segment.split_packets(lambda: next(ids))
    assert [p.payload_len for p in packets] == sizes
    assert packets[0].seq == seq
    for prev, cur in zip(packets, packets[1:]):
        assert cur.seq == prev.end_seq  # contiguous, no gaps or overlap
    assert packets[-1].end_seq == segment.end_seq
    assert [p.is_syn for p in packets] == [syn] + [False] * (len(sizes) - 1)
    assert [p.is_fin for p in packets] == [False] * (len(sizes) - 1) + [fin]
    assert sum(p.payload_len for p in packets) == segment.payload_len
    assert sum(p.wire_size for p in packets) == (
        segment.payload_len + len(sizes) * HEADER_BYTES
    )
    assert all(p.ts_val == segment.ts_val and p.ts_ecr == segment.ts_ecr
               for p in packets)


@given(
    st.lists(
        st.tuples(
            st.sampled_from([0.0, 0.5, 1.0, 1.5]),  # deliberate time ties
            st.booleans(),                           # batch vs call_at
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=200)
def test_event_batch_ordering_preserves_time_seq(entries):
    """Mixed ``schedule_batch``/``call_at`` scheduling fires in exact
    (time, insertion) order — ties break by scheduling order, whichever
    API scheduled them."""
    loop = EventLoop()
    fired = []
    expected = sorted(
        range(len(entries)), key=lambda i: (entries[i][0], i)
    )

    def make(index):
        return lambda: fired.append(index)

    for index, (when, use_batch) in enumerate(entries):
        if use_batch:
            loop.schedule_batch([when], make(index))
        else:
            loop.call_at(when, make(index))
    loop.run()
    assert fired == expected


def test_event_batch_interleaves_with_heap_by_seq():
    """A batch posted before singleton events at the same instant fires
    first; one posted after fires last — the shared sequence counter is
    the only tie-breaker."""
    loop = EventLoop()
    fired = []
    loop.schedule_batch([1.0, 1.0], lambda: fired.append("early-batch"))
    loop.call_at(1.0, lambda: fired.append("single"))
    loop.schedule(1.0, lambda: fired.append("cancellable")).cancel()
    loop.schedule_batch([1.0], lambda: fired.append("late-batch"))
    loop.run()
    assert fired == ["early-batch", "early-batch", "single", "late-batch"]


@given(st.lists(st.integers(0, 400), min_size=1, max_size=60, unique=True))
@settings(max_examples=100)
def test_quic_stream_reassembly_any_order(offsets):
    """QUIC receive: byte ranges delivered in any order reassemble."""
    from repro.stack.buffers import ReceiveBuffer

    chunk = 100
    buf = ReceiveBuffer()
    contiguous = sorted(offsets) == list(range(len(offsets)))
    for offset in offsets:
        buf.receive(offset * chunk, chunk)
    # rcv_nxt equals the length of the initial contiguous run.
    run = 0
    have = set(offsets)
    while run in have:
        run += 1
    assert buf.rcv_nxt == run * chunk
