"""Interval arithmetic tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stack import intervals
from repro.stack.intervals import RangeSet, merged_gaps


# -- pure functions -------------------------------------------------------------


def test_insert_into_empty():
    assert intervals.insert([], 5, 10) == [(5, 10)]


def test_insert_noop_for_empty_range():
    assert intervals.insert([(1, 2)], 5, 5) == [(1, 2)]


def test_insert_merges_overlap_and_adjacency():
    ranges = [(0, 5), (10, 15)]
    assert intervals.insert(ranges, 5, 10) == [(0, 15)]
    assert intervals.insert(ranges, 3, 12) == [(0, 15)]
    assert intervals.insert(ranges, 20, 25) == [(0, 5), (10, 15), (20, 25)]


def test_trim_below():
    assert intervals.trim_below([(0, 5), (8, 12)], 9) == [(9, 12)]
    assert intervals.trim_below([(0, 5)], 10) == []


def test_union_merges():
    assert intervals.union([(0, 3)], [(2, 5), (7, 9)]) == [(0, 5), (7, 9)]


def test_subtract():
    assert intervals.subtract([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]
    assert intervals.subtract([(0, 10)], [(0, 10)]) == []
    assert intervals.subtract([(0, 10)], []) == [(0, 10)]


def test_first_gap():
    assert intervals.first_gap([(5, 10)], 0, 20) == (0, 5)
    assert intervals.first_gap([(0, 10)], 0, 20) == (10, 20)
    assert intervals.first_gap([(0, 20)], 0, 20) is None
    assert intervals.first_gap([], 5, 5) is None


def test_covered_bytes():
    assert intervals.covered_bytes([(0, 10), (20, 30)], 5, 25) == 10


# -- RangeSet ----------------------------------------------------------------------


def test_rangeset_add_returns_new_bytes():
    rs = RangeSet()
    assert rs.add(0, 10) == 10
    assert rs.add(5, 15) == 5
    assert rs.add(5, 15) == 0
    assert rs.total == 15
    assert rs.ranges == [(0, 15)]


def test_rangeset_adjacent_merge():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(10, 20)
    assert rs.ranges == [(0, 20)]


def test_rangeset_remove_splits():
    rs = RangeSet([(0, 20)])
    assert rs.remove(5, 10) == 5
    assert rs.ranges == [(0, 5), (10, 20)]
    assert rs.total == 15


def test_rangeset_remove_disjoint_is_noop():
    rs = RangeSet([(0, 5)])
    assert rs.remove(10, 20) == 0
    assert rs.total == 5


def test_rangeset_trim_below():
    rs = RangeSet([(0, 5), (8, 12)])
    assert rs.trim_below(9) == 6
    assert rs.ranges == [(9, 12)]


def test_rangeset_covered_in():
    rs = RangeSet([(0, 10), (20, 30)])
    assert rs.covered_in(5, 25) == 10
    assert rs.covered_in(30, 40) == 0


def test_rangeset_version_bumps_on_mutation():
    rs = RangeSet()
    v0 = rs.version
    rs.add(0, 5)
    assert rs.version > v0
    v1 = rs.version
    rs.remove(0, 2)
    assert rs.version > v1
    v2 = rs.version
    rs.clear()
    assert rs.version > v2


def test_merged_gaps():
    a = RangeSet([(5, 10)])
    b = RangeSet([(12, 15)])
    assert merged_gaps(a, b, 0, 20) == [(0, 5), (10, 12), (15, 20)]
    assert merged_gaps(a, b, 0, 0) == []
    assert merged_gaps(RangeSet(), RangeSet(), 3, 7) == [(3, 7)]


# -- hypothesis properties --------------------------------------------------------

range_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=40),
    ).map(lambda t: (t[0], t[0] + t[1])),
    max_size=20,
)


def _cover(ranges, size=260):
    mask = np.zeros(size, dtype=bool)
    for start, end in ranges:
        mask[start:end] = True
    return mask


@given(range_lists)
@settings(max_examples=200)
def test_rangeset_matches_boolean_mask_model(ops):
    """A RangeSet built by adds equals the naive boolean-mask union."""
    rs = RangeSet()
    mask = np.zeros(260, dtype=bool)
    for start, end in ops:
        rs.add(start, end)
        mask[start:end] = True
    assert rs.total == int(mask.sum())
    assert _cover(rs.ranges).tolist() == mask.tolist()
    # Invariants: sorted, disjoint, non-adjacent.
    ranges = rs.ranges
    for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
        assert e1 < s2


@given(range_lists, range_lists)
@settings(max_examples=100)
def test_rangeset_remove_matches_mask_model(adds, removes):
    rs = RangeSet()
    mask = np.zeros(260, dtype=bool)
    for start, end in adds:
        rs.add(start, end)
        mask[start:end] = True
    for start, end in removes:
        rs.remove(start, end)
        mask[start:end] = False
    assert rs.total == int(mask.sum())
    assert _cover(rs.ranges).tolist() == mask.tolist()


@given(range_lists, range_lists,
       st.integers(0, 250), st.integers(0, 250))
@settings(max_examples=100)
def test_merged_gaps_matches_mask_model(a_ranges, b_ranges, start, extra):
    limit = start + extra
    a, b = RangeSet(), RangeSet()
    mask = np.zeros(520, dtype=bool)
    for s, e in a_ranges:
        a.add(s, e)
        mask[s:e] = True
    for s, e in b_ranges:
        b.add(s, e)
        mask[s:e] = True
    gaps = merged_gaps(a, b, start, limit)
    expected = np.zeros(520, dtype=bool)
    expected[start:limit] = ~mask[start:limit]
    assert _cover(gaps, 520).tolist() == expected.tolist()


@given(range_lists, st.integers(0, 250), st.integers(0, 250))
@settings(max_examples=100)
def test_covered_in_matches_mask_model(adds, start, extra):
    end = start + extra
    rs = RangeSet()
    mask = np.zeros(520, dtype=bool)
    for s, e in adds:
        rs.add(s, e)
        mask[s:e] = True
    assert rs.covered_in(start, end) == int(mask[start:end].sum())
