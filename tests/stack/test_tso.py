"""TSO autosizing tests."""

import pytest

from repro.stack.tso import TsoPolicy
from repro.units import MAX_TSO_BYTES


def test_unpaced_flow_gets_max():
    policy = TsoPolicy()
    assert policy.autosize(0.0, 1448) == min(44, MAX_TSO_BYTES // 1448)


def test_autosize_tracks_one_ms_of_pacing():
    policy = TsoPolicy()
    # 14.48 MB/s -> 14.48 KB per ms -> 10 packets of 1448.
    assert policy.autosize(14.48e6, 1448) == 10


def test_autosize_clamps_to_min_segs():
    policy = TsoPolicy(min_segs=2)
    assert policy.autosize(1000.0, 1448) == 2


def test_autosize_clamps_to_max():
    policy = TsoPolicy(max_segs=44)
    assert policy.autosize(1e12, 1448) == 44


def test_autosize_respects_64k_hard_cap():
    policy = TsoPolicy(max_segs=1000)
    assert policy.autosize(1e12, 1448) == MAX_TSO_BYTES // 1448


def test_tiny_mss_cannot_exceed_hard_cap():
    policy = TsoPolicy(min_segs=2, max_segs=44)
    assert policy.autosize(1e12, 100) == 44


def test_invalid_parameters():
    with pytest.raises(ValueError):
        TsoPolicy(min_segs=0)
    with pytest.raises(ValueError):
        TsoPolicy(min_segs=5, max_segs=4)
    with pytest.raises(ValueError):
        TsoPolicy().autosize(1.0, 0)
