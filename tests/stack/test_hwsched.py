"""PIEO hardware-scheduler model tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.hwsched import PieoQdisc, fifo_rank
from repro.stack.host import Host, link_hosts, next_flow_id
from repro.stack.packet import TsoSegment
from repro.stack.qdisc import FqQdisc
from repro.units import mbps, msec, mib


def seg(flow_id=1, size=1000, not_before=-1.0):
    return TsoSegment(
        flow_id=flow_id, direction=1, seq=0, ack=0,
        packet_sizes=[size], not_before=not_before,
    )


def test_pieo_respects_eligibility_times():
    sim = Simulator()
    got = []
    qdisc = PieoQdisc(sim, lambda s: got.append((sim.now, s)))
    late = seg(flow_id=1, not_before=2.0)
    early = seg(flow_id=2, not_before=1.0)
    qdisc.enqueue(late)
    qdisc.enqueue(early)
    sim.run()
    assert [s for _t, s in got] == [early, late]
    assert got[0][0] == pytest.approx(1.0)


def test_pieo_rank_orders_simultaneously_eligible():
    """With a priority rank, the high-priority flow wins among
    eligible elements — the programmability PIEO adds over fq."""
    sim = Simulator()
    got = []

    def priority_rank(segment, sequence):
        # Flow 2 is high priority: always extract first when eligible.
        return (0 if segment.flow_id == 2 else 1) * 1e9 + sequence

    qdisc = PieoQdisc(sim, got.append, rank=priority_rank)
    low = seg(flow_id=1, not_before=1.0)
    high = seg(flow_id=2, not_before=1.0)
    qdisc.enqueue(low)
    qdisc.enqueue(high)
    sim.run()
    assert got == [high, low]


def test_pieo_matches_fq_for_edt_workload():
    """With the default FIFO rank, PIEO and fq release the same
    schedule for an EDT workload."""
    def run(qdisc_cls):
        sim = Simulator()
        got = []
        qdisc = qdisc_cls(sim, lambda s: got.append((round(sim.now, 9), id(s))))
        segments = [
            seg(flow_id=1 + (i % 2), not_before=0.01 * ((i * 7) % 5))
            for i in range(20)
        ]
        order = []
        for segment in segments:
            qdisc.enqueue(segment)
            order.append(id(segment))
        sim.run()
        return [(t, order.index(sid)) for t, sid in got]

    assert run(PieoQdisc) == run(FqQdisc)


def test_pieo_keeps_flows_fifo():
    sim = Simulator()
    got = []
    qdisc = PieoQdisc(sim, got.append)
    first = seg(flow_id=1, not_before=2.0)
    second = seg(flow_id=1, not_before=0.5)
    qdisc.enqueue(first)
    qdisc.enqueue(second)
    sim.run()
    assert got == [first, second]


def test_pieo_tsq_accounting_and_drain():
    sim = Simulator()
    qdisc = PieoQdisc(sim, lambda s: None, tsq_bytes=5000)
    fired = []
    qdisc.on_drain(1, lambda: fired.append(sim.now))
    qdisc.enqueue(seg(flow_id=1, not_before=1.0))
    assert qdisc.backlog == 1
    sim.run()
    assert fired
    assert qdisc.backlog == 0


def test_full_transfer_over_pieo():
    """End-to-end: a host with a PIEO 'NIC scheduler' still delivers."""
    sim = Simulator()
    client = Host(sim, "client")
    server = Host(sim, "server")
    link_hosts(sim, client, server, NetworkPath(rate=mbps(20), rtt=msec(20)))
    # Swap the server's qdisc for the hardware model.
    server.qdisc = PieoQdisc(sim, server.nic.transmit)
    flow_id = next_flow_id()
    c = client.add_endpoint(flow_id, 1)
    s = server.add_endpoint(flow_id, -1)
    s.on_established = lambda: s.write(mib(1))
    c.connect()
    sim.run(until=20.0)
    assert c.receive_buffer.delivered == mib(1)
