"""Send/receive buffer tests, including a hypothesis reassembly model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stack.buffers import ReceiveBuffer, SendBuffer


# -- SendBuffer ------------------------------------------------------------------


def test_write_take_ack_cycle():
    buf = SendBuffer()
    assert buf.write(1000) == 1000
    assert buf.sendable() == 1000
    assert buf.take(400) == 400
    assert buf.nxt == 400
    assert buf.ack_to(400) == 400
    assert buf.una == 400
    assert buf.buffered == 600


def test_write_respects_limit():
    buf = SendBuffer(limit=500)
    assert buf.write(1000) == 500
    assert buf.writable() == 0
    buf.take(500)
    buf.ack_to(500)
    assert buf.writable() == 500


def test_take_never_exceeds_written():
    buf = SendBuffer()
    buf.write(100)
    assert buf.take(500) == 100
    assert buf.take(1) == 0


def test_ack_beyond_nxt_advances_nxt():
    """After an RTO rewind, ACKs for pre-rewind data are valid."""
    buf = SendBuffer()
    buf.write(1000)
    buf.take(1000)
    buf.rewind_for_retransmit()
    assert buf.nxt == 0
    assert buf.ack_to(700) == 700
    assert buf.una == 700
    assert buf.nxt == 700


def test_ack_beyond_end_ignored():
    buf = SendBuffer()
    buf.write(100)
    buf.take(100)
    assert buf.ack_to(200) == 0
    assert buf.una == 0


def test_stale_and_duplicate_acks_ignored():
    buf = SendBuffer()
    buf.write(100)
    buf.take(100)
    buf.ack_to(50)
    assert buf.ack_to(50) == 0
    assert buf.ack_to(30) == 0


def test_mark_fires_when_all_written_data_acked():
    buf = SendBuffer()
    fired = []
    buf.write(100)
    buf.mark(lambda: fired.append("a"))
    buf.take(100)
    buf.ack_to(99)
    assert fired == []
    buf.ack_to(100)
    assert fired == ["a"]


def test_mark_fires_immediately_when_nothing_outstanding():
    buf = SendBuffer()
    fired = []
    buf.mark(lambda: fired.append("now"))
    assert fired == ["now"]


def test_negative_write_take_rejected():
    buf = SendBuffer()
    with pytest.raises(ValueError):
        buf.write(-1)
    with pytest.raises(ValueError):
        buf.take(-1)


# -- ReceiveBuffer ----------------------------------------------------------------


def test_in_order_delivery():
    buf = ReceiveBuffer()
    got = []
    buf.on_data(got.append)
    assert buf.receive(0, 100) == 100
    assert buf.receive(100, 50) == 150
    assert got == [100, 50]


def test_out_of_order_held_then_delivered():
    buf = ReceiveBuffer()
    got = []
    buf.on_data(got.append)
    buf.receive(100, 100)  # hole at [0, 100)
    assert buf.rcv_nxt == 0
    assert buf.sack_ranges() == ((100, 200),)
    buf.receive(0, 100)
    assert buf.rcv_nxt == 200
    assert got == [200]


def test_duplicate_data_does_not_double_deliver():
    buf = ReceiveBuffer()
    got = []
    buf.on_data(got.append)
    buf.receive(0, 100)
    buf.receive(0, 100)
    buf.receive(50, 50)
    assert got == [100]


def test_sack_blocks_coalesce_and_report_recent_first():
    buf = ReceiveBuffer()
    buf.receive(100, 100)
    buf.receive(300, 100)
    buf.receive(200, 100)  # joins both
    assert buf.sack_ranges() == ((100, 400),)
    buf.receive(600, 50)
    # Most recently grown block first.
    assert buf.sack_ranges()[0] == (600, 650)


def test_window_trimming():
    buf = ReceiveBuffer(window=100)
    buf.receive(0, 250)
    assert buf.rcv_nxt == 100


def test_bad_constructor_and_length():
    with pytest.raises(ValueError):
        ReceiveBuffer(window=0)
    buf = ReceiveBuffer()
    with pytest.raises(ValueError):
        buf.receive(0, -1)


@given(
    st.permutations(list(range(20))),
    st.integers(1, 5),
)
@settings(max_examples=100)
def test_reassembly_order_independence(order, chunk):
    """Delivering the same chunks in any order yields the same stream."""
    buf = ReceiveBuffer()
    total = []
    buf.on_data(total.append)
    for index in order:
        buf.receive(index * chunk, chunk)
    assert buf.rcv_nxt == 20 * chunk
    assert sum(total) == 20 * chunk
    assert buf.sack_ranges() == ()
