"""NIC, CPU model and host wiring tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import Host, link_hosts, make_flow, next_flow_id
from repro.stack.nic import Cpu, CpuModel, Nic
from repro.stack.packet import Packet, TsoSegment
from repro.units import mbps, msec


def test_cpu_model_costs_scale_with_shape():
    model = CpuModel()
    big = model.segment_cost(44 * 1448, 44)
    small = model.segment_cost(1448, 1)
    assert big > small
    # Cost per byte is lower for the big segment (amortised overheads).
    assert big / (44 * 1448) < small / 1448


def test_cpu_model_max_throughput_monotone_in_tso():
    model = CpuModel()
    t_big = model.max_throughput(44 * 1448, 44)
    t_small = model.max_throughput(4 * 1448, 4)
    assert t_big > t_small


def test_cpu_serialises_work():
    sim = Simulator()
    cpu = Cpu(sim, CpuModel())
    first = cpu.consume(0.5)
    second = cpu.consume(0.5)
    assert first == pytest.approx(0.5)
    assert second == pytest.approx(1.0)
    assert cpu.utilization(2.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        cpu.consume(-1.0)


def test_nic_tso_split_and_taps():
    sim = Simulator()
    sent = []
    nic = Nic(sim, lambda p: (sent.append(p), True)[1])
    observed = []
    nic.add_tap(lambda p, t: observed.append((p.payload_len, t)))
    segment = TsoSegment(
        flow_id=1, direction=-1, seq=0, ack=0, packet_sizes=[1000, 1000, 500]
    )
    packets = nic.transmit(segment)
    assert len(packets) == 3
    assert nic.tx_packets == 3
    assert nic.tx_segments == 1
    assert nic.tx_payload_bytes == 2500
    assert [o[0] for o in observed] == [1000, 1000, 500]
    # Micro-burst: all packets handed over at the same instant.
    assert len({o[1] for o in observed}) == 1


def test_nic_counts_drops():
    sim = Simulator()
    nic = Nic(sim, lambda p: False)
    nic.transmit(TsoSegment(flow_id=1, direction=1, seq=0, ack=0,
                            packet_sizes=[100]))
    assert nic.dropped == 1
    assert nic.tx_packets == 0


def test_nic_send_packet_assigns_id_and_stamps():
    sim = Simulator()
    nic = Nic(sim, lambda p: True)
    packet = Packet(flow_id=1, direction=1)
    assert nic.send_packet(packet)
    assert packet.packet_id > 0
    assert packet.sent_at == sim.now


def test_host_requires_link_before_endpoint():
    sim = Simulator()
    host = Host(sim, "h")
    with pytest.raises(RuntimeError):
        host.add_endpoint(1, 1)


def test_host_rejects_double_attach_and_duplicate_flow():
    sim = Simulator()
    a = Host(sim, "a")
    b = Host(sim, "b")
    link_hosts(sim, a, b, NetworkPath(rate=mbps(10), rtt=msec(10)))
    with pytest.raises(RuntimeError):
        link_hosts(sim, a, b, NetworkPath(rate=mbps(10), rtt=msec(10)))
    a.add_endpoint(1, 1)
    with pytest.raises(ValueError):
        a.add_endpoint(1, 1)


def test_host_unknown_qdisc():
    sim = Simulator()
    host = Host(sim, "h", qdisc_kind="htb")
    host_link = NetworkPath(rate=mbps(10), rtt=msec(10))
    peer = Host(sim, "p")
    with pytest.raises(ValueError):
        link_hosts(sim, host, peer, host_link)


def test_make_flow_unique_ids():
    sim = Simulator()
    path = NetworkPath(rate=mbps(10), rtt=msec(10))
    first = make_flow(sim, path)
    second = make_flow(Simulator(), path)
    assert first.flow_id != second.flow_id
    assert next_flow_id() > second.flow_id


def test_unknown_flow_packets_are_ignored():
    sim = Simulator()
    path = NetworkPath(rate=mbps(10), rtt=msec(10))
    flow = make_flow(sim, path)
    stray = Packet(flow_id=999_999, direction=1)
    flow.client_host.receive(stray)  # must not raise
