"""Packet and TSO-segment tests."""

import pytest

from repro.stack.packet import HEADER_BYTES, Packet, TsoSegment


def test_packet_wire_size_includes_headers():
    packet = Packet(flow_id=1, direction=1, payload_len=1000)
    assert packet.wire_size == 1000 + HEADER_BYTES


def test_packet_end_seq_counts_payload_and_flags():
    data = Packet(flow_id=1, direction=1, seq=100, payload_len=50)
    assert data.end_seq == 150
    syn = Packet(flow_id=1, direction=1, seq=0, is_syn=True)
    assert syn.end_seq == 1
    fin = Packet(flow_id=1, direction=-1, seq=10, payload_len=5, is_fin=True)
    assert fin.end_seq == 16


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(flow_id=1, direction=0)
    with pytest.raises(ValueError):
        Packet(flow_id=1, direction=1, payload_len=-1)


def test_packet_is_data():
    assert Packet(flow_id=1, direction=1, payload_len=1).is_data
    assert not Packet(flow_id=1, direction=1).is_data


def test_tso_segment_split_produces_expected_packets():
    counter = iter(range(1, 100))
    segment = TsoSegment(
        flow_id=7,
        direction=-1,
        seq=1000,
        ack=55,
        packet_sizes=[500, 500, 200],
    )
    packets = segment.split_packets(lambda: next(counter))
    assert [p.payload_len for p in packets] == [500, 500, 200]
    assert [p.seq for p in packets] == [1000, 1500, 2000]
    assert all(p.ack == 55 and p.flow_id == 7 for p in packets)
    assert segment.payload_len == 1200
    assert segment.num_packets == 3
    assert segment.wire_size == 1200 + 3 * HEADER_BYTES


def test_tso_segment_fin_goes_on_last_packet():
    segment = TsoSegment(
        flow_id=1, direction=1, seq=0, ack=0,
        packet_sizes=[100, 100], is_fin=True,
    )
    packets = segment.split_packets(lambda: 0)
    assert not packets[0].is_fin
    assert packets[1].is_fin


def test_tso_segment_empty_sizes_yields_one_control_packet():
    segment = TsoSegment(flow_id=1, direction=1, seq=5, ack=0, is_fin=True)
    packets = segment.split_packets(lambda: 0)
    assert len(packets) == 1
    assert packets[0].payload_len == 0
    assert packets[0].is_fin


def test_tso_segment_rejects_nonpositive_sizes():
    with pytest.raises(ValueError):
        TsoSegment(flow_id=1, direction=1, seq=0, ack=0, packet_sizes=[0])


def test_dummy_flag_propagates_to_packets():
    segment = TsoSegment(
        flow_id=1, direction=-1, seq=0, ack=0, packet_sizes=[100], dummy=True
    )
    assert segment.split_packets(lambda: 0)[0].dummy
