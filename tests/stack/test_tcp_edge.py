"""TCP edge-case and failure-injection tests."""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.tcp import TcpConfig
from repro.units import kbps, mbps, msec, mib


def build(rate=mbps(20), rtt=msec(20), loss=0.0, seed=1, **kw):
    sim = Simulator()
    path = NetworkPath(rate=rate, rtt=rtt, loss_rate=loss)
    flow = make_flow(
        sim, path, rng=np.random.default_rng(seed),
        client_config=kw.pop("client_config", TcpConfig()),
        server_config=kw.pop("server_config", TcpConfig()),
    )
    return sim, flow


def test_syn_loss_retries_until_established():
    # Heavy loss: the handshake must eventually complete via retries.
    sim, flow = build(loss=0.4, seed=5)
    flow.connect()
    sim.run(until=30.0)
    assert flow.client.established
    assert flow.server.established


def test_ack_path_loss_does_not_stall_transfer():
    """Losing ACKs (reverse direction for the server) must not break
    delivery — cumulative ACKs are self-healing."""
    sim, flow = build(loss=0.05, seed=7)
    flow.server.on_established = lambda: flow.server.write(mib(1))
    flow.connect()
    sim.run(until=60.0)
    assert flow.client.receive_buffer.delivered == mib(1)


def test_idle_connection_fires_no_rto():
    sim, flow = build()
    flow.connect()
    sim.run(until=1.0)
    before = flow.server.timeouts
    sim.run(until=10.0)
    assert flow.server.timeouts == before


def test_two_sequential_transfers_on_one_connection():
    """App-limited pattern: burst, idle, burst (web-like)."""
    sim, flow = build()
    flow.server.on_established = lambda: flow.server.write(200_000)
    flow.connect()
    sim.run(until=3.0)
    assert flow.client.receive_buffer.delivered == 200_000
    flow.server.write(300_000)
    sim.run(until=8.0)
    assert flow.client.receive_buffer.delivered == 500_000


def test_tiny_receive_window_throttles_but_delivers():
    sim, flow = build(
        server_config=TcpConfig(),
        client_config=TcpConfig(receive_window=16 * 1448),
    )
    flow.server.on_established = lambda: flow.server.write(300_000)
    flow.connect()
    sim.run(until=30.0)
    assert flow.client.receive_buffer.delivered == 300_000
    # rwnd-limited: in flight never exceeded the advertised window.
    assert flow.server.peer_rwnd == 16 * 1448


def test_slow_link_completes_small_transfer():
    sim, flow = build(rate=kbps(256), rtt=msec(100))
    flow.server.on_established = lambda: flow.server.write(50_000)
    flow.connect()
    sim.run(until=30.0)
    assert flow.client.receive_buffer.delivered == 50_000


def test_send_buffer_limit_applies_backpressure():
    sim, flow = build(
        server_config=TcpConfig(send_buffer=64 * 1024),
    )
    written = []

    def start():
        written.append(flow.server.write(mib(1)))

    flow.server.on_established = start
    flow.connect()
    sim.run(until=1.0)
    assert written[0] == 64 * 1024  # only the buffer's worth accepted


def test_heavy_loss_still_converges():
    sim, flow = build(loss=0.10, seed=11)
    flow.server.on_established = lambda: flow.server.write(300_000)
    flow.connect()
    sim.run(until=60.0)
    assert flow.client.receive_buffer.delivered == 300_000
    assert flow.server.retransmissions > 0


def test_quickack_then_delayed_ack_cadence():
    """After the quickack phase, roughly one ACK per two data packets."""
    sim, flow = build()
    acks = []
    flow.client_host.nic.add_tap(
        lambda p, t: acks.append(t) if p.payload_len == 0 else None
    )
    datas = []
    flow.server_host.nic.add_tap(
        lambda p, t: datas.append(t) if p.payload_len else None
    )
    flow.server.on_established = lambda: flow.server.write(mib(1))
    flow.connect()
    sim.run(until=20.0)
    assert flow.client.receive_buffer.delivered == mib(1)
    # ACK count is roughly half the data count (within a loose band).
    assert 0.3 * len(datas) < len(acks) < 0.9 * len(datas)


def test_bidirectional_loss_and_duplex_data():
    sim, flow = build(loss=0.03, seed=13)

    def start():
        flow.server.write(400_000)
        flow.client.write(100_000)

    flow.server.on_established = start
    flow.connect()
    sim.run(until=60.0)
    assert flow.client.receive_buffer.delivered == 400_000
    assert flow.server.receive_buffer.delivered == 100_000
