"""Integration tests for the asynchronous send path of Figure 1.

The paper's core systems argument: data posted by the application is
*not* transmitted in the posting context — windows defer it, the qdisc
decouples it, and TSO splits it at line rate.  These tests pin that
behaviour down in the model.
"""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.tcp import TcpConfig
from repro.units import mbps, msec, mib


def build(rate=mbps(20), rtt=msec(20), **kwargs):
    sim = Simulator()
    path = NetworkPath(rate=rate, rtt=rtt)
    flow = make_flow(sim, path, **kwargs)
    return sim, flow


def test_write_returns_before_transmission():
    """send() semantics: posting data does not transmit it."""
    sim, flow = build()
    flow.connect()
    sim.run(until=1.0)  # handshake done
    taken = flow.server.write(mib(1))
    assert taken == mib(1)
    # Nothing on the wire yet in the writing context.
    assert flow.server_host.nic.tx_payload_bytes == 0


def test_window_defers_transmission_until_acks():
    """Only ~IW10 leaves immediately; the rest waits for ACK clock."""
    sim, flow = build()
    flow.connect()
    sim.run(until=1.0)
    flow.server.write(mib(1))
    # Run a hair of time: less than one RTT, so no ACKs yet.
    sim.run(until=sim.now + 0.005)
    sent = flow.server_host.nic.tx_payload_bytes
    assert 0 < sent <= 16 * 1448  # roughly the initial window
    sim.run(until=sim.now + 5.0)
    assert flow.client.receive_buffer.delivered == mib(1)


def test_tso_produces_microbursts():
    """Packets of one TSO segment leave the NIC at the same instant."""
    sim, flow = build(rate=mbps(1000), rtt=msec(10))
    stamps = []
    flow.server_host.nic.add_tap(
        lambda p, t: stamps.append(t) if p.payload_len else None
    )
    flow.server.on_established = lambda: flow.server.write(mib(2))
    flow.connect()
    sim.run(until=5.0)
    stamps = np.asarray(stamps)
    same_instant = np.sum(np.diff(stamps) == 0.0)
    assert same_instant > 10  # plenty of multi-packet bursts


def test_pacing_spreads_tso_segments():
    """fq pacing: segment departures are spaced, not back-to-back."""
    sim, flow = build(rate=mbps(50), rtt=msec(30))
    departures = []
    original = flow.server_host.nic.transmit

    def spy(segment):
        departures.append(sim.now)
        return original(segment)

    flow.server_host.qdisc._sink = spy
    flow.server.on_established = lambda: flow.server.write(mib(1))
    flow.connect()
    sim.run(until=10.0)
    gaps = np.diff(departures)
    assert (gaps > 0).sum() > len(gaps) * 0.4


def test_tsq_bounds_qdisc_backlog():
    """TCP Small Queues: the below-TCP backlog stays bounded."""
    sim, flow = build(rate=mbps(5), rtt=msec(50))
    peak = {"bytes": 0}
    qdisc = flow.server_host.qdisc
    original = qdisc.enqueue

    def spy(segment):
        original(segment)
        peak["bytes"] = max(peak["bytes"], qdisc.queued_bytes(segment.flow_id))

    qdisc.enqueue = spy
    flow.server.on_established = lambda: flow.server.write(mib(2))
    flow.connect()
    sim.run(until=20.0)
    assert flow.client.receive_buffer.delivered == mib(2)
    assert peak["bytes"] <= qdisc.tsq_bytes + 70 * 1500


def test_small_mss_harms_efficiency():
    """§2.3's HTTPOS point: a small MSS costs packets for the lifetime
    of the connection (here: many more packets on the wire)."""
    def packets_for(mss):
        sim, flow = build(
            client_config=TcpConfig(mss=mss), server_config=TcpConfig(mss=mss)
        )
        flow.server.on_established = lambda: flow.server.write(500_000)
        flow.connect()
        sim.run(until=20.0)
        assert flow.client.receive_buffer.delivered == 500_000
        return flow.server_host.nic.tx_packets

    assert packets_for(536) > 1.8 * packets_for(1448)
