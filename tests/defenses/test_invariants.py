"""Registry-driven invariant tests: properties every defense must hold.

Instead of per-defense assertions, these tests parametrize over the
whole :func:`repro.defenses.registry.implemented_defenses` registry —
a defense added later is covered automatically, with no test edits.

The invariants:

* the defended trace is a valid :class:`Trace` — monotone
  non-decreasing timestamps, directions in {+1, -1}, positive sizes
  (construction enforces these, so we re-check explicitly on the
  arrays to catch any future relaxation of the constructor);
* the defense is pure: the input trace is never mutated;
* the defense is deterministic under a fixed seed;
* the overhead accounting matches reality: the bandwidth / latency /
  packet overhead functions must equal the deltas recomputed
  independently from the raw arrays, and ``overhead_summary`` means
  must equal a per-trace recomputation.
"""

import numpy as np
import pytest

from repro.capture.dataset import Dataset
from repro.capture.trace import IN, OUT, Trace
from repro.defenses.overhead import (
    bandwidth_overhead,
    latency_overhead,
    overhead_summary,
    packet_overhead,
)
from repro.defenses.registry import build_defense, implemented_defenses

ALL_DEFENSES = implemented_defenses()
SEEDS = (0, 7)


def make_trace(seed, n=150):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(0.005, n))
    times -= times[0]
    dirs = rng.choice([IN, IN, IN, OUT], size=n).astype(np.int8)
    sizes = rng.integers(80, 1501, size=n)
    return Trace(times, dirs, sizes)


def test_registry_is_nonempty_and_stable():
    assert len(ALL_DEFENSES) >= 10
    assert ALL_DEFENSES == tuple(sorted(ALL_DEFENSES))
    assert "original" in ALL_DEFENSES


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", ALL_DEFENSES)
def test_defended_trace_is_well_formed(name, seed):
    trace = make_trace(seed)
    defended = build_defense(name, seed=seed).apply(trace)
    assert len(defended) > 0
    # Re-assert the Trace invariants on the raw arrays.
    assert np.all(np.diff(defended.times) >= -1e-12), f"{name}: times regress"
    assert np.all(np.isin(defended.directions, (OUT, IN))), f"{name}: bad direction"
    assert np.all(defended.sizes > 0), f"{name}: non-positive size"
    assert np.all(np.isfinite(defended.times)), f"{name}: non-finite time"


@pytest.mark.parametrize("name", ALL_DEFENSES)
def test_defense_does_not_mutate_input(name):
    trace = make_trace(3)
    times, dirs, sizes = (
        trace.times.copy(), trace.directions.copy(), trace.sizes.copy()
    )
    build_defense(name, seed=3).apply(trace)
    assert np.array_equal(trace.times, times), name
    assert np.array_equal(trace.directions, dirs), name
    assert np.array_equal(trace.sizes, sizes), name


@pytest.mark.parametrize("name", ALL_DEFENSES)
def test_defense_deterministic_under_seed(name):
    trace = make_trace(5)
    a = build_defense(name, seed=9).apply(trace)
    b = build_defense(name, seed=9).apply(trace)
    assert np.array_equal(a.times, b.times), name
    assert np.array_equal(a.directions, b.directions), name
    assert np.array_equal(a.sizes, b.sizes), name


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", ALL_DEFENSES)
def test_overhead_accounting_matches_actual_bytes_and_time(name, seed):
    """The overhead functions must agree with deltas recomputed
    directly from the arrays — accounting can't drift from reality."""
    trace = make_trace(seed)
    defended = build_defense(name, seed=seed).apply(trace)

    base_bytes = int(trace.sizes.sum())
    defended_bytes = int(defended.sizes.sum())
    assert bandwidth_overhead(trace, defended) == pytest.approx(
        (defended_bytes - base_bytes) / base_bytes
    ), name

    base_duration = float(trace.times[-1] - trace.times[0])
    defended_duration = (
        float(defended.times[-1] - defended.times[0]) if len(defended) > 1 else 0.0
    )
    assert latency_overhead(trace, defended) == pytest.approx(
        (defended_duration - base_duration) / base_duration
    ), name

    assert packet_overhead(trace, defended) == pytest.approx(
        (len(defended) - len(trace)) / len(trace)
    ), name

    # Padding-only and delay-only defenses must not *lose* payload.
    assert defended_bytes >= 0
    if name == "original":
        assert defended_bytes == base_bytes


@pytest.mark.parametrize("name", ("original", "front", "split", "delayed"))
def test_overhead_summary_matches_per_trace_recomputation(name):
    ds = Dataset()
    for label, seed in (("a", 1), ("a", 2), ("b", 3)):
        ds.add(label, make_trace(seed, n=100))

    defense = build_defense(name, seed=4)
    summary = overhead_summary(ds, defense)

    bw, lat, pkt = [], [], []
    for _label, trace in ds:
        defended = build_defense(name, seed=4).apply(trace)
        bw.append(bandwidth_overhead(trace, defended))
        lat.append(latency_overhead(trace, defended))
        pkt.append(packet_overhead(trace, defended))
    assert summary["n_traces"] == 3
    assert summary["bandwidth"] == pytest.approx(np.mean(bw)), name
    assert summary["latency"] == pytest.approx(np.mean(lat)), name
    assert summary["packets"] == pytest.approx(np.mean(pkt)), name
