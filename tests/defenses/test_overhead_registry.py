"""Overhead metrics and the Table-1 registry."""

import numpy as np
import pytest

from repro.capture.dataset import Dataset
from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import NoDefense
from repro.defenses.front import FrontDefense
from repro.defenses.overhead import (
    bandwidth_overhead,
    latency_overhead,
    overhead_summary,
    packet_overhead,
)
from repro.defenses.registry import (
    DEFENSE_TAXONOMY,
    build_defense,
    implemented_defenses,
)


def small_dataset(rng):
    ds = Dataset()
    for label in ("a", "b"):
        for _ in range(4):
            n = 80
            times = np.cumsum(rng.exponential(0.01, n))
            dirs = rng.choice([IN, IN, OUT], n).astype(np.int8)
            sizes = rng.integers(100, 1501, n)
            ds.add(label, Trace(times - times[0], dirs, sizes))
    return ds


def test_bandwidth_overhead_zero_for_identity(random_trace):
    assert bandwidth_overhead(random_trace, random_trace) == 0.0
    assert latency_overhead(random_trace, random_trace) == 0.0
    assert packet_overhead(random_trace, random_trace) == 0.0


def test_bandwidth_overhead_positive_for_padding(random_trace):
    out = FrontDefense(seed=0).apply(random_trace)
    assert bandwidth_overhead(random_trace, out) > 0


def test_overhead_rejects_empty(random_trace):
    with pytest.raises(ValueError):
        bandwidth_overhead(Trace.empty(), random_trace)


def test_overhead_summary_aggregates(rng):
    ds = small_dataset(rng)
    summary = overhead_summary(ds, NoDefense())
    assert summary["bandwidth"] == 0.0
    assert summary["latency"] == 0.0
    assert summary["n_traces"] == 8
    padded = overhead_summary(ds, FrontDefense(seed=1))
    assert padded["bandwidth"] > 0
    assert padded["packets"] > 0


def test_overhead_summary_max_traces(rng):
    ds = small_dataset(rng)
    summary = overhead_summary(ds, NoDefense(), max_traces=3)
    assert summary["n_traces"] == 3


def test_taxonomy_covers_papers_rows():
    systems = {info.system for info in DEFENSE_TAXONOMY}
    for expected in (
        "ALPaCA", "BuFLO", "RegulaTor", "Surakav", "Palette", "WTF-PAD",
        "FRONT", "BLANKET", "Morphing", "HTTPOS", "Burst Defense", "Cactus",
        "Adaptive FRONT", "QCSD", "pad-resources", "NetShaper",
    ):
        assert expected in systems


def test_taxonomy_strategies_match_paper():
    by_name = {info.system: info for info in DEFENSE_TAXONOMY}
    assert by_name["BuFLO"].strategy == "Regularization"
    assert by_name["FRONT"].strategy == "Obfuscation"
    assert by_name["NetShaper"].target == "TLS & QUIC"
    assert by_name["QCSD"].target == "QUIC"
    assert "packet size" in by_name["HTTPOS"].manipulations


def test_build_defense_factory(random_trace):
    for name in implemented_defenses():
        defense = build_defense(name, seed=1)
        out = defense.apply(random_trace)
        assert np.all(np.diff(out.times) >= -1e-12)
    with pytest.raises(ValueError):
        build_defense("nope")


def test_build_defense_passes_kwargs(random_trace):
    defense = build_defense("split", threshold=800)
    out = defense.apply(random_trace)
    assert out.filter_direction(IN).sizes.max() <= 800
