"""Morphing, Palette-lite and Adaptive FRONT tests."""

import numpy as np
import pytest

from repro.capture.dataset import Dataset
from repro.capture.trace import IN, OUT, Trace
from repro.defenses.adaptive_front import AdaptiveFrontDefense
from repro.defenses.morphing import MorphingDefense
from repro.defenses.palette import PaletteDefense, fit_palette


def make_dataset(rng, volumes=(100_000, 200_000, 400_000, 800_000), per=4):
    ds = Dataset()
    for volume in volumes:
        for _ in range(per):
            n = max(volume // 1500, 10) - int(rng.integers(0, 10))
            times = np.cumsum(rng.exponential(0.002, n))
            dirs = np.full(n, IN, dtype=np.int8)
            dirs[::5] = OUT
            sizes = np.full(n, 1500)
            ds.add(f"site{volume}", Trace(times - times[0], dirs, sizes))
    return ds


# -- morphing -----------------------------------------------------------------------


def test_morphing_sizes_come_from_target(random_trace):
    defense = MorphingDefense(target_sizes=[300, 900], seed=1)
    out = defense.apply(random_trace)
    incoming = out.filter_direction(IN)
    assert set(np.unique(incoming.sizes)) <= {300, 900}
    # Outgoing untouched.
    assert np.array_equal(
        out.filter_direction(OUT).sizes,
        random_trace.filter_direction(OUT).sizes,
    )


def test_morphing_conserves_or_pads_bytes(random_trace):
    defense = MorphingDefense(seed=2)
    out = defense.apply(random_trace)
    assert out.incoming_bytes >= random_trace.incoming_bytes


def test_morphing_towards_decoy(random_trace, rng):
    decoy = Trace.from_records(
        [(0.01 * i, IN, 700) for i in range(50)]
    )
    defense = MorphingDefense.towards(decoy, seed=3)
    out = defense.apply(random_trace)
    assert set(np.unique(out.filter_direction(IN).sizes)) == {700}


def test_morphing_validation(random_trace):
    with pytest.raises(ValueError):
        MorphingDefense(target_sizes=[])
    with pytest.raises(ValueError):
        MorphingDefense(target_sizes=[0])
    with pytest.raises(ValueError):
        MorphingDefense.towards(Trace.empty())


# -- palette ------------------------------------------------------------------------


def test_palette_requires_fit(random_trace):
    with pytest.raises(RuntimeError):
        PaletteDefense().apply(random_trace)


def test_palette_pads_to_cluster_max(rng):
    ds = make_dataset(rng)
    defense = fit_palette(ds, n_clusters=4)
    # Every defended trace reaches (at least) its cluster's max volume.
    defended_volumes = {}
    for label, trace in ds:
        out = defense.apply(trace)
        cluster = defense.cluster_of(trace)
        defended_volumes.setdefault(cluster, []).append(out.incoming_bytes)
        assert out.incoming_bytes >= trace.incoming_bytes
    for cluster, volumes in defended_volumes.items():
        spread = (max(volumes) - min(volumes)) / max(volumes)
        assert spread < 0.2  # anonymity set: volumes collapse together


def test_palette_fit_validation(rng):
    ds = make_dataset(rng, volumes=(100_000,), per=2)
    with pytest.raises(ValueError):
        PaletteDefense(n_clusters=10).fit(ds)
    with pytest.raises(ValueError):
        PaletteDefense(n_clusters=0)


def test_palette_biggest_traces_barely_padded(rng):
    ds = make_dataset(rng)
    defense = fit_palette(ds, n_clusters=4)
    biggest = max((t for _l, t in ds), key=lambda t: t.incoming_bytes)
    out = defense.apply(biggest)
    assert out.incoming_bytes <= biggest.incoming_bytes * 1.05


# -- adaptive FRONT ------------------------------------------------------------------


def test_adaptive_front_scales_with_trace(rng):
    small = Trace.from_records(
        [(0.01 * i, IN if i % 2 else OUT, 1000) for i in range(20)]
    )
    big = Trace.from_records(
        [(0.01 * i, IN if i % 2 else OUT, 1000) for i in range(800)]
    )
    defense = AdaptiveFrontDefense(seed=4)
    added_small = len(defense.apply(small)) - len(small)
    added_big = len(defense.apply(big)) - len(big)
    assert added_big > added_small


def test_adaptive_front_zero_delay(random_trace):
    out = AdaptiveFrontDefense(seed=5).apply(random_trace)
    original = set(
        zip(random_trace.times.tolist(), random_trace.directions.tolist(),
            random_trace.sizes.tolist())
    )
    defended = set(
        zip(out.times.tolist(), out.directions.tolist(), out.sizes.tolist())
    )
    assert original <= defended


def test_adaptive_front_validation():
    with pytest.raises(ValueError):
        AdaptiveFrontDefense(budget_fraction=0)
    with pytest.raises(ValueError):
        AdaptiveFrontDefense(window_fraction=0)
