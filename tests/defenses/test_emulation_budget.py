"""Regression: byte-materialising defenses must reject absurd packet
sizes in O(1) instead of hanging.

The fuzzer found HTTPOS looping ~4e15 times re-chunking a single
2**61-byte packet (repro.fuzz giant-sizes corner); morphing, BuFLO and
Tamaraw all materialise O(bytes/MTU) records and shared the bug class.
Each now checks an arithmetic record-count bound *before* building
anything and raises a typed TraceError.  These tests finishing at all
is the point — pre-fix, each apply() call below would run for years.
"""

import numpy as np
import pytest

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import MAX_EMULATED_RECORDS, check_emulation_budget
from repro.defenses.buflo import BufloDefense
from repro.defenses.httpos import HttposLiteDefense
from repro.defenses.morphing import MorphingDefense
from repro.defenses.tamaraw import TamarawDefense
from repro.errors import TraceError


def giant_trace(size: int = 2**61) -> Trace:
    return Trace(
        np.array([0.0, 0.5]),
        np.array([OUT, IN], dtype=np.int8),
        np.array([500, size], dtype=np.int64),
    )


@pytest.mark.parametrize(
    "defense",
    [
        HttposLiteDefense(),
        MorphingDefense(),
        BufloDefense(),
        TamarawDefense(),
    ],
    ids=lambda d: d.name,
)
def test_giant_packet_raises_typed_error_fast(defense):
    with pytest.raises(TraceError, match="emulate"):
        defense.apply(giant_trace())


def test_budget_boundary_is_inclusive():
    check_emulation_budget(MAX_EMULATED_RECORDS, "x")  # at the cap: fine
    with pytest.raises(TraceError):
        check_emulation_budget(MAX_EMULATED_RECORDS + 1, "x")


def test_honest_traces_still_pass():
    """The budget must be invisible for realistic inputs."""
    rng = np.random.default_rng(0)
    n = 400
    trace = Trace(
        np.sort(rng.uniform(0, 3, n)),
        np.where(rng.random(n) < 0.5, OUT, IN).astype(np.int8),
        rng.integers(60, 1501, n).astype(np.int64),
    )
    for defense in (
        HttposLiteDefense(),
        MorphingDefense(),
        BufloDefense(),
        TamarawDefense(),
    ):
        out = defense.apply(trace)
        assert len(out) > 0


def test_megabyte_packets_within_budget():
    """The fuzzer's giant-sizes corner (1 MiB packets) stays feasible."""
    trace = Trace(
        np.array([0.0, 0.1, 0.2]),
        np.array([OUT, IN, IN], dtype=np.int8),
        np.array([600, 2**20, 2**20], dtype=np.int64),
    )
    defended = HttposLiteDefense().apply(trace)
    # Every incoming packet re-chunked to the advertised MSS + header.
    assert len(defended) > 2 * (2**20 // 588)
    assert BufloDefense().apply(trace).total_bytes > 0


def test_buflo_tamaraw_byte_accounting_survives_int64_sums():
    """Train sizing uses overflow-safe totals: two 2**62-byte packets
    would wrap a plain int64 sum to a negative 'needed' count."""
    trace = Trace(
        np.array([0.0, 0.1]),
        np.array([IN, IN], dtype=np.int8),
        np.array([2**62, 2**62], dtype=np.int64),
    )
    with pytest.raises(TraceError):
        BufloDefense().apply(trace)
    with pytest.raises(TraceError):
        TamarawDefense().apply(trace)
