"""The Defense contract: every registry entry exposes ``name``, a
total ``params()`` that reconstructs it through the registry, and a
deterministic ``apply``.  Deprecated free-function entry points keep
working but warn."""

import numpy as np
import pytest

from repro.cache.canonical import digest
from repro.defenses import (
    DEFENSE_REGISTRY,
    build_defense,
    defense_from_spec,
    implemented_defenses,
)


@pytest.mark.parametrize("name", sorted(DEFENSE_REGISTRY))
def test_registry_entry_declares_its_name(name):
    assert DEFENSE_REGISTRY[name].name == name


@pytest.mark.parametrize("name", implemented_defenses())
def test_params_round_trip_through_registry(name):
    defense = build_defense(name, seed=7)
    params = defense.params()
    assert isinstance(params, dict)
    assert params["seed"] == 7
    rebuilt = build_defense(name, **params)
    assert rebuilt.params() == params


@pytest.mark.parametrize("name", implemented_defenses())
def test_params_digest_is_stable(name):
    """The cache's defense identity — name + params() — digests
    identically across two independently built instances."""
    a = build_defense(name, seed=3)
    b = build_defense(name, seed=3)
    assert digest({"name": a.name, "params": a.params()}) == digest(
        {"name": b.name, "params": b.params()}
    )
    c = build_defense(name, seed=4)
    assert digest({"name": a.name, "params": a.params()}) != digest(
        {"name": c.name, "params": c.params()}
    )


@pytest.mark.parametrize("name", implemented_defenses())
def test_apply_is_deterministic(name, random_trace):
    defense = build_defense(name, seed=5)
    first = defense.apply(random_trace)
    second = defense.apply(random_trace)
    np.testing.assert_array_equal(first.times, second.times)
    np.testing.assert_array_equal(first.sizes, second.sizes)
    np.testing.assert_array_equal(first.directions, second.directions)


@pytest.mark.parametrize("name", implemented_defenses())
def test_defense_from_spec_rebuilds(name):
    defense = build_defense(name, seed=9)
    spec = {"name": defense.name, "params": defense.params()}
    assert defense_from_spec(spec).params() == defense.params()


def test_unknown_defense_name_rejected():
    with pytest.raises(ValueError, match="unknown defense"):
        build_defense("rot13")


def test_build_defense_accepts_param_overrides():
    defense = build_defense("split", seed=2, threshold=800)
    assert defense.params()["threshold"] == 800
    assert defense.params()["seed"] == 2


# -- deprecated free-function shims ----------------------------------------

LEGACY = {
    "split": "split",
    "delay": "delayed",
    "combined": "combined",
    "front": "front",
    "buflo": "buflo",
    "tamaraw": "tamaraw",
    "wtfpad": "wtfpad",
    "regulator": "regulator",
    "httpos": "httpos",
    "morphing": "morphing",
    "adaptive_front": "adaptive-front",
}


@pytest.mark.parametrize("function", sorted(LEGACY))
def test_legacy_functions_warn_and_match_class_output(function, random_trace):
    import repro.defenses as defenses

    shim = getattr(defenses, function)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        via_shim = shim(random_trace, seed=6)
    via_class = build_defense(LEGACY[function], seed=6).apply(random_trace)
    np.testing.assert_array_equal(via_shim.times, via_class.times)
    np.testing.assert_array_equal(via_shim.sizes, via_class.sizes)
    np.testing.assert_array_equal(via_shim.directions, via_class.directions)


def test_legacy_import_spelling_still_works(random_trace):
    from repro.defenses import split

    with pytest.warns(DeprecationWarning):
        defended = split(random_trace, threshold=1000, seed=1)
    assert defended.times.shape[0] >= random_trace.times.shape[0]
