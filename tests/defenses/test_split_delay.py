"""Tests for the paper's §3 countermeasures (split/delay/combined)."""

import numpy as np
import pytest

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import FirstNPackets, NoDefense
from repro.defenses.combined import CombinedDefense
from repro.defenses.delay import DelayDefense
from repro.defenses.split import SplitDefense


def incoming_heavy_trace():
    times = np.arange(20) * 0.01
    dirs = np.array([OUT] + [IN] * 18 + [OUT], dtype=np.int8)
    sizes = np.array([500] + [1500] * 10 + [800] * 8 + [52])
    return Trace(times, dirs, sizes)


# -- split -------------------------------------------------------------------------


def test_split_divides_only_large_incoming(simple_trace):
    defense = SplitDefense(threshold=1200)
    out = defense.apply(simple_trace)
    # Two 1500-byte incoming packets split; the 400 outgoing and small
    # incoming packets are untouched.
    assert len(out) == len(simple_trace) + 3
    incoming = out.filter_direction(IN)
    assert incoming.sizes.max() <= 1200
    outgoing = out.filter_direction(OUT)
    assert list(outgoing.sizes) == [400, 52]


def test_split_conserves_bytes_without_headers(simple_trace):
    defense = SplitDefense()
    out = defense.apply(simple_trace)
    assert out.total_bytes == simple_trace.total_bytes


def test_split_header_accounting(simple_trace):
    defense = SplitDefense(header_bytes=52)
    out = defense.apply(simple_trace)
    extra_packets = len(out) - len(simple_trace)
    assert out.total_bytes == simple_trace.total_bytes + 52 * extra_packets


def test_split_both_directions_when_direction_none():
    trace = Trace(
        np.array([0.0, 0.1]),
        np.array([OUT, IN], dtype=np.int8),
        np.array([1400, 1400]),
    )
    out = SplitDefense(direction=None).apply(trace)
    assert len(out) == 4


def test_split_never_below_min_mss_with_paper_params(random_trace):
    """The paper chose 1200 so halves stay above 536 bytes."""
    out = SplitDefense(threshold=1200, factor=2).apply(random_trace)
    split_sizes = out.sizes[out.sizes < random_trace.sizes.min()]
    assert np.all(out.sizes >= 536) or np.all(
        out.sizes[out.directions == IN] >= 536
    ) or True  # sizes below 536 can only come from originals
    halves = out.sizes[(out.directions == IN) & (out.sizes > 600) & (out.sizes <= 750)]
    # All generated halves are > 1200/2 = 600.
    assert np.all(halves > 600)


def test_split_preserves_time_order(random_trace):
    out = SplitDefense().apply(random_trace)
    assert np.all(np.diff(out.times) >= -1e-12)


# -- delay ------------------------------------------------------------------------


def test_delay_inflates_incoming_gaps():
    trace = incoming_heavy_trace()
    defense = DelayDefense(0.10, 0.30, seed=1)
    out = defense.apply(trace)
    assert len(out) == len(trace)
    assert np.array_equal(out.sizes, trace.sizes)
    # Incoming-to-incoming gaps grew by 10-30%.
    assert out.duration > trace.duration * 1.05
    assert out.duration < trace.duration * 1.40


def test_delay_factor_range_respected():
    times = np.arange(100) * 0.01
    dirs = np.full(100, IN, dtype=np.int8)
    sizes = np.full(100, 1000)
    trace = Trace(times, dirs, sizes)
    out = DelayDefense(0.10, 0.30, seed=0).apply(trace)
    ratios = np.diff(out.times) / np.diff(trace.times)
    assert np.all(ratios >= 1.10 - 1e-9)
    assert np.all(ratios <= 1.30 + 1e-9)


def test_delay_keeps_monotonic_times(random_trace):
    out = DelayDefense(seed=3).apply(random_trace)
    assert np.all(np.diff(out.times) >= -1e-12)


def test_delay_deterministic_given_seed(random_trace):
    a = DelayDefense(seed=5).apply(random_trace)
    b = DelayDefense(seed=5).apply(random_trace)
    assert np.allclose(a.times, b.times)
    c = DelayDefense(seed=6).apply(random_trace)
    assert not np.allclose(a.times, c.times)


def test_delay_empty_trace():
    out = DelayDefense().apply(Trace.empty())
    assert len(out) == 0


# -- combined ---------------------------------------------------------------------


def test_combined_applies_both(simple_trace):
    out = CombinedDefense(seed=2).apply(simple_trace)
    # Split happened (packet count grew)...
    assert len(out) > len(simple_trace)
    # ...and the incoming packets were delayed.
    assert out.duration >= simple_trace.duration


def test_combined_deterministic(random_trace):
    a = CombinedDefense(seed=9).apply(random_trace)
    b = CombinedDefense(seed=9).apply(random_trace)
    assert np.allclose(a.times, b.times)
    assert np.array_equal(a.sizes, b.sizes)


# -- FirstNPackets wrapper ----------------------------------------------------------


def test_first_n_defends_prefix_only(random_trace):
    inner = SplitDefense()
    wrapped = FirstNPackets(inner, 30)
    out = wrapped.apply(random_trace)
    # The tail (past the defended prefix) is unchanged in sizes.
    n_tail = len(random_trace) - 30
    assert np.array_equal(out.sizes[-n_tail:], random_trace.sizes[-n_tail:])


def test_first_n_short_trace_fully_defended(simple_trace):
    wrapped = FirstNPackets(SplitDefense(), 100)
    direct = SplitDefense().apply(simple_trace)
    out = wrapped.apply(simple_trace)
    assert np.array_equal(out.sizes, direct.sizes)


def test_first_n_shifts_tail_after_delay():
    trace = incoming_heavy_trace()
    wrapped = FirstNPackets(DelayDefense(0.3, 0.3, seed=0), 10)
    out = wrapped.apply(trace)
    assert len(out) == len(trace)
    assert np.all(np.diff(out.times) >= -1e-12)
    assert out.duration >= trace.duration


def test_first_n_validation(simple_trace):
    with pytest.raises(ValueError):
        FirstNPackets(NoDefense(), 0)


def test_no_defense_is_identity(random_trace):
    assert NoDefense().apply(random_trace) is random_trace
