"""Tests for the Table-1 baseline defense zoo."""

import numpy as np
import pytest

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.buflo import BufloDefense
from repro.defenses.front import FrontDefense
from repro.defenses.httpos import HttposLiteDefense
from repro.defenses.regulator import RegulatorDefense
from repro.defenses.tamaraw import TamarawDefense
from repro.defenses.wtfpad import WtfPadDefense


# -- FRONT ------------------------------------------------------------------------


def test_front_adds_dummies_both_directions(random_trace):
    out = FrontDefense(seed=1).apply(random_trace)
    added = len(out) - len(random_trace)
    assert added > 0
    assert out.total_bytes > random_trace.total_bytes


def test_front_does_not_delay_real_packets(random_trace):
    out = FrontDefense(seed=1).apply(random_trace)
    # Zero-delay property: every original (time, dir, size) remains.
    original = set(
        zip(random_trace.times.tolist(), random_trace.directions.tolist(),
            random_trace.sizes.tolist())
    )
    defended = set(
        zip(out.times.tolist(), out.directions.tolist(), out.sizes.tolist())
    )
    assert original <= defended


def test_front_padding_within_trace_duration(random_trace):
    out = FrontDefense(seed=2).apply(random_trace)
    assert out.duration <= random_trace.duration + 1e-9


def test_front_bandwidth_overhead_is_substantial(random_trace):
    """§2.3: FRONT costs on the order of 80% extra bandwidth."""
    out = FrontDefense(seed=3).apply(random_trace)
    overhead = (out.total_bytes - random_trace.total_bytes) / random_trace.total_bytes
    assert overhead > 0.2


def test_front_validation():
    with pytest.raises(ValueError):
        FrontDefense(n_client=0)
    with pytest.raises(ValueError):
        FrontDefense(w_min=5.0, w_max=1.0)


# -- BuFLO / Tamaraw ---------------------------------------------------------------


def test_buflo_constant_rate_and_fixed_size(random_trace):
    defense = BufloDefense(ell=1500, rho=0.01, tau=1.0)
    out = defense.apply(random_trace)
    assert set(np.unique(out.sizes)) == {1500}
    for direction in (IN, OUT):
        side = out.filter_direction(direction)
        gaps = np.diff(side.times)
        assert np.allclose(gaps, 0.01)


def test_buflo_carries_all_real_bytes(random_trace):
    defense = BufloDefense(ell=1500, rho=0.001, tau=0.0)
    out = defense.apply(random_trace)
    for direction in (IN, OUT):
        real = int(random_trace.filter_direction(direction).sizes.sum())
        cap = int(out.filter_direction(direction).sizes.sum())
        assert cap >= real


def test_buflo_runs_at_least_tau(random_trace):
    defense = BufloDefense(rho=0.01, tau=2.0)
    out = defense.apply(random_trace)
    assert out.duration >= 2.0 - 0.011


def test_tamaraw_pads_to_multiple(random_trace):
    defense = TamarawDefense(pad_multiple=100)
    out = defense.apply(random_trace)
    for direction in (IN, OUT):
        count = len(out.filter_direction(direction))
        assert count % 100 == 0


def test_tamaraw_incoming_denser_than_outgoing(random_trace):
    defense = TamarawDefense(rho_out=0.04, rho_in=0.012)
    out = defense.apply(random_trace)
    gaps_in = np.diff(out.filter_direction(IN).times)
    gaps_out = np.diff(out.filter_direction(OUT).times)
    assert gaps_in.mean() < gaps_out.mean()


# -- WTF-PAD -----------------------------------------------------------------------


def test_wtfpad_fills_large_gaps(random_trace):
    defense = WtfPadDefense(gap_threshold=0.005, seed=1)
    out = defense.apply(random_trace)
    assert len(out) > len(random_trace)
    # No real packet moved.
    real_times = set(random_trace.times.tolist())
    assert real_times <= set(out.times.tolist())


def test_wtfpad_budget_respected(random_trace):
    defense = WtfPadDefense(budget_factor=0.1, seed=2)
    out = defense.apply(random_trace)
    assert len(out) - len(random_trace) <= int(0.1 * len(random_trace))


def test_wtfpad_no_gaps_no_padding():
    # All gaps below the threshold: nothing to hide.
    times = np.arange(50) * 0.001
    trace = Trace(times, np.full(50, IN, np.int8), np.full(50, 1500))
    out = WtfPadDefense(gap_threshold=0.02).apply(trace)
    assert len(out) == 50


# -- RegulaTor ----------------------------------------------------------------------


def test_regulator_reschedules_incoming_onto_envelope(random_trace):
    defense = RegulatorDefense(seed=1)
    out = defense.apply(random_trace)
    # All real incoming bytes survive.
    real_in = int(random_trace.filter_direction(IN).sizes.sum())
    out_in = int(out.filter_direction(IN).sizes.sum())
    assert out_in >= real_in
    assert len(out.filter_direction(OUT)) > 0


def test_regulator_rate_decays_between_surges():
    # A single burst then silence: the envelope slots should spread out.
    times = np.concatenate([np.zeros(50) + 0.001 * np.arange(50), [3.0]])
    dirs = np.full(51, IN, np.int8)
    sizes = np.full(51, 1500)
    trace = Trace(times, dirs, sizes)
    out = RegulatorDefense(initial_rate=200, decay=0.5, padding_budget=50).apply(
        trace
    )
    in_gaps = np.diff(out.filter_direction(IN).times)
    # Later slots are farther apart than early ones (decaying rate).
    assert in_gaps[-1] > in_gaps[0]


def test_regulator_validation():
    with pytest.raises(ValueError):
        RegulatorDefense(decay=1.5)
    with pytest.raises(ValueError):
        RegulatorDefense(initial_rate=0)


# -- HTTPOS-lite --------------------------------------------------------------------


def test_httpos_rechunks_incoming_to_small_mss(random_trace):
    defense = HttposLiteDefense(advertised_mss=536, seed=1)
    out = defense.apply(random_trace)
    incoming = out.filter_direction(IN)
    assert incoming.sizes.max() <= 536 + 52
    assert len(out) > len(random_trace)


def test_httpos_adds_latency(random_trace):
    out = HttposLiteDefense(seed=1).apply(random_trace)
    assert out.duration > random_trace.duration


def test_httpos_conserves_incoming_payload(random_trace):
    defense = HttposLiteDefense(advertised_mss=536)
    out = defense.apply(random_trace)
    header = 52
    orig_payload = int(
        (random_trace.filter_direction(IN).sizes - header).clip(0).sum()
    )
    new_payload = int((out.filter_direction(IN).sizes - header).clip(0).sum())
    assert new_payload >= orig_payload


def test_all_baselines_deterministic(random_trace):
    for cls in (FrontDefense, WtfPadDefense, RegulatorDefense, HttposLiteDefense):
        a = cls(seed=4).apply(random_trace)
        b = cls(seed=4).apply(random_trace)
        assert len(a) == len(b)
        assert np.allclose(a.times, b.times)
