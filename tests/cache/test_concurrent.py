"""Concurrency: parallel writers racing on the same key must never
produce a torn artifact — every read sees a complete, verified payload."""

import multiprocessing

import numpy as np

from repro.cache import ArtifactStore, CacheKey, cached_dataset, dataset_key

KEY = CacheKey.derive("eval", {"race": 1})
#: Big enough that a torn write would be observable mid-rename.
PAYLOAD = b"0123456789abcdef" * 65536  # 1 MiB


def _writer(root: str, worker: int) -> str:
    store = ArtifactStore(root)
    for _ in range(5):
        store.put_bytes(KEY, PAYLOAD)
        got = store.get_bytes(KEY)
        if got is None:
            return f"worker {worker}: read corrupt/missing entry"
        if got != PAYLOAD:
            return f"worker {worker}: read torn payload"
    if store.counters["corruptions"]:
        return f"worker {worker}: counted corruption"
    return "ok"


def test_parallel_writers_never_tear(tmp_path):
    root = str(tmp_path / "store")
    ArtifactStore(root)  # create layout up front
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(4) as pool:
        outcomes = pool.starmap(_writer, [(root, i) for i in range(4)])
    assert outcomes == ["ok"] * 4
    # After the dust settles the entry verifies clean.
    store = ArtifactStore(root)
    assert store.get_bytes(KEY) == PAYLOAD
    assert store.verify().corrupt == []


def _collector(args):
    root, seed = args
    from repro.web.tracegen import StatisticalTraceGenerator

    store = ArtifactStore(root)
    dataset = StatisticalTraceGenerator(seed=seed).generate_dataset(
        n_samples=2, seed=seed
    )
    key = dataset_key(dataset)
    out = cached_dataset(store, key, lambda: dataset)
    return (key.digest, out.num_traces, store.counters["corruptions"])


def test_parallel_cached_dataset_same_key(tmp_path):
    """Four workers computing the same dataset artifact agree on the
    key and the bytes; nobody observes corruption."""
    root = str(tmp_path / "store")
    ArtifactStore(root)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(4) as pool:
        outcomes = pool.map(_collector, [(root, 5)] * 4)
    digests = {d for d, _, _ in outcomes}
    assert len(digests) == 1  # deterministic generation -> one key
    assert {n for _, n, _ in outcomes} == {outcomes[0][1]}
    assert all(c == 0 for _, _, c in outcomes)
    store = ArtifactStore(root)
    assert store.verify().corrupt == []


def test_workers_see_identical_artifact_bytes(tmp_path):
    """Two stores over the same root serve byte-identical payloads."""
    root = str(tmp_path / "store")
    first, second = ArtifactStore(root), ArtifactStore(root)
    payload = np.arange(1000, dtype=np.float64).tobytes()
    first.put_bytes(KEY, payload)
    assert second.get_bytes(KEY) == payload
