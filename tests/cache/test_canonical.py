"""Canonical JSON: the digestable form must be order-, spelling- and
dtype-independent, and total (reject what it cannot represent)."""

import dataclasses

import numpy as np
import pytest

from repro.cache.canonical import canonical_json, digest, jsonable


def test_dict_order_does_not_matter():
    assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})


def test_tuple_list_array_spellings_collapse():
    assert (
        digest({"x": (1, 2, 3)})
        == digest({"x": [1, 2, 3]})
        == digest({"x": np.array([1, 2, 3])})
    )


def test_numpy_scalars_collapse_to_python():
    assert jsonable(np.int64(7)) == 7
    assert jsonable(np.float64(0.5)) == 0.5
    assert jsonable(np.bool_(True)) is True
    assert digest({"n": np.int32(4)}) == digest({"n": 4})


def test_non_finite_floats_rejected():
    with pytest.raises(ValueError):
        jsonable(float("nan"))
    with pytest.raises(ValueError):
        jsonable({"x": float("inf")})


def test_non_string_dict_keys_rejected():
    with pytest.raises(TypeError):
        jsonable({1: "a"})


def test_arbitrary_objects_rejected():
    with pytest.raises(TypeError):
        jsonable(object())


def test_to_dict_is_preferred():
    class WithToDict:
        def to_dict(self):
            return {"kind": "custom", "value": 3}

    assert jsonable(WithToDict()) == {"kind": "custom", "value": 3}


def test_dataclasses_are_type_tagged():
    @dataclasses.dataclass
    class SpecA:
        x: int = 1

    @dataclasses.dataclass
    class SpecB:
        x: int = 1

    # Same field names, different types: must not collide.
    assert digest(SpecA()) != digest(SpecB())
    assert jsonable(SpecA())["__dataclass__"] == "SpecA"


def test_canonical_json_is_stable_text():
    text = canonical_json({"b": (1, 2), "a": np.float64(1.5)})
    assert text == '{"a":1.5,"b":[1,2]}'


def test_experiment_config_round_trips_canonically():
    from repro.experiments.config import ExperimentConfig

    a = ExperimentConfig(seed=3)
    b = ExperimentConfig(seed=3)
    assert digest(a) == digest(b)
    assert digest(a) != digest(ExperimentConfig(seed=4))
