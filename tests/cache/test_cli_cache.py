"""The `repro cache` CLI (stats/gc/verify) and the `--cache` flag on
experiment subcommands."""

import os

import pytest

from repro.cache import ArtifactStore, CacheKey
from repro.cli import build_parser, main


@pytest.fixture
def populated(tmp_path):
    root = str(tmp_path / "store")
    store = ArtifactStore(root)
    store.put_bytes(CacheKey.derive("eval", {"n": 1}), b"alpha")
    store.put_bytes(CacheKey.derive("defend", {"n": 2}), b"beta!")
    return root


def test_cache_stats_empty(tmp_path, capsys):
    root = str(tmp_path / "empty")
    assert main(["cache", "stats", "--cache", root]) == 0
    out = capsys.readouterr().out
    assert "entries: 0" in out
    assert "across 0 recorded runs" in out


def test_cache_stats_populated(populated, capsys):
    assert main(["cache", "stats", "--cache", populated]) == 0
    out = capsys.readouterr().out
    assert "entries: 2" in out
    assert "payload bytes: 10" in out
    assert "eval: 1 entries, 5 bytes" in out
    assert "defend: 1 entries, 5 bytes" in out


def test_cache_verify_clean_then_corrupt(populated, capsys):
    assert main(["cache", "verify", "--cache", populated]) == 0
    assert "2 ok, 0 corrupt" in capsys.readouterr().out
    store = ArtifactStore(populated)
    with open(store.payload_path(CacheKey.derive("eval", {"n": 1})), "wb") as f:
        f.write(b"tornX")
    assert main(["cache", "verify", "--cache", populated]) == 1
    assert "1 ok, 1 corrupt" in capsys.readouterr().out
    # Deleting the corruption does not launder the exit code: the
    # invocation that *found* corruption reports it, and only a
    # subsequent clean pass exits 0 (the convention `repro campaign
    # verify` shares).
    assert main(["cache", "verify", "--cache", populated, "--delete-corrupt"]) == 1
    assert "1 deleted" in capsys.readouterr().out
    assert main(["cache", "verify", "--cache", populated]) == 0


def test_cache_verify_legacy_delete_alias(populated, capsys):
    store = ArtifactStore(populated)
    with open(store.payload_path(CacheKey.derive("eval", {"n": 1})), "wb") as f:
        f.write(b"tornX")
    assert main(["cache", "verify", "--cache", populated, "--delete"]) == 1
    assert "1 deleted" in capsys.readouterr().out
    assert main(["cache", "verify", "--cache", populated]) == 0


def test_cache_gc_empty_and_budget(populated, tmp_path, capsys):
    assert main(["cache", "gc", "--cache", str(tmp_path / "empty")]) == 0
    assert "removed 0 entries" in capsys.readouterr().out
    assert main(["cache", "gc", "--cache", populated, "--max-bytes", "5"]) == 0
    assert "removed 1 entries (5 bytes)" in capsys.readouterr().out


def test_cache_subcommand_requires_cache_dir():
    with pytest.raises(SystemExit) as excinfo:
        main(["cache", "stats"])
    assert excinfo.value.code == 2


def test_cache_dir_must_not_be_a_file(tmp_path):
    path = tmp_path / "afile"
    path.write_text("not a directory")
    with pytest.raises(SystemExit) as excinfo:
        main(["table2", "--cache", str(path)])
    assert excinfo.value.code == 2


@pytest.mark.parametrize("command", ["collect", "table2", "adverse", "sweep"])
def test_experiment_subcommands_accept_cache_flags(command):
    parser = build_parser()
    text = None
    for name, sub in parser._subparsers._group_actions[0].choices.items():
        if name == command:
            text = sub.format_help()
    assert text is not None
    assert "--cache" in text and "--no-cache" in text


def test_table2_cli_warm_run_uses_cache(tmp_path, capsys):
    """Cold CLI run populates the store; warm run hits it and renders
    the identical table; `cache stats` reports the hits."""
    root = str(tmp_path / "store")
    cold_out = str(tmp_path / "cold.txt")
    warm_out = str(tmp_path / "warm.txt")
    argv = [
        "table2", "--samples", "4", "--folds", "2", "--seed", "13",
        "--cache", root,
    ]
    assert main(argv + ["--out", cold_out]) == 0
    assert main(argv + ["--out", warm_out]) == 0
    with open(cold_out, "rb") as a, open(warm_out, "rb") as b:
        assert a.read() == b.read()
    capsys.readouterr()
    assert main(["cache", "stats", "--cache", root]) == 0
    out = capsys.readouterr().out
    assert "across 2 recorded runs" in out
    hits = int(out.split(" hits")[0].rsplit(" ", 1)[-1])
    assert hits > 0


def test_no_cache_disables_the_store(tmp_path):
    root = str(tmp_path / "store")
    assert main([
        "table2", "--samples", "4", "--folds", "2", "--seed", "13",
        "--cache", root, "--no-cache",
        "--out", str(tmp_path / "t.txt"),
    ]) == 0
    # --no-cache wins: nothing was written under the store root.
    assert not os.path.isdir(os.path.join(root, "objects")) or not any(
        files
        for _, _, files in os.walk(os.path.join(root, "objects"))
    )
