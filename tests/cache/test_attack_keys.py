"""Attack-aware cache keys: specs move eval keys, extractor params
move feature keys, and kfp's historical digests stay put."""

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.attacks.registry import build_attack
from repro.attacks.tam import TamExtractor
from repro.cache import CacheKey, attack_eval_key, features_key


def _upstream():
    return CacheKey.derive("defend", {"x": 1})


def test_attack_eval_key_moves_with_spec():
    upstream = _upstream()
    kfp = build_attack("kfp", seed=3, n_estimators=50)
    kfp_bigger = build_attack("kfp", seed=3, n_estimators=80)
    tam = build_attack("tam-mlp", seed=3)
    keys = {
        attack_eval_key(upstream, a.spec(), 5, 3).digest
        for a in (kfp, kfp_bigger, tam)
    }
    assert len(keys) == 3  # every spec gets its own eval cell


def test_attack_eval_key_stable_for_equal_specs():
    upstream = _upstream()
    a = build_attack("tam-mlp", seed=5)
    b = build_attack("tam-mlp", seed=5)
    assert (
        attack_eval_key(upstream, a.spec(), 5, 5).digest
        == attack_eval_key(upstream, b.spec(), 5, 5).digest
    )
    # Worker counts are wall-clock-only and never enter the spec.
    c = build_attack("tam-mlp", seed=5, workers=4)
    assert (
        attack_eval_key(upstream, c.spec(), 5, 5).digest
        == attack_eval_key(upstream, a.spec(), 5, 5).digest
    )


def test_features_key_folds_in_extractor_params():
    upstream = _upstream()
    coarse = features_key(upstream, TamExtractor(n_bins=32))
    fine = features_key(upstream, TamExtractor(n_bins=64))
    same = features_key(upstream, TamExtractor(n_bins=32))
    assert coarse.digest == same.digest
    assert coarse.digest != fine.digest


def test_kfp_features_key_unchanged_by_params_support():
    """The kfp extractor has no params() — its feature digests must not
    move just because parameterised extractors now fold theirs in."""
    upstream = _upstream()
    key = features_key(upstream, KfpFeatureExtractor())
    config = {
        "extractor": KfpFeatureExtractor.name,
        "extractor_version": KfpFeatureExtractor.version,
    }
    assert key.digest == CacheKey.derive(
        "features", config, upstream=(upstream,)
    ).digest
