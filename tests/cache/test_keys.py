"""Key derivation: any perturbation of config, stage version, code
version or upstream digest must move the key; wall-clock-only knobs
must not."""

import dataclasses

import pytest

from repro.cache import keys as keys_module
from repro.cache.keys import CacheKey
from repro.cache.pipeline import (
    capture_key,
    defend_key,
    eval_key,
    features_key,
    overhead_key,
    sanitize_key,
)
from repro.defenses import build_defense
from repro.web.pageload import PageLoadConfig


def test_same_inputs_same_key():
    a = CacheKey.derive("eval", {"n_folds": 5}, upstream=("d1",))
    b = CacheKey.derive("eval", {"n_folds": 5}, upstream=("d1",))
    assert a == b


def test_config_perturbation_moves_key():
    base = CacheKey.derive("eval", {"n_folds": 5})
    assert CacheKey.derive("eval", {"n_folds": 6}) != base


def test_upstream_perturbation_moves_key():
    a = CacheKey.derive("eval", {"n_folds": 5}, upstream=("d1",))
    b = CacheKey.derive("eval", {"n_folds": 5}, upstream=("d2",))
    assert a != b


def test_unknown_stage_rejected():
    with pytest.raises(ValueError):
        CacheKey.derive("mystery", {})


def test_stage_version_bump_moves_key(monkeypatch):
    before = CacheKey.derive("defend", {"x": 1})
    monkeypatch.setitem(keys_module.STAGE_VERSIONS, "defend", 99)
    assert CacheKey.derive("defend", {"x": 1}) != before


def test_code_version_bump_moves_key(monkeypatch):
    before = CacheKey.derive("defend", {"x": 1})
    monkeypatch.setattr(keys_module, "CODE_VERSION", "999.0.0")
    assert CacheKey.derive("defend", {"x": 1}) != before


def test_relpath_is_sharded():
    key = CacheKey.derive("eval", {"n_folds": 5})
    stage, shard, digest = key.relpath.split("/")
    assert stage == "eval"
    assert digest.startswith(shard) and len(shard) == 2


def test_capture_key_covers_the_collection_identity():
    config = PageLoadConfig()
    base = capture_key(config, ["a", "b"], 4, 1)
    assert capture_key(config, ["b", "a"], 4, 1) == base  # order-free
    assert capture_key(config, ["a", "c"], 4, 1) != base
    assert capture_key(config, ["a", "b"], 5, 1) != base
    assert capture_key(config, ["a", "b"], 4, 2) != base
    assert capture_key(
        dataclasses.replace(config, max_duration=9.0), ["a", "b"], 4, 1
    ) != base
    assert capture_key(config, ["a", "b"], 4, 1, collector={"r": 1}) != base


def test_chain_reuses_unchanged_prefix():
    """Changing only eval hyperparameters must leave the upstream
    sanitize/defend/features keys untouched."""
    config = PageLoadConfig()
    raw = capture_key(config, ["a"], 2, 7)
    clean = sanitize_key(raw, balance_to=10)
    defense = build_defense("split", seed=7)
    defended = defend_key(clean, defense)
    feats = features_key(defended, extractor=None)
    assert eval_key(feats, 5, 150, 7) != eval_key(feats, 5, 200, 7)
    # ... while the features key is shared between the two eval configs.
    assert features_key(defended, extractor=None) == feats


def test_defense_params_move_defend_key():
    clean = CacheKey.derive("sanitize", {"balance_to": 10})
    a = defend_key(clean, build_defense("split", seed=1))
    b = defend_key(clean, build_defense("split", seed=2))
    c = defend_key(clean, build_defense("split", seed=1, threshold=800))
    assert a != b and a != c
    assert defend_key(clean, build_defense("split", seed=1)) == a
    assert defend_key(clean, build_defense("split", seed=1), prefix=30) != a


def test_overhead_key_depends_on_trace_budget():
    clean = CacheKey.derive("sanitize", {"balance_to": 10})
    defense = build_defense("delayed", seed=0)
    assert overhead_key(clean, defense, 60) != overhead_key(clean, defense, 30)


def test_resilient_capture_key_policy():
    """Retry policy is part of the identity; wall-deadline runs are
    uncacheable; workers/checkpoint/chunk are wall-clock-only."""
    from repro.experiments.runner import RunnerConfig, resilient_capture_key

    config = PageLoadConfig()
    base = resilient_capture_key(["a"], 2, config, 1, RunnerConfig())
    assert base is not None
    assert resilient_capture_key(
        ["a"], 2, config, 1,
        dataclasses.replace(RunnerConfig(), workers=4, checkpoint_path="x.npz"),
    ) == base
    retry = dataclasses.replace(
        RunnerConfig(),
        retry=dataclasses.replace(RunnerConfig().retry, max_attempts=9),
    )
    assert resilient_capture_key(["a"], 2, config, 1, retry) != base
    deadline = dataclasses.replace(RunnerConfig(), trial_wall_deadline=1.0)
    assert resilient_capture_key(["a"], 2, config, 1, deadline) is None
