"""ArtifactStore: round trips, corruption fallback, counters,
gc/verify maintenance and per-run stat persistence."""

import json
import os

from repro.cache import ArtifactStore, CacheKey
from repro.cache.store import aggregate_run_stats


def _key(n=0):
    return CacheKey.derive("eval", {"n": n})


def test_put_get_round_trip(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    key = _key()
    assert store.get_bytes(key) is None
    assert store.counters["misses"] == 1
    store.put_bytes(key, b"payload")
    assert store.get_bytes(key) == b"payload"
    assert store.counters == {
        "hits": 1, "misses": 1, "writes": 1, "corruptions": 0,
        "bytes_read": 7, "bytes_written": 7,
    }


def test_last_writer_wins(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    key = _key()
    store.put_bytes(key, b"first")
    store.put_bytes(key, b"second")
    assert store.get_bytes(key) == b"second"


def test_truncated_payload_falls_back_to_miss(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    key = _key()
    store.put_bytes(key, b"some payload bytes")
    with open(store.payload_path(key), "wb") as handle:
        handle.write(b"some pay")  # truncate
    assert store.get_bytes(key) is None
    assert store.counters["corruptions"] == 1
    # Corrupt entries are evicted so the next write repopulates cleanly.
    assert not os.path.exists(store.meta_path(key))


def test_bit_flip_detected(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    key = _key()
    store.put_bytes(key, b"abcdef")
    with open(store.payload_path(key), "wb") as handle:
        handle.write(b"abcdeX")
    assert store.get_bytes(key) is None
    assert store.counters["corruptions"] == 1


def test_unparseable_metadata_is_corruption(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    key = _key()
    store.put_bytes(key, b"data")
    with open(store.meta_path(key), "wb") as handle:
        handle.write(b"{not json")
    assert store.get_bytes(key) is None
    assert store.counters["corruptions"] == 1


def test_key_mismatch_is_corruption(tmp_path):
    """Metadata copied under the wrong digest must not be served."""
    store = ArtifactStore(str(tmp_path / "store"))
    a, b = _key(1), _key(2)
    store.put_bytes(a, b"data")
    os.makedirs(os.path.dirname(store.meta_path(b)), exist_ok=True)
    for src, dst in (
        (store.meta_path(a), store.meta_path(b)),
        (store.payload_path(a), store.payload_path(b)),
    ):
        with open(src, "rb") as fsrc, open(dst, "wb") as fdst:
            fdst.write(fsrc.read())
    assert store.get_bytes(b) is None
    assert store.counters["corruptions"] == 1


def test_stats_on_empty_and_populated(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    empty = store.stats()
    assert empty.entries == 0 and empty.payload_bytes == 0
    store.put_bytes(_key(1), b"aaaa")
    store.put_bytes(_key(2), b"bb")
    store.put_bytes(CacheKey.derive("defend", {"x": 1}), b"c")
    stats = store.stats()
    assert stats.entries == 3
    assert stats.payload_bytes == 7
    assert stats.by_stage["eval"] == (2, 6)
    assert stats.by_stage["defend"] == (1, 1)


def test_verify_clean_and_corrupt(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    assert store.verify().ok == 0  # empty store
    store.put_bytes(_key(1), b"good")
    store.put_bytes(_key(2), b"soon bad")
    with open(store.payload_path(_key(2)), "wb") as handle:
        handle.write(b"flipped!")
    found = store.verify()
    assert found.ok == 1 and len(found.corrupt) == 1 and found.deleted == 0
    deleted = store.verify(delete=True)
    assert deleted.deleted == 1
    assert store.verify().ok == 1 and not store.verify().corrupt


def test_gc_prunes_tmp_and_respects_budget(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    assert store.gc().removed_entries == 0  # empty store
    store.put_bytes(_key(1), b"x" * 100)
    store.put_bytes(_key(2), b"y" * 100)
    stray = os.path.join(store.root, "objects", "eval", "leftover.tmp")
    with open(stray, "wb") as handle:
        handle.write(b"interrupted writer")
    result = store.gc(max_bytes=150)
    assert result.pruned_tmp == 1
    assert result.removed_entries == 1
    assert result.freed_bytes == 100
    assert store.stats().payload_bytes == 100


def test_run_stats_persist_and_aggregate(tmp_path):
    root = str(tmp_path / "store")
    store = ArtifactStore(root)
    assert store.write_run_stats() is None  # no activity, no file
    store.put_bytes(_key(), b"data")
    store.get_bytes(_key())
    path = store.write_run_stats()
    assert path is not None and os.path.exists(path)
    second = ArtifactStore(root)
    second.get_bytes(_key())
    second.write_run_stats()
    totals = aggregate_run_stats(root)
    assert totals["runs"] == 2
    assert totals["hits"] == 2
    assert totals["writes"] == 1
    assert aggregate_run_stats(str(tmp_path / "nowhere"))["runs"] == 0


def test_counters_mirror_into_obs_registry(tmp_path):
    from repro.obs import runtime

    runtime.disable()
    session = runtime.enable()
    try:
        store = ArtifactStore(str(tmp_path / "store"))
        store.put_bytes(_key(), b"data")
        store.get_bytes(_key())
        store.get_bytes(_key(999))
        counters = session.registry.snapshot()["counters"]
        assert counters["cache.writes"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
    finally:
        runtime.disable()


def test_metadata_is_self_describing(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    store.put_bytes(_key(), b"data", kind="dataset")
    with open(store.meta_path(_key()), "rb") as handle:
        meta = json.loads(handle.read())
    assert meta["kind"] == "dataset"
    assert meta["stage"] == "eval"
    assert meta["payload_bytes"] == 4
