"""cached_* helpers and end-to-end incremental recomputation: cold vs
warm runs are byte-identical, perturbed configs recompute, corrupted
artifacts fall back transparently."""

import numpy as np
import pytest

from repro.cache import (
    ArtifactStore,
    CacheKey,
    cached_array,
    cached_arrays,
    cached_dataset,
    cached_json,
    dataset_key,
)
from repro.web.tracegen import StatisticalTraceGenerator


def _tiny_dataset(seed=3, n_samples=4):
    return StatisticalTraceGenerator(seed=seed).generate_dataset(
        n_samples=n_samples, seed=seed
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def test_helpers_degrade_without_store_or_key(store):
    assert cached_json(None, CacheKey.derive("eval", {}), lambda: [1]) == [1]
    assert cached_json(store, None, lambda: [2]) == [2]
    assert store.counters["writes"] == 0


def test_cached_json_round_trip(store):
    key = CacheKey.derive("eval", {"n": 1})
    calls = []

    def compute():
        calls.append(1)
        return {"scores": [0.5, 0.75]}

    assert cached_json(store, key, compute) == {"scores": [0.5, 0.75]}
    assert cached_json(store, key, compute) == {"scores": [0.5, 0.75]}
    assert len(calls) == 1  # second call was a hit


def test_cached_array_round_trip(store):
    key = CacheKey.derive("features", {"v": 1})
    cold = cached_array(store, key, lambda: np.arange(12.0).reshape(3, 4))
    warm = cached_array(store, key, lambda: pytest.fail("should be warm"))
    np.testing.assert_array_equal(cold, warm)
    assert warm.dtype == cold.dtype


def test_cached_arrays_round_trip(store):
    key = CacheKey.derive("features", {"v": 2})
    cold = cached_arrays(
        store, key,
        lambda: {"X": np.ones((2, 3)), "y": np.array([0, 1])},
    )
    warm = cached_arrays(store, key, lambda: pytest.fail("should be warm"))
    assert set(warm) == {"X", "y"}
    np.testing.assert_array_equal(warm["X"], cold["X"])
    np.testing.assert_array_equal(warm["y"], cold["y"])


def test_cached_dataset_round_trip(store):
    key = dataset_key(_tiny_dataset())
    cold = cached_dataset(store, key, _tiny_dataset)
    warm = cached_dataset(
        store, key, lambda: pytest.fail("should be warm")
    )
    assert warm.labels == cold.labels
    for label in cold.labels:
        for t1, t2 in zip(cold.traces[label], warm.traces[label]):
            np.testing.assert_array_equal(t1.times, t2.times)
            np.testing.assert_array_equal(t1.sizes, t2.sizes)
            np.testing.assert_array_equal(t1.directions, t2.directions)


def test_undecodable_cached_payload_recomputes(store):
    """A payload that passes the digest check but fails to decode
    (e.g. written by a buggy writer) must count as corruption and
    fall back to recompute."""
    key = CacheKey.derive("eval", {"n": 2})
    store.put_bytes(key, b"\xff\xfe not json")
    assert cached_json(store, key, lambda: [0.5]) == [0.5]
    assert store.counters["corruptions"] == 1
    # The recompute overwrote the bad payload.
    assert cached_json(store, key, lambda: pytest.fail("warm")) == [0.5]


def test_truncated_dataset_artifact_recomputes(store):
    dataset = _tiny_dataset()
    key = dataset_key(dataset)
    cached_dataset(store, key, lambda: dataset)
    with open(store.payload_path(key), "rb") as handle:
        payload = handle.read()
    with open(store.payload_path(key), "wb") as handle:
        handle.write(payload[: len(payload) // 2])
    recomputed = cached_dataset(store, key, lambda: dataset)
    assert recomputed.num_traces == dataset.num_traces
    assert store.counters["corruptions"] == 1


def test_table2_cold_warm_identical(tmp_path):
    """The acceptance property at experiment scale: a warm table2 run
    over the same store reproduces the cold run exactly, computing
    nothing."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.table2 import run_table2

    config = ExperimentConfig(
        n_samples=6, n_folds=2, n_estimators=10, balance_to=6, seed=11
    )
    dataset = _tiny_dataset(seed=11, n_samples=6)
    store = ArtifactStore(str(tmp_path / "store"))
    cold = run_table2(config, dataset=dataset, cache=store)
    writes = store.counters["writes"]
    assert writes > 0
    warm = run_table2(config, dataset=dataset, cache=store)
    assert warm == cold
    assert store.counters["writes"] == writes  # nothing recomputed
    assert store.counters["hits"] > 0
    # An uncached run agrees too: caching must not change results.
    plain = run_table2(config, dataset=dataset)
    assert plain == cold


def test_table2_eval_perturbation_recomputes_only_eval(tmp_path):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.table2 import run_table2

    config = ExperimentConfig(
        n_samples=6, n_folds=2, n_estimators=10, balance_to=6, seed=11
    )
    dataset = _tiny_dataset(seed=11, n_samples=6)
    store = ArtifactStore(str(tmp_path / "store"))
    run_table2(config, dataset=dataset, cache=store)
    stats = store.stats()

    import dataclasses

    bumped = dataclasses.replace(config, n_estimators=12)
    run_table2(bumped, dataset=dataset, cache=store)
    after = store.stats()
    # Features were reused: only new eval entries appeared.
    assert after.by_stage["features"] == stats.by_stage["features"]
    assert after.by_stage["eval"][0] == 2 * stats.by_stage["eval"][0]


def test_table2_generic_attack_path_matches_kfp(tmp_path):
    """The registry path on kfp features reproduces the historical
    k-FP numbers bit-identically (same folds, same per-fold seeds)."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.table2 import run_table2

    config = ExperimentConfig(
        n_samples=6, n_folds=2, n_estimators=10, balance_to=6, seed=11
    )
    dataset = _tiny_dataset(seed=11, n_samples=6)
    from repro.capture.sanitize import sanitize_dataset
    from repro.experiments.table2 import (
        _fold_scores,
        attack_fold_scores,
        make_attack,
    )

    clean, _ = sanitize_dataset(dataset, balance_to=config.balance_to)
    traces, y = clean.to_arrays()
    X = make_attack(config, "kfp").extractor.extract_many(traces)
    assert attack_fold_scores("kfp", config, y, X=X) == [
        float(s) for s in _fold_scores(X, y, config)
    ]


def test_table2_per_attack_cells_cache_independently(tmp_path):
    """Two attacks on one store: the second run reuses the collected /
    defended datasets, each attack owns its eval cells, and warm
    re-runs of either are hit-only and value-identical."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.table2 import run_table2

    config = ExperimentConfig(
        n_samples=6, n_folds=2, n_estimators=10, balance_to=6, seed=11
    )
    dataset = _tiny_dataset(seed=11, n_samples=6)
    store = ArtifactStore(str(tmp_path / "store"))
    kfp_cold = run_table2(config, dataset=dataset, cache=store)
    kfp_stats = store.stats()

    knn_cold = run_table2(config, dataset=dataset, cache=store, attack="knn")
    after = store.stats()
    # knn shares kfp's feature matrices; only eval cells were added.
    assert after.by_stage["features"] == kfp_stats.by_stage["features"]
    assert after.by_stage["eval"][0] == 2 * kfp_stats.by_stage["eval"][0]

    kfp_warm = run_table2(config, dataset=dataset, cache=store)
    knn_warm = run_table2(config, dataset=dataset, cache=store, attack="knn")
    assert store.stats().entries == after.entries  # no new writes
    for key in kfp_cold:
        assert kfp_warm[key].fold_scores == kfp_cold[key].fold_scores
        assert knn_warm[key].fold_scores == knn_cold[key].fold_scores
    # Different attacks really produced different grids.
    assert any(
        kfp_cold[key].fold_scores != knn_cold[key].fold_scores
        for key in kfp_cold
    )
