"""Parallel k-FP feature extraction: bit-identity and batch API."""

import numpy as np
import pytest

from repro.attacks.features.kfp import (
    KfpFeatureExtractor,
    extract_features,
    extract_features_batch,
)
from repro.capture.trace import IN, OUT, Trace


@pytest.fixture(scope="module")
def traces():
    rng = np.random.default_rng(9)
    out = []
    for _ in range(23):
        n = int(rng.integers(2, 200))
        times = np.cumsum(rng.exponential(0.004, n))
        dirs = rng.choice([IN, IN, OUT], n).astype(np.int8)
        sizes = rng.integers(60, 1501, n)
        out.append(Trace(times - times[0], dirs, sizes))
    return out


def test_extract_many_parallel_bit_identical(traces):
    extractor = KfpFeatureExtractor()
    serial = extractor.extract_many(traces)
    for workers in (2, 3):
        assert np.array_equal(serial, extractor.extract_many(traces, workers=workers))


def test_batch_wrapper_matches_per_trace(traces):
    batch = extract_features_batch(traces, workers=2)
    assert batch.shape == (len(traces), KfpFeatureExtractor().n_features)
    for row, trace in zip(batch, traces):
        assert np.array_equal(row, extract_features(trace))


def test_single_trace_stays_in_process(traces):
    # No pool overhead for degenerate batches; result identical anyway.
    extractor = KfpFeatureExtractor()
    assert np.array_equal(
        extractor.extract_many(traces[:1], workers=8),
        extractor.extract_many(traces[:1]),
    )


def test_invalid_workers_rejected(traces):
    with pytest.raises(ValueError):
        KfpFeatureExtractor().extract_many(traces, workers=-1)
