"""The Attack contract: every registry entry exposes ``name``, a total
``params()`` that reconstructs it through the registry, and
deterministic ``fit``/``predict``.  Spec round-trips rebuild attacks
that predict bit-identically; the deprecated ``_make_attack`` entry
point keeps working but warns."""

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_REGISTRY,
    ATTACK_TAXONOMY,
    CcaIdentifier,
    attack_from_spec,
    build_attack,
    implemented_attacks,
)
from repro.cache.canonical import digest
from repro.web.tracegen import StatisticalTraceGenerator


@pytest.fixture(scope="module")
def tiny_world():
    generator = StatisticalTraceGenerator(seed=6)
    dataset = generator.generate_dataset(n_samples=6, seed=6)
    traces, y = dataset.to_arrays()
    rng = np.random.default_rng(1)
    order = rng.permutation(len(y))
    split = int(len(y) * 0.7)
    traces = list(traces)
    return (
        [traces[i] for i in order[:split]],
        y[order[:split]],
        [traces[i] for i in order[split:]],
    )


def _small(name, seed=7):
    """A fast-training configuration of each registered attack."""
    kwargs = {
        "kfp": {"n_estimators": 15},
        "cumul": {"epochs": 5},
        "knn": {"n_neighbors": 3},
        "tam-mlp": {"n_bins": 16, "hidden": (12,), "epochs": 5},
    }[name]
    return build_attack(name, seed=seed, **kwargs)


def test_registry_lists_all_attacks():
    assert implemented_attacks() == ("cumul", "kfp", "knn", "tam-mlp")
    assert set(ATTACK_REGISTRY) == {info.attack for info in ATTACK_TAXONOMY}


def test_unknown_attack_rejected():
    with pytest.raises(ValueError, match="unknown attack"):
        build_attack("deepcorr")


@pytest.mark.parametrize("name", sorted(ATTACK_REGISTRY))
def test_registry_entry_declares_its_name(name):
    assert ATTACK_REGISTRY[name].name == name


@pytest.mark.parametrize("name", sorted(ATTACK_REGISTRY))
def test_params_round_trip_through_registry(name):
    attack = _small(name)
    params = attack.params()
    assert isinstance(params, dict)
    rebuilt = build_attack(name, **params)
    assert rebuilt.params() == params
    assert rebuilt.spec() == attack.spec()


@pytest.mark.parametrize("name", sorted(ATTACK_REGISTRY))
def test_seed_lands_on_declared_kwarg(name):
    cls = ATTACK_REGISTRY[name]
    attack = build_attack(name, seed=42)
    if cls.seed_kwarg is not None:
        assert attack.params()[cls.seed_kwarg] == 42


@pytest.mark.parametrize("name", sorted(ATTACK_REGISTRY))
def test_spec_digest_is_stable(name):
    """The cache's attack identity — name + params() — digests
    identically across independently built equal instances."""
    assert digest(_small(name).spec()) == digest(_small(name).spec())
    if ATTACK_REGISTRY[name].seed_kwarg is not None:
        assert digest(_small(name, seed=8).spec()) != digest(
            _small(name, seed=9).spec()
        )


@pytest.mark.parametrize("name", sorted(ATTACK_REGISTRY))
def test_spec_round_trip_predicts_identically(name, tiny_world):
    train_x, train_y, test_x = tiny_world
    original = _small(name).fit(train_x, train_y)
    rebuilt = attack_from_spec(original.spec()).fit(train_x, train_y)
    assert np.array_equal(original.predict(test_x), rebuilt.predict(test_x))


@pytest.mark.parametrize("name", sorted(ATTACK_REGISTRY))
def test_legacy_trace_spellings_alias_the_contract(name, tiny_world):
    train_x, train_y, test_x = tiny_world
    attack = _small(name).fit_traces(train_x, train_y)
    assert np.array_equal(attack.predict_traces(test_x), attack.predict(test_x))


def test_cca_identifier_exported_but_not_registered():
    """CcaIdentifier classifies congestion controllers, not sites: it
    is public API (the PR-9 export fix) but stays out of the WF
    registry."""
    assert CcaIdentifier is not None
    assert "cca" not in {n.split("-")[0] for n in ATTACK_REGISTRY}


def test_deprecated_make_attack_shim_warns():
    from repro.experiments.attack_robustness import _make_attack
    from repro.experiments.config import ExperimentConfig

    with pytest.warns(DeprecationWarning):
        attack = _make_attack("knn", ExperimentConfig())
    assert attack.name == "knn"


def test_experiment_standard_configurations():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.table2 import make_attack

    config = ExperimentConfig(seed=13, n_estimators=22)
    assert make_attack(config, "kfp").params()["n_estimators"] == 22
    assert make_attack(config, "kfp").params()["random_state"] == 13
    assert make_attack(config, "cumul").params()["epochs"] == 20
    assert make_attack(config, "knn").params()["n_neighbors"] == 3
    assert make_attack(config, "tam-mlp").params()["seed"] == 13
    assert make_attack(config, "kfp", seed=99).params()["random_state"] == 99
