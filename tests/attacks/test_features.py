"""k-FP feature extraction tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.features.kfp import KfpFeatureExtractor, extract_features
from repro.capture.trace import IN, OUT, Trace


@pytest.fixture(scope="module")
def extractor():
    return KfpFeatureExtractor()


def test_names_are_stable_and_unique(extractor):
    names = extractor.names()
    assert len(names) == extractor.n_features
    assert len(set(names)) == len(names)
    assert extractor.names() == names  # stable across calls


def test_vector_length_matches_names(extractor, random_trace):
    vector = extractor.extract(random_trace)
    assert vector.shape == (extractor.n_features,)


def test_all_features_finite_on_degenerate_traces(extractor):
    cases = [
        Trace.empty(),
        Trace.from_records([(0.0, IN, 100)]),
        Trace.from_records([(0.0, OUT, 100)]),
        Trace.from_records([(0.0, IN, 100), (0.0, IN, 100)]),  # zero IATs
    ]
    for trace in cases:
        vector = extractor.extract(trace)
        assert np.all(np.isfinite(vector)), trace


def test_count_features_correct(extractor, simple_trace):
    vector = extractor.extract(simple_trace)
    names = extractor.names()
    get = lambda name: vector[names.index(name)]
    assert get("count_total") == len(simple_trace)
    assert get("count_in") == (simple_trace.directions == IN).sum()
    assert get("count_out") == (simple_trace.directions == OUT).sum()
    assert get("bytes_total") == simple_trace.total_bytes
    assert get("bytes_in") == simple_trace.incoming_bytes


def test_burst_features(extractor):
    # Directions: OUT, IN*3, OUT*2, IN -> runs: 1 out, 3 in, 2 out, 1 in
    trace = Trace.from_records(
        [
            (0.0, OUT, 100),
            (0.1, IN, 100), (0.2, IN, 100), (0.3, IN, 100),
            (0.4, OUT, 100), (0.5, OUT, 100),
            (0.6, IN, 100),
        ]
    )
    vector = extractor.extract(trace)
    names = extractor.names()
    get = lambda name: vector[names.index(name)]
    assert get("burst_count_in") == 2
    assert get("burst_len_in_max") == 3
    assert get("burst_count_out") == 2
    assert get("burst_len_out_max") == 2


def test_direction_sensitivity(extractor, random_trace):
    """Flipping all directions must change the vector."""
    flipped = Trace(
        random_trace.times, -random_trace.directions, random_trace.sizes
    )
    a = extractor.extract(random_trace)
    b = extractor.extract(flipped)
    assert not np.allclose(a, b)


def test_timing_sensitivity(extractor, random_trace):
    stretched = Trace(
        random_trace.times * 2.0, random_trace.directions, random_trace.sizes
    )
    a = extractor.extract(random_trace)
    b = extractor.extract(stretched)
    assert not np.allclose(a, b)


def test_extract_many_stacks_rows(extractor, random_trace, simple_trace):
    matrix = extractor.extract_many([random_trace, simple_trace])
    assert matrix.shape == (2, extractor.n_features)
    assert np.allclose(matrix[0], extractor.extract(random_trace))


def test_module_level_helper(random_trace):
    vector = extract_features(random_trace)
    assert np.all(np.isfinite(vector))


@given(
    st.lists(
        st.tuples(
            st.floats(0, 50, allow_nan=False),
            st.sampled_from([IN, OUT]),
            st.integers(1, 1600),
        ),
        min_size=0,
        max_size=100,
    )
)
@settings(max_examples=80, deadline=None)
def test_features_total_on_arbitrary_traces(records):
    """The extractor never produces NaN/inf, whatever the trace."""
    extractor = KfpFeatureExtractor()
    vector = extractor.extract(Trace.from_records(records))
    assert vector.shape == (extractor.n_features,)
    assert np.all(np.isfinite(vector))
