"""Extractor hardening against empty and degenerate traces.

Every extractor documents total behaviour on the shapes the fuzzer's
synthetic families generate: zero-length traces yield the all-zero
feature vector, single-packet and one-directional traces extract
finite features without warnings, and traces whose arrays were mutated
to non-finite values after construction are rejected with the typed
:class:`repro.errors.TraceError` instead of silently producing
inf/NaN features (or, for TAM, a garbage bin index).
"""

import numpy as np
import pytest

from repro.attacks.cumul import CumulAttack, cumulative_features
from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.attacks.tam import TamExtractor
from repro.capture.trace import IN, OUT, Trace
from repro.errors import TraceError


def empty_trace():
    return Trace.empty()


def single_packet_trace():
    return Trace(
        np.array([0.5]), np.array([IN], dtype=np.int8), np.array([900])
    )


def one_direction_trace(direction):
    return Trace(
        np.linspace(0.0, 1.0, 12),
        np.full(12, direction, dtype=np.int8),
        np.full(12, 1000),
    )


DEGENERATES = {
    "empty": empty_trace,
    "single-packet": single_packet_trace,
    "all-outgoing": lambda: one_direction_trace(OUT),
    "all-incoming": lambda: one_direction_trace(IN),
}

EXTRACTORS = {
    "kfp": lambda t: KfpFeatureExtractor().extract(t),
    "tam": lambda t: TamExtractor(n_bins=8).extract(t),
    "cumul": lambda t: cumulative_features(t, n_interp=20),
}


@pytest.mark.parametrize("shape", sorted(DEGENERATES))
@pytest.mark.parametrize("extractor", sorted(EXTRACTORS))
def test_degenerate_traces_extract_finite_without_warnings(extractor, shape):
    trace = DEGENERATES[shape]()
    with np.errstate(all="raise"):
        features = EXTRACTORS[extractor](trace)
    assert np.isfinite(features).all(), f"{extractor} on {shape}"


@pytest.mark.parametrize("extractor", sorted(EXTRACTORS))
def test_empty_trace_yields_zero_vector(extractor):
    features = EXTRACTORS[extractor](empty_trace())
    assert features.shape[0] > 0
    assert not features.any(), "documented zero-feature behaviour"


@pytest.mark.parametrize("extractor", sorted(EXTRACTORS))
def test_nonfinite_times_raise_typed_error(extractor):
    """Arrays mutated after construction must be rejected, not binned."""
    trace = one_direction_trace(IN)
    trace.times[3] = np.inf
    with pytest.raises(TraceError):
        EXTRACTORS[extractor](trace)
    trace.times[3] = np.nan
    with pytest.raises(TraceError):
        EXTRACTORS[extractor](trace)


@pytest.mark.parametrize("extractor", sorted(EXTRACTORS))
def test_nonpositive_sizes_raise_typed_error(extractor):
    trace = one_direction_trace(OUT)
    trace.sizes[0] = 0
    with pytest.raises(TraceError):
        EXTRACTORS[extractor](trace)


def test_batch_extraction_of_empty_list_has_feature_width():
    kfp = KfpFeatureExtractor().extract_many([])
    tam = TamExtractor(n_bins=8).extract_many([])
    cumul = CumulAttack(n_interp=20)._features([])
    assert kfp.shape == (0, KfpFeatureExtractor().n_features)
    assert tam.shape == (0, 16)
    assert cumul.shape == (0, 24)


def test_tam_single_packet_conserves_count():
    matrix = TamExtractor(n_bins=8).matrix(single_packet_trace())
    assert matrix.sum() == 1.0
