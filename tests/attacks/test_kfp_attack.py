"""k-FP attack end-to-end tests on synthetic datasets."""

import numpy as np
import pytest

from repro.attacks.kfp import KFingerprinting
from repro.attacks.knn_attack import FeatureKnnAttack
from repro.web.tracegen import StatisticalTraceGenerator


@pytest.fixture(scope="module")
def small_world():
    generator = StatisticalTraceGenerator(seed=11)
    dataset = generator.generate_dataset(
        n_samples=12, sites=["wikipedia.org", "youtube.com", "netflix.com"],
        seed=11,
    )
    rng = np.random.default_rng(0)
    return dataset.train_test_split(0.25, rng)


def test_kfp_forest_mode_beats_chance(small_world):
    train, test = small_world
    attack = KFingerprinting(n_estimators=40, random_state=0)
    attack.fit_dataset(train)
    accuracy = attack.score_dataset(test)
    assert accuracy > 0.6  # chance is 1/3


def test_kfp_leaf_knn_mode(small_world):
    train, test = small_world
    attack = KFingerprinting(
        n_estimators=40, mode="leaf-knn", k_neighbors=3, random_state=0
    )
    attack.fit_dataset(train)
    accuracy = attack.score_dataset(test)
    assert accuracy > 0.6


def test_kfp_labels_recorded(small_world):
    train, _test = small_world
    attack = KFingerprinting(n_estimators=5, random_state=0)
    attack.fit_dataset(train)
    assert attack.labels_ == train.labels


def test_kfp_deterministic(small_world):
    train, test = small_world
    traces, _y = test.to_arrays()
    a = KFingerprinting(n_estimators=10, random_state=3).fit_dataset(train)
    b = KFingerprinting(n_estimators=10, random_state=3).fit_dataset(train)
    assert np.array_equal(a.predict_traces(traces), b.predict_traces(traces))


def test_kfp_feature_importances_normalised(small_world):
    train, _test = small_world
    attack = KFingerprinting(n_estimators=10, random_state=0).fit_dataset(train)
    importances = attack.feature_importances()
    assert importances.shape == (attack.extractor.n_features,)
    assert importances.sum() == pytest.approx(1.0)
    assert (importances >= 0).all()


def test_kfp_mode_validation():
    with pytest.raises(ValueError):
        KFingerprinting(mode="svm")
    attack = KFingerprinting(mode="leaf-knn")
    with pytest.raises(RuntimeError):
        attack.predict_features(np.zeros((1, attack.extractor.n_features)))


def test_feature_knn_attack(small_world):
    train, test = small_world
    attack = FeatureKnnAttack(n_neighbors=3).fit_dataset(train)
    assert attack.score_dataset(test) > 0.5


def test_feature_knn_requires_fit(small_world):
    _train, test = small_world
    traces, _y = test.to_arrays()
    with pytest.raises(RuntimeError):
        FeatureKnnAttack().predict_traces(traces)
