"""TAM extractor invariants: bin conservation, channel symmetry,
clipping, and parallel bit-identity."""

import numpy as np
import pytest

from repro.attacks.tam import CHANNELS, TamExtractor, _extract_tam_chunk
from repro.capture.trace import IN, OUT, Trace
from repro.web.tracegen import StatisticalTraceGenerator


def _random_traces(n=12, seed=7):
    generator = StatisticalTraceGenerator(seed=seed)
    dataset = generator.generate_dataset(n_samples=max(1, n // 9 + 1), seed=seed)
    traces, _ = dataset.to_arrays()
    return list(traces)[:n]


def test_matrix_shape_and_channel_order(simple_trace):
    extractor = TamExtractor(n_bins=16, max_duration=1.0)
    matrix = extractor.matrix(simple_trace)
    assert matrix.shape == (2, 16)
    assert CHANNELS == (OUT, IN)
    # Channel 0 counts outgoing packets, channel 1 incoming.
    assert matrix[0].sum() == (simple_trace.directions == OUT).sum()
    assert matrix[1].sum() == (simple_trace.directions == IN).sum()


def test_bin_conservation(random_trace):
    """Every packet lands in exactly one bin — even past max_duration."""
    extractor = TamExtractor(n_bins=32, max_duration=0.25)
    assert random_trace.times[-1] > 0.25  # some packets overflow the window
    matrix = extractor.matrix(random_trace)
    assert matrix.sum() == len(random_trace)


def test_late_packets_clip_into_final_bin():
    trace = Trace.from_records(
        [(0.0, OUT, 100), (99.0, IN, 100), (500.0, IN, 100)]
    )
    extractor = TamExtractor(n_bins=4, max_duration=1.0)
    matrix = extractor.matrix(trace)
    assert matrix[0, 0] == 1  # the outgoing packet at t=0
    assert matrix[1, -1] == 2  # both late incoming packets clip


def test_direction_flip_swaps_channels(random_trace):
    """Reversing every packet's direction must exactly swap channels."""
    extractor = TamExtractor(n_bins=24, max_duration=2.0)
    flipped = Trace(
        random_trace.times.copy(),
        (-random_trace.directions).astype(np.int8),
        random_trace.sizes.copy(),
    )
    original = extractor.matrix(random_trace)
    mirrored = extractor.matrix(flipped)
    assert np.array_equal(original[0], mirrored[1])
    assert np.array_equal(original[1], mirrored[0])


def test_time_origin_invariance(random_trace):
    """The matrix depends on relative times only."""
    extractor = TamExtractor(n_bins=16, max_duration=2.0)
    shifted = Trace(
        random_trace.times + 123.0,
        random_trace.directions.copy(),
        random_trace.sizes.copy(),
    )
    assert np.array_equal(
        extractor.matrix(random_trace), extractor.matrix(shifted)
    )


def test_empty_trace_gives_zero_matrix():
    extractor = TamExtractor(n_bins=8)
    empty = Trace(np.array([]), np.array([], dtype=np.int8), np.array([]))
    assert extractor.matrix(empty).sum() == 0
    assert extractor.extract(empty).shape == (16,)


def test_extract_flattens_matrix(simple_trace):
    extractor = TamExtractor(n_bins=10, max_duration=1.0)
    assert np.array_equal(
        extractor.extract(simple_trace),
        extractor.matrix(simple_trace).reshape(-1),
    )
    assert extractor.n_features == 20
    assert len(extractor.names()) == 20


def test_params_and_validation():
    extractor = TamExtractor(n_bins=48, max_duration=5.0)
    assert extractor.params() == {"n_bins": 48, "max_duration": 5.0}
    with pytest.raises(ValueError):
        TamExtractor(n_bins=0)
    with pytest.raises(ValueError):
        TamExtractor(max_duration=0)


def test_extract_many_matches_serial_rows():
    traces = _random_traces(n=10)
    extractor = TamExtractor(n_bins=32)
    X = extractor.extract_many(traces)
    assert X.shape == (10, 64)
    for row, trace in zip(X, traces):
        assert np.array_equal(row, extractor.extract(trace))


def test_extract_many_parallel_bit_identical():
    traces = _random_traces(n=14)
    extractor = TamExtractor(n_bins=32)
    serial = extractor.extract_many(traces, workers=1)
    parallel = extractor.extract_many(traces, workers=2)
    assert np.array_equal(serial, parallel)


def test_chunk_worker_matches_extractor():
    traces = _random_traces(n=5)
    extractor = TamExtractor(n_bins=16, max_duration=4.0)
    assert np.array_equal(
        _extract_tam_chunk(traces, 16, 4.0), extractor.extract_many(traces)
    )
