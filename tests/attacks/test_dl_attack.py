"""TamMlpAttack: seed stability, serial-vs-parallel bit-identity, and
closed-world accuracy on generated traffic."""

import numpy as np
import pytest

from repro.attacks.dl import TamMlpAttack
from repro.web.tracegen import StatisticalTraceGenerator


@pytest.fixture(scope="module")
def tiny_world():
    """A small labelled closed world from the statistical generator."""
    generator = StatisticalTraceGenerator(seed=3)
    dataset = generator.generate_dataset(n_samples=8, seed=3)
    traces, y = dataset.to_arrays()
    rng = np.random.default_rng(0)
    order = rng.permutation(len(y))
    split = int(len(y) * 0.75)
    train_idx, test_idx = order[:split], order[split:]
    traces = list(traces)
    return (
        [traces[i] for i in train_idx],
        y[train_idx],
        [traces[i] for i in test_idx],
        y[test_idx],
    )


def _attack(**kwargs):
    defaults = dict(n_bins=32, hidden=(32,), epochs=30, seed=7)
    defaults.update(kwargs)
    return TamMlpAttack(**defaults)


def test_beats_chance_on_generated_world(tiny_world):
    train_x, train_y, test_x, test_y = tiny_world
    attack = _attack().fit(train_x, train_y)
    accuracy = float(np.mean(attack.predict(test_x) == test_y))
    n_classes = int(train_y.max()) + 1
    assert accuracy > 2.0 / n_classes  # well above the 1/9 chance rate


def test_equal_seeds_predict_bit_identically(tiny_world):
    train_x, train_y, test_x, _ = tiny_world
    first = _attack().fit(train_x, train_y)
    second = _attack().fit(train_x, train_y)
    assert np.array_equal(first.predict(test_x), second.predict(test_x))
    for a, b in zip(first.mlp.weights_, second.mlp.weights_):
        assert np.array_equal(a, b)


def test_serial_vs_parallel_workers_bit_identical(tiny_world):
    train_x, train_y, test_x, _ = tiny_world
    serial = _attack(workers=1).fit(train_x, train_y)
    parallel = _attack(workers=2).fit(train_x, train_y)
    assert np.array_equal(serial.predict(test_x), parallel.predict(test_x))
    for a, b in zip(serial.mlp.weights_, parallel.mlp.weights_):
        assert np.array_equal(a, b)


def test_workers_excluded_from_params(tiny_world):
    assert "workers" not in _attack(workers=4).params()
    # ... so serial and parallel instances share one spec (cache key).
    assert _attack(workers=1).spec() == _attack(workers=2).spec()


def test_history_exposes_training_curve(tiny_world):
    train_x, train_y, _, _ = tiny_world
    attack = _attack(epochs=5).fit(train_x, train_y)
    assert len(attack.history_) == 5
    assert all(np.isfinite(loss) for loss in attack.history_)


def test_predict_proba_shape(tiny_world):
    train_x, train_y, test_x, _ = tiny_world
    attack = _attack().fit(train_x, train_y)
    proba = attack.predict_proba(test_x)
    assert proba.shape == (len(test_x), int(train_y.max()) + 1)
    assert proba.sum(axis=1) == pytest.approx(np.ones(len(test_x)))


def test_fit_dataset_records_labels():
    generator = StatisticalTraceGenerator(seed=1)
    dataset = generator.generate_dataset(n_samples=2, seed=1)
    attack = _attack(epochs=2).fit_dataset(dataset)
    assert attack.labels_ == dataset.labels
    assert attack.score_dataset(dataset) >= 0.0
