"""CUMUL attack and linear-SVM tests."""

import numpy as np
import pytest

from repro.attacks.cumul import CumulAttack, cumulative_features
from repro.capture.trace import IN, OUT, Trace
from repro.defenses.delay import DelayDefense
from repro.defenses.split import SplitDefense
from repro.ml.linear import LinearSVC
from repro.web.tracegen import StatisticalTraceGenerator


def test_linear_svc_separable(rng):
    X = np.concatenate([rng.normal(0, 1, (60, 4)), rng.normal(5, 1, (60, 4))])
    y = np.array([0] * 60 + [1] * 60)
    svc = LinearSVC(epochs=10, random_state=0).fit(X, y)
    assert svc.score(X, y) > 0.95


def test_linear_svc_multiclass(rng):
    X, y = [], []
    for cls in range(3):
        X.append(rng.normal(cls * 5, 1, (40, 6)))
        y.extend([cls] * 40)
    X = np.vstack(X)
    y = np.asarray(y)
    svc = LinearSVC(epochs=10, random_state=1).fit(X, y)
    assert svc.score(X, y) > 0.9
    assert svc.decision_function(X).shape == (120, 3)


def test_linear_svc_validation():
    with pytest.raises(ValueError):
        LinearSVC(lam=0)
    with pytest.raises(ValueError):
        LinearSVC(epochs=0)
    with pytest.raises(RuntimeError):
        LinearSVC().predict(np.zeros((1, 2)))


def test_cumulative_features_shape_and_sign():
    trace = Trace.from_records(
        [(0.0, OUT, 500), (0.1, IN, 1500), (0.2, IN, 1500)]
    )
    vector = cumulative_features(trace, n_interp=10)
    assert vector.shape == (14,)
    assert vector[0] == 3000  # incoming bytes
    assert vector[1] == 500  # outgoing bytes
    # The curve ends at incoming - outgoing.
    assert vector[-1] == pytest.approx(2500)


def test_cumulative_features_empty():
    assert cumulative_features(Trace.empty(), 20).shape == (24,)


def test_cumul_attack_closed_world():
    generator = StatisticalTraceGenerator(seed=7)
    dataset = generator.generate_dataset(
        n_samples=14,
        sites=["wikipedia.org", "youtube.com", "netflix.com"],
        seed=7,
    )
    rng = np.random.default_rng(0)
    train, test = dataset.train_test_split(0.25, rng)
    attack = CumulAttack(epochs=15, random_state=0).fit_dataset(train)
    assert attack.score_dataset(test) > 0.6  # chance 1/3


def test_cumul_is_timing_blind_but_size_sensitive(random_trace):
    """Delaying must not change CUMUL's view; splitting must."""
    base = cumulative_features(random_trace)
    delayed = DelayDefense(seed=1).apply(random_trace)
    assert np.allclose(cumulative_features(delayed), base)
    split = SplitDefense(seed=1).apply(random_trace)
    assert not np.allclose(cumulative_features(split), base)
