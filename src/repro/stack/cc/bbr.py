"""BBR-lite: a model-based, pacing-driven congestion control.

This follows BBRv1's structure closely enough for the paper's §5.1
discussion to be reproducible: the algorithm *measures* delivery rate,
paces at ``gain * btl_bw``, and cycles probing gains — so any external
manipulation of departure times (Stob) perturbs its model.  The
implementation keeps windowed max/min filters for bottleneck bandwidth
and propagation RTT, and the four phases STARTUP / DRAIN / PROBE_BW /
PROBE_RTT.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.stack.cc.base import AckSample, CcPhase, CongestionControl

#: 2/ln(2): the startup gain that doubles delivery rate each RTT.
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
#: PROBE_BW gain cycle (one phase per min-RTT).
PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: Bandwidth filter window, in gain-cycle phases.
BW_WINDOW_ROUNDS = 10
#: How long without 25 % bandwidth growth before leaving STARTUP.
STARTUP_FULL_BW_ROUNDS = 3


class BbrLite(CongestionControl):
    """Simplified BBRv1."""

    name = "bbr"

    def __init__(self, mss: int) -> None:
        super().__init__(mss)
        self._phase = CcPhase.STARTUP
        self._btl_bw = 0.0
        self._bw_samples: Deque[Tuple[int, float]] = deque()  # (round, bw)
        self._min_rtt = float("inf")
        self._round = 0
        self._round_bytes = 0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_started = 0.0
        self._pacing_gain = STARTUP_GAIN
        self._cwnd_gain = 2.0

    # -- filters -------------------------------------------------------------

    def _update_bw(self, bw: float) -> None:
        self._bw_samples.append((self._round, bw))
        horizon = self._round - BW_WINDOW_ROUNDS
        while self._bw_samples and self._bw_samples[0][0] < horizon:
            self._bw_samples.popleft()
        self._btl_bw = max(sample for _round, sample in self._bw_samples)

    @property
    def btl_bw(self) -> float:
        """Current bottleneck-bandwidth estimate (bytes/s)."""
        return self._btl_bw

    @property
    def min_rtt(self) -> float:
        """Current propagation-RTT estimate (seconds)."""
        return self._min_rtt

    def _bdp(self) -> float:
        if self._btl_bw <= 0 or self._min_rtt == float("inf"):
            return float(10 * self.mss)
        return self._btl_bw * self._min_rtt

    # -- events ---------------------------------------------------------------

    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt > 0:
            self._min_rtt = min(self._min_rtt, sample.rtt)
        if sample.delivery_rate > 0:
            self._update_bw(sample.delivery_rate)
        # Round accounting: one round per cwnd of acked data.
        self._round_bytes += sample.acked_bytes
        if self._round_bytes >= max(self.cwnd, self.mss):
            self._round_bytes = 0
            self._round += 1
            self._on_round(sample.now)
        self._update_cwnd()

    def _on_round(self, now: float) -> None:
        if self._phase is CcPhase.STARTUP:
            if self._btl_bw > self._full_bw * 1.25:
                self._full_bw = self._btl_bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= STARTUP_FULL_BW_ROUNDS:
                    self._enter_drain()
        elif self._phase is CcPhase.DRAIN:
            pass  # exit condition checked in on_ack via inflight
        elif self._phase is CcPhase.PROBE_BW:
            self._advance_cycle(now)

    def _enter_drain(self) -> None:
        self._phase = CcPhase.DRAIN
        self._pacing_gain = DRAIN_GAIN
        self._cwnd_gain = 2.0

    def _enter_probe_bw(self, now: float) -> None:
        self._phase = CcPhase.PROBE_BW
        self._cycle_index = 0
        self._cycle_started = now
        self._pacing_gain = PROBE_GAINS[0]
        self._cwnd_gain = 2.0

    def _advance_cycle(self, now: float) -> None:
        self._cycle_index = (self._cycle_index + 1) % len(PROBE_GAINS)
        self._pacing_gain = PROBE_GAINS[self._cycle_index]
        self._cycle_started = now

    def _update_cwnd(self) -> None:
        target = self._cwnd_gain * self._bdp()
        self.cwnd = max(int(target), 4 * self.mss)

    def check_drain_exit(self, in_flight: int, now: float) -> None:
        """The endpoint calls this so DRAIN can end when the queue built
        during STARTUP has drained to one BDP."""
        if self._phase is CcPhase.DRAIN and in_flight <= self._bdp():
            self._enter_probe_bw(now)

    def on_loss(self, now: float, in_flight: int) -> None:
        # BBRv1 mostly ignores isolated losses; it caps the window as a
        # safety net, mirroring Linux's conservative in-recovery cwnd.
        self.cwnd = max(int(self._bdp()), 4 * self.mss)

    def on_rto(self, now: float) -> None:
        self.cwnd = 4 * self.mss

    def on_recovery_exit(self, now: float) -> None:
        self._update_cwnd()

    # -- queries ---------------------------------------------------------------

    @property
    def phase(self) -> CcPhase:
        return self._phase

    @property
    def pacing_gain(self) -> float:
        """Current pacing gain (exposed for tests and Stob gating)."""
        return self._pacing_gain

    def pacing_rate(self, srtt: float) -> Optional[float]:
        if self._btl_bw <= 0:
            # No bandwidth sample yet: pace off the initial window.
            if srtt <= 0:
                return None
            return self._pacing_gain * self.cwnd / srtt
        return self._pacing_gain * self._btl_bw

    def reset(self) -> None:
        super().reset()
        self.__init__(self.mss)
