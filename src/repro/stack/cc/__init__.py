"""Pluggable congestion-control algorithms (CCAs).

Three CCAs are provided, matching the ones the paper discusses:

* :class:`~repro.stack.cc.reno.Reno` — classic AIMD,
* :class:`~repro.stack.cc.cubic.Cubic` — Linux's default,
* :class:`~repro.stack.cc.bbr.BbrLite` — a model-based, pacing-driven
  CCA with explicit phases (relevant to §5.1's co-design discussion).

Every CCA exposes a *phase* so Stob's constraint layer can gate
obfuscation actions (e.g. "no packet-sequence manipulation during BBR
startup", as suggested in §5.1).
"""

from repro.stack.cc.base import CongestionControl, CcPhase, AckSample
from repro.stack.cc.reno import Reno
from repro.stack.cc.cubic import Cubic
from repro.stack.cc.bbr import BbrLite

_REGISTRY = {
    "reno": Reno,
    "cubic": Cubic,
    "bbr": BbrLite,
}


def make_cca(name: str, mss: int):
    """Instantiate a CCA by name (``reno``, ``cubic`` or ``bbr``)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(mss=mss)


__all__ = [
    "CongestionControl",
    "CcPhase",
    "AckSample",
    "Reno",
    "Cubic",
    "BbrLite",
    "make_cca",
]
