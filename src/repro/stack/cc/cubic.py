"""CUBIC congestion control (RFC 9438 model).

The window grows as ``W(t) = C (t - K)^3 + W_max`` after a loss, where
``K = cbrt(W_max * beta / C)``.  Slow start and recovery behave like
Reno.  The implementation follows the RFC's formulation with windows in
MSS units internally, converted to bytes at the interface.
"""

from __future__ import annotations

from repro.stack.cc.base import AckSample, CcPhase, CongestionControl

#: Standard CUBIC constants.
CUBIC_C = 0.4
CUBIC_BETA = 0.7


class Cubic(CongestionControl):
    """CUBIC congestion control."""

    name = "cubic"

    def __init__(self, mss: int) -> None:
        super().__init__(mss)
        self._w_max = 0.0  # in MSS units
        self._epoch_start = -1.0
        self._k = 0.0
        self._in_recovery = False
        self._min_rtt = float("inf")

    # -- helpers ---------------------------------------------------------------

    def _cwnd_mss(self) -> float:
        return self.cwnd / self.mss

    def _set_cwnd_mss(self, w: float) -> None:
        self.cwnd = max(int(w * self.mss), 2 * self.mss)

    # -- events ---------------------------------------------------------------

    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt > 0:
            self._min_rtt = min(self._min_rtt, sample.rtt)
        if self._in_recovery:
            return
        if self.cwnd < self.ssthresh:
            # HyStart (delay-increase flavour): leave slow start before
            # the queue overflows, once the RTT has clearly inflated
            # above the propagation floor.  Linux CUBIC ships this;
            # without it every connection overshoots by a full window.
            if (
                sample.rtt > 0
                and self._min_rtt < float("inf")
                and self.cwnd >= 16 * self.mss
                and sample.rtt > self._min_rtt + max(self._min_rtt / 8, 0.004)
            ):
                self.ssthresh = self.cwnd
            else:
                self.cwnd += sample.acked_bytes
                return
        if self._epoch_start < 0:
            # First CA ack after recovery (or ever): start a cubic epoch.
            self._epoch_start = sample.now
            w = self._cwnd_mss()
            if self._w_max < w:
                self._w_max = w
            self._k = ((self._w_max * (1 - CUBIC_BETA)) / CUBIC_C) ** (1.0 / 3.0)
        t = sample.now - self._epoch_start
        target = CUBIC_C * (t - self._k) ** 3 + self._w_max
        current = self._cwnd_mss()
        if target > current:
            # Approach the cubic target over roughly one RTT.
            self._set_cwnd_mss(current + (target - current) / max(current, 1.0))
        else:
            # TCP-friendly floor: grow at least like Reno would.
            self._set_cwnd_mss(current + 0.01)

    def on_loss(self, now: float, in_flight: int) -> None:
        if self._in_recovery:
            return
        self._in_recovery = True
        w = self._cwnd_mss()
        # Fast convergence: release bandwidth faster on consecutive losses.
        if w < self._w_max:
            self._w_max = w * (1 + CUBIC_BETA) / 2.0
        else:
            self._w_max = w
        self.ssthresh = max(int(w * CUBIC_BETA) * self.mss, 2 * self.mss)
        self.cwnd = self.ssthresh
        self._epoch_start = -1.0

    def on_rto(self, now: float) -> None:
        # An RTO aborts any fast recovery in progress.
        super().on_rto(now)
        self._epoch_start = -1.0
        self._in_recovery = False

    def on_recovery_exit(self, now: float) -> None:
        self._in_recovery = False

    @property
    def phase(self) -> CcPhase:
        if self._in_recovery:
            return CcPhase.RECOVERY
        return super().phase

    def reset(self) -> None:
        super().reset()
        self._w_max = 0.0
        self._epoch_start = -1.0
        self._k = 0.0
        self._in_recovery = False
        self._min_rtt = float("inf")
