"""Congestion-control interface.

The TCP endpoint feeds the CCA :class:`AckSample` objects and asks it
for two things — ``cwnd`` (bytes in flight allowed) and
``pacing_rate`` (bytes/second; ``None`` disables pacing).  This is the
same division of labour as Linux's ``tcp_congestion_ops`` plus the
fq pacing hook.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional


class CcPhase(enum.Enum):
    """Coarse CCA phase, exposed so Stob can gate actions (§5.1)."""

    SLOW_START = "slow_start"
    CONGESTION_AVOIDANCE = "congestion_avoidance"
    RECOVERY = "recovery"
    #: BBR-specific phases.
    STARTUP = "startup"
    DRAIN = "drain"
    PROBE_BW = "probe_bw"
    PROBE_RTT = "probe_rtt"


@dataclass(slots=True)
class AckSample:
    """Measurements delivered to the CCA on every ACK.

    Attributes
    ----------
    acked_bytes:
        Bytes newly acknowledged by this ACK.
    rtt:
        RTT sample in seconds (negative when unavailable).
    now:
        Simulated time of ACK arrival.
    in_flight:
        Bytes outstanding *after* this ACK.
    delivery_rate:
        Estimated delivery rate (bytes/s) over the last RTT, or 0.
    """

    acked_bytes: int
    rtt: float
    now: float
    in_flight: int
    delivery_rate: float = 0.0


class CongestionControl(abc.ABC):
    """Base class for congestion-control algorithms."""

    #: Human-readable algorithm name (used by the CCA identifier too).
    name = "base"

    def __init__(self, mss: int) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.mss = mss
        #: Congestion window in bytes.
        self.cwnd = 10 * mss  # RFC 6928 IW10
        #: Slow-start threshold in bytes.
        self.ssthresh = 2**62

    # -- events ---------------------------------------------------------------

    @abc.abstractmethod
    def on_ack(self, sample: AckSample) -> None:
        """A cumulative ACK advanced the window."""

    @abc.abstractmethod
    def on_loss(self, now: float, in_flight: int) -> None:
        """Fast-retransmit-detected loss (dupack threshold)."""

    def on_rto(self, now: float) -> None:
        """Retransmission timeout: collapse to one segment (RFC 5681)."""
        self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        self.cwnd = self.mss

    def on_recovery_exit(self, now: float) -> None:
        """Called when recovery completes (all lost data repaired)."""

    # -- queries ---------------------------------------------------------------

    @property
    def phase(self) -> CcPhase:
        """Current coarse phase."""
        if self.cwnd < self.ssthresh:
            return CcPhase.SLOW_START
        return CcPhase.CONGESTION_AVOIDANCE

    def pacing_rate(self, srtt: float) -> Optional[float]:
        """Desired pacing rate in bytes/s, or None to disable pacing.

        Loss-based CCAs use the Linux default: pace at 200 % of
        cwnd/srtt in slow start and 120 % afterwards, so ACK clocking
        is smoothed without throttling below the window.
        """
        if srtt <= 0:
            return None
        ratio = 2.0 if self.phase is CcPhase.SLOW_START else 1.2
        return ratio * self.cwnd / srtt

    def reset(self) -> None:
        """Restore initial window state (new connection reuse)."""
        self.cwnd = 10 * self.mss
        self.ssthresh = 2**62
