"""NewReno congestion control (RFC 5681/6582 model).

Slow start doubles cwnd per RTT (one MSS per acked MSS); congestion
avoidance adds one MSS per RTT; loss halves the window and enters
recovery until the loss point is repaired.
"""

from __future__ import annotations

from repro.stack.cc.base import AckSample, CcPhase, CongestionControl


class Reno(CongestionControl):
    """Classic AIMD congestion control."""

    name = "reno"

    def __init__(self, mss: int) -> None:
        super().__init__(mss)
        self._in_recovery = False
        self._avoidance_acc = 0  # byte accumulator for CA growth

    def on_ack(self, sample: AckSample) -> None:
        if self._in_recovery:
            # Window is frozen during fast recovery (simplified: no
            # window inflation; the endpoint handles retransmission).
            return
        if self.cwnd < self.ssthresh:
            # Slow start: grow by the acked byte count (doubling/RTT).
            self.cwnd += sample.acked_bytes
        else:
            # Congestion avoidance: one MSS per cwnd-worth of ACKs.
            self._avoidance_acc += sample.acked_bytes
            if self._avoidance_acc >= self.cwnd:
                self._avoidance_acc -= self.cwnd
                self.cwnd += self.mss

    def on_loss(self, now: float, in_flight: int) -> None:
        if self._in_recovery:
            return
        self._in_recovery = True
        self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        self.cwnd = self.ssthresh

    def on_rto(self, now: float) -> None:
        # An RTO aborts any fast recovery in progress: the connection
        # restarts from slow start, not from a frozen window.
        super().on_rto(now)
        self._in_recovery = False
        self._avoidance_acc = 0

    def on_recovery_exit(self, now: float) -> None:
        self._in_recovery = False
        self._avoidance_acc = 0

    @property
    def phase(self) -> CcPhase:
        if self._in_recovery:
            return CcPhase.RECOVERY
        return super().phase

    def reset(self) -> None:
        super().reset()
        self._in_recovery = False
        self._avoidance_acc = 0
