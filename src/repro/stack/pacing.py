"""Per-flow pacing state (the fq rate-limiting half).

The pacer turns a pacing *rate* into per-segment earliest departure
times, exactly as fq does for TCP: a flow keeps a ``next_allowed``
timestamp; each segment departs at ``max(now, next_allowed)`` and
pushes ``next_allowed`` forward by its serialization time at the pacing
rate.

Stob injects *additional* departure gaps through
:meth:`FlowPacer.schedule`'s ``extra_gap`` argument.  Gaps can only
delay — never advance — a departure, which is how the implementation
guarantees the §4.2 safety constraint (never more aggressive than the
CCA's chosen rate).
"""

from __future__ import annotations

from typing import Optional


class FlowPacer:
    """Earliest-departure-time calculator for one flow."""

    def __init__(self) -> None:
        self._next_allowed = 0.0
        self.scheduled_segments = 0
        self.total_extra_gap = 0.0

    @property
    def next_allowed(self) -> float:
        """Earliest time the next segment may depart."""
        return self._next_allowed

    def schedule(
        self,
        now: float,
        wire_bytes: int,
        pacing_rate: Optional[float],
        extra_gap: float = 0.0,
    ) -> float:
        """Return the departure time for a segment of ``wire_bytes``.

        ``pacing_rate`` of ``None`` (or <= 0) means pacing is disabled:
        the segment may leave immediately (plus any ``extra_gap``).
        ``extra_gap`` must be non-negative; Stob uses it to stretch the
        packet sequence.
        """
        if wire_bytes < 0:
            raise ValueError(f"wire_bytes must be >= 0, got {wire_bytes}")
        if extra_gap < 0:
            raise ValueError(
                f"extra_gap must be >= 0 (Stob may only delay), got {extra_gap}"
            )
        departure = max(now, self._next_allowed) + extra_gap
        if pacing_rate is not None and pacing_rate > 0:
            self._next_allowed = departure + wire_bytes / pacing_rate
        else:
            self._next_allowed = departure
        self.scheduled_segments += 1
        self.total_extra_gap += extra_gap
        return departure

    def schedule_batch(
        self,
        now: float,
        wire_bytes_list,
        pacing_rate: Optional[float],
        extra_gap: float = 0.0,
    ) -> list:
        """Departure times for a run of segments released in one instant.

        Equivalent to folding :meth:`schedule` over ``wire_bytes_list``
        with the same ``now``/``pacing_rate``/``extra_gap`` — the same
        left-to-right float additions, so the results are bit-identical
        to the sequential calls (a property test pins this).
        """
        if extra_gap < 0:
            raise ValueError(
                f"extra_gap must be >= 0 (Stob may only delay), got {extra_gap}"
            )
        departures = []
        next_allowed = self._next_allowed
        paced = pacing_rate is not None and pacing_rate > 0
        total_gap = self.total_extra_gap
        for wire_bytes in wire_bytes_list:
            if wire_bytes < 0:
                raise ValueError(f"wire_bytes must be >= 0, got {wire_bytes}")
            departure = (now if now > next_allowed else next_allowed) + extra_gap
            if paced:
                next_allowed = departure + wire_bytes / pacing_rate
            else:
                next_allowed = departure
            # Accumulate by repeated addition (not gap * n) so the stat
            # matches a sequential fold bit-for-bit.
            total_gap += extra_gap
            departures.append(departure)
        self._next_allowed = next_allowed
        self.scheduled_segments += len(departures)
        self.total_extra_gap = total_gap
        return departures

    def reset(self) -> None:
        """Forget pacing history (connection restart)."""
        self._next_allowed = 0.0
