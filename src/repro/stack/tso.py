"""TSO sizing policy (Linux ``tcp_tso_autosize`` model).

TCP would ideally always build 64 KB super-segments for CPU efficiency,
but — as §4.2 explains — a TSO segment leaves the NIC as an
un-interleavable line-rate micro-burst, so Linux bounds the segment to
roughly 1 ms worth of the current pacing rate.  Stob later *lowers*
this bound further to gain fine-grained interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import DEFAULT_TSO_SEGS, MAX_TSO_BYTES


@dataclass
class TsoPolicy:
    """Parameters of the autosizing computation.

    ``burst_usecs`` mirrors Linux's goal of one segment per ~1 ms of
    pacing; ``min_segs``/``max_segs`` bound the result.
    """

    burst_usecs: float = 1000.0
    min_segs: int = 2
    max_segs: int = DEFAULT_TSO_SEGS

    def __post_init__(self) -> None:
        if self.min_segs < 1:
            raise ValueError(f"min_segs must be >= 1, got {self.min_segs}")
        if self.max_segs < self.min_segs:
            raise ValueError(
                f"max_segs ({self.max_segs}) must be >= min_segs ({self.min_segs})"
            )

    def autosize(self, pacing_rate: float, mss: int) -> int:
        """Return the number of MSS-sized packets for the next TSO segment.

        With no pacing (``pacing_rate <= 0``) the maximum is used, as
        Linux does for unpaced flows.
        """
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        hard_cap = max(1, min(self.max_segs, MAX_TSO_BYTES // mss))
        if pacing_rate <= 0:
            return hard_cap
        bytes_per_burst = pacing_rate * (self.burst_usecs * 1e-6)
        segs = int(bytes_per_burst // mss)
        return max(min(segs, hard_cap), min(self.min_segs, hard_cap))
