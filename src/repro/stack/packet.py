"""Packet and TSO-segment representations.

Two transmission units exist in the stack, mirroring Linux:

* :class:`TsoSegment` — the large transport-level segment TCP pushes to
  the lower layers; the NIC splits it into wire packets (TSO).
* :class:`Packet` — a wire packet: what links carry and what a passive
  eavesdropper (and hence a WF attack) observes.

Payload *contents* are never materialised — only byte counts — because
nothing in the reproduction depends on actual data bytes.  This keeps
multi-gigabyte simulated transfers cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import IPV4_HEADER, TCP_HEADER_TS

#: Total per-packet TCP/IP header bytes used throughout the stack model
#: (IPv4 + TCP with timestamps, as in a default Linux connection).
HEADER_BYTES = IPV4_HEADER + TCP_HEADER_TS


@dataclass(slots=True)
class Packet:
    """A TCP/IP wire packet.

    Attributes
    ----------
    flow_id:
        Identifier of the connection this packet belongs to.
    direction:
        +1 for client -> server, -1 for server -> client.  This is the
        convention WF traces use.
    seq / end_seq:
        Byte-stream sequence range ``[seq, end_seq)`` carried.
    ack:
        Cumulative ACK number carried (every data packet also acks).
    payload_len:
        Payload bytes (0 for a pure ACK).
    is_syn / is_fin:
        Connection management flags.
    sent_at:
        Simulated time the packet left the NIC (stamped by the NIC).
    packet_id:
        Unique id for tracing/debugging.
    dummy:
        True when the packet carries padding rather than real data
        (injected by padding defenses; receivers discard it).
    """

    flow_id: int
    direction: int
    seq: int = 0
    ack: int = 0
    payload_len: int = 0
    is_syn: bool = False
    is_fin: bool = False
    sent_at: float = -1.0
    packet_id: int = 0
    dummy: bool = False
    #: Echo of the sender's timestamp for RTT sampling (TCP timestamps).
    ts_val: float = -1.0
    ts_ecr: float = -1.0
    #: Receive window advertised by the sender of this packet.
    rwnd: int = 1 << 30
    #: SACK blocks: up to three ``(start, end)`` received-out-of-order
    #: ranges, as in the TCP SACK option.
    sack: tuple = ()
    #: Bytes on the wire, headers included.  Derived from payload_len
    #: at construction (links and taps read it per packet — an
    #: attribute, not a property, keeps the hot path free of descriptor
    #: calls).
    wire_size: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.direction not in (1, -1):
            raise ValueError(f"direction must be +1 or -1, got {self.direction}")
        if self.payload_len < 0:
            raise ValueError(f"payload_len must be >= 0, got {self.payload_len}")
        self.wire_size = self.payload_len + HEADER_BYTES

    @property
    def end_seq(self) -> int:
        """One past the last sequence byte carried (SYN/FIN occupy one)."""
        return self.seq + self.payload_len + (1 if (self.is_syn or self.is_fin) else 0)

    @property
    def is_data(self) -> bool:
        """True when the packet carries payload (real or dummy)."""
        return self.payload_len > 0


@dataclass(slots=True)
class TsoSegment:
    """A transport-level super-segment handed to the lower stack layers.

    The NIC splits it into ``packet_sizes`` wire packets at line rate
    without interleaving — the micro-burst behaviour §2.3 describes.
    ``packet_sizes`` lists *payload* sizes; Linux TSO produces equal
    MSS-sized packets except the last, but Stob's flexible-TSO extension
    (§5.5) allows arbitrary per-packet sizes, which is why this is a
    list rather than a single MSS value.
    """

    flow_id: int
    direction: int
    seq: int
    ack: int
    packet_sizes: list = field(default_factory=list)
    is_syn: bool = False
    is_fin: bool = False
    ts_val: float = -1.0
    ts_ecr: float = -1.0
    #: Earliest departure time requested by pacing/Stob; the fq qdisc
    #: holds the segment until this instant.  -1 means "now".
    not_before: float = -1.0
    dummy: bool = False
    #: Geometry derived from ``packet_sizes`` at construction.  Segments
    #: are never resized after being built (packetization decisions are
    #: final once TCP hands the segment down), so these are plain
    #: attributes rather than properties — the qdisc, pacer, NIC and CPU
    #: model all read them on the per-segment hot path.
    payload_len: int = field(default=0, compare=False)
    num_packets: int = field(default=1, compare=False)
    wire_size: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if any(size <= 0 for size in self.packet_sizes):
            raise ValueError(f"packet sizes must be positive: {self.packet_sizes}")
        self.payload_len = sum(self.packet_sizes)
        self.num_packets = max(1, len(self.packet_sizes))
        self.wire_size = self.payload_len + self.num_packets * HEADER_BYTES

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload_len + (1 if (self.is_syn or self.is_fin) else 0)

    def split_packets(self, next_packet_id) -> list:
        """Materialise the wire packets (TSO split).

        ``next_packet_id`` is a callable returning fresh packet ids.
        SYN/FIN flags go on the first/last packet respectively.
        """
        sizes: list = list(self.packet_sizes) or [0]
        packets = []
        seq = self.seq
        for index, size in enumerate(sizes):
            packet = Packet(
                flow_id=self.flow_id,
                direction=self.direction,
                seq=seq,
                ack=self.ack,
                payload_len=size,
                is_syn=self.is_syn and index == 0,
                is_fin=self.is_fin and index == len(sizes) - 1,
                packet_id=next_packet_id(),
                dummy=self.dummy,
                ts_val=self.ts_val,
                ts_ecr=self.ts_ecr,
            )
            packets.append(packet)
            seq = packet.end_seq
        return packets
