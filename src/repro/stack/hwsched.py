"""Programmable hardware packet scheduler model (paper §5.5).

"Stob relies on a custom packet queuing mechanism, which may hinder
its adoption in existing systems that already rely on hardware-based
schedulers in commodity NICs.  However ... PIEO implemented in FPGA
enables dequeuing an arbitrary packet based on the policy."

:class:`PieoQdisc` models a PIEO (push-in extract-out) scheduler: each
element carries an *eligibility time* and a *rank*; the scheduler
extracts, among currently eligible elements, the one with the smallest
rank.  With eligibility = Stob's earliest departure time and rank =
FIFO sequence per flow, PIEO reproduces the software fq behaviour —
demonstrating the paper's claim that Stob's queuing maps onto
programmable NIC schedulers.  Custom rank functions implement other
policies (e.g. strict priority between flows).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.stack.packet import TsoSegment
from repro.stack.qdisc import DEFAULT_TSQ_BYTES, Qdisc, SegmentSink

#: rank(segment, fifo_sequence) -> sortable value.
RankFunction = Callable[[TsoSegment, int], float]


def fifo_rank(segment: TsoSegment, sequence: int) -> float:
    """Default rank: global arrival order (work-conserving fq)."""
    return float(sequence)


class PieoQdisc(Qdisc):
    """PIEO scheduler: extract the min-rank *eligible* element.

    Elements become eligible at their ``not_before`` time (clamped to
    per-flow FIFO order, like the software fq).  The dequeue loop runs
    whenever the earliest eligibility passes, mirroring the doorbell-
    driven operation of a hardware scheduler.
    """

    def __init__(
        self,
        sim: Simulator,
        sink: SegmentSink,
        tsq_bytes: int = DEFAULT_TSQ_BYTES,
        rank: Optional[RankFunction] = None,
    ) -> None:
        super().__init__(sim, sink, tsq_bytes)
        self._rank = rank or fifo_rank
        self._seq = itertools.count()
        #: Eligibility-ordered heap of (eligible_at, seq, segment, rank).
        self._pending: List[Tuple[float, int, TsoSegment, float]] = []
        #: Rank-ordered heap of eligible elements.
        self._eligible: List[Tuple[float, int, TsoSegment]] = []
        self._flow_last_departure: Dict[int, float] = {}
        self._timer = None

    def enqueue(self, segment: TsoSegment) -> None:
        self._account_enqueue(segment)
        sequence = next(self._seq)
        eligible_at = max(
            segment.not_before,
            self._sim.now,
            self._flow_last_departure.get(segment.flow_id, 0.0),
        )
        self._flow_last_departure[segment.flow_id] = eligible_at
        rank = self._rank(segment, sequence)
        heapq.heappush(
            self._pending, (eligible_at, sequence, segment, rank)
        )
        self._pump()

    def _pump(self) -> None:
        """Move due elements to the eligible set; extract by rank."""
        now = self._sim.now
        while self._pending and self._pending[0][0] <= now:
            _when, sequence, segment, rank = heapq.heappop(self._pending)
            heapq.heappush(self._eligible, (rank, sequence, segment))
        while self._eligible:
            _rank, _sequence, segment = heapq.heappop(self._eligible)
            self._release(segment)
            # Releasing may have enqueued more (TSQ wakeups) — absorb.
            while self._pending and self._pending[0][0] <= self._sim.now:
                _w, seq2, seg2, rank2 = heapq.heappop(self._pending)
                heapq.heappush(self._eligible, (rank2, seq2, seg2))
        self._arm_timer()

    def _arm_timer(self) -> None:
        if not self._pending:
            return
        head = self._pending[0][0]
        if self._timer is not None and not self._timer.cancelled:
            if self._timer.time <= head:
                return
            self._timer.cancel()
        self._timer = self._sim.schedule_at(max(head, self._sim.now), self._fire)

    def _fire(self) -> None:
        self._timer = None
        self._pump()

    @property
    def backlog(self) -> int:
        return len(self._pending) + len(self._eligible)
