"""Host wiring: CPU + qdisc + NIC + TCP endpoints, and flow helpers.

A :class:`Host` is single-homed: one NIC on one link, one fq (or fifo)
qdisc in front of it, one CPU core driving the transmit path, and any
number of TCP endpoints multiplexed by flow id — the same shape as the
paper's Figure 1.

:func:`make_flow` builds the canonical two-host topology used by every
experiment: a client and a server joined by a
:class:`~repro.simnet.path.NetworkPath`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.entities import Link, LinkStats
from repro.simnet.path import NetworkPath
from repro.stack.nic import Cpu, CpuModel, Nic
from repro.stack.packet import Packet
from repro.stack.qdisc import DEFAULT_TSQ_BYTES, FifoQdisc, FqQdisc, Qdisc
from repro.stack.tcp import TcpConfig, TcpEndpoint

_flow_ids = itertools.count(1)


def next_flow_id() -> int:
    """Return a process-unique flow identifier."""
    return next(_flow_ids)


class Host:
    """A single-homed host running the modelled stack."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_model: Optional[CpuModel] = None,
        qdisc_kind: str = "fq",
        tsq_bytes: int = DEFAULT_TSQ_BYTES,
    ) -> None:
        self._sim = sim
        self.name = name
        self.cpu = Cpu(sim, cpu_model or CpuModel())
        self._qdisc_kind = qdisc_kind
        self._tsq_bytes = tsq_bytes
        self.nic: Optional[Nic] = None
        self.qdisc: Optional[Qdisc] = None
        self.endpoints: Dict[int, TcpEndpoint] = {}

    def attach_link(self, link: Link) -> None:
        """Bind the host's NIC to its access link (once)."""
        if self.nic is not None:
            raise RuntimeError(f"host {self.name} already has a NIC")
        self.nic = Nic(self._sim, link.send)
        if self._qdisc_kind == "fq":
            self.qdisc = FqQdisc(self._sim, self.nic.transmit, self._tsq_bytes)
        elif self._qdisc_kind == "fifo":
            self.qdisc = FifoQdisc(self._sim, self.nic.transmit, self._tsq_bytes)
        else:
            raise ValueError(f"unknown qdisc kind {self._qdisc_kind!r}")

    def add_endpoint(
        self, flow_id: int, direction: int, config: Optional[TcpConfig] = None
    ) -> TcpEndpoint:
        """Create a TCP endpoint on this host for ``flow_id``."""
        if self.nic is None or self.qdisc is None:
            raise RuntimeError(f"host {self.name} has no link attached")
        if flow_id in self.endpoints:
            raise ValueError(f"flow {flow_id} already exists on {self.name}")
        endpoint = TcpEndpoint(
            sim=self._sim,
            flow_id=flow_id,
            direction=direction,
            cpu=self.cpu,
            qdisc=self.qdisc,
            ack_sender=self.nic.send_packet,
            config=config,
        )
        self.endpoints[flow_id] = endpoint
        return endpoint

    def receive(self, packet: Packet) -> None:
        """Demultiplex an arriving packet to its endpoint."""
        endpoint = self.endpoints.get(packet.flow_id)
        if endpoint is not None:
            endpoint.on_packet(packet)


@dataclass
class TcpFlow:
    """A client/server endpoint pair over one path."""

    flow_id: int
    client: TcpEndpoint
    server: TcpEndpoint
    client_host: Host
    server_host: Host
    forward_link: Link
    reverse_link: Link

    def connect(self) -> None:
        """Start the client's handshake."""
        self.client.connect()

    def link_stats(self) -> Dict[str, "LinkStats"]:
        """Conservation-checked accounting for both link directions."""
        return {
            "forward": self.forward_link.stats(),
            "reverse": self.reverse_link.stats(),
        }


def link_hosts(
    sim: Simulator,
    client_host: Host,
    server_host: Host,
    path: NetworkPath,
    rng: Optional[np.random.Generator] = None,
) -> tuple:
    """Create forward/reverse links between two hosts and attach NICs."""
    forward, reverse = path.build_links(
        sim,
        forward_receiver=server_host.receive,
        reverse_receiver=client_host.receive,
        rng=rng,
    )
    client_host.attach_link(forward)
    server_host.attach_link(reverse)
    return forward, reverse


def make_flow(
    sim: Simulator,
    path: NetworkPath,
    client_config: Optional[TcpConfig] = None,
    server_config: Optional[TcpConfig] = None,
    client_cpu: Optional[CpuModel] = None,
    server_cpu: Optional[CpuModel] = None,
    rng: Optional[np.random.Generator] = None,
    qdisc_kind: str = "fq",
) -> TcpFlow:
    """Build the canonical client/server topology with one TCP flow."""
    client_host = Host(sim, "client", cpu_model=client_cpu, qdisc_kind=qdisc_kind)
    server_host = Host(sim, "server", cpu_model=server_cpu, qdisc_kind=qdisc_kind)
    forward, reverse = link_hosts(sim, client_host, server_host, path, rng=rng)
    flow_id = next_flow_id()
    client = client_host.add_endpoint(flow_id, direction=1, config=client_config)
    server = server_host.add_endpoint(flow_id, direction=-1, config=server_config)
    return TcpFlow(
        flow_id=flow_id,
        client=client,
        server=server,
        client_host=client_host,
        server_host=server_host,
        forward_link=forward,
        reverse_link=reverse,
    )
