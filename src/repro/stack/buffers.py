"""Socket send/receive buffers.

The send buffer models the asynchrony §2.3 highlights: ``send()`` copies
application data into the buffer and *returns*; the stack transmits it
later, whenever windows allow.  Only byte counts are tracked — payload
contents are irrelevant to every experiment.

The receive buffer reassembles the byte stream (tracking the cumulative
ACK point) and hands contiguous data to the application.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.stack import intervals


class SendBuffer:
    """A bytestream send buffer with an application backpressure limit.

    Positions are absolute stream offsets:

    ``una`` <= ``nxt`` <= ``end``

    * ``una`` — first unacknowledged byte,
    * ``nxt`` — next byte to transmit for the first time,
    * ``end`` — one past the last byte the application has written.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError(f"send buffer limit must be positive, got {limit}")
        self.limit = limit
        self.una = 0
        self.nxt = 0
        self.end = 0
        #: Stream offsets at which the application marked a message
        #: boundary (used by the web layer to delimit HTTP exchanges).
        self._marks: List[Tuple[int, Callable[[], None]]] = []

    # -- application side ----------------------------------------------------

    @property
    def buffered(self) -> int:
        """Bytes written but not yet acknowledged (socket memory in use)."""
        return self.end - self.una

    @property
    def unsent(self) -> int:
        """Bytes written but not yet transmitted even once."""
        return self.end - self.nxt

    def writable(self) -> int:
        """How many more bytes the application may write right now."""
        if self.limit is None:
            return 2**62
        return max(0, self.limit - self.buffered)

    def write(self, nbytes: int) -> int:
        """Append up to ``nbytes`` of application data; return bytes taken."""
        if nbytes < 0:
            raise ValueError(f"cannot write negative bytes: {nbytes}")
        taken = min(nbytes, self.writable())
        self.end += taken
        return taken

    def mark(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once every byte written so far is ACKed."""
        if self.una >= self.end:
            callback()
        else:
            self._marks.append((self.end, callback))

    # -- stack side ------------------------------------------------------------

    def sendable(self) -> int:
        """Bytes available for first transmission."""
        return self.end - self.nxt

    def take(self, nbytes: int) -> int:
        """Advance ``nxt`` by up to ``nbytes``; return the amount taken."""
        if nbytes < 0:
            raise ValueError(f"cannot take negative bytes: {nbytes}")
        taken = min(nbytes, self.sendable())
        self.nxt += taken
        return taken

    def ack_to(self, ack: int) -> int:
        """Cumulative ACK up to stream offset ``ack``; return newly acked
        byte count.  Out-of-window ACKs are ignored (return 0).

        ``ack`` may exceed ``nxt``: after a retransmission-timeout
        rewind, ACKs for data sent before the rewind are still valid
        and also advance ``nxt`` (that data needs no retransmission).
        """
        if ack <= self.una or ack > self.end:
            return 0
        newly = ack - self.una
        self.una = ack
        if self.nxt < self.una:
            self.nxt = self.una
        if self._marks:
            fired, pending = [], []
            for offset, callback in self._marks:
                (fired if offset <= self.una else pending).append((offset, callback))
            self._marks = pending
            for _offset, callback in fired:
                callback()
        return newly

    def rewind_for_retransmit(self) -> None:
        """Go-back-N style: rewind ``nxt`` to ``una`` so unacked bytes
        are transmitted again (used on RTO)."""
        self.nxt = self.una


class ReceiveBuffer:
    """Reassembles the received byte stream and produces the ACK point.

    Out-of-order segments are held (by their ``[start, end)`` range)
    until the gap fills.  ``deliverable`` counts bytes that became
    contiguous and were handed to the application.
    """

    def __init__(self, window: int = 1 << 24) -> None:
        if window <= 0:
            raise ValueError(f"receive window must be positive, got {window}")
        self.window = window
        self.rcv_nxt = 0
        self.delivered = 0
        #: Disjoint sorted out-of-order ranges above ``rcv_nxt``.
        self._out_of_order: List[Tuple[int, int]] = []
        #: The range most recently grown — reported first in SACK
        #: blocks (RFC 2018) so the sender learns new information.
        self._last_grown: Optional[Tuple[int, int]] = None
        #: Rotation cursor over the remaining blocks, so consecutive
        #: ACKs cycle through the whole hole map (RFC 2018's "as many
        #: ... as possible" behaviour) instead of repeating the lowest.
        self._sack_rotation = 0
        self._on_data: Optional[Callable[[int], None]] = None

    def on_data(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked with each newly contiguous byte
        count (the application's data-ready notification)."""
        self._on_data = callback

    @property
    def advertised_window(self) -> int:
        """Receive window advertised to the peer.  The model assumes the
        application drains instantly, so the full window is always open."""
        return self.window

    def receive(self, start: int, length: int) -> int:
        """Accept a segment covering ``[start, start + length)``.

        Returns the new cumulative ACK point.  Data beyond the window is
        trimmed (real stacks drop it; trimming keeps the model simple
        and the experiments identical since windows are rarely hit).
        """
        if length < 0:
            raise ValueError(f"negative segment length: {length}")
        end = start + length
        # Trim anything beyond the window edge.
        window_edge = self.rcv_nxt + self.window
        end = min(end, window_edge)
        if end > start:
            if start <= self.rcv_nxt:
                # In-order (possibly partially duplicate).
                self.rcv_nxt = max(self.rcv_nxt, end)
            else:
                # Out of order: merge the range into the held set and
                # remember which merged range grew, for SACK reporting.
                self._out_of_order = intervals.insert(
                    self._out_of_order, start, end
                )
                for merged in self._out_of_order:
                    if merged[0] <= start < merged[1]:
                        self._last_grown = merged
                        break
            self._coalesce()
        return self.rcv_nxt

    def sack_ranges(self, limit: int = 3) -> tuple:
        """Up to ``limit`` out-of-order ranges for the SACK option.

        The most recently grown range comes first (RFC 2018); the
        remaining slots rotate through the other held ranges across
        successive calls so a sender eventually learns the full map.
        """
        blocks: List[Tuple[int, int]] = []
        if self._last_grown is not None and self._last_grown in self._out_of_order:
            blocks.append(self._last_grown)
        n = len(self._out_of_order)
        for offset in range(n):
            if len(blocks) >= limit:
                break
            rng = self._out_of_order[(self._sack_rotation + offset) % n]
            if rng not in blocks:
                blocks.append(rng)
        if n:
            self._sack_rotation = (self._sack_rotation + max(1, limit - 1)) % n
        return tuple(blocks)

    def _coalesce(self) -> None:
        """Advance rcv_nxt through any now-contiguous held ranges."""
        remaining: List[Tuple[int, int]] = []
        for start, end in self._out_of_order:
            if start <= self.rcv_nxt:
                if end > self.rcv_nxt:
                    self.rcv_nxt = end
            else:
                remaining.append((start, end))
        self._out_of_order = remaining
        newly = self.rcv_nxt - self.delivered
        if newly > 0:
            self.delivered = self.rcv_nxt
            if self._on_data is not None:
                self._on_data(newly)
