"""Host network-stack model.

This package models the shaded region of the paper's Figure 1: the
layers between the transport protocol implementation and NIC I/O,
inclusive.  It reproduces the behaviours the paper argues make
application-level WF defenses unenforceable:

* deferred transmission when the congestion/receive window closes
  (``tcp.py``),
* queuing disciplines and pacing below the transport (``qdisc.py``,
  ``pacing.py``),
* TCP segmentation offload creating line-rate micro-bursts of
  fixed-size packets (``tso.py``, ``nic.py``),
* a CPU cost model that makes small packets and small TSO batches
  expensive (``nic.py``), which is what the paper's Figure 3 measures.

The Stob framework (``repro.stob``) hooks into
:class:`~repro.stack.tcp.TcpEndpoint` through the
``segment_controller`` interface defined here.
"""

from repro.stack.packet import Packet, TsoSegment
from repro.stack.buffers import ReceiveBuffer, SendBuffer
from repro.stack.nic import CpuModel, Nic
from repro.stack.tcp import TcpEndpoint, TcpConfig
from repro.stack.host import Host, TcpFlow, make_flow

__all__ = [
    "Packet",
    "TsoSegment",
    "SendBuffer",
    "ReceiveBuffer",
    "CpuModel",
    "Nic",
    "TcpEndpoint",
    "TcpConfig",
    "Host",
    "TcpFlow",
    "make_flow",
]
