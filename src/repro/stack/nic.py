"""NIC model and host CPU cost model.

The NIC performs the TSO split: a :class:`~repro.stack.packet.TsoSegment`
becomes a back-to-back run of wire packets (the micro-burst of §2.3 —
the link below serializes them at line rate with no interleaving).

The :class:`CpuModel` prices the host-side work per segment, per packet
and per byte.  It is the substrate for Figure 3: shrinking packet sizes
and TSO sizes raises the cycles-per-byte cost, capping single-core
throughput.  Default constants are calibrated so that an iperf3-like
bulk transfer over a 100 Gb/s link reproduces the paper's shape
(tens of Gb/s at default sizing, ≈ 20 Gb/s at the most aggressive
reduction degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

from repro.simnet.engine import Simulator
from repro.stack.packet import Packet, TsoSegment

PacketTap = Callable[[Packet, float], None]


@dataclass
class CpuModel:
    """Cycle costs of the transmission path.

    Attributes
    ----------
    freq_hz:
        Core clock frequency.
    cycles_per_segment:
        Fixed cost of one trip down the stack (socket call share, TCP
        segment construction, qdisc, driver doorbell).
    cycles_per_packet:
        Per-wire-packet cost (descriptor setup, completion handling).
    cycles_per_byte:
        Per-byte cost (copy/DMA-setup share, checksum folding).
    """

    freq_hz: float = 3.0e9
    cycles_per_segment: float = 4800.0
    cycles_per_packet: float = 250.0
    cycles_per_byte: float = 0.285

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError(f"freq_hz must be positive, got {self.freq_hz}")

    def segment_cost(self, payload_bytes: int, num_packets: int) -> float:
        """Seconds of CPU one TSO segment costs the sender."""
        cycles = (
            self.cycles_per_segment
            + self.cycles_per_packet * num_packets
            + self.cycles_per_byte * payload_bytes
        )
        return cycles / self.freq_hz

    def max_throughput(self, payload_per_segment: int, num_packets: int) -> float:
        """Analytic CPU-bound throughput (payload bytes/s) for segments
        of the given shape — handy for calibration and tests."""
        cost = self.segment_cost(payload_per_segment, num_packets)
        if cost <= 0:
            return float("inf")
        return payload_per_segment / cost


class Cpu:
    """A single core as a serially-consumed resource."""

    def __init__(self, sim: Simulator, model: CpuModel) -> None:
        self._sim = sim
        self.model = model
        self._busy_until = 0.0
        self.consumed = 0.0

    @property
    def busy_until(self) -> float:
        """Simulated time at which currently queued work completes."""
        return self._busy_until

    def consume(self, cost: float) -> float:
        """Queue ``cost`` seconds of work; return its completion time."""
        if cost < 0:
            raise ValueError(f"cpu cost must be >= 0, got {cost}")
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + cost
        self.consumed += cost
        return self._busy_until

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent executing."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.consumed / elapsed)


class Nic:
    """Network interface: TSO split + transmission onto a link.

    ``taps`` observe every transmitted packet with its handoff time —
    the vantage point used to capture WF traces.
    """

    def __init__(self, sim: Simulator, link_send: Callable[[Any], bool]) -> None:
        self._sim = sim
        self._link_send = link_send
        # Burst handoff: when the sender is a Link exposing send_burst
        # (the vectorized transit path), whole TSO splits go down in one
        # call.  Probing keeps the constructor signature stable — the
        # differential harness swaps in a frozen reference Link that has
        # no burst API, and this degrades to per-packet sends.
        owner = getattr(link_send, "__self__", None)
        self._link_send_burst = getattr(owner, "send_burst", None)
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_payload_bytes = 0
        self.tx_segments = 0
        self.dropped = 0
        self._taps: List[PacketTap] = []

    def add_tap(self, tap: PacketTap) -> None:
        """Observe every packet leaving this NIC."""
        self._taps.append(tap)

    def send_packet(self, packet: Packet) -> bool:
        """Transmit a single pre-built packet (pure ACKs, SYNs).

        These bypass the qdisc, mirroring how small control packets
        avoid fq pacing in Linux.
        """
        now = self._sim.now
        packet.sent_at = now
        if packet.packet_id == 0:
            packet.packet_id = self._sim.next_packet_id()
        for tap in self._taps:
            tap(packet, now)
        if self._link_send(packet):
            self.tx_packets += 1
            self.tx_bytes += packet.wire_size
            return True
        self.dropped += 1
        return False

    def transmit(self, segment: TsoSegment) -> List[Packet]:
        """TSO-split ``segment`` and push the packets to the link.

        Returns the packet list (useful to tests).  Packets the link's
        drop-tail queue rejects are counted in ``dropped``; loss
        recovery is the transport's job.
        """
        packets = segment.split_packets(self._sim.next_packet_id)
        self.tx_segments += 1
        now = self._sim.now
        taps = self._taps
        for packet in packets:
            packet.sent_at = now
            # Timestamp at transmission (as Linux does), so RTT samples
            # exclude qdisc/pacing wait — otherwise pacing feeds back
            # into srtt and the rate estimate spirals down.
            packet.ts_val = now
            for tap in taps:
                tap(packet, now)
        burst = self._link_send_burst
        if burst is not None:
            results = burst(packets)
        else:
            send = self._link_send
            results = [send(packet) for packet in packets]
        for packet, ok in zip(packets, results):
            if ok:
                self.tx_packets += 1
                self.tx_bytes += packet.wire_size
                self.tx_payload_bytes += packet.payload_len
            else:
                self.dropped += 1
        return packets
