"""TCP endpoint: the transport half of the stack model.

A :class:`TcpEndpoint` owns one side of a connection.  It implements
the behaviours §2.3 identifies as the reason application-level WF
defenses cannot control packet sequences:

* window-gated, *deferred* transmission — ``write()`` returns and the
  stack transmits when cwnd/rwnd open on ACK arrival;
* TSO segment construction with Linux-style autosizing;
* fq pacing via earliest departure times;
* TCP-Small-Queues backpressure from the qdisc (dynamic: ~2 ms of the
  pacing rate, never below two segments);
* SACK loss recovery: an RFC 6675-style scoreboard with pipe-limited,
  dup-ACK-paced hole retransmission, an IsLost marking rule, and a
  RACK-style knowledge horizon (holes younger than 1.5 sRTT are
  presumed merely unreported, not lost);
* retransmission timeout with exponential backoff; an RTO performs a
  go-back-N rewind through the normal send path.

Simplifications (documented, none affect the experiments):

* The three-way handshake uses flag packets that do not consume
  sequence space; data stream offsets start at 0.
* Pure ACKs bypass the qdisc and carry no CPU cost (the paper's
  Figure 3 measures the *sender's* CPU efficiency).

The Stob hook is ``segment_controller``: an object (see
:class:`repro.stob.controller.StobController`) consulted for packet
sizes, TSO sizing and extra departure gaps for every segment built.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from repro.obs import runtime as _obs_runtime
from repro.obs.metrics import pow2_edges
from repro.simnet.engine import Event, Simulator
from repro.stack import intervals
from repro.stack.buffers import ReceiveBuffer, SendBuffer
from repro.stack.cc import make_cca
from repro.stack.cc.base import AckSample
from repro.stack.nic import Cpu
from repro.stack.packet import Packet, TsoSegment
from repro.stack.qdisc import Qdisc
from repro.stack.pacing import FlowPacer
from repro.stack.tso import TsoPolicy

#: Dup-ACK threshold for fast retransmit (RFC 5681).
DUPACK_THRESHOLD = 3

#: Fixed cwnd-sample bucket edges: 4 KiB .. 64 MiB, powers of two.
CWND_EDGES = pow2_edges(1 << 12, 1 << 26)


@dataclass
class TcpConfig:
    """Tunables of a TCP endpoint (sysctl-ish defaults)."""

    mss: int = 1448
    cc: str = "cubic"
    receive_window: int = 1 << 24
    send_buffer: Optional[int] = None
    pacing: bool = True
    tso: TsoPolicy = field(default_factory=TsoPolicy)
    min_rto: float = 0.2
    max_rto: float = 60.0
    initial_rto: float = 1.0
    delayed_ack_packets: int = 2
    delayed_ack_timeout: float = 0.04
    #: Number of quick-ACK packets at connection start (Linux acks the
    #: slow-start burst immediately to grow the peer's window fast).
    quickack_packets: int = 16

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.delayed_ack_packets < 1:
            raise ValueError(
                f"delayed_ack_packets must be >= 1, got {self.delayed_ack_packets}"
            )


class TcpEndpoint:
    """One side of a TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        direction: int,
        cpu: Cpu,
        qdisc: Qdisc,
        ack_sender: Callable[[Packet], None],
        config: Optional[TcpConfig] = None,
    ) -> None:
        self._sim = sim
        self.flow_id = flow_id
        self.direction = direction
        self._cpu = cpu
        self._qdisc = qdisc
        self._send_ack_packet = ack_sender
        self.config = config or TcpConfig()

        self.send_buffer = SendBuffer(limit=self.config.send_buffer)
        self.receive_buffer = ReceiveBuffer(window=self.config.receive_window)
        self.cca = make_cca(self.config.cc, self.config.mss)
        self.pacer = FlowPacer()
        #: Hook consulted for every segment built (Stob).  None means
        #: stock stack behaviour.
        self.segment_controller = None

        # Sender state.
        self.peer_rwnd = self.config.receive_window
        self.established = False
        self.fin_sent = False
        self._fin_dispatched = False
        self._dup_acks = 0
        self._in_recovery = False
        self._recovery_point = 0
        #: SACK scoreboard: ranges the peer received out of order.
        #: Invariant: disjoint from ``_retx_ranges`` (a SACK arriving
        #: for retransmitted data evicts it from the retx set).
        self._scoreboard = intervals.RangeSet()
        #: Ranges retransmitted in this recovery, not yet ACKed/SACKed.
        self._retx_ranges = intervals.RangeSet()
        self._pipe_memo = (-1, -1, -1, -1, 0)
        #: Sequence below which holes were already retransmitted this
        #: recovery round (avoids re-walking the scoreboard per ACK).
        self._retx_cursor = 0
        self._rto_timer: Optional[Event] = None
        self._rto_backoff = 1
        self._srtt = -1.0
        self._rttvar = 0.0
        self.delivered = 0
        self._rate_samples: Deque[Tuple[int, int, float]] = deque()
        self.retransmissions = 0
        self.timeouts = 0

        # Receiver state.
        self._ack_pending_packets = 0
        self._ack_timer: Optional[Event] = None
        self._last_ts_val = -1.0
        self._packets_received = 0
        self.fin_received = False
        self.on_fin: Optional[Callable[[], None]] = None
        self.on_established: Optional[Callable[[], None]] = None

        # Observability: resolve instrument handles once; with the
        # session disabled every hook below is one attribute check.
        obs = _obs_runtime.session()
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._obs_segments = registry.counter("tcp.segments_sent")
            self._obs_packets = registry.counter("tcp.packets_sent")
            self._obs_retx = registry.counter("tcp.retransmissions")
            self._obs_timeouts = registry.counter("tcp.timeouts")
            self._obs_tsq_blocked = registry.counter("tcp.tsq_blocked")
            self._obs_pacing_stalls = registry.counter("tcp.pacing_stalls")
            self._obs_cwnd = registry.histogram("tcp.cwnd_bytes", CWND_EDGES)
            self._obs_cover_packets = registry.counter("stob.cover_packets")
            self._obs_cover_bytes = registry.counter("stob.cover_bytes")

        self._qdisc.on_drain(self.flow_id, self._on_tsq_drain)

    # ------------------------------------------------------------------ app API

    @property
    def snd_nxt(self) -> int:
        """Next new stream byte to transmit."""
        return self.send_buffer.nxt

    @property
    def snd_una(self) -> int:
        """First unacknowledged stream byte (owned by the send
        buffer, the single source of truth)."""
        return self.send_buffer.una

    @property
    def bytes_in_flight(self) -> int:
        """Stream bytes sent and not yet cumulatively acknowledged."""
        return self.send_buffer.nxt - self.snd_una

    @property
    def srtt(self) -> float:
        """Smoothed RTT in seconds (negative before the first sample)."""
        return self._srtt

    def connect(self) -> None:
        """Start the handshake (client side)."""
        if self.established:
            return
        syn = Packet(
            flow_id=self.flow_id,
            direction=self.direction,
            is_syn=True,
            packet_id=self._sim.next_packet_id(),
            ts_val=self._sim.now,
            ack=0,
        )
        self._send_ack_packet(syn)
        # Retry if no SYN-ACK within the initial RTO.
        self._rto_timer = self._sim.schedule(self.config.initial_rto, self._syn_retry)

    def _syn_retry(self) -> None:
        self._rto_timer = None
        if not self.established:
            self.timeouts += 1
            self.connect()

    def write(self, nbytes: int) -> int:
        """Post application data; transmission happens asynchronously."""
        taken = self.send_buffer.write(nbytes)
        self.try_send()
        return taken

    def write_then(self, nbytes: int, callback: Callable[[], None]) -> int:
        """Post data and invoke ``callback`` once it is fully ACKed."""
        taken = self.send_buffer.write(nbytes)
        self.send_buffer.mark(callback)
        self.try_send()
        return taken

    def close(self) -> None:
        """Send FIN after all posted data (half-close)."""
        self.fin_sent = True
        self.try_send()

    def on_data(self, callback: Callable[[int], None]) -> None:
        """Register the receive-side data-ready callback."""
        self.receive_buffer.on_data(callback)

    # ------------------------------------------------------------------ sending

    def try_send(self) -> None:
        """Transmit as much as cwnd, rwnd, TSQ and the send buffer allow."""
        if not self.established:
            return
        while True:
            built = self._build_one_segment()
            if not built:
                break

    def _pipe(self) -> int:
        """Bytes estimated in flight, SACK-adjusted (RFC 6675 'pipe').

        Un-SACKed bytes more than three MSS below the highest SACKed
        byte are considered *lost* (the RFC's IsLost rule) and leave the
        pipe — without this, drops inflate the estimate and recovery
        starves until an RTO.

        The value is memoised on (nxt, una, sack-version): the pipe is
        queried on every transmission opportunity, which would otherwise
        make interval arithmetic the simulation's hot path.
        """
        memo_key = (
            self.send_buffer.nxt,
            self.snd_una,
            self._scoreboard.version,
            self._retx_ranges.version,
        )
        if self._pipe_memo[:4] == memo_key:
            return self._pipe_memo[4]
        sacked = self._scoreboard.total
        retx_out = self._retx_ranges.total
        lost = 0
        if self._scoreboard:
            high = self._scoreboard.max_end
            lost_end = max(self.snd_una, high - 3 * self.config.mss)
            if lost_end > self.snd_una:
                span = lost_end - self.snd_una
                # Both sets live entirely in [una, max_end); count their
                # coverage of the lost window from the (short) tail side
                # so the cost is O(log n), not a full scan.
                covered = (
                    self._scoreboard.total
                    - self._scoreboard.covered_in(lost_end, high)
                    + self._retx_ranges.total
                    - self._retx_ranges.covered_in(
                        lost_end, max(high, self._retx_ranges.max_end)
                    )
                )
                lost = max(0, span - covered)
        pipe = max(0, self.bytes_in_flight - sacked - lost + retx_out)
        self._pipe_memo = memo_key + (pipe,)
        return pipe

    def _window_budget(self) -> int:
        window = min(self.cca.cwnd, self.peer_rwnd)
        return max(0, window - self._pipe())

    def _build_one_segment(self) -> bool:
        available = self.send_buffer.sendable()
        fin_only = self.fin_sent and available == 0 and not self._fin_in_flight()
        if available <= 0 and not fin_only:
            return False
        window = self._window_budget()
        if window <= 0 and not fin_only:
            return False
        mss = self.config.mss
        pacing_rate = self._pacing_rate()
        # TSQ is a threshold, not a byte allowance: while the below-TCP
        # backlog is under the limit a full TSO segment may be built
        # (Linux checks the limit before building, so one segment can
        # overshoot it).  Capping the segment *size* by the remaining
        # budget would ratchet segment sizes down under CPU load.
        if self._tsq_budget(pacing_rate) <= 0:
            if self._obs is not None:
                self._obs_tsq_blocked.add(1)
            return False

        tso_segs = self.config.tso.autosize(
            pacing_rate if pacing_rate is not None else 0.0, mss
        )
        controller = self.segment_controller
        if controller is not None:
            tso_segs = controller.tso_size(self, tso_segs)
            tso_segs = max(1, tso_segs)
        seg_limit = min(tso_segs * mss, window, available)
        if seg_limit <= 0 and not fin_only:
            return False

        if fin_only:
            packet_sizes: List[int] = []
            taken = 0
        else:
            packet_sizes = self._packetize(seg_limit, mss)
            taken = self.send_buffer.take(sum(packet_sizes))
        seq = self.send_buffer.nxt - taken
        carries_fin = (
            self.fin_sent
            and self.send_buffer.sendable() == 0
            and not self._fin_in_flight()
        )
        if carries_fin:
            self._fin_dispatched = True
        segment = TsoSegment(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=seq,
            ack=self.receive_buffer.rcv_nxt,
            packet_sizes=packet_sizes,
            is_fin=carries_fin,
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
        )
        self._dispatch_segment(segment, pacing_rate)
        self._record_rate_sample(segment.seq + taken)
        self._arm_rto()
        return taken > 0  # a FIN-only segment ends the loop

    def _packetize(self, nbytes: int, mss: int) -> List[int]:
        """Split ``nbytes`` into per-packet payload sizes.

        Stock TCP produces MSS-sized packets with a smaller tail; the
        Stob controller may dictate other (only smaller) sizes.
        """
        controller = self.segment_controller
        if controller is not None:
            sizes = controller.packet_sizes(self, nbytes, mss)
            if sizes:
                total = sum(sizes)
                if total > nbytes or any(s <= 0 or s > mss for s in sizes):
                    raise ValueError(
                        f"controller returned invalid packet sizes {sizes} "
                        f"for {nbytes} bytes at mss {mss}"
                    )
                return sizes
        sizes = [mss] * (nbytes // mss)
        tail = nbytes % mss
        if tail:
            sizes.append(tail)
        return sizes

    def _pacing_rate(self) -> Optional[float]:
        if not self.config.pacing:
            return None
        return self.cca.pacing_rate(self._srtt)

    def _tsq_budget(self, pacing_rate: Optional[float]) -> int:
        """TCP-Small-Queues budget, Linux style: keep at most ~2 ms of
        the current pacing rate (never less than two full segments)
        queued below TCP.  Without the dynamic bound, a backlog
        enqueued before a window collapse drains at the collapsed rate
        and every retransmission queues behind it for seconds."""
        limit = self._qdisc.tsq_bytes
        if pacing_rate is not None and pacing_rate > 0:
            two_segments = 2 * (self.config.mss + 52)
            dynamic = max(two_segments, int(pacing_rate * 0.002))
            limit = min(limit, dynamic)
        return max(0, limit - self._qdisc.queued_bytes(self.flow_id))

    def _dispatch_segment(
        self, segment: TsoSegment, pacing_rate: Optional[float]
    ) -> None:
        extra_gap = 0.0
        controller = self.segment_controller
        if controller is not None:
            extra_gap = max(0.0, controller.departure_gap(self, segment))
        departure = self.pacer.schedule(
            self._sim.now, segment.wire_size, pacing_rate, extra_gap
        )
        cost = self._cpu.model.segment_cost(segment.payload_len, segment.num_packets)
        cpu_done = self._cpu.consume(cost)
        segment.not_before = max(departure, cpu_done)
        if self._obs is not None:
            self._obs_segments.add(1)
            self._obs_packets.add(segment.num_packets)
            if departure > self._sim.now:
                self._obs_pacing_stalls.add(1)
        self._qdisc.enqueue(segment)

    def _fin_in_flight(self) -> bool:
        # FIN tracking is coarse: once sent with all data, do not resend
        # unless an RTO rewinds the stream.
        return self._fin_dispatched

    def _record_rate_sample(self, end_seq: int) -> None:
        self._rate_samples.append((end_seq, self.delivered, self._sim.now))

    def inject_dummy(self, nbytes: int, packet_sizes: Optional[List[int]] = None) -> None:
        """Send unreliable cover traffic (dummy packets, §2.2 *padding*).

        Dummies do not consume sequence space and are never
        retransmitted — they model in-stack padding the receiver's
        stack discards (the TLS-record padding hook of §4.2).
        """
        if nbytes <= 0:
            return
        mss = self.config.mss
        sizes = packet_sizes or self._packetize(nbytes, mss)
        segment = TsoSegment(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=0,
            ack=self.receive_buffer.rcv_nxt,
            packet_sizes=sizes,
            dummy=True,
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
        )
        # Cover traffic is clocked by its own injector, not by the
        # congestion controller: it bypasses the data pacer (otherwise
        # dummies would consume the flow's pacing credits and starve
        # the real stream) and pays only the CPU cost.
        if self._obs is not None:
            self._obs_cover_packets.add(segment.num_packets)
            self._obs_cover_bytes.add(segment.payload_len)
        cost = self._cpu.model.segment_cost(
            segment.payload_len, segment.num_packets
        )
        segment.not_before = self._cpu.consume(cost)
        self._qdisc.enqueue(segment)

    def _on_tsq_drain(self) -> None:
        self.try_send()

    # ------------------------------------------------------------------ receiving

    def on_packet(self, packet: Packet) -> None:
        """Entry point for every packet arriving from the network."""
        if packet.is_syn:
            self._handle_syn(packet)
            return
        if packet.dummy:
            # Cover traffic: observable on the wire, dropped here.
            return
        self._last_ts_val = packet.ts_val
        if packet.payload_len > 0 or packet.is_fin:
            self._handle_data(packet)
        self._handle_ack(packet)

    def _handle_syn(self, packet: Packet) -> None:
        became_established = not self.established
        self.established = True
        if packet.ack == 0 and packet.direction != self.direction:
            # Passive open: reply SYN-ACK (ack=1 marks the SYN acked).
            synack = Packet(
                flow_id=self.flow_id,
                direction=self.direction,
                is_syn=True,
                ack=1,
                packet_id=self._sim.next_packet_id(),
                ts_val=self._sim.now,
                ts_ecr=packet.ts_val,
            )
            self._send_ack_packet(synack)
        else:
            # SYN-ACK received (active open): take the RTT sample, ack it.
            if packet.ts_ecr >= 0:
                self._rtt_sample(self._sim.now - packet.ts_ecr)
            if self._rto_timer is not None:
                self._rto_timer.cancel()
                self._rto_timer = None
            self._send_pure_ack()
        if became_established:
            if self.on_established is not None:
                self.on_established()
            self.try_send()

    def _handle_data(self, packet: Packet) -> None:
        before = self.receive_buffer.rcv_nxt
        self.receive_buffer.receive(packet.seq, packet.payload_len)
        after = self.receive_buffer.rcv_nxt
        if packet.is_fin and packet.end_seq - (1 if packet.is_fin else 0) <= after:
            if not self.fin_received:
                self.fin_received = True
                if self.on_fin is not None:
                    self.on_fin()
        self._packets_received += 1
        out_of_order = after == before and packet.payload_len > 0
        self._ack_pending_packets += 1
        quick = (
            out_of_order
            or self._packets_received <= self.config.quickack_packets
            or packet.is_fin
        )
        if quick or self._ack_pending_packets >= self.config.delayed_ack_packets:
            self._send_pure_ack()
        elif self._ack_timer is None or self._ack_timer.cancelled:
            self._ack_timer = self._sim.schedule(
                self.config.delayed_ack_timeout, self._ack_timer_fire
            )

    def _ack_timer_fire(self) -> None:
        self._ack_timer = None
        if self._ack_pending_packets > 0:
            self._send_pure_ack()

    def _send_pure_ack(self) -> None:
        self._ack_pending_packets = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        ack = Packet(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=self.send_buffer.nxt,
            ack=self.receive_buffer.rcv_nxt,
            packet_id=self._sim.next_packet_id(),
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
            rwnd=self.receive_buffer.advertised_window,
            sack=self.receive_buffer.sack_ranges(),
        )
        self._send_ack_packet(ack)

    # ------------------------------------------------------------------ ACK clock

    def _handle_ack(self, packet: Packet) -> None:
        ack = packet.ack
        if packet.payload_len == 0:
            # Pure ACKs carry the peer's current advertised window.
            self.peer_rwnd = packet.rwnd
        for start, end in packet.sack:
            if self._scoreboard.add(start, end):
                # Keep the retx set disjoint: SACKed retransmissions
                # are no longer outstanding.
                self._retx_ranges.remove(start, end)
        if ack > self.snd_una:
            self._process_new_ack(ack, packet)
        elif (
            ack == self.snd_una
            and self.bytes_in_flight > 0
            and packet.payload_len == 0
        ):
            self._process_dup_ack()
        self.try_send()

    def _process_new_ack(self, ack: int, packet: Packet) -> None:
        newly = self.send_buffer.ack_to(ack)
        self.delivered += newly
        self._dup_acks = 0
        self._rto_backoff = 1
        self._scoreboard.trim_below(ack)
        self._retx_ranges.trim_below(ack)

        rtt = -1.0
        if packet.ts_ecr >= 0:
            rtt = self._sim.now - packet.ts_ecr
            self._rtt_sample(rtt)
        rate = self._delivery_rate(ack)

        if self._in_recovery and ack >= self._recovery_point:
            self._in_recovery = False
            self.cca.on_recovery_exit(self._sim.now)
        elif self._in_recovery:
            # Partial ACK: keep repairing holes the SACK way.
            self._sack_retransmit()

        sample = AckSample(
            acked_bytes=newly,
            rtt=rtt,
            now=self._sim.now,
            in_flight=self.bytes_in_flight,
            delivery_rate=rate,
        )
        self.cca.on_ack(sample)
        if self._obs is not None:
            self._obs_cwnd.observe(self.cca.cwnd)
        check_drain = getattr(self.cca, "check_drain_exit", None)
        if check_drain is not None:
            check_drain(self.bytes_in_flight, self._sim.now)

        if self.bytes_in_flight == 0:
            self._cancel_rto()
        else:
            self._arm_rto(restart=True)

    def _process_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._dup_acks >= DUPACK_THRESHOLD and not self._in_recovery:
            self._in_recovery = True
            self._recovery_point = self.send_buffer.nxt
            # Note: _retx_ranges survives across recovery episodes —
            # retransmissions from the previous episode may still be in
            # flight, and forgetting them would duplicate them.  It is
            # cleared on RTO, where everything is presumed lost.
            self._retx_cursor = self.snd_una
            self.cca.on_loss(self._sim.now, self.bytes_in_flight)
        if self._in_recovery:
            self._sack_retransmit()

    def _delivery_rate(self, ack: int) -> float:
        """Delivery-rate sample from the oldest segment the ACK covers."""
        rate = 0.0
        last = None
        while self._rate_samples and self._rate_samples[0][0] <= ack:
            last = self._rate_samples.popleft()
        if last is not None:
            _end, delivered_then, sent_time = last
            elapsed = self._sim.now - sent_time
            if elapsed > 0:
                rate = (self.delivered - delivered_then) / elapsed
        return rate

    def _rtt_sample(self, rtt: float) -> None:
        if rtt <= 0:
            return
        if self._srtt < 0:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            err = rtt - self._srtt
            self._srtt += 0.125 * err
            self._rttvar += 0.25 * (abs(err) - self._rttvar)

    # ------------------------------------------------------------------ loss

    def _sack_retransmit(self) -> None:
        """Repair scoreboard holes, pipe-limited (RFC 6675 style).

        Holes are the unsacked, un-retransmitted ranges between the
        cumulative ACK point and the highest SACKed byte (or the
        recovery point when no SACK information exists, which degrades
        to head retransmission).
        """
        mss = self.config.mss
        high = self._recovery_point
        if self._scoreboard:
            high = max(high, self._scoreboard.max_end)
        budget = self.cca.cwnd - self._pipe()
        if budget <= 0:
            return
        # Dup-ACK pacing: at most one segment per ACK event.  The SACK
        # option carries only three blocks, so the sender's hole map is
        # always a little stale; the walk must not outpace what the
        # rotating SACK reports reveal, or it retransmits data the
        # receiver already holds.
        budget = min(budget, mss)
        cursor = max(self.snd_una, self._retx_cursor)
        # Only holes below the IsLost edge are eligible: un-SACKed data
        # within three MSS of the highest SACKed byte may simply still
        # be in flight (RFC 6675).
        lost_edge = high - 3 * mss
        spans = intervals.merged_gaps(
            self._scoreboard, self._retx_ranges, cursor, lost_edge
        )
        # Retransmit MSS-sized chunks of the holes, pipe-limited.  The
        # cursor remembers how far this recovery round has walked so a
        # dup-ACK storm does not rescan repaired holes.  A RACK-style
        # age check stops the walk at the knowledge horizon: a hole
        # whose original transmission is younger than one sRTT has not
        # had time to be SACK-reported and is very likely just unknown,
        # not lost.
        horizon = self._sim.now - 1.5 * max(self._srtt, 0.0)
        for start, end in spans:
            while start < end and budget > 0:
                if self._sent_time_of(start) > horizon:
                    return
                length = min(end - start, mss)
                self._retransmit_range(start, length)
                self._retx_ranges.add(start, start + length)
                start += length
                budget -= length
            self._retx_cursor = start
            if budget <= 0:
                break

    def _sent_time_of(self, seq: int) -> float:
        """Approximate original transmission time of stream byte
        ``seq`` from the delivery-rate sample log (-inf if unknown)."""
        samples = self._rate_samples
        if not samples:
            return float("-inf")
        lo, hi = 0, len(samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if samples[mid][0] <= seq:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(samples):
            return float("-inf")
        return samples[lo][2]

    def _retransmit_range(self, seq: int, length: int) -> None:
        """Retransmit ``[seq, seq + length)``.

        Retransmissions traverse the fq pacer like normal segments (so
        a recovery burst is not a line-rate flood that re-overflows the
        bottleneck), but take no Stob gap — obfuscation never delays
        loss repair.
        """
        if length <= 0:
            return
        self.retransmissions += 1
        if self._obs is not None:
            self._obs_retx.add(1)
        segment = TsoSegment(
            flow_id=self.flow_id,
            direction=self.direction,
            seq=seq,
            ack=self.receive_buffer.rcv_nxt,
            packet_sizes=[length],
            ts_val=self._sim.now,
            ts_ecr=self._last_ts_val,
        )
        # Retransmissions are not paced: loss repair must never queue
        # behind a pacing backlog (Linux transmits them directly).
        cost = self._cpu.model.segment_cost(segment.payload_len, 1)
        segment.not_before = self._cpu.consume(cost)
        self._qdisc.enqueue(segment)
        self._arm_rto(restart=True)

    def _rto_interval(self) -> float:
        if self._srtt < 0:
            base = self.config.initial_rto
        else:
            base = self._srtt + max(4.0 * self._rttvar, 0.001)
        rto = base * self._rto_backoff
        return min(max(rto, self.config.min_rto), self.config.max_rto)

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_timer is not None and not self._rto_timer.cancelled:
            if not restart:
                return
            self._rto_timer.cancel()
        self._rto_timer = self._sim.schedule(self._rto_interval(), self._rto_fire)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _rto_fire(self) -> None:
        self._rto_timer = None
        if self.bytes_in_flight <= 0:
            return
        self.timeouts += 1
        if self._obs is not None:
            self._obs_timeouts.add(1)
            self._obs.emit(
                "tcp.rto", f"tcp.flow{self.flow_id}",
                sim_time=round(self._sim.now, 6), backoff=self._rto_backoff,
            )
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self._in_recovery = False
        self._dup_acks = 0
        self._scoreboard.clear()
        self._retx_ranges.clear()
        self.cca.on_rto(self._sim.now)
        # Everything in flight is presumed lost; forget pacing debt so
        # the retransmission is not scheduled behind stale departures.
        self.pacer.reset()
        # Go-back-N: everything past the ACK point is sent again
        # through the normal path (cwnd is now one segment).
        self.send_buffer.rewind_for_retransmit()
        self._rate_samples.clear()
        self._arm_rto(restart=True)
        self.try_send()
