"""Disjoint byte-range sets (SACK scoreboard arithmetic).

Ranges are half-open ``(start, end)`` tuples.  A *range set* is a list
of disjoint, non-adjacent ranges sorted by ``start``.  These helpers
implement the merging/trimming the SACK scoreboard needs; they are
pure functions so they are easy to property-test.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

Range = Tuple[int, int]


def insert(ranges: List[Range], start: int, end: int) -> List[Range]:
    """Return ``ranges`` with ``[start, end)`` merged in.

    Uses bisect to touch only the overlapping region, so inserting into
    a large scoreboard is O(log n + k) rather than a full re-sort.
    """
    if end <= start:
        return list(ranges)
    # Find the first range whose end >= start (could merge) and the
    # first range whose start > end (cannot merge).
    lo = bisect.bisect_left(ranges, start, key=lambda r: r[1])
    hi = bisect.bisect_right(ranges, end, lo=lo, key=lambda r: r[0])
    if lo < hi:
        start = min(start, ranges[lo][0])
        end = max(end, ranges[hi - 1][1])
    return ranges[:lo] + [(start, end)] + ranges[hi:]


def trim_below(ranges: List[Range], point: int) -> List[Range]:
    """Drop every byte below ``point`` from the set."""
    out: List[Range] = []
    for start, end in ranges:
        if end <= point:
            continue
        out.append((max(start, point), end))
    return out


def total_bytes(ranges: List[Range]) -> int:
    """Total bytes covered by the set."""
    return sum(end - start for start, end in ranges)


def covered_bytes(ranges: List[Range], start: int, end: int) -> int:
    """Bytes of ``[start, end)`` covered by the set."""
    total = 0
    for r_start, r_end in ranges:
        lo = max(r_start, start)
        hi = min(r_end, end)
        if hi > lo:
            total += hi - lo
    return total


def contains(ranges: List[Range], point: int) -> bool:
    """True when ``point`` is covered by the set."""
    return any(start <= point < end for start, end in ranges)


def union(a: List[Range], b: List[Range]) -> List[Range]:
    """Union of two range sets (linear merge of the sorted inputs)."""
    merged = sorted(a + b)
    out: List[Range] = []
    for start, end in merged:
        if out and start <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
    return out


def subtract(ranges: List[Range], other: List[Range]) -> List[Range]:
    """Bytes of ``ranges`` not covered by ``other``."""
    out: List[Range] = []
    for start, end in ranges:
        cursor = start
        for o_start, o_end in other:
            if o_end <= cursor:
                continue
            if o_start >= end:
                break
            if o_start > cursor:
                out.append((cursor, min(o_start, end)))
            cursor = max(cursor, o_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


class RangeSet:
    """A mutable disjoint range set with O(log n + k) updates and an
    incrementally maintained byte total.

    This is the SACK scoreboard's workhorse: the naive recompute-
    everything approach makes interval arithmetic the simulation's
    hot path once a big window suffers correlated drops.
    """

    __slots__ = ("_ranges", "total", "version")

    def __init__(self, ranges: Optional[List[Range]] = None) -> None:
        self._ranges: List[Range] = []
        self.total = 0
        #: Bumped on every mutation; lets callers memoise derived values.
        self.version = 0
        if ranges:
            for start, end in ranges:
                self.add(start, end)

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self):
        return iter(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    @property
    def ranges(self) -> List[Range]:
        """The underlying sorted disjoint list (do not mutate)."""
        return self._ranges

    @property
    def max_end(self) -> int:
        """Highest covered byte + 1 (0 when empty)."""
        return self._ranges[-1][1] if self._ranges else 0

    def add(self, start: int, end: int) -> int:
        """Merge ``[start, end)`` in; return newly covered bytes."""
        if end <= start:
            return 0
        ranges = self._ranges
        lo = bisect.bisect_left(ranges, start, key=lambda r: r[1])
        hi = bisect.bisect_right(ranges, end, lo=lo, key=lambda r: r[0])
        absorbed = 0
        if lo < hi:
            start = min(start, ranges[lo][0])
            end = max(end, ranges[hi - 1][1])
            absorbed = sum(r[1] - r[0] for r in ranges[lo:hi])
        ranges[lo:hi] = [(start, end)]
        added = (end - start) - absorbed
        self.total += added
        self.version += 1
        return added

    def add_many(self, ranges) -> int:
        """Merge a batch of ``(start, end)`` ranges; return newly
        covered bytes.

        The resulting set and return value equal a fold of :meth:`add`
        over ``ranges`` (a property test pins this), but the batch is
        sorted and pre-merged first so overlapping input ranges cost one
        splice instead of one each — the bulk-ACK path hands whole SACK
        option arrays here.
        """
        batch = [(start, end) for start, end in ranges if end > start]
        if not batch:
            return 0
        if len(batch) == 1:
            return self.add(*batch[0])
        batch.sort()
        merged: List[Range] = []
        for start, end in batch:
            if merged and start <= merged[-1][1]:
                if end > merged[-1][1]:
                    merged[-1] = (merged[-1][0], end)
            else:
                merged.append((start, end))
        before = self.total
        for start, end in merged:
            self.add(start, end)
        return self.total - before

    def remove(self, start: int, end: int) -> int:
        """Erase ``[start, end)``; return bytes removed."""
        if end <= start or not self._ranges:
            return 0
        ranges = self._ranges
        # Overlap window: first range ending after ``start`` up to the
        # first range starting at/after ``end``.
        lo = bisect.bisect_right(ranges, start, key=lambda r: r[1])
        hi = bisect.bisect_left(ranges, end, lo=lo, key=lambda r: r[0])
        if lo >= hi:
            return 0
        replacement: List[Range] = []
        removed = 0
        for r_start, r_end in ranges[lo:hi]:
            cut_lo = max(r_start, start)
            cut_hi = min(r_end, end)
            if cut_hi > cut_lo:
                removed += cut_hi - cut_lo
                if r_start < cut_lo:
                    replacement.append((r_start, cut_lo))
                if cut_hi < r_end:
                    replacement.append((cut_hi, r_end))
            else:
                replacement.append((r_start, r_end))
        ranges[lo:hi] = replacement
        self.total -= removed
        self.version += 1
        return removed

    def trim_below(self, point: int) -> int:
        """Drop every byte below ``point``; return bytes removed."""
        if not self._ranges or self._ranges[0][0] >= point:
            return 0
        return self.remove(self._ranges[0][0], point)

    def covered_in(self, start: int, end: int) -> int:
        """Bytes of ``[start, end)`` covered by the set."""
        if end <= start or not self._ranges:
            return 0
        ranges = self._ranges
        lo = bisect.bisect_left(ranges, start, key=lambda r: r[1])
        covered = 0
        for r_start, r_end in ranges[lo:]:
            if r_start >= end:
                break
            covered += min(r_end, end) - max(r_start, start)
        return covered

    def clear(self) -> None:
        self._ranges = []
        self.total = 0
        self.version += 1


def merged_gaps(
    a: "RangeSet", b: "RangeSet", start: int, limit: int
) -> List[Range]:
    """Spans of ``[start, limit)`` covered by neither set.

    Two-pointer sweep over the (already sorted, disjoint) inputs.
    """
    if start >= limit:
        return []

    def window(rs: "RangeSet") -> List[Range]:
        ranges = rs.ranges
        lo = bisect.bisect_right(ranges, start, key=lambda r: r[1])
        hi = bisect.bisect_left(ranges, limit, lo=lo, key=lambda r: r[0])
        return ranges[lo:hi]

    events = sorted(window(a) + window(b))
    gaps: List[Range] = []
    cursor = start
    for r_start, r_end in events:
        if r_start > cursor:
            gaps.append((cursor, min(r_start, limit)))
        cursor = max(cursor, r_end)
        if cursor >= limit:
            return gaps
    if cursor < limit:
        gaps.append((cursor, limit))
    return gaps


def first_gap(
    ranges: List[Range], start: int, limit: int
) -> Optional[Range]:
    """First uncovered range within ``[start, limit)``, or None.

    ``ranges`` must be a valid (sorted, disjoint) range set.
    """
    if start >= limit:
        return None
    cursor = start
    for r_start, r_end in ranges:
        if r_end <= cursor:
            continue
        if r_start > cursor:
            return (cursor, min(r_start, limit))
        cursor = r_end
        if cursor >= limit:
            return None
    return (cursor, limit) if cursor < limit else None
