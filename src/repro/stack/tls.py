"""kTLS record-layer model (the TLS box of the paper's Figure 1).

In-kernel TLS sits between the application and TCP: application bytes
are segmented into TLS records (at most 16 KB of plaintext each), and
each record gains a 5-byte header plus a 16-byte AEAD tag on the wire.
Because records are the unit of encryption, they are also the natural
place for *padding* — §4.2: "its implementation could be done in TLS
record padding" — so this model exposes a record-padding policy that
rounds every record's ciphertext length up (TLS 1.3 allows arbitrary
record padding).

Only byte counts are modelled, consistent with the rest of the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

#: TLS 1.3 limits and overheads.
MAX_RECORD_PLAINTEXT = 16384
RECORD_HEADER = 5
AEAD_TAG = 16
RECORD_OVERHEAD = RECORD_HEADER + AEAD_TAG


@dataclass
class RecordPaddingPolicy:
    """Round each record's ciphertext up to a multiple of ``quantum``.

    ``quantum=1`` disables padding.  NIST-style fixed-length records
    are ``quantum=MAX_RECORD_PLAINTEXT + RECORD_OVERHEAD``.
    """

    quantum: int = 1

    def __post_init__(self) -> None:
        if self.quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {self.quantum}")

    def padded_size(self, ciphertext: int) -> int:
        q = self.quantum
        return ((ciphertext + q - 1) // q) * q


class TlsSession:
    """A kTLS send-side session bound to a byte sink (a TCP endpoint's
    ``write``), tracking plaintext/ciphertext/padding accounting.

    The receive side needs no modelling: lengths are all WF sees.
    """

    def __init__(
        self,
        write: Callable[[int], int],
        max_record: int = MAX_RECORD_PLAINTEXT,
        padding: Optional[RecordPaddingPolicy] = None,
    ) -> None:
        if not 1 <= max_record <= MAX_RECORD_PLAINTEXT:
            raise ValueError(
                f"max_record must be in [1, {MAX_RECORD_PLAINTEXT}], "
                f"got {max_record}"
            )
        self._write = write
        self.max_record = max_record
        self.padding = padding or RecordPaddingPolicy()
        self.plaintext_bytes = 0
        self.ciphertext_bytes = 0
        self.padding_bytes = 0
        self.records = 0

    def send(self, nbytes: int) -> int:
        """Encrypt-and-send ``nbytes`` of application data.

        Returns the ciphertext bytes handed to the transport.  Records
        are filled to ``max_record`` except the last.
        """
        if nbytes < 0:
            raise ValueError(f"cannot send negative bytes: {nbytes}")
        total_out = 0
        remaining = nbytes
        while remaining > 0:
            plain = min(remaining, self.max_record)
            ciphertext = plain + RECORD_OVERHEAD
            padded = self.padding.padded_size(ciphertext)
            self._write(padded)
            self.records += 1
            self.plaintext_bytes += plain
            self.ciphertext_bytes += padded
            self.padding_bytes += padded - ciphertext
            total_out += padded
            remaining -= plain
        return total_out

    @property
    def expansion(self) -> float:
        """Ciphertext/plaintext ratio so far (1.0 when nothing sent)."""
        if self.plaintext_bytes == 0:
            return 1.0
        return self.ciphertext_bytes / self.plaintext_bytes
