"""Queuing disciplines below the transport layer.

This is the second asynchronous stage of Figure 1: segments pushed by
TCP are *not* transmitted in the pushing context.  They sit in a qdisc
and a (modelled) softirq thread dequeues them — honouring earliest
departure times set by pacing/Stob — and hands them to the NIC.

Two qdiscs are provided:

* :class:`FifoQdisc` — pfifo_fast-like, ignores departure times beyond
  ordering (segments are released immediately in arrival order);
* :class:`FqQdisc` — fq-like, releases each segment at its
  ``not_before`` time using a timer heap.

Both enforce a TCP-Small-Queues-style per-flow byte limit through
:meth:`Qdisc.budget`, creating the backpressure loop that real stacks
use to bound in-host bufferbloat (§2.3).
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.stack.packet import TsoSegment

SegmentSink = Callable[[TsoSegment], None]

#: Default per-flow limit of bytes queued below TCP (Linux TSQ is
#: ~2 segments or 1 ms of pacing; we use a byte cap).
DEFAULT_TSQ_BYTES = 256 * 1024


class Qdisc(abc.ABC):
    """Base qdisc: accepts TSO segments, releases them to a sink."""

    def __init__(
        self,
        sim: Simulator,
        sink: SegmentSink,
        tsq_bytes: int = DEFAULT_TSQ_BYTES,
    ) -> None:
        if tsq_bytes <= 0:
            raise ValueError(f"tsq_bytes must be positive, got {tsq_bytes}")
        self._sim = sim
        self._sink = sink
        self.tsq_bytes = tsq_bytes
        self._flow_bytes: Dict[int, int] = {}
        self._drain_callbacks: Dict[int, Callable[[], None]] = {}
        self.enqueued_segments = 0
        self.released_segments = 0

    # -- TSQ backpressure ------------------------------------------------------

    def budget(self, flow_id: int) -> int:
        """Bytes flow ``flow_id`` may still enqueue before TSQ blocks it."""
        return max(0, self.tsq_bytes - self._flow_bytes.get(flow_id, 0))

    def queued_bytes(self, flow_id: int) -> int:
        """Bytes of ``flow_id`` currently below the transport layer."""
        return self._flow_bytes.get(flow_id, 0)

    def on_drain(self, flow_id: int, callback: Callable[[], None]) -> None:
        """Register the TSQ wakeup for a flow (called after each release)."""
        self._drain_callbacks[flow_id] = callback

    def _account_enqueue(self, segment: TsoSegment) -> None:
        self._flow_bytes[segment.flow_id] = (
            self._flow_bytes.get(segment.flow_id, 0) + segment.wire_size
        )
        self.enqueued_segments += 1

    def _release(self, segment: TsoSegment) -> None:
        self._flow_bytes[segment.flow_id] -= segment.wire_size
        self.released_segments += 1
        self._sink(segment)
        callback = self._drain_callbacks.get(segment.flow_id)
        if callback is not None:
            callback()

    # -- interface ----------------------------------------------------------------

    @abc.abstractmethod
    def enqueue(self, segment: TsoSegment) -> None:
        """Accept a segment from the transport layer."""

    @property
    @abc.abstractmethod
    def backlog(self) -> int:
        """Number of segments currently held."""


class FifoQdisc(Qdisc):
    """A FIFO qdisc: releases segments in arrival order, asynchronously
    (next event-loop instant), ignoring pacing departure times."""

    def __init__(self, sim, sink, tsq_bytes: int = DEFAULT_TSQ_BYTES) -> None:
        super().__init__(sim, sink, tsq_bytes)
        self._queue: Deque[TsoSegment] = deque()
        self._draining = False

    def enqueue(self, segment: TsoSegment) -> None:
        self._account_enqueue(segment)
        self._queue.append(segment)
        if not self._draining:
            self._draining = True
            self._sim.call_later(0.0, self._drain)

    def _drain(self) -> None:
        while self._queue:
            self._release(self._queue.popleft())
        self._draining = False

    @property
    def backlog(self) -> int:
        return len(self._queue)


class FqQdisc(Qdisc):
    """An fq-like qdisc honouring per-segment earliest departure times."""

    def __init__(self, sim, sink, tsq_bytes: int = DEFAULT_TSQ_BYTES) -> None:
        super().__init__(sim, sink, tsq_bytes)
        self._heap: List[Tuple[float, int, TsoSegment]] = []
        self._seq = itertools.count()
        # Softirq timer, deadline style (DESIGN §13): ``_armed`` is the
        # earliest pending wakeup.  Wakeups are plain non-cancellable
        # events; a wakeup that arrives before the head is due simply
        # re-arms.  This trades the legacy cancel/reallocate churn (one
        # Event per enqueue in the worst case) for the occasional
        # harmless stale wakeup.
        self._armed = float("inf")
        #: Last assigned departure per flow: fq keeps each flow FIFO,
        #: so a later segment (e.g. an unpaced retransmission) must not
        #: overtake already-queued segments of the same flow — doing so
        #: manufactures reordering the sender then misreads as loss.
        self._flow_last_departure: Dict[int, float] = {}

    def enqueue(self, segment: TsoSegment) -> None:
        self._account_enqueue(segment)
        when = max(
            segment.not_before,
            self._sim.now,
            self._flow_last_departure.get(segment.flow_id, 0.0),
        )
        self._flow_last_departure[segment.flow_id] = when
        heapq.heappush(self._heap, (when, next(self._seq), segment))
        self._arm_timer()

    def _arm_timer(self) -> None:
        if not self._heap:
            return
        head_time = self._heap[0][0]
        now = self._sim.now
        due = head_time if head_time > now else now
        if self._armed > due:
            self._armed = due
            self._sim.call_at(due, self._fire)

    def _fire(self) -> None:
        now = self._sim.now
        self._armed = float("inf")
        while self._heap and self._heap[0][0] <= now:
            _when, _seq, segment = heapq.heappop(self._heap)
            self._release(segment)
        self._arm_timer()

    @property
    def backlog(self) -> int:
        return len(self._heap)

    def next_departure(self) -> Optional[float]:
        """Departure time of the head segment, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
