"""Shared exception taxonomy: what failed, and who should handle it.

Every reliability layer in this repo — the resilient runner's retry
loop (:mod:`repro.experiments.runner`), the supervised worker pool
(:mod:`repro.supervise`) and the artifact cache's corruption fallback
(:mod:`repro.cache`) — needs to answer the same question when
something goes wrong: *is this the trial's fault, the machine's fault,
or the programmer's fault?*  The answer decides the recovery:

* :class:`TrialError` — one simulated trial failed for a reason
  intrinsic to that trial (a stalled page load, an exceeded deadline).
  **Retry the trial** with a fresh derived seed; if the budget runs
  out, log a structured failure and drop the sample.
* :class:`InfrastructureError` — the execution substrate failed (a
  worker process died, an artifact decoded to garbage).  The work
  itself is presumed fine: **retry elsewhere** — reschedule the chunk
  on a rebuilt pool, recompute the artifact — and escalate to the
  circuit breaker only on repetition.
* :class:`FatalError` — a programming or configuration error.
  Retrying cannot fix it; **propagate immediately** so the bug
  surfaces instead of burning a retry budget masking it.

Exceptions outside the taxonomy (bare ``RuntimeError``, ``KeyError``,
…) classify as fatal: the original runner treated any ``RuntimeError``
or ``ValueError`` as retryable, which silently converted programming
bugs into "flaky trials".  Domain exceptions opt into retry by
subclassing :class:`TrialError` (e.g.
:class:`repro.web.pageload.PageLoadStalled`); nothing is retryable by
accident.

This module sits below every other ``repro`` package (it imports
nothing from the repo), so any layer may import it without cycles.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import zipfile
from typing import Tuple, Type


class ReproError(Exception):
    """Base of the repo's exception taxonomy."""


class TrialError(ReproError, RuntimeError):
    """A single trial failed for trial-intrinsic reasons — retryable.

    Subclasses ``RuntimeError`` for compatibility: pre-taxonomy callers
    caught ``RuntimeError`` to mean "a trial went wrong", and domain
    exceptions (``PageLoadStalled``) were ``RuntimeError`` subclasses.
    """


class TraceError(TrialError):
    """A packet trace is malformed for the requested operation —
    non-finite timestamps, inconsistent arrays, or a degenerate shape
    the consumer cannot give meaning to.

    Raised by the feature extractors (k-FP, TAM, CUMUL) when handed a
    trace whose arrays bypass :class:`repro.capture.trace.Trace`
    validation (e.g. mutated in place, or decoded from a corrupt
    archive): a typed rejection instead of numpy warnings or silently
    garbage features.  *Empty* traces are not errors — every extractor
    documents a zero-filled vector for them."""


class InfrastructureError(ReproError, RuntimeError):
    """The execution substrate failed; the work itself is presumed
    fine.  Recover by retrying elsewhere (rebuilt pool, recompute)."""


class WorkerCrashError(InfrastructureError):
    """A pool worker process died abruptly (segfault, OOM kill,
    ``os._exit``).  Raised by the supervisor when recovery is
    impossible or disabled — e.g. a poison trial with quarantine off,
    or crash budgets exhausted."""


class CorruptArtifactError(InfrastructureError):
    """A cached artifact or checkpoint failed validation (truncated
    file, digest mismatch, undecodable payload)."""


class ManifestCorruptError(CorruptArtifactError):
    """A campaign manifest failed validation (truncated JSON, bad
    self-signature, schema mismatch, duplicate shard entries).  The
    *shard data* is presumed fine: recovery rebuilds the manifest from
    per-shard sidecars instead of discarding anything
    (:func:`repro.campaign.orchestrator.recover_manifest`)."""


class ShardCorruptError(CorruptArtifactError):
    """One campaign shard failed validation (missing file, payload
    digest mismatch, row-count drift).  Recovery is shard-scoped:
    ``repro campaign repair`` re-derives exactly the bad shards from
    their position-derived seeds."""


class FatalError(ReproError):
    """A programming or configuration error.  Never retried."""


class NonFiniteError(FatalError):
    """A numeric computation produced NaN or infinity where the
    pipeline guarantees finite values — e.g. MLP training diverged, or
    a feature matrix carries non-finite entries into a classifier.

    Fatal, not retryable: the same inputs reproduce the same
    non-finite values, and retrying would only let them poison cached
    eval artifacts.  Surfaces immediately with the offending stage in
    the message; the ``ml.nonfinite`` obs counter records occurrences.
    """


class RepairMismatchError(FatalError):
    """A deterministic re-derivation produced different bytes than the
    manifest recorded.  That can only mean the code or config changed
    under the campaign (or the manifest lies) — retrying cannot fix
    it, so it is fatal and surfaces immediately."""


class RunTerminated(BaseException):
    """The process received a termination request (SIGTERM).

    A ``BaseException`` — like ``KeyboardInterrupt`` — so it cannot be
    swallowed by retry loops or broad ``except Exception`` handlers:
    it must reach :meth:`ResilientRunner.collect`, which writes a final
    checkpoint and re-raises so the scheduler sees a clean shutdown.
    """


@contextlib.contextmanager
def sigterm_translated():
    """Translate SIGTERM into :class:`RunTerminated` inside the block.

    Container and batch schedulers signal shutdown with SIGTERM;
    raising it as an exception lets long-running loops (the resilient
    runner, the campaign orchestrator) unwind through their normal
    finalisation — last durable checkpoint/manifest stays consistent —
    and exit with the conventional 143.  Signal handlers can only be
    installed from the main thread; elsewhere this is a no-op and the
    caller relies on the surrounding process's handling.
    """
    if (
        threading.current_thread() is not threading.main_thread()
        or not hasattr(signal, "SIGTERM")
    ):
        yield
        return

    def _on_sigterm(signum, frame):
        raise RunTerminated("SIGTERM received; finalising and exiting")

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


#: What the runner's retry loop catches.  Deliberately narrow: a trial
#: opts into retry by raising (a subclass of) these.  Everything else
#: propagates after a checkpoint, because retrying cannot fix it.
RETRYABLE_ERRORS: Tuple[Type[BaseException], ...] = (
    TrialError,
    InfrastructureError,
)

#: What decoding a stored artifact can raise — the cache layers and
#: the checkpoint loader classify these as :class:`CorruptArtifactError`
#: situations: count the corruption, evict the entry, recompute.
#: (``zipfile.BadZipFile`` covers truncated ``.npz`` archives, which
#: numpy surfaces as either that or ``OSError``/``EOFError``.)
ARTIFACT_DECODE_ERRORS: Tuple[Type[Exception], ...] = (
    ValueError,
    KeyError,
    OSError,
    EOFError,
    zipfile.BadZipFile,
)


def classify(error: BaseException) -> str:
    """``'trial'``, ``'infrastructure'`` or ``'fatal'`` for ``error``.

    The single classification point the reliability layers share, so a
    new exception type changes behaviour everywhere by subclassing,
    not by editing N except-tuples.
    """
    if isinstance(error, TrialError):
        return "trial"
    if isinstance(error, InfrastructureError):
        return "infrastructure"
    return "fatal"


def is_retryable(error: BaseException) -> bool:
    """Should a retry loop spend budget on ``error``?"""
    return isinstance(error, RETRYABLE_ERRORS)
