"""Classification metrics."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError(
            f"length mismatch: y_true={len(y_true)} y_pred={len(y_pred)}"
        )
    if len(y_true) == 0:
        raise ValueError("cannot score empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """Counts[i, j] = samples with true class i predicted as j.

    Labels must lie in ``[0, n_classes)``.  Fancy indexing would
    otherwise wrap negatives silently — a ``-1`` label increments the
    *last* row — corrupting every metric derived from the matrix.
    """
    if n_classes < 1:
        raise ValueError(f"n_classes must be >= 1, got {n_classes}")
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    for name, arr in (("y_true", y_true), ("y_pred", y_pred)):
        if arr.size and (arr.min() < 0 or arr.max() >= n_classes):
            bad = arr[(arr < 0) | (arr >= n_classes)]
            raise ValueError(
                f"{name} contains labels outside [0, {n_classes}): "
                f"{sorted(set(bad.tolist()))}"
            )
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall and F1 (zero where undefined)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes).astype(np.float64)
    tp = np.diag(matrix)
    predicted = matrix.sum(axis=0)
    actual = matrix.sum(axis=1)
    precision = np.divide(
        tp, predicted, out=np.zeros(n_classes), where=predicted > 0
    )
    recall = np.divide(tp, actual, out=np.zeros(n_classes), where=actual > 0)
    denom = precision + recall
    f1 = np.divide(
        2 * precision * recall, denom, out=np.zeros(n_classes), where=denom > 0
    )
    return precision, recall, f1


def mean_std(values) -> Tuple[float, float]:
    """Mean and sample standard deviation (ddof=1 when possible) —
    the ``x.xxx ± y.yyy`` format of the paper's Table 2."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("no values")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
    return mean, std
