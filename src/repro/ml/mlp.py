"""A from-scratch multilayer perceptron (no torch available).

Minibatch SGD with classical momentum over ReLU hidden layers and a
softmax cross-entropy head — the minimal backprop core behind the
deep-learning-class WF attack, built in the same spirit as the
from-scratch :mod:`repro.ml.forest`: pure numpy, seed-stable, and
bit-identical across runs (initialisation, shuffling and update order
are all fixed by ``seed``; no threading enters the math).

Inputs are z-score normalised inside :meth:`MlpClassifier.fit` (the
statistics are stored, so prediction normalises identically).  Layer
weights use He initialisation, the standard scale for ReLU nets.

Training curves flow through :mod:`repro.obs` when a session is live:
``mlp.epochs`` / ``mlp.steps`` counters, an ``mlp.train_loss`` gauge
(min/max envelope = the curve's range) and one ``mlp.epoch`` trace
event per epoch.  ``history_`` always records the per-epoch mean batch
loss in-process.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NonFiniteError
from repro.obs import runtime as _obs_runtime


def _count_nonfinite() -> None:
    """Bump the ``ml.nonfinite`` obs counter (no-op without a session)."""
    obs = _obs_runtime.session()
    if obs is not None:
        obs.registry.counter("ml.nonfinite").add(1)


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class MlpClassifier:
    """ReLU MLP trained by minibatch SGD with momentum.

    Parameters
    ----------
    hidden:
        Hidden layer widths, e.g. ``(128,)`` or ``(256, 128)``.
    epochs:
        Full passes over the training set.
    batch_size:
        Minibatch size (the final batch of an epoch may be smaller).
    learning_rate:
        Constant SGD step size.
    momentum:
        Classical momentum coefficient (0 disables).
    l2:
        L2 weight decay on the weight matrices (never the biases).
    seed:
        Fixes initialisation and epoch shuffling; equal seeds train
        bit-identical models on equal data.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (128,),
        epochs: int = 40,
        batch_size: int = 32,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        hidden = tuple(int(h) for h in hidden)
        if any(h < 1 for h in hidden):
            raise ValueError(f"hidden widths must be >= 1, got {hidden}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.l2 = l2
        self.seed = seed
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        self.n_classes_: int = 0
        self.history_: List[float] = []  # mean batch loss per epoch
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- normalisation ------------------------------------------------------

    def _normalise(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    # -- the backprop core --------------------------------------------------

    def _init_params(self, n_features: int, rng: np.random.Generator) -> None:
        """He-initialised weights, zero biases, zero velocities."""
        widths = (n_features,) + self.hidden + (self.n_classes_,)
        self.weights_ = [
            rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
            for fan_in, fan_out in zip(widths[:-1], widths[1:])
        ]
        self.biases_ = [np.zeros(fan_out) for fan_out in widths[1:]]

    def _forward(self, Xn: np.ndarray) -> List[np.ndarray]:
        """Layer activations: ``[input, hidden..., logits]``."""
        activations = [Xn]
        for index, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = activations[-1] @ W + b
            is_output = index == len(self.weights_) - 1
            activations.append(z if is_output else _relu(z))
        return activations

    def _loss(self, Xn: np.ndarray, y: np.ndarray) -> float:
        """Mean cross-entropy plus the L2 penalty (the exact quantity
        :meth:`_loss_and_grads` differentiates — finite-difference
        checkable)."""
        logits = self._forward(Xn)[-1]
        nll = -_log_softmax(logits)[np.arange(len(y)), y].mean()
        penalty = 0.5 * self.l2 * sum(float((W * W).sum()) for W in self.weights_)
        return float(nll + penalty)

    def _loss_and_grads(
        self, Xn: np.ndarray, y: np.ndarray
    ) -> Tuple[float, List[np.ndarray], List[np.ndarray]]:
        """One forward/backward pass over a (normalised) batch."""
        m = len(y)
        activations = self._forward(Xn)
        logits = activations[-1]
        proba = _softmax(logits)
        nll = -_log_softmax(logits)[np.arange(m), y].mean()
        penalty = 0.5 * self.l2 * sum(float((W * W).sum()) for W in self.weights_)

        delta = proba.copy()
        delta[np.arange(m), y] -= 1.0
        delta /= m
        grads_W: List[np.ndarray] = [None] * len(self.weights_)
        grads_b: List[np.ndarray] = [None] * len(self.weights_)
        for index in range(len(self.weights_) - 1, -1, -1):
            grads_W[index] = activations[index].T @ delta + self.l2 * self.weights_[index]
            grads_b[index] = delta.sum(axis=0)
            if index > 0:
                # ReLU derivative: the stored activation is already
                # max(z, 0), so "> 0" recovers the mask exactly.
                delta = (delta @ self.weights_[index].T) * (activations[index] > 0)
        return float(nll + penalty), grads_W, grads_b

    # -- training -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MlpClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.isfinite(X).all():
            _count_nonfinite()
            raise NonFiniteError(
                "MLP training input contains NaN/inf feature values; "
                "refusing to fit — the upstream feature matrix is corrupt"
            )
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        Xn = self._normalise(X)
        n, n_features = Xn.shape
        self.n_classes_ = int(y.max()) + 1

        rng = np.random.default_rng(self.seed)
        self._init_params(n_features, rng)
        velocity_W = [np.zeros_like(W) for W in self.weights_]
        velocity_b = [np.zeros_like(b) for b in self.biases_]

        obs = _obs_runtime.session()
        if obs is not None:
            obs_epochs = obs.registry.counter("mlp.epochs")
            obs_steps = obs.registry.counter("mlp.steps")
            obs_loss = obs.registry.gauge("mlp.train_loss")

        self.history_ = []
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            batch_losses: List[float] = []
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                loss, grads_W, grads_b = self._loss_and_grads(Xn[batch], y[batch])
                batch_losses.append(loss)
                for index in range(len(self.weights_)):
                    velocity_W[index] = (
                        self.momentum * velocity_W[index]
                        - self.learning_rate * grads_W[index]
                    )
                    velocity_b[index] = (
                        self.momentum * velocity_b[index]
                        - self.learning_rate * grads_b[index]
                    )
                    self.weights_[index] += velocity_W[index]
                    self.biases_[index] += velocity_b[index]
            epoch_loss = float(np.mean(batch_losses))
            # Divergence guard: a NaN/inf epoch loss (or parameters
            # poisoned by non-finite gradients) must fail loudly before
            # the fitted model can reach cached eval artifacts.
            if not np.isfinite(epoch_loss) or not all(
                np.isfinite(W).all() for W in self.weights_
            ):
                _count_nonfinite()
                raise NonFiniteError(
                    f"MLP training diverged at epoch {epoch}: mean batch "
                    f"loss {epoch_loss!r} "
                    f"(learning_rate={self.learning_rate}, "
                    f"hidden={self.hidden}, l2={self.l2}); lower the "
                    f"learning rate or inspect the feature matrix"
                )
            self.history_.append(epoch_loss)
            if obs is not None:
                obs_epochs.inc()
                obs_steps.add(len(batch_losses))
                obs_loss.set(epoch_loss)
                obs.emit("mlp.epoch", "ml", epoch=epoch, loss=epoch_loss)
        return self

    # -- prediction ---------------------------------------------------------

    def _check_fitted(self) -> None:
        if not self.weights_:
            raise RuntimeError("classifier is not fitted")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        self._check_fitted()
        Xn = self._normalise(np.asarray(X, dtype=np.float64))
        return _softmax(self._forward(Xn)[-1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on (X, y)."""
        y = np.asarray(y, dtype=np.int64)
        return float(np.mean(self.predict(X) == y))
