"""Random forest built on :class:`repro.ml.tree.DecisionTree`.

Standard Breiman forest: bootstrap-resampled trees with per-node
feature subsampling.  Extras the k-FP attack relies on:

* :meth:`RandomForest.apply` — the (n_samples, n_trees) matrix of leaf
  indices, k-FP's "fingerprint" representation;
* out-of-bag accuracy for honest in-training evaluation.

Fitting and prediction optionally parallelise over ``n_jobs``
processes.  Results are bit-identical to the serial path for any job
count: each tree's randomness comes from its own generator (spawned
from the root seed before any fan-out), trees are merged back in index
order, and prediction parallelises over *rows* — never over trees — so
the floating-point summation order of the ensemble vote is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.tree import DecisionTree
from repro.parallel import chunked, default_chunk_size, resolve_workers, shared_pool


def _fit_tree_chunk(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    params: Dict,
    rngs: Sequence[np.random.Generator],
) -> List[Tuple[DecisionTree, np.ndarray]]:
    """Fit one chunk of trees (also the serial path when called with
    every generator).  Each entry returns (tree, bootstrap sample):
    the sample indices are needed afterwards for out-of-bag voting.

    The bootstrap draw and the tree's node-level subsampling both
    consume ``tree_rng`` in the exact order of the original serial
    implementation, which is what keeps any chunking bit-identical.
    """
    n = len(X)
    fitted: List[Tuple[DecisionTree, np.ndarray]] = []
    for tree_rng in rngs:
        sample = tree_rng.integers(0, n, size=n)
        tree = DecisionTree(rng=tree_rng, **params)
        tree.fit(X[sample], y[sample], n_classes=n_classes)
        fitted.append((tree, sample))
    return fitted


def _predict_proba_rows(
    trees: List[DecisionTree], n_classes: int, X_rows: np.ndarray
) -> np.ndarray:
    """Ensemble-summed class distributions for a chunk of rows, in the
    serial tree order (summation order = bit-identical votes)."""
    proba = np.zeros((len(X_rows), n_classes))
    for tree in trees:
        proba += tree.predict_proba(X_rows)
    return proba


def _apply_rows(trees: List[DecisionTree], X_rows: np.ndarray) -> np.ndarray:
    """Leaf-index matrix for a chunk of rows."""
    return np.column_stack([tree.apply(X_rows) for tree in trees])


class RandomForest:
    """Bagged CART ensemble."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        oob_score: bool = False,
        random_state: Optional[int] = None,
        n_jobs: int = 1,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.oob_score = oob_score
        self.random_state = random_state
        #: Fit/predict processes: 1 = in-process, 0 = one per core.
        #: Any value yields bit-identical trees and predictions.
        self.n_jobs = resolve_workers(n_jobs) if n_jobs != 1 else 1
        self.trees_: List[DecisionTree] = []
        self.n_classes_: int = 0
        self.oob_score_: Optional[float] = None

    def _tree_params(self) -> Dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        """Fit the ensemble."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        n = len(X)
        self.n_classes_ = int(y.max()) + 1
        root = np.random.default_rng(self.random_state)
        # Per-tree generators are spawned from the root *before* any
        # fan-out, so each tree's randomness is fixed by its index —
        # never by which process fits it.
        seeds = root.spawn(self.n_estimators)
        params = self._tree_params()
        if self.n_jobs > 1 and self.n_estimators > 1:
            rng_chunks = chunked(
                seeds, default_chunk_size(self.n_estimators, self.n_jobs)
            )
            parts = shared_pool(self.n_jobs).map(
                _fit_tree_chunk,
                [X] * len(rng_chunks),
                [y] * len(rng_chunks),
                [self.n_classes_] * len(rng_chunks),
                [params] * len(rng_chunks),
                rng_chunks,
            )
            fitted = [pair for part in parts for pair in part]
        else:
            fitted = _fit_tree_chunk(X, y, self.n_classes_, params, seeds)
        self.trees_ = [tree for tree, _sample in fitted]
        if self.oob_score:
            # Accumulated in tree-index order, matching the serial
            # interleaved implementation bit for bit.
            oob_votes = np.zeros((n, self.n_classes_))
            for tree, sample in fitted:
                mask = np.ones(n, dtype=bool)
                mask[np.unique(sample)] = False
                if np.any(mask):
                    oob_votes[mask] += tree.predict_proba(X[mask])
            voted = oob_votes.sum(axis=1) > 0
            if np.any(voted):
                predictions = np.argmax(oob_votes[voted], axis=1)
                self.oob_score_ = float(np.mean(predictions == y[voted]))
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")

    def _row_chunks(self, X: np.ndarray) -> Optional[List[np.ndarray]]:
        """Row chunks for parallel prediction, or None for in-process."""
        if self.n_jobs <= 1 or len(X) <= 1:
            return None
        return chunked(X, default_chunk_size(len(X), self.n_jobs))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean leaf class distribution across trees."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        row_chunks = self._row_chunks(X)
        if row_chunks is None:
            proba = _predict_proba_rows(self.trees_, self.n_classes_, X)
        else:
            parts = shared_pool(self.n_jobs).map(
                _predict_proba_rows,
                [self.trees_] * len(row_chunks),
                [self.n_classes_] * len(row_chunks),
                [np.asarray(chunk) for chunk in row_chunks],
            )
            proba = np.vstack(list(parts))
        return proba / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Soft-voted class labels."""
        return np.argmax(self.predict_proba(X), axis=1)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf indices: shape (n_samples, n_estimators).

        Two samples landing in the same leaves across many trees are
        similar in the forest's metric — the basis of k-FP's k-NN
        matching stage.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        row_chunks = self._row_chunks(X)
        if row_chunks is None:
            return _apply_rows(self.trees_, X)
        parts = shared_pool(self.n_jobs).map(
            _apply_rows,
            [self.trees_] * len(row_chunks),
            [np.asarray(chunk) for chunk in row_chunks],
        )
        return np.vstack(list(parts))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on (X, y)."""
        y = np.asarray(y, dtype=np.int64)
        return float(np.mean(self.predict(X) == y))
