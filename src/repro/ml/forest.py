"""Random forest built on :class:`repro.ml.tree.DecisionTree`.

Standard Breiman forest: bootstrap-resampled trees with per-node
feature subsampling.  Extras the k-FP attack relies on:

* :meth:`RandomForest.apply` — the (n_samples, n_trees) matrix of leaf
  indices, k-FP's "fingerprint" representation;
* out-of-bag accuracy for honest in-training evaluation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTree


class RandomForest:
    """Bagged CART ensemble."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        oob_score: bool = False,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.oob_score = oob_score
        self.random_state = random_state
        self.trees_: List[DecisionTree] = []
        self.n_classes_: int = 0
        self.oob_score_: Optional[float] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        """Fit the ensemble."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        n = len(X)
        self.n_classes_ = int(y.max()) + 1
        root = np.random.default_rng(self.random_state)
        seeds = root.spawn(self.n_estimators)
        self.trees_ = []
        oob_votes = (
            np.zeros((n, self.n_classes_)) if self.oob_score else None
        )
        for tree_rng in seeds:
            sample = tree_rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=tree_rng,
            )
            tree.fit(X[sample], y[sample], n_classes=self.n_classes_)
            self.trees_.append(tree)
            if oob_votes is not None:
                mask = np.ones(n, dtype=bool)
                mask[np.unique(sample)] = False
                if np.any(mask):
                    oob_votes[mask] += tree.predict_proba(X[mask])
        if oob_votes is not None:
            voted = oob_votes.sum(axis=1) > 0
            if np.any(voted):
                predictions = np.argmax(oob_votes[voted], axis=1)
                self.oob_score_ = float(np.mean(predictions == y[voted]))
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean leaf class distribution across trees."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        proba = np.zeros((len(X), self.n_classes_))
        for tree in self.trees_:
            proba += tree.predict_proba(X)
        return proba / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Soft-voted class labels."""
        return np.argmax(self.predict_proba(X), axis=1)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf indices: shape (n_samples, n_estimators).

        Two samples landing in the same leaves across many trees are
        similar in the forest's metric — the basis of k-FP's k-NN
        matching stage.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return np.column_stack([tree.apply(X) for tree in self.trees_])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on (X, y)."""
        y = np.asarray(y, dtype=np.int64)
        return float(np.mean(self.predict(X) == y))
