"""Cross-validation helpers."""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np


def stratified_kfold_indices(
    y: np.ndarray, n_folds: int, rng: np.random.Generator
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs with per-class balance."""
    y = np.asarray(y, dtype=np.int64)
    if n_folds < 2:
        raise ValueError(f"need at least 2 folds, got {n_folds}")
    fold_of = np.empty(len(y), dtype=np.int64)
    for cls in np.unique(y):
        members = np.nonzero(y == cls)[0]
        if len(members) < n_folds:
            raise ValueError(
                f"class {cls} has {len(members)} samples; cannot make "
                f"{n_folds} folds"
            )
        shuffled = rng.permutation(members)
        fold_of[shuffled] = np.arange(len(members)) % n_folds
    for fold in range(n_folds):
        test_idx = np.nonzero(fold_of == fold)[0]
        train_idx = np.nonzero(fold_of != fold)[0]
        yield train_idx, test_idx


def cross_validate_accuracy(
    make_model: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    rng: np.random.Generator = None,
) -> List[float]:
    """Fit/score ``make_model()`` across stratified folds.

    The model must expose ``fit(X, y)`` and ``score(X, y)``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    X = np.asarray(X)
    y = np.asarray(y, dtype=np.int64)
    scores: List[float] = []
    for train_idx, test_idx in stratified_kfold_indices(y, n_folds, rng):
        model = make_model()
        model.fit(X[train_idx], y[train_idx])
        scores.append(float(model.score(X[test_idx], y[test_idx])))
    return scores
