"""Brute-force k-nearest-neighbour classifier.

Supports euclidean distance (standard) and hamming distance over
integer codes — the latter is what k-FP uses to match random-forest
leaf vectors between test and training samples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class KNeighborsClassifier:
    """k-NN with euclidean or hamming distance."""

    def __init__(self, n_neighbors: int = 3, metric: str = "euclidean") -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if metric not in ("euclidean", "hamming"):
            raise ValueError(f"metric must be euclidean or hamming, got {metric!r}")
        self.n_neighbors = n_neighbors
        self.metric = metric
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self.n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X = np.asarray(X)
        y = np.asarray(y, dtype=np.int64)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} samples, got {len(X)}"
            )
        self._X = X
        self._y = y
        self.n_classes_ = int(y.max()) + 1
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        """(n_test, n_train) distance matrix."""
        if self.metric == "euclidean":
            a = np.asarray(X, dtype=np.float64)
            b = np.asarray(self._X, dtype=np.float64)
            aa = np.sum(a * a, axis=1)[:, None]
            bb = np.sum(b * b, axis=1)[None, :]
            sq = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
            return np.sqrt(sq)
        # Hamming over integer codes, computed in column blocks to keep
        # the boolean intermediates small.
        a = np.asarray(X)
        b = np.asarray(self._X)
        out = np.zeros((len(a), len(b)), dtype=np.float64)
        block = 32
        for start in range(0, a.shape[1], block):
            stop = min(start + block, a.shape[1])
            out += np.sum(
                a[:, None, start:stop] != b[None, :, start:stop], axis=2
            )
        return out / a.shape[1]

    def kneighbors(self, X: np.ndarray) -> np.ndarray:
        """Indices of the k nearest training samples per row."""
        if self._X is None:
            raise RuntimeError("classifier is not fitted")
        distances = self._distances(X)
        k = self.n_neighbors
        # argpartition then sort the k candidates for deterministic order.
        part = np.argpartition(distances, k - 1, axis=1)[:, :k]
        rows = np.arange(len(X))[:, None]
        order = np.argsort(distances[rows, part], axis=1, kind="stable")
        return part[rows, order]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority vote among the k nearest neighbours."""
        neighbors = self.kneighbors(X)
        votes = self._y[neighbors]
        out = np.empty(len(X), dtype=np.int64)
        for i, row in enumerate(votes):
            out[i] = np.bincount(row, minlength=self.n_classes_).argmax()
        return out

    def predict_unanimous(self, X: np.ndarray, fallback: int = -1) -> np.ndarray:
        """k-FP style strict vote: a label only when all k neighbours
        agree, else ``fallback`` (used for open-world precision)."""
        neighbors = self.kneighbors(X)
        votes = self._y[neighbors]
        unanimous = np.all(votes == votes[:, :1], axis=1)
        out = np.full(len(X), fallback, dtype=np.int64)
        out[unanimous] = votes[unanimous, 0]
        return out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.int64)
        return float(np.mean(self.predict(X) == y))
