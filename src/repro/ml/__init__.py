"""From-scratch machine learning used by the WF attacks.

scikit-learn is not available offline, so this package implements the
pieces k-FP needs from first principles, vectorised with numpy:

* :class:`~repro.ml.tree.DecisionTree` — CART with gini impurity,
* :class:`~repro.ml.forest.RandomForest` — bagging + feature
  subsampling + out-of-bag scoring + per-tree leaf indices (k-FP's
  fingerprint vectors),
* :class:`~repro.ml.knn.KNeighborsClassifier` — brute-force k-NN with
  euclidean or hamming distance,
* :class:`~repro.ml.mlp.MlpClassifier` — ReLU MLP with a minimal
  backprop core (minibatch SGD + momentum, softmax cross-entropy),
  the classifier behind the deep-learning-class TAM attack,
* metrics and stratified cross-validation helpers.
"""

from repro.ml.tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.knn import KNeighborsClassifier
from repro.ml.mlp import MlpClassifier
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    precision_recall_f1,
)
from repro.ml.validate import cross_validate_accuracy, stratified_kfold_indices

__all__ = [
    "DecisionTree",
    "RandomForest",
    "KNeighborsClassifier",
    "MlpClassifier",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "cross_validate_accuracy",
    "stratified_kfold_indices",
]
