"""Linear classifiers trained by SGD (no scikit-learn available).

:class:`LinearSVC` is a one-vs-rest L2-regularised hinge-loss linear
classifier (Pegasos-style SGD) — the classifier family behind the
CUMUL website-fingerprinting attack (the original uses an RBF SVM; a
linear one on the same features is the standard cheap variant).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearSVC:
    """One-vs-rest linear SVM via Pegasos SGD.

    Parameters
    ----------
    lam:
        L2 regularisation strength (Pegasos lambda).
    epochs:
        Full passes over the training set.
    random_state:
        Seed for shuffling.
    """

    def __init__(
        self,
        lam: float = 1e-4,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ) -> None:
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.lam = lam
        self.epochs = epochs
        self.random_state = random_state
        self.coef_: Optional[np.ndarray] = None  # (n_classes, d)
        self.intercept_: Optional[np.ndarray] = None
        self.n_classes_: int = 0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _normalise(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVC":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        Xn = self._normalise(X)
        n, d = Xn.shape
        self.n_classes_ = int(y.max()) + 1
        rng = np.random.default_rng(self.random_state)
        self.coef_ = np.zeros((self.n_classes_, d))
        self.intercept_ = np.zeros(self.n_classes_)
        step = 0
        for cls in range(self.n_classes_):
            target = np.where(y == cls, 1.0, -1.0)
            w = np.zeros(d)
            b = 0.0
            t = 0
            for _epoch in range(self.epochs):
                for index in rng.permutation(n):
                    t += 1
                    eta = 1.0 / (self.lam * t)
                    margin = target[index] * (Xn[index] @ w + b)
                    w *= 1.0 - eta * self.lam
                    if margin < 1.0:
                        w += eta * target[index] * Xn[index]
                        b += eta * target[index] * 0.01
            self.coef_[cls] = w
            self.intercept_[cls] = b
            step += t
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("classifier is not fitted")
        Xn = self._normalise(np.asarray(X, dtype=np.float64))
        return Xn @ self.coef_.T + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(X), axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.int64)
        return float(np.mean(self.predict(X) == y))
