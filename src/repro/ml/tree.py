"""CART decision tree (classification, gini impurity).

The tree is grown depth-first.  At each node a random subset of
features is evaluated; for each candidate feature the samples are
sorted once and the gini gain of every distinct-value midpoint is
computed from class-count prefix sums — the standard vectorised CART
formulation, O(m log m) per feature per node.

The fitted tree is stored in flat arrays (``feature``, ``threshold``,
``left``, ``right``, ``value``) so prediction is an array-walk rather
than object traversal.  :meth:`DecisionTree.apply` returns leaf indices,
which :mod:`repro.attacks.kfp` uses to build fingerprint vectors.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class DecisionTree:
    """A CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (None = unlimited).
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples each child must keep.
    max_features:
        Number of features examined per node; ``"sqrt"`` (the random-
        forest default), ``None`` (all), or an int.
    rng:
        Random generator for feature subsampling and tie-breaking.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        self.n_classes_: int = 0
        self.n_features_: int = 0
        # Flat representation; index 0 is the root.
        self.feature: np.ndarray = np.empty(0, dtype=np.int64)
        self.threshold: np.ndarray = np.empty(0)
        self.left: np.ndarray = np.empty(0, dtype=np.int64)
        self.right: np.ndarray = np.empty(0, dtype=np.int64)
        self.value: np.ndarray = np.empty((0, 0))

    # -- fitting ---------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        k = int(self.max_features)
        if not 1 <= k <= n_features:
            raise ValueError(
                f"max_features {k} out of range [1, {n_features}]"
            )
        return k

    def fit(
        self, X: np.ndarray, y: np.ndarray, n_classes: Optional[int] = None
    ) -> "DecisionTree":
        """Grow the tree on ``X`` (n, d) with integer labels ``y``.

        ``n_classes`` fixes the class-distribution width; ensembles pass
        it so trees fitted on bootstrap samples that happen to miss a
        class still produce full-width probability rows.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit an empty dataset")
        self.n_classes_ = n_classes if n_classes is not None else int(y.max()) + 1
        if self.n_classes_ <= int(y.max()):
            raise ValueError(
                f"n_classes {self.n_classes_} too small for labels up to {y.max()}"
            )
        self.n_features_ = X.shape[1]
        k_features = self._resolve_max_features(self.n_features_)

        features: List[int] = []
        thresholds: List[float] = []
        lefts: List[int] = []
        rights: List[int] = []
        values: List[np.ndarray] = []

        # Depth-first growth with an explicit stack of (indices, depth,
        # parent slot).  Each stack entry allocates its node id on pop.
        stack: List[Tuple[np.ndarray, int, int, bool]] = [
            (np.arange(len(y)), 0, -1, False)
        ]
        while stack:
            indices, depth, parent, is_right = stack.pop()
            node_id = len(features)
            if parent >= 0:
                if is_right:
                    rights[parent] = node_id
                else:
                    lefts[parent] = node_id
            counts = np.bincount(y[indices], minlength=self.n_classes_)
            features.append(-1)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            values.append(counts.astype(np.float64))

            if (
                len(indices) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or counts.max() == len(indices)  # pure node
            ):
                continue
            split = self._best_split(X, y, indices, k_features, counts)
            if split is None:
                continue
            feat, thr, left_idx, right_idx = split
            features[node_id] = feat
            thresholds[node_id] = thr
            stack.append((right_idx, depth + 1, node_id, True))
            stack.append((left_idx, depth + 1, node_id, False))

        self.feature = np.asarray(features, dtype=np.int64)
        self.threshold = np.asarray(thresholds, dtype=np.float64)
        self.left = np.asarray(lefts, dtype=np.int64)
        self.right = np.asarray(rights, dtype=np.int64)
        self.value = np.vstack(values)
        return self

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        indices: np.ndarray,
        k_features: int,
        counts: np.ndarray,
    ) -> Optional[Tuple[int, float, np.ndarray, np.ndarray]]:
        """Search a random feature subset for the best gini split."""
        m = len(indices)
        y_node = y[indices]
        best_gain = 1e-12
        best: Optional[Tuple[int, float]] = None
        total_gini = self._gini_from_counts(counts[None, :], np.array([m]))[0]

        candidates = self._rng.choice(
            self.n_features_, size=k_features, replace=False
        )
        min_leaf = self.min_samples_leaf
        for feat in candidates:
            column = X[indices, feat]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_y = y_node[order]
            # Valid split positions: between i and i+1 when the value
            # changes and both sides satisfy min_samples_leaf.
            diff = sorted_vals[1:] != sorted_vals[:-1]
            positions = np.nonzero(diff)[0] + 1  # left side size
            if len(positions) == 0:
                continue
            positions = positions[
                (positions >= min_leaf) & (positions <= m - min_leaf)
            ]
            if len(positions) == 0:
                continue
            onehot = np.zeros((m, self.n_classes_), dtype=np.float64)
            onehot[np.arange(m), sorted_y] = 1.0
            prefix = np.cumsum(onehot, axis=0)
            left_counts = prefix[positions - 1]
            right_counts = counts[None, :] - left_counts
            n_left = positions.astype(np.float64)
            n_right = m - n_left
            gini_left = self._gini_from_counts(left_counts, n_left)
            gini_right = self._gini_from_counts(right_counts, n_right)
            weighted = (n_left * gini_left + n_right * gini_right) / m
            gains = total_gini - weighted
            best_pos = int(np.argmax(gains))
            if gains[best_pos] > best_gain:
                best_gain = float(gains[best_pos])
                pos = positions[best_pos]
                thr = 0.5 * (sorted_vals[pos - 1] + sorted_vals[pos])
                best = (int(feat), float(thr))
        if best is None:
            return None
        feat, thr = best
        mask = X[indices, feat] <= thr
        left_idx = indices[mask]
        right_idx = indices[~mask]
        if len(left_idx) == 0 or len(right_idx) == 0:
            return None
        return feat, thr, left_idx, right_idx

    @staticmethod
    def _gini_from_counts(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
        """Gini impurity for rows of class counts."""
        totals = np.asarray(totals, dtype=np.float64)
        safe = np.maximum(totals, 1.0)
        p = counts / safe[:, None]
        return 1.0 - np.sum(p * p, axis=1)

    # -- prediction ---------------------------------------------------------------

    def _check_fitted(self) -> None:
        if len(self.feature) == 0:
            raise RuntimeError("tree is not fitted")

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node index for every sample."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        nodes = np.zeros(len(X), dtype=np.int64)
        active = self.feature[nodes] >= 0
        while np.any(active):
            idx = np.nonzero(active)[0]
            current = nodes[idx]
            feats = self.feature[current]
            go_left = X[idx, feats] <= self.threshold[current]
            nodes[idx[go_left]] = self.left[current[go_left]]
            nodes[idx[~go_left]] = self.right[current[~go_left]]
            active[idx] = self.feature[nodes[idx]] >= 0
        return nodes

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class distributions of the reached leaves."""
        leaves = self.apply(X)
        counts = self.value[leaves]
        totals = counts.sum(axis=1, keepdims=True)
        return counts / np.maximum(totals, 1.0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority class of the reached leaves."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def node_count(self) -> int:
        return len(self.feature)

    @property
    def max_reached_depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()
        depth = np.zeros(self.node_count, dtype=np.int64)
        for node in range(self.node_count):
            for child in (self.left[node], self.right[node]):
                if child >= 0:
                    depth[child] = depth[node] + 1
        return int(depth.max())
