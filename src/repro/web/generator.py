"""Parametric site-profile generator: thousands of seed-stable sites.

The paper's world is the nine hand-tuned profiles of
:mod:`repro.web.sites`; campaign-scale experiments (Tranco-like site
lists, millions of traces) need thousands of *distinct, stable*
profiles.  This module synthesises them:

* **seed-stable and position-derived** — ``generate_profile(seed, i)``
  is a pure function of ``(seed, i)``: it does not depend on how many
  sites a campaign has, which shard asked, or what was generated
  before.  That is what lets a campaign shard (or a repair run years
  later) regenerate exactly the site it needs, byte-identically,
  without materialising a catalogue;
* **Zipf-shaped composition** — object counts and typical object sizes
  follow bounded Zipf draws, matching the heavy-tailed page-weight
  distributions of real crawls: most generated sites are light, a few
  are image- or script-monsters;
* **content families + CDN mixes** — each site draws a content family
  (text / media / app-shell / commerce / social) fixing its object-kind
  mixture, and a serving mix (CDN-heavy, origin, mixed) fixing its
  think-time family and certificate-chain size range, so inter-site
  variance has realistic *structure* rather than being i.i.d. noise.

Generated names are ``site-000042.gen`` — disjoint from the nine real
labels, so mixed datasets remain unambiguous.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.web.objects import ObjectClass, SiteProfile

#: Domain-separation salt so profile randomness never collides with
#: trial/visit seed streams derived from the same campaign seed.
GENERATOR_SALT = 0x517E6E
#: Bump when the generator's output changes for the same (seed, index)
#: — folded into campaign config digests, so old manifests refuse to
#: silently mix with differently generated sites.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class ContentFamily:
    """One content archetype: what kinds of objects a page embeds."""

    name: str
    #: (kind name, count Zipf cap, log-size range in KB) per class.
    classes: Tuple[Tuple[str, int, Tuple[float, float]], ...]
    #: Range of dependency-round counts.
    rounds: Tuple[int, int]
    #: HTML size range (KB) the log-normal mean is drawn from.
    html_kb: Tuple[float, float]


@dataclass(frozen=True)
class ServingMix:
    """How a site is served: think-time family + certificate range."""

    name: str
    #: Server think-time upper bound range (seconds); lower bound is
    #: fixed at 4 ms like the hand-tuned catalogue.
    think_hi: Tuple[float, float]
    #: Certificate-flight size range the low edge is drawn from.
    cert_low: Tuple[int, int]


#: Content families, in a fixed order (indices are part of the stable
#: derivation — append, never reorder).
CONTENT_FAMILIES: Tuple[ContentFamily, ...] = (
    ContentFamily(
        "text",
        classes=(
            ("images", 12, (4.0, 60.0)),
            ("css", 4, (20.0, 90.0)),
            ("scripts", 8, (30.0, 120.0)),
        ),
        rounds=(1, 2),
        html_kb=(30.0, 200.0),
    ),
    ContentFamily(
        "media",
        classes=(
            ("photos", 40, (20.0, 300.0)),
            ("scripts", 12, (80.0, 350.0)),
            ("api", 10, (2.0, 12.0)),
        ),
        rounds=(2, 3),
        html_kb=(40.0, 500.0),
    ),
    ContentFamily(
        "app",
        classes=(
            ("scripts", 20, (80.0, 400.0)),
            ("icons", 12, (1.5, 8.0)),
            ("telemetry", 10, (1.0, 4.0)),
        ),
        rounds=(2, 3),
        html_kb=(20.0, 120.0),
    ),
    ContentFamily(
        "commerce",
        classes=(
            ("thumbnails", 30, (8.0, 60.0)),
            ("scripts", 14, (60.0, 250.0)),
            ("beacons", 12, (1.0, 3.0)),
        ),
        rounds=(2, 3),
        html_kb=(50.0, 300.0),
    ),
    ContentFamily(
        "social",
        classes=(
            ("photos", 24, (30.0, 200.0)),
            ("scripts", 14, (100.0, 300.0)),
            ("api", 12, (2.0, 10.0)),
        ),
        rounds=(2, 3),
        html_kb=(30.0, 150.0),
    ),
)

#: Serving mixes ("CDN mixes"): how fast responses come back and how
#: heavy the certificate flight is.
SERVING_MIXES: Tuple[ServingMix, ...] = (
    ServingMix("cdn", think_hi=(0.010, 0.020), cert_low=(3400, 5000)),
    ServingMix("origin", think_hi=(0.025, 0.045), cert_low=(2000, 3200)),
    ServingMix("mixed", think_hi=(0.015, 0.035), cert_low=(2600, 4200)),
)

#: Zipf exponent for object-count draws (heavier tail than the uniform
#: draws of :func:`repro.web.sites.random_profile`).
ZIPF_EXPONENT = 1.6


def site_name(index: int) -> str:
    """The canonical label of generated site ``index``."""
    if index < 0:
        raise ValueError(f"site index must be >= 0, got {index}")
    return f"site-{index:06d}.gen"


def profile_rng(seed: int, index: int) -> np.random.Generator:
    """The position-derived generator for site ``index``'s profile."""
    return np.random.default_rng([GENERATOR_SALT, seed, index])


def _zipf_bounded(rng: np.random.Generator, cap: int) -> int:
    """A Zipf(:data:`ZIPF_EXPONENT`) draw folded into ``[1, cap]``.

    Folding (modulo) rather than rejection keeps the draw a single rng
    consumption, so profile derivation stays O(1) and reproducible
    independent of the cap.
    """
    draw = int(rng.zipf(ZIPF_EXPONENT))
    return 1 + (draw - 1) % max(1, cap)


def generate_profile(seed: int, index: int) -> SiteProfile:
    """Synthesise the stable profile of generated site ``index``.

    A pure function of ``(seed, index)`` — see the module docstring for
    why that is the load-bearing property.
    """
    rng = profile_rng(seed, index)
    family = CONTENT_FAMILIES[int(rng.integers(0, len(CONTENT_FAMILIES)))]
    serving = SERVING_MIXES[int(rng.integers(0, len(SERVING_MIXES)))]

    classes = []
    for kind, count_cap, (kb_lo, kb_hi) in family.classes:
        count = _zipf_bounded(rng, count_cap)
        # Typical size: log-uniform across the family's range, itself
        # Zipf-tilted so most classes sit near the light end.
        tilt = _zipf_bounded(rng, 8) / 8.0
        log_kb = math.log(kb_lo) + tilt * (math.log(kb_hi) - math.log(kb_lo))
        classes.append(
            ObjectClass(
                name=kind,
                count_mean=float(count),
                count_jitter=float(rng.uniform(0.10, 0.30)),
                log_mean=log_kb + math.log(1024.0),
                log_sigma=float(rng.uniform(0.3, 0.7)),
            )
        )
    html_kb = math.exp(
        rng.uniform(math.log(family.html_kb[0]), math.log(family.html_kb[1]))
    )
    cert_low = int(rng.integers(*serving.cert_low))
    return SiteProfile(
        name=site_name(index),
        html_log_mean=math.log(html_kb * 1024.0),
        html_log_sigma=float(rng.uniform(0.2, 0.35)),
        object_classes=classes,
        dependency_rounds=int(rng.integers(family.rounds[0], family.rounds[1] + 1)),
        think_time=(0.004, float(rng.uniform(*serving.think_hi))),
        cert_size=(cert_low, cert_low + int(rng.integers(300, 700))),
    )


def generate_catalog(
    n_sites: int, seed: int, start: int = 0
) -> Dict[str, SiteProfile]:
    """``{name: profile}`` for sites ``start .. start + n_sites``.

    Each entry equals an individual :func:`generate_profile` call —
    the catalogue is a convenience view, not a unit of derivation.
    """
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    return {
        site_name(i): generate_profile(seed, i)
        for i in range(start, start + n_sites)
    }
