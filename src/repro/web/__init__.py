"""Synthetic web workload.

The paper captured tcpdump traces of nine popular sites.  We have no
network, so this package *is* the web: per-site statistical profiles
(:mod:`~repro.web.sites`), an HTTP/1.1-style page-load driver that
exchanges request/response bytes over the simulated stack
(:mod:`~repro.web.pageload`), and a fast statistical trace generator
for unit tests (:mod:`~repro.web.tracegen`).

What matters for the experiments is that per-site packet sequences are
*distinctive but noisy* — the property WF attacks exploit in real
captures — and that defended traces are produced by exactly the trace
transforms the paper emulates.
"""

from repro.web.objects import PageSample, SiteProfile
from repro.web.generator import generate_catalog, generate_profile, site_name
from repro.web.sites import SITE_CATALOG, site_names
from repro.web.pageload import (
    PageLoadConfig,
    PageLoadResult,
    PageLoadStalled,
    collect_dataset,
    load_page,
    load_page_result,
    load_page_strict,
)
from repro.web.tracegen import StatisticalTraceGenerator

__all__ = [
    "SiteProfile",
    "PageSample",
    "SITE_CATALOG",
    "site_names",
    "generate_catalog",
    "generate_profile",
    "site_name",
    "PageLoadConfig",
    "PageLoadResult",
    "PageLoadStalled",
    "load_page",
    "load_page_result",
    "load_page_strict",
    "collect_dataset",
    "StatisticalTraceGenerator",
]
