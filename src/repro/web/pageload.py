"""Page loads over the simulated stack.

:func:`load_page` plays one visit of a site through the full host-stack
model: TCP handshake, pipelined HTTP/1.1-style request/response rounds
with server think times and client parse times, captured by a
:class:`~repro.capture.trace.TraceObserver` on the client's access
link — the same vantage point as the paper's tcpdump capture.

:func:`collect_dataset` repeats this for every site and sample count,
with per-visit path jitter (RTT and bandwidth vary between visits the
way consecutive real fetches do), producing the raw dataset the
Table-2 pipeline sanitises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace, TraceObserver
from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import TcpFlow, make_flow
from repro.stack.tcp import TcpConfig
from repro.stob.controller import StobController
from repro.units import mbps, msec
from repro.web.objects import PageSample, SiteProfile
from repro.web.sites import SITE_CATALOG


@dataclass
class PageLoadConfig:
    """Parameters of one page-load simulation."""

    #: Access-path parameters (means; jittered per visit).
    rate_mbps: float = 50.0
    rtt_ms: float = 30.0
    rate_jitter: float = 0.15
    rtt_jitter: float = 0.20
    buffer_bdp: float = 1.5
    loss_rate: float = 0.0
    #: TCP config applied to both ends.
    cc: str = "cubic"
    #: Hard cap on simulated seconds per load (hung-load guard).
    max_duration: float = 60.0
    #: How many requests are pipelined back-to-back in one round.
    pipeline_depth: int = 6

    def sample_path(self, rng: np.random.Generator) -> NetworkPath:
        """Draw this visit's path (rate/RTT jittered)."""
        rate = self.rate_mbps * (
            1.0 + float(rng.uniform(-self.rate_jitter, self.rate_jitter))
        )
        rtt = self.rtt_ms * (
            1.0 + float(rng.uniform(-self.rtt_jitter, self.rtt_jitter))
        )
        return NetworkPath(
            rate=mbps(max(rate, 1.0)),
            rtt=msec(max(rtt, 1.0)),
            buffer_bdp=self.buffer_bdp,
            loss_rate=self.loss_rate,
        )


class _PageLoadSession:
    """Drives the request/response rounds of one visit."""

    def __init__(
        self,
        sim: Simulator,
        flow: TcpFlow,
        page: PageSample,
        pipeline_depth: int,
        on_complete: Callable[[], None],
    ) -> None:
        self._sim = sim
        self._flow = flow
        self._page = page
        self._depth = max(1, pipeline_depth)
        self._on_complete = on_complete
        self._round = -1
        # Server request-processing queue: (request_bytes, response
        # bytes, think seconds), FIFO per arrival order.
        self._server_queue: List[tuple] = []
        self._server_received = 0
        self._server_consumed = 0
        # Client download bookkeeping for the active round.
        self._round_remaining = 0
        self._client_received = 0
        self._client_consumed = 0
        self.completed = False

        flow.server.on_data(self._server_data)
        flow.client.on_data(self._client_data)
        flow.client.on_established = self._start
        flow.connect()

    # -- client side ------------------------------------------------------------

    def _start(self) -> None:
        self._next_round()

    def _next_round(self) -> None:
        self._round += 1
        if self._round >= len(self._page.rounds):
            self.completed = True
            self._on_complete()
            return
        parse = self._page.parse_times[self._round]
        self._sim.schedule(parse, self._issue_round)

    def _issue_round(self) -> None:
        r = self._round
        responses = self._page.rounds[r]
        requests = self._page.request_sizes[r]
        thinks = self._page.think_times[r]
        self._round_remaining = len(responses)
        # Pipeline requests in batches of `depth`; the server queue
        # preserves ordering, so batching only affects upstream timing.
        for i, (req, resp, think) in enumerate(zip(requests, responses, thinks)):
            delay = (i // self._depth) * 0.001
            self._server_queue.append((req, resp, think))
            self._sim.schedule(delay, self._make_request_sender(req))

    def _make_request_sender(self, req: int) -> Callable[[], None]:
        def send() -> None:
            self._flow.client.write(req)

        return send

    def _client_data(self, nbytes: int) -> None:
        self._client_received += nbytes
        # Responses complete in FIFO order; compare against the running
        # total of expected response bytes for this round.
        while self._round_remaining > 0:
            responses = self._page.rounds[self._round]
            done = len(responses) - self._round_remaining
            threshold = self._client_consumed + responses[done]
            if self._client_received < threshold:
                break
            self._client_consumed = threshold
            self._round_remaining -= 1
        if self._round_remaining == 0 and not self.completed:
            self._next_round()

    # -- server side -------------------------------------------------------------

    def _server_data(self, nbytes: int) -> None:
        self._server_received += nbytes
        while self._server_queue:
            req, resp, think = self._server_queue[0]
            if self._server_received - self._server_consumed < req:
                break
            self._server_consumed += req
            self._server_queue.pop(0)
            self._sim.schedule(think, self._make_response_sender(resp))

    def _make_response_sender(self, resp: int) -> Callable[[], None]:
        def send() -> None:
            self._flow.server.write(resp)

        return send


def load_page(
    profile: SiteProfile,
    config: Optional[PageLoadConfig] = None,
    rng: Optional[np.random.Generator] = None,
    server_controller: Optional[StobController] = None,
    client_controller: Optional[StobController] = None,
) -> Trace:
    """Simulate one visit and return the observed trace.

    ``server_controller``/``client_controller`` optionally install Stob
    on either endpoint, producing *stack-enforced* defended traces (as
    opposed to the paper's post-hoc trace emulation).
    """
    config = config or PageLoadConfig()
    rng = rng or np.random.default_rng(0)
    sim = Simulator()
    path = config.sample_path(rng)
    link_rng = np.random.default_rng(int(rng.integers(0, 2**63)))
    flow = make_flow(
        sim,
        path,
        client_config=TcpConfig(cc=config.cc),
        server_config=TcpConfig(cc=config.cc),
        rng=link_rng,
    )
    if server_controller is not None:
        flow.server.segment_controller = server_controller
    if client_controller is not None:
        flow.client.segment_controller = client_controller

    observer = TraceObserver()
    flow.client_host.nic.add_tap(observer.tap_outgoing)
    flow.server_host.nic.add_tap(observer.tap_incoming)

    page = profile.sample_page(rng)
    done = {"flag": False}

    def finish() -> None:
        done["flag"] = True

    _PageLoadSession(sim, flow, page, config.pipeline_depth, finish)
    # Run until the page completes (plus trailing ACKs) or the guard.
    step = 0.1
    while not done["flag"] and sim.now < config.max_duration:
        sim.run(until=min(sim.now + step, config.max_duration))
    if done["flag"]:
        # Drain trailing ACKs/retransmissions.
        sim.run(until=sim.now + 4 * path.rtt)
    return observer.trace()


def collect_dataset(
    n_samples: int = 100,
    sites: Optional[List[str]] = None,
    config: Optional[PageLoadConfig] = None,
    seed: int = 0,
    progress: Optional[Callable[[str, int], None]] = None,
) -> Dataset:
    """Collect ``n_samples`` visits of each site (the paper's 100)."""
    config = config or PageLoadConfig()
    dataset = Dataset()
    labels = sites or sorted(SITE_CATALOG)
    root = np.random.default_rng(seed)
    for label in labels:
        profile = SITE_CATALOG[label]
        for index in range(n_samples):
            rng = np.random.default_rng(root.integers(0, 2**63))
            trace = load_page(profile, config, rng)
            dataset.add(label, trace)
            if progress is not None:
                progress(label, index)
    return dataset
