"""Page loads over the simulated stack.

:func:`load_page` plays one visit of a site through the full host-stack
model: TCP handshake, pipelined HTTP/1.1-style request/response rounds
with server think times and client parse times, captured by a
:class:`~repro.capture.trace.TraceObserver` on the client's access
link — the same vantage point as the paper's tcpdump capture.

A load that does not finish inside ``config.max_duration`` simulated
seconds is a *stall*, not a shorter page: :func:`load_page_result`
reports ``completed=False`` with diagnostics, and strict callers (the
resilient experiment runner) get a structured :class:`PageLoadStalled`
instead of a silently truncated trace.

:func:`collect_dataset` repeats this for every site and sample count,
with per-visit path jitter (RTT and bandwidth vary between visits the
way consecutive real fetches do), producing the raw dataset the
Table-2 pipeline sanitises.  Stalled visits are dropped and counted —
partial traces never enter a dataset.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace, TraceObserver
from repro.errors import TrialError
from repro.obs import runtime as _obs_runtime
from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultSpec
from repro.simnet.path import NetworkPath
from repro.stack.host import TcpFlow, make_flow
from repro.stack.tcp import TcpConfig
from repro.stob.controller import StobController
from repro.units import mbps, msec
from repro.web.objects import PageSample, SiteProfile
from repro.web.sites import SITE_CATALOG


@dataclass(frozen=True)
class PageLoadConfig:
    """Parameters of one page-load simulation.

    Frozen: derive variants with :func:`dataclasses.replace` (e.g. the
    adverse-network experiment swapping in a ``fault_spec``).  The
    canonical :meth:`to_dict` form feeds both CLI output and
    :mod:`repro.cache` capture-key derivation.
    """

    #: Access-path parameters (means; jittered per visit).
    rate_mbps: float = 50.0
    rtt_ms: float = 30.0
    rate_jitter: float = 0.15
    rtt_jitter: float = 0.20
    buffer_bdp: float = 1.5
    loss_rate: float = 0.0
    #: TCP config applied to both ends.
    cc: str = "cubic"
    #: Hard cap on simulated seconds per load (stall guard).
    max_duration: float = 60.0
    #: How many requests are pipelined back-to-back in one round.
    pipeline_depth: int = 6
    #: Optional fault processes injected on both path directions.
    fault_spec: Optional[FaultSpec] = None

    def to_dict(self) -> dict:
        """Canonical JSON-safe dict (stable key order)."""
        from repro.cache.canonical import jsonable
        from dataclasses import fields

        return {f.name: jsonable(getattr(self, f.name)) for f in fields(self)}

    def sample_path(self, rng: np.random.Generator) -> NetworkPath:
        """Draw this visit's path (rate/RTT jittered)."""
        rate = self.rate_mbps * (
            1.0 + float(rng.uniform(-self.rate_jitter, self.rate_jitter))
        )
        rtt = self.rtt_ms * (
            1.0 + float(rng.uniform(-self.rtt_jitter, self.rtt_jitter))
        )
        return NetworkPath(
            rate=mbps(max(rate, 1.0)),
            rtt=msec(max(rtt, 1.0)),
            buffer_bdp=self.buffer_bdp,
            loss_rate=self.loss_rate,
            fault_spec=self.fault_spec,
        )


@dataclass
class PageLoadResult:
    """Outcome of one simulated visit.

    ``completed`` distinguishes a real page load from one truncated at
    the ``max_duration`` guard; the remaining fields are the stall
    diagnostics an operator (or the resilient runner's failure log)
    needs to tell *where* a load got stuck.
    """

    trace: Trace
    completed: bool
    sim_time: float
    rounds_completed: int
    total_rounds: int
    bytes_received: int
    events_processed: int

    def stall_summary(self) -> str:
        """One-line diagnostic used in failure logs."""
        return (
            f"round {self.rounds_completed}/{self.total_rounds}, "
            f"{self.bytes_received} B received, "
            f"sim_time={self.sim_time:.1f}s, "
            f"events={self.events_processed}"
        )


class PageLoadStalled(TrialError):
    """A page load hit its deadline without completing.

    Carries the partial :class:`PageLoadResult` so callers can log
    structured diagnostics without ever treating the truncated trace
    as a valid sample.  A :class:`~repro.errors.TrialError`: stalls
    are trial-intrinsic and worth a reseeded retry (still a
    ``RuntimeError`` subclass through that base, for old callers).
    """

    def __init__(self, site: str, result: PageLoadResult) -> None:
        super().__init__(f"page load of {site!r} stalled: {result.stall_summary()}")
        self.site = site
        self.result = result


class _PageLoadSession:
    """Drives the request/response rounds of one visit."""

    def __init__(
        self,
        sim: Simulator,
        flow: TcpFlow,
        page: PageSample,
        pipeline_depth: int,
        on_complete: Callable[[], None],
    ) -> None:
        self._sim = sim
        self._flow = flow
        self._page = page
        self._depth = max(1, pipeline_depth)
        self._on_complete = on_complete
        self._round = -1
        # Server request-processing queue: (request_bytes, response
        # bytes, think seconds), FIFO per arrival order.
        self._server_queue: List[tuple] = []
        self._server_received = 0
        self._server_consumed = 0
        # Client download bookkeeping for the active round.
        self._round_remaining = 0
        self._client_received = 0
        self._client_consumed = 0
        self.completed = False

        flow.server.on_data(self._server_data)
        flow.client.on_data(self._client_data)
        flow.client.on_established = self._start
        flow.connect()

    @property
    def rounds_completed(self) -> int:
        """Fully downloaded request/response rounds."""
        return max(0, self._round if not self.completed else len(self._page.rounds))

    @property
    def bytes_received(self) -> int:
        """Application bytes the client has received so far."""
        return self._client_received

    @property
    def total_rounds(self) -> int:
        return len(self._page.rounds)

    # -- client side ------------------------------------------------------------

    def _start(self) -> None:
        self._next_round()

    def _next_round(self) -> None:
        self._round += 1
        if self._round >= len(self._page.rounds):
            self.completed = True
            self._on_complete()
            return
        parse = self._page.parse_times[self._round]
        self._sim.schedule(parse, self._issue_round)

    def _issue_round(self) -> None:
        r = self._round
        responses = self._page.rounds[r]
        requests = self._page.request_sizes[r]
        thinks = self._page.think_times[r]
        self._round_remaining = len(responses)
        # Pipeline requests in batches of `depth`; the server queue
        # preserves ordering, so batching only affects upstream timing.
        for i, (req, resp, think) in enumerate(zip(requests, responses, thinks)):
            delay = (i // self._depth) * 0.001
            self._server_queue.append((req, resp, think))
            self._sim.schedule(delay, self._make_request_sender(req))

    def _make_request_sender(self, req: int) -> Callable[[], None]:
        def send() -> None:
            self._flow.client.write(req)

        return send

    def _client_data(self, nbytes: int) -> None:
        self._client_received += nbytes
        # Responses complete in FIFO order; compare against the running
        # total of expected response bytes for this round.
        while self._round_remaining > 0:
            responses = self._page.rounds[self._round]
            done = len(responses) - self._round_remaining
            threshold = self._client_consumed + responses[done]
            if self._client_received < threshold:
                break
            self._client_consumed = threshold
            self._round_remaining -= 1
        if self._round_remaining == 0 and not self.completed:
            self._next_round()

    # -- server side -------------------------------------------------------------

    def _server_data(self, nbytes: int) -> None:
        self._server_received += nbytes
        while self._server_queue:
            req, resp, think = self._server_queue[0]
            if self._server_received - self._server_consumed < req:
                break
            self._server_consumed += req
            self._server_queue.pop(0)
            self._sim.schedule(think, self._make_response_sender(resp))

    def _make_response_sender(self, resp: int) -> Callable[[], None]:
        def send() -> None:
            self._flow.server.write(resp)

        return send


def load_page_result(
    profile: SiteProfile,
    config: Optional[PageLoadConfig] = None,
    rng: Optional[np.random.Generator] = None,
    server_controller: Optional[StobController] = None,
    client_controller: Optional[StobController] = None,
    watchdog: Optional[Callable[[], None]] = None,
    on_flow: Optional[Callable[[TcpFlow], None]] = None,
) -> PageLoadResult:
    """Simulate one visit and return the full :class:`PageLoadResult`.

    ``server_controller``/``client_controller`` optionally install Stob
    on either endpoint, producing *stack-enforced* defended traces (as
    opposed to the paper's post-hoc trace emulation).

    ``watchdog`` is called between simulation slices; it may raise
    (e.g. a wall-clock deadline in the resilient runner) to abort a
    load that is burning real time.

    ``on_flow`` receives the built :class:`~repro.stack.host.TcpFlow`
    before the simulation starts; callers that must audit post-run
    stack state — the fuzzer's invariant oracle checking link
    conservation, TCP sequence sanity and pacer gaps — keep the
    reference and inspect it after this function returns.
    """
    config = config or PageLoadConfig()
    rng = rng or np.random.default_rng(0)
    sim = Simulator()
    path = config.sample_path(rng)
    link_rng = np.random.default_rng(int(rng.integers(0, 2**63)))
    flow = make_flow(
        sim,
        path,
        client_config=TcpConfig(cc=config.cc),
        server_config=TcpConfig(cc=config.cc),
        rng=link_rng,
    )
    if server_controller is not None:
        flow.server.segment_controller = server_controller
    if client_controller is not None:
        flow.client.segment_controller = client_controller

    observer = TraceObserver()
    flow.client_host.nic.add_tap(observer.tap_outgoing)
    flow.server_host.nic.add_tap(observer.tap_incoming)
    if on_flow is not None:
        on_flow(flow)

    page = profile.sample_page(rng)
    done = {"flag": False}

    def finish() -> None:
        done["flag"] = True

    session = _PageLoadSession(sim, flow, page, config.pipeline_depth, finish)
    # Run until the page completes (plus trailing ACKs) or the guard.
    step = 0.1
    while not done["flag"] and sim.now < config.max_duration:
        if watchdog is not None:
            watchdog()
        sim.run(until=min(sim.now + step, config.max_duration))
    if done["flag"]:
        # Drain trailing ACKs/retransmissions.
        sim.run(until=sim.now + 4 * path.rtt)
    result = PageLoadResult(
        trace=observer.trace(),
        completed=done["flag"],
        sim_time=sim.now,
        rounds_completed=session.rounds_completed,
        total_rounds=session.total_rounds,
        bytes_received=session.bytes_received,
        events_processed=sim.processed_events,
    )
    obs = _obs_runtime.session()
    if obs is not None:
        registry = obs.registry
        registry.counter("pageload.loads").add(1)
        registry.counter("pageload.bytes_received").add(result.bytes_received)
        if not result.completed:
            registry.counter("pageload.stalls").add(1)
        obs.emit(
            "pageload.done" if result.completed else "pageload.stall",
            "pageload",
            sim_time=round(result.sim_time, 6),
            events=result.events_processed,
            bytes=result.bytes_received,
            rounds=result.rounds_completed,
        )
    return result


def load_page(
    profile: SiteProfile,
    config: Optional[PageLoadConfig] = None,
    rng: Optional[np.random.Generator] = None,
    server_controller: Optional[StobController] = None,
    client_controller: Optional[StobController] = None,
) -> Trace:
    """Simulate one visit and return the observed trace.

    Thin compatibility wrapper over :func:`load_page_result`; callers
    that must distinguish completed from deadline-truncated loads use
    the result API (or :func:`load_page_strict`).
    """
    return load_page_result(
        profile, config, rng, server_controller, client_controller
    ).trace


def load_page_strict(
    profile: SiteProfile,
    site: str,
    config: Optional[PageLoadConfig] = None,
    rng: Optional[np.random.Generator] = None,
    server_controller: Optional[StobController] = None,
    client_controller: Optional[StobController] = None,
    watchdog: Optional[Callable[[], None]] = None,
) -> Trace:
    """Like :func:`load_page` but raises :class:`PageLoadStalled`
    instead of returning a deadline-truncated trace."""
    result = load_page_result(
        profile, config, rng, server_controller, client_controller, watchdog
    )
    if not result.completed:
        raise PageLoadStalled(site, result)
    return result.trace


def visit_seed_rng(seed: int, label: str, sample: int) -> np.random.Generator:
    """The canonical per-visit generator: derived from the visit's
    *identity* ``(seed, label, sample)``, never from how many visits
    ran before it.

    An earlier version drew visit seeds from one sequential stream, so
    adding a site to the list (or changing ``n_samples``) reshuffled
    every subsequent visit's randomness.  Deriving from the coordinate
    tuple makes each visit's trace a pure function of (seed, label,
    sample): subsetting sites or extending sample counts leaves all
    other visits bit-identical, matching the runner's position-derived
    :func:`repro.experiments.runner.trial_seed_rng` — and it is what
    makes parallel fan-out of :func:`collect_dataset` safe.  The label
    enters through its CRC-32 so the derivation is independent of the
    site catalogue's size or ordering.

    Dataset-reproducibility implication: datasets collected with a
    pre-fix sequential-stream build differ from current ones for the
    same seed; re-collect rather than mixing the two generations.
    """
    return np.random.default_rng(
        [seed, zlib.crc32(label.encode("utf-8")), sample]
    )


def _collect_visit_chunk(
    config: PageLoadConfig, seed: int, visits: List[Tuple[str, int]]
) -> List[Tuple[str, int, PageLoadResult]]:
    """Worker task: run a chunk of ``(label, sample)`` visits.

    Module-level (picklable) so :func:`collect_dataset` can fan chunks
    out over a process pool; each visit reseeds from its coordinates,
    so chunking never affects results.
    """
    out = []
    for label, sample in visits:
        rng = visit_seed_rng(seed, label, sample)
        out.append((label, sample, load_page_result(SITE_CATALOG[label], config, rng)))
    return out


def collect_dataset(
    n_samples: int = 100,
    sites: Optional[List[str]] = None,
    config: Optional[PageLoadConfig] = None,
    seed: int = 0,
    progress: Optional[Callable[[str, int], None]] = None,
    stall_log: Optional[List[PageLoadStalled]] = None,
    workers: int = 1,
    cache=None,
    supervisor=None,
) -> Dataset:
    """Collect ``n_samples`` visits of each site (the paper's 100).

    Stalled loads are dropped — a deadline-truncated trace is not a
    shorter page load and would poison the dataset.  Each stall is
    appended to ``stall_log`` (when given) so callers can report how
    many visits were discarded; the resilient runner in
    :mod:`repro.experiments.runner` adds retries and checkpointing on
    top of this primitive.

    ``workers > 1`` fans the (site x sample) grid out over a process
    pool.  Every visit's randomness comes from :func:`visit_seed_rng`
    (its coordinates, not a shared stream), and results are merged in
    grid order, so the dataset is bit-identical for any worker count;
    ``workers=1`` (default) is the in-process fast path.  ``workers=0``
    uses one process per core.

    ``cache`` (a :class:`repro.cache.ArtifactStore`) memoises the
    collected dataset under its capture key — (pageload config, sites,
    n_samples, seed); ``workers`` stays out of the key because output
    is worker-count invariant.  On a warm hit no visit is simulated, so
    ``progress``/``stall_log`` see nothing.

    The parallel fan-out runs under a
    :class:`~repro.supervise.SupervisedPool` (``supervisor`` overrides
    its :class:`~repro.supervise.SupervisorConfig`): worker death
    rebuilds the pool and replays the lost chunks to identical bytes,
    and a visit that repeatedly kills workers is quarantined — dropped
    from the dataset with a loud log line — instead of sinking the run.
    """
    import functools

    from repro.parallel import chunked, default_chunk_size, resolve_workers

    config = config or PageLoadConfig()
    labels = sites or sorted(SITE_CATALOG)
    if cache is not None:
        from repro.cache import capture_key, cached_dataset

        return cached_dataset(
            cache,
            capture_key(config, labels, n_samples, seed),
            lambda: collect_dataset(
                n_samples=n_samples,
                sites=labels,
                config=config,
                seed=seed,
                progress=progress,
                stall_log=stall_log,
                workers=workers,
                supervisor=supervisor,
            ),
        )
    dataset = Dataset()
    grid = [(label, sample) for label in labels for sample in range(n_samples)]
    workers = resolve_workers(workers)
    if workers <= 1 or len(grid) <= 1:
        outcomes = _collect_visit_chunk(config, seed, grid)
    else:
        from repro.supervise import SupervisedPool

        # Worker metrics (when observability is on) come home as
        # per-chunk snapshots and merge into this process's registry;
        # a chunk lost to a crash never ships its snapshot, so the
        # merged totals stay equal to a serial run's.
        chunk_fn = _collect_visit_chunk
        if _obs_runtime.session() is not None:
            chunk_fn = _obs_runtime.WorkerTask(_collect_visit_chunk)
        chunks = chunked(grid, default_chunk_size(len(grid), workers))
        merged = {}

        def merge(payload) -> None:
            for label, sample, result in _obs_runtime.absorb(payload):
                merged[(label, sample)] = result

        pool = SupervisedPool(
            workers,
            functools.partial(chunk_fn, config, seed),
            merge,
            config=supervisor,
        )
        report = pool.run(chunks)
        # Quarantined visits are simply absent from `merged`; every
        # other coordinate must be present.
        outcomes = [
            (label, s, merged[(label, s)])
            for label, s in grid
            if (label, s) in merged
        ]
        dropped = sorted(q.item for q in report.quarantined)
        missing = sorted(c for c in grid if c not in merged)
        if missing != dropped:
            raise RuntimeError(
                f"supervised collection lost {missing} but only "
                f"quarantined {dropped}"
            )
    for label, index, result in outcomes:
        if not result.completed:
            if stall_log is not None:
                stall_log.append(PageLoadStalled(label, result))
            continue
        dataset.add(label, result.trace)
        if progress is not None:
            progress(label, index)
    return dataset
