"""The nine-site catalogue (the paper's §3 site list).

The paper captured bing.com, github.com, instagram.com, netflix.com,
office.com, spotify.com, whatsapp.net, wikipedia.org and youtube.com.
We keep the same labels and give each a hand-tuned
:class:`~repro.web.objects.SiteProfile` whose page composition roughly
matches the public character of the site (text-heavy wiki vs
image-heavy social feed vs script-heavy app shell).  What the
experiments need is not that these match the real sites byte-for-byte
but that the nine classes are mutually distinctive with realistic
intra-class variance — the property the k-FP attack exploits.

``log_mean`` values are natural logs of bytes: log(30 KB) ≈ 10.3,
log(100 KB) ≈ 11.5, log(400 KB) ≈ 12.9.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.web.objects import ObjectClass, SiteProfile


def _log(kb: float) -> float:
    """Natural log of ``kb`` kilobytes in bytes."""
    return math.log(kb * 1024)


SITE_CATALOG: Dict[str, SiteProfile] = {
    "bing.com": SiteProfile(
        name="bing.com",
        cert_size=(4180, 4620),
        html_log_mean=_log(55), html_log_sigma=0.25,
        object_classes=[
            ObjectClass("images", 10, 0.18, _log(18), 0.6),
            ObjectClass("scripts", 7, 0.12, _log(55), 0.4),
            ObjectClass("beacons", 6, 0.24, _log(1.2), 0.4),
        ],
        dependency_rounds=2,
        think_time=(0.004, 0.018),
    ),
    "github.com": SiteProfile(
        name="github.com",
        cert_size=(2780, 3220),
        html_log_mean=_log(170), html_log_sigma=0.20,
        object_classes=[
            ObjectClass("css", 3, 0.12, _log(90), 0.3),
            ObjectClass("scripts", 9, 0.12, _log(120), 0.5),
            ObjectClass("avatars", 5, 0.30, _log(6), 0.7),
        ],
        dependency_rounds=2,
        think_time=(0.008, 0.030),
    ),
    "instagram.com": SiteProfile(
        name="instagram.com",
        cert_size=(3480, 3920),
        html_log_mean=_log(40), html_log_sigma=0.3,
        object_classes=[
            ObjectClass("photos", 16, 0.24, _log(120), 0.7),
            ObjectClass("scripts", 12, 0.12, _log(200), 0.4),
            ObjectClass("api", 8, 0.24, _log(4), 0.6),
        ],
        dependency_rounds=3,
        think_time=(0.006, 0.025),
    ),
    "netflix.com": SiteProfile(
        name="netflix.com",
        cert_size=(4880, 5320),
        html_log_mean=_log(90), html_log_sigma=0.25,
        object_classes=[
            ObjectClass("artwork", 22, 0.21, _log(45), 0.6),
            ObjectClass("scripts", 8, 0.12, _log(300), 0.35),
            ObjectClass("api", 5, 0.24, _log(8), 0.5),
        ],
        dependency_rounds=3,
        think_time=(0.010, 0.035),
    ),
    "office.com": SiteProfile(
        name="office.com",
        cert_size=(4530, 4970),
        html_log_mean=_log(60), html_log_sigma=0.25,
        object_classes=[
            ObjectClass("scripts", 16, 0.15, _log(150), 0.5),
            ObjectClass("icons", 9, 0.18, _log(3), 0.5),
            ObjectClass("telemetry", 7, 0.30, _log(1.5), 0.4),
        ],
        dependency_rounds=3,
        think_time=(0.012, 0.040),
    ),
    "spotify.com": SiteProfile(
        name="spotify.com",
        cert_size=(3130, 3570),
        html_log_mean=_log(120), html_log_sigma=0.25,
        object_classes=[
            ObjectClass("covers", 12, 0.21, _log(28), 0.5),
            ObjectClass("scripts", 10, 0.12, _log(220), 0.4),
            ObjectClass("fonts", 3, 0.18, _log(70), 0.3),
        ],
        dependency_rounds=2,
        think_time=(0.008, 0.028),
    ),
    "whatsapp.net": SiteProfile(
        name="whatsapp.net",
        cert_size=(2430, 2870),
        html_log_mean=_log(35), html_log_sigma=0.2,
        object_classes=[
            ObjectClass("scripts", 5, 0.12, _log(90), 0.35),
            ObjectClass("images", 4, 0.18, _log(30), 0.5),
            ObjectClass("api", 3, 0.30, _log(2), 0.5),
        ],
        dependency_rounds=1,
        think_time=(0.005, 0.020),
    ),
    "wikipedia.org": SiteProfile(
        name="wikipedia.org",
        cert_size=(2080, 2520),
        html_log_mean=_log(75), html_log_sigma=0.35,
        object_classes=[
            ObjectClass("images", 6, 0.30, _log(35), 0.9),
            ObjectClass("css", 2, 0.12, _log(40), 0.3),
            ObjectClass("scripts", 4, 0.12, _log(60), 0.4),
        ],
        dependency_rounds=1,
        think_time=(0.004, 0.015),
    ),
    "youtube.com": SiteProfile(
        name="youtube.com",
        cert_size=(3830, 4270),
        html_log_mean=_log(480), html_log_sigma=0.25,
        object_classes=[
            ObjectClass("thumbnails", 28, 0.21, _log(14), 0.6),
            ObjectClass("scripts", 11, 0.12, _log(420), 0.4),
            ObjectClass("api", 7, 0.24, _log(10), 0.6),
        ],
        dependency_rounds=3,
        think_time=(0.010, 0.030),
    ),
}


def site_names() -> List[str]:
    """The nine site labels, sorted."""
    return sorted(SITE_CATALOG)


def random_profile(name: str, rng) -> SiteProfile:
    """A randomly parameterised site, for open-world background sets.

    Draws page structure from wide distributions covering the space the
    nine monitored profiles live in, so unmonitored sites are *similar
    in kind* but individually distinct.
    """
    n_classes = int(rng.integers(2, 4))
    classes = [
        ObjectClass(
            name=f"objects{k}",
            count_mean=float(rng.integers(3, 25)),
            count_jitter=float(rng.uniform(0.1, 0.35)),
            log_mean=float(
                rng.uniform(math.log(2 * 1024), math.log(400 * 1024))
            ),
            log_sigma=float(rng.uniform(0.3, 0.8)),
        )
        for k in range(n_classes)
    ]
    cert_low = int(rng.integers(2000, 5200))
    return SiteProfile(
        name=name,
        html_log_mean=float(
            rng.uniform(math.log(20 * 1024), math.log(500 * 1024))
        ),
        html_log_sigma=float(rng.uniform(0.2, 0.35)),
        object_classes=classes,
        dependency_rounds=int(rng.integers(1, 4)),
        think_time=(0.004, float(rng.uniform(0.015, 0.04))),
        cert_size=(cert_low, cert_low + int(rng.integers(300, 700))),
    )
