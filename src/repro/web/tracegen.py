"""Fast statistical trace generator (no stack simulation).

For unit tests and quick experiments a full stack simulation per trace
is overkill.  :class:`StatisticalTraceGenerator` converts a sampled
:class:`~repro.web.objects.PageSample` directly into a plausible packet
trace: requests become single outgoing packets, responses become
MSS-sized incoming bursts paced at the configured rate, rounds are
separated by RTT + think/parse gaps.

Traces from this generator share the coarse structure of the
stack-simulated ones (per-site distinctiveness, bursts, volume), but
lack emergent transport behaviour (slow-start ramp, ACK traffic, TSO
micro-bursts).  The real experiment pipeline uses
:func:`repro.web.pageload.load_page`; this generator is the cheap
stand-in where transport fidelity does not matter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import IN, OUT, Trace
from repro.web.objects import SiteProfile
from repro.web.sites import SITE_CATALOG


class StatisticalTraceGenerator:
    """Sample traces straight from site profiles."""

    def __init__(
        self,
        rate_bytes_per_sec: float = 6.25e6,  # 50 Mb/s
        rtt: float = 0.03,
        mss: int = 1448,
        header: int = 52,
        ack_every: int = 2,
        seed: int = 0,
    ) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError("rate must be positive")
        if rtt < 0:
            raise ValueError("rtt must be >= 0")
        self.rate = rate_bytes_per_sec
        self.rtt = rtt
        self.mss = mss
        self.header = header
        self.ack_every = max(1, ack_every)
        self._root = np.random.default_rng(seed)

    def generate(
        self, profile: SiteProfile, rng: Optional[np.random.Generator] = None
    ) -> Trace:
        """One synthetic visit of ``profile``."""
        rng = rng or np.random.default_rng(self._root.integers(0, 2**63))
        page = profile.sample_page(rng)
        records: List[Tuple[float, int, int]] = []
        t = 0.0
        wire_mtu = self.mss + self.header
        for round_index, responses in enumerate(page.rounds):
            t += page.parse_times[round_index]
            requests = page.request_sizes[round_index]
            thinks = page.think_times[round_index]
            # Requests go out back-to-back.
            for req in requests:
                records.append((t, OUT, min(req + self.header, wire_mtu)))
                t += 0.0002
            # From the client's vantage point the first response byte
            # appears one full RTT (plus server think) after the request.
            t += self.rtt + (thinks[0] if thinks else 0.0)
            data_clock = t
            ack_counter = 0
            for resp, think in zip(responses, thinks):
                remaining = resp
                data_clock += think * 0.3  # overlapping processing
                while remaining > 0:
                    payload = min(remaining, self.mss)
                    wire = payload + self.header
                    data_clock += wire / self.rate
                    jitter = float(rng.exponential(0.0002))
                    records.append((data_clock + jitter, IN, wire))
                    remaining -= payload
                    ack_counter += 1
                    if ack_counter % self.ack_every == 0:
                        # Client-side vantage: the ACK leaves the client
                        # right after the data arrives.
                        records.append(
                            (data_clock + 50e-6, OUT, self.header)
                        )
            t = data_clock
        return Trace.from_records(records).shifted_to_zero()

    def generate_dataset(
        self,
        n_samples: int,
        sites: Optional[List[str]] = None,
        seed: int = 0,
    ) -> Dataset:
        """A full closed-world dataset."""
        labels = sites or sorted(SITE_CATALOG)
        dataset = Dataset()
        root = np.random.default_rng(seed)
        for label in labels:
            profile = SITE_CATALOG[label]
            for _ in range(n_samples):
                rng = np.random.default_rng(root.integers(0, 2**63))
                dataset.add(label, self.generate(profile, rng))
        return dataset
