"""Web page structure: site profiles and sampled page instances.

A :class:`SiteProfile` is a compact statistical description of a
website's page composition — the knobs that make its packet sequence
distinctive: HTML size, object count/size mixture, dependency depth,
server think times.  :meth:`SiteProfile.sample_page` draws one concrete
:class:`PageSample` (what one visit downloads), with natural visit-to-
visit variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class ObjectClass:
    """One kind of embedded object (images, scripts, ...).

    Sizes are log-normal: ``exp(N(log_mean, log_sigma))`` bytes,
    clamped to ``[min_size, max_size]``.
    """

    name: str
    count_mean: float
    count_jitter: float  # multiplicative 1 +/- jitter
    log_mean: float  # natural log of typical byte size
    log_sigma: float
    min_size: int = 200
    max_size: int = 8 * 1024 * 1024

    def sample_count(self, rng: np.random.Generator) -> int:
        factor = 1.0 + float(rng.uniform(-self.count_jitter, self.count_jitter))
        return max(0, int(round(self.count_mean * factor)))

    def sample_size(self, rng: np.random.Generator) -> int:
        size = int(np.exp(rng.normal(self.log_mean, self.log_sigma)))
        return int(np.clip(size, self.min_size, self.max_size))


@dataclass
class SiteProfile:
    """Statistical fingerprint of one website."""

    name: str
    #: Main document size: log-normal parameters.
    html_log_mean: float
    html_log_sigma: float
    #: Embedded object mixture.
    object_classes: List[ObjectClass]
    #: Dependency rounds: objects discovered after parsing earlier
    #: responses (1 = everything known after the HTML).
    dependency_rounds: int = 2
    #: Server think time per request: uniform range in seconds.
    think_time: Tuple[float, float] = (0.005, 0.030)
    #: Client parse delay between rounds: uniform range in seconds.
    parse_time: Tuple[float, float] = (0.010, 0.040)
    #: Request size range (URL + headers + cookies).
    request_size: Tuple[int, int] = (350, 800)
    #: TLS certificate-flight size range (ServerHello + chain).  This
    #: is the strongly site-identifying early exchange real captures
    #: contain: chains differ per operator and vary little per visit.
    cert_size: Tuple[int, int] = (3000, 3400)
    #: ClientHello size range.
    client_hello_size: Tuple[int, int] = (380, 560)

    def sample_page(self, rng: np.random.Generator) -> "PageSample":
        """One visit's concrete page composition."""
        html = int(
            np.clip(np.exp(rng.normal(self.html_log_mean, self.html_log_sigma)),
                    2000, 4 * 1024 * 1024)
        )
        objects: List[int] = []
        for cls in self.object_classes:
            count = cls.sample_count(rng)
            objects.extend(cls.sample_size(rng) for _ in range(count))
        # Shuffle so rounds contain a mixture of object kinds.
        rng.shuffle(objects)
        # Round 0 is the TLS handshake: ClientHello up, certificate
        # flight down.  Round 1 is the main document.
        rounds: List[List[int]] = [
            [int(rng.integers(*self.cert_size))],
            [html],
        ]
        if objects:
            n_rounds = max(1, self.dependency_rounds)
            split = np.array_split(np.asarray(objects), n_rounds)
            rounds.extend([chunk.tolist() for chunk in split if len(chunk)])
        requests = [
            [int(rng.integers(*self.client_hello_size))]
        ] + [
            [int(rng.integers(*self.request_size)) for _ in round_objects]
            for round_objects in rounds[1:]
        ]
        # The handshake is answered from memory (sub-millisecond);
        # content rounds take the profile's think time.
        thinks = [[float(rng.uniform(0.0005, 0.002))]] + [
            [float(rng.uniform(*self.think_time)) for _ in round_objects]
            for round_objects in rounds[1:]
        ]
        parses = [0.0] + [
            float(rng.uniform(*self.parse_time)) for _ in rounds[1:]
        ]
        return PageSample(
            site=self.name,
            rounds=rounds,
            request_sizes=requests,
            think_times=thinks,
            parse_times=parses,
        )


@dataclass
class PageSample:
    """One concrete page visit: response/request sizes per round."""

    site: str
    #: rounds[r] = list of response body sizes (bytes).
    rounds: List[List[int]]
    #: request_sizes[r][i] = request bytes for object i of round r.
    request_sizes: List[List[int]]
    #: think_times[r][i] = server think time for that object.
    think_times: List[List[float]]
    #: parse_times[r] = client delay before issuing round r.
    parse_times: List[float]

    @property
    def total_download_bytes(self) -> int:
        return sum(sum(r) for r in self.rounds)

    @property
    def total_objects(self) -> int:
        return sum(len(r) for r in self.rounds)
