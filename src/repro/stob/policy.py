"""Obfuscation policies.

§4.1: "packet departure time and size applied to data units can be
represented as relatively compact distribution functions like
histograms ... maintained in the shared memory between the application
and stack."  A policy is therefore a pair of histogram-backed
distributions — one over packet sizes, one over extra departure gaps —
plus knobs for TSO reduction, compactly serialisable and shareable
between flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


class _Histogram:
    """A discrete distribution over bin values with given weights."""

    def __init__(self, values: Sequence[float], weights: Sequence[float]) -> None:
        values = np.asarray(values, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("histogram needs at least one bin")
        if len(values) != len(weights):
            raise ValueError(
                f"{len(values)} values but {len(weights)} weights"
            )
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        self.values = values
        self.probabilities = weights / weights.sum()

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one bin value."""
        return float(rng.choice(self.values, p=self.probabilities))

    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    def to_dict(self) -> Dict[str, list]:
        """Compact serialisable form (the shared-memory representation)."""
        return {
            "values": self.values.tolist(),
            "weights": self.probabilities.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, list]) -> "_Histogram":
        return cls(payload["values"], payload["weights"])


class SizeDistribution(_Histogram):
    """Distribution over packet payload sizes (bytes).

    Values must be positive; the controller additionally clamps to the
    connection's MSS at enforcement time.
    """

    def __init__(self, sizes: Sequence[float], weights: Sequence[float]) -> None:
        super().__init__(sizes, weights)
        if np.any(self.values <= 0):
            raise ValueError("packet sizes must be positive")

    @classmethod
    def uniform(cls, low: int, high: int, step: int = 100) -> "SizeDistribution":
        """Equal-weight sizes from ``low`` to ``high`` inclusive."""
        sizes = list(range(low, high + 1, step))
        return cls(sizes, [1.0] * len(sizes))


class GapDistribution(_Histogram):
    """Distribution over extra inter-departure gaps (seconds >= 0)."""

    def __init__(self, gaps: Sequence[float], weights: Sequence[float]) -> None:
        super().__init__(gaps, weights)
        if np.any(self.values < 0):
            raise ValueError("gaps must be >= 0 (Stob may only delay)")

    @classmethod
    def exponential_bins(
        cls, scale: float, n_bins: int = 16, max_gap: Optional[float] = None
    ) -> "GapDistribution":
        """Geometric gap bins weighted by an exponential density — the
        adaptive-padding-style histogram shape WTF-PAD popularised."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        max_gap = max_gap if max_gap is not None else scale * 8
        gaps = np.geomspace(scale / 16, max_gap, n_bins)
        weights = np.exp(-gaps / scale)
        return cls(gaps, weights)


@dataclass
class ObfuscationPolicy:
    """A complete, shareable obfuscation policy.

    Attributes
    ----------
    name:
        Identifier used in the registry and reports.
    size_distribution:
        Optional distribution packet sizes are drawn from (None keeps
        the stack's MSS-sized packets).
    gap_distribution:
        Optional distribution of extra departure gaps (None adds no
        delay).
    split_threshold / split_factor:
        When set, payload chunks larger than the threshold are split
        into ``split_factor`` equal packets (the paper's §3 splitting).
    delay_fraction_range:
        When set, ``(low, high)`` — each segment's departure is delayed
        by a uniform fraction of the time since the previous departure
        (the paper's §3 delaying: +10-30 % inter-arrival time).
    tso_sweep / size_sweep_degree:
        Enables the Figure-3 incremental reduction of TSO size and
        packet size with maximum reduction degree alpha.
    max_tso_segs:
        Hard cap on TSO segments per super-segment (None = CCA's
        choice).
    gated_phases:
        CCA phases (values of :class:`repro.stack.cc.base.CcPhase`) in
        which the policy is suspended (§5.1 co-design hook).
    seed:
        Per-policy RNG seed for reproducible obfuscation noise.
    """

    name: str = "policy"
    size_distribution: Optional[SizeDistribution] = None
    gap_distribution: Optional[GapDistribution] = None
    split_threshold: Optional[int] = None
    split_factor: int = 2
    delay_fraction_range: Optional[tuple] = None
    size_sweep_degree: Optional[int] = None
    max_tso_segs: Optional[int] = None
    gated_phases: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.split_threshold is not None and self.split_threshold <= 0:
            raise ValueError(
                f"split_threshold must be positive, got {self.split_threshold}"
            )
        if self.split_factor < 2:
            raise ValueError(f"split_factor must be >= 2, got {self.split_factor}")
        if self.delay_fraction_range is not None:
            low, high = self.delay_fraction_range
            if not 0 <= low <= high:
                raise ValueError(
                    f"delay_fraction_range must be 0 <= low <= high, "
                    f"got {self.delay_fraction_range}"
                )
        if self.max_tso_segs is not None and self.max_tso_segs < 1:
            raise ValueError(
                f"max_tso_segs must be >= 1, got {self.max_tso_segs}"
            )

    def to_dict(self) -> dict:
        """Compact dict form, as would live in app/stack shared memory."""
        return {
            "name": self.name,
            "size_distribution": (
                self.size_distribution.to_dict() if self.size_distribution else None
            ),
            "gap_distribution": (
                self.gap_distribution.to_dict() if self.gap_distribution else None
            ),
            "split_threshold": self.split_threshold,
            "split_factor": self.split_factor,
            "delay_fraction_range": (
                list(self.delay_fraction_range)
                if self.delay_fraction_range
                else None
            ),
            "size_sweep_degree": self.size_sweep_degree,
            "max_tso_segs": self.max_tso_segs,
            "gated_phases": [p.value for p in self.gated_phases],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObfuscationPolicy":
        from repro.stack.cc.base import CcPhase

        return cls(
            name=payload["name"],
            size_distribution=(
                SizeDistribution.from_dict(payload["size_distribution"])
                if payload.get("size_distribution")
                else None
            ),
            gap_distribution=(
                GapDistribution.from_dict(payload["gap_distribution"])
                if payload.get("gap_distribution")
                else None
            ),
            split_threshold=payload.get("split_threshold"),
            split_factor=payload.get("split_factor", 2),
            delay_fraction_range=(
                tuple(payload["delay_fraction_range"])
                if payload.get("delay_fraction_range")
                else None
            ),
            size_sweep_degree=payload.get("size_sweep_degree"),
            max_tso_segs=payload.get("max_tso_segs"),
            gated_phases=tuple(
                CcPhase(v) for v in payload.get("gated_phases", ())
            ),
            seed=payload.get("seed", 0),
        )
