"""Stob: stack-level traffic obfuscation (the paper's §4).

Stob hooks the three transport decisions that shape the wire packet
sequence — per-packet size, TSO segment size, and departure time — and
lets *obfuscation actions* perturb them, under a safety constraint:
the resulting traffic is never more aggressive than what congestion
control decided (packets only shrink, departures only delay).

Components
----------
:mod:`~repro.stob.policy`
    Declarative obfuscation policies (histogram-backed distributions
    of packet sizes and inter-departure gaps).
:mod:`~repro.stob.registry`
    The shared policy table keyed by destination/flow, the paper's
    "shared memory between the application and stack".
:mod:`~repro.stob.actions`
    Packet-sequence actions: the paper's splitting and delaying
    countermeasures (§3), the Figure-3 size/TSO sweep, histogram-driven
    obfuscation, and composition.
:mod:`~repro.stob.controller`
    :class:`~repro.stob.controller.StobController` — the object a
    :class:`~repro.stack.tcp.TcpEndpoint` consults for every segment;
    enforces constraints and congestion-phase gating (§5.1).
:mod:`~repro.stob.constraints`
    The safety clamps and violation accounting.
"""

from repro.stob.policy import GapDistribution, ObfuscationPolicy, SizeDistribution
from repro.stob.registry import PolicyRegistry
from repro.stob.controller import StobController, attach_stob
from repro.stob.actions import (
    ComposedAction,
    DelayAction,
    HistogramAction,
    NoOpAction,
    SizeSweepAction,
    SplitAction,
    StobAction,
)
from repro.stob.constraints import ConstraintReport, PhaseGate

__all__ = [
    "ObfuscationPolicy",
    "SizeDistribution",
    "GapDistribution",
    "PolicyRegistry",
    "StobController",
    "attach_stob",
    "StobAction",
    "NoOpAction",
    "SplitAction",
    "DelayAction",
    "SizeSweepAction",
    "HistogramAction",
    "ComposedAction",
    "ConstraintReport",
    "PhaseGate",
]
