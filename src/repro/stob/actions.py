"""Packet-sequence obfuscation actions.

An action answers the three questions the transport asks when it
builds a segment (§4.2):

* ``packet_sizes`` — how to packetise the next chunk of stream bytes,
* ``tso_size`` — how many packets one TSO segment may carry,
* ``departure_gap`` — how much extra delay to add before departure.

Actions are *mechanism*; safety (never exceeding the CCA's chosen
aggressiveness) is enforced by the controller that wraps them.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.stob.policy import ObfuscationPolicy


class StobAction(abc.ABC):
    """Base class for packet-sequence actions.

    Subclasses override any of the three hooks; defaults are
    pass-through (stock stack behaviour).
    """

    def packet_sizes(self, nbytes: int, mss: int) -> Optional[List[int]]:
        """Payload sizes for the next ``nbytes`` (None = stock MSS
        packetisation).  Sizes must be positive, each <= mss, and sum
        to <= nbytes."""
        return None

    def tso_size(self, default_segs: int) -> int:
        """Number of packets per TSO segment (will be clamped to
        <= default_segs by the controller)."""
        return default_segs

    def departure_gap(self, now: float, last_departure: float) -> float:
        """Extra delay (seconds >= 0) before the segment departs."""
        return 0.0

    def reset(self) -> None:
        """Clear per-connection state."""


class NoOpAction(StobAction):
    """Stock stack behaviour (the 'Original' condition)."""


class SplitAction(StobAction):
    """The paper's §3 splitting countermeasure, in-stack.

    Payload chunks larger than ``threshold`` become ``factor`` packets
    of equal size.  The paper splits packets larger than 1200 bytes in
    two, choosing the threshold so no packet falls below the minimum
    TCP MSS of 536 bytes.
    """

    def __init__(self, threshold: int = 1200, factor: int = 2) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if factor < 2:
            raise ValueError(f"factor must be >= 2, got {factor}")
        self.threshold = threshold
        self.factor = factor

    def packet_sizes(self, nbytes: int, mss: int) -> Optional[List[int]]:
        sizes: List[int] = []
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, mss)
            if chunk > self.threshold:
                base = chunk // self.factor
                parts = [base] * self.factor
                parts[-1] += chunk - base * self.factor
                sizes.extend(parts)
            else:
                sizes.append(chunk)
            remaining -= chunk
        return sizes


class DelayAction(StobAction):
    """The paper's §3 delaying countermeasure, in-stack.

    Each departure is delayed by ``U(low, high)`` of the elapsed time
    since the previous departure — incrementing inter-departure gaps by
    10-30 % in the paper's configuration.  Small fractions are chosen
    so added delay never approaches retransmission timeouts.
    """

    def __init__(
        self,
        low: float = 0.10,
        high: float = 0.30,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got ({low}, {high})")
        self.low = low
        self.high = high
        self._rng = rng or np.random.default_rng(0)

    def departure_gap(self, now: float, last_departure: float) -> float:
        if last_departure < 0:
            return 0.0
        elapsed = max(0.0, now - last_departure)
        return float(self._rng.uniform(self.low, self.high)) * elapsed


class SizeSweepAction(StobAction):
    """The Figure-3 experiment's incremental reduction strategy.

    Packet size starts at ``base_packet`` (1500 in the paper, i.e. the
    wire MTU) and is reduced by ``alpha`` per transmission down to
    ``base_packet - 10 * alpha``, then reset.  TSO size starts at 44
    and is reduced by ``alpha / 4`` down to ``44 - 8 * (alpha / 4)`` or
    1, then reset.  ``alpha`` is the horizontal axis of Figure 3.
    """

    def __init__(
        self,
        alpha: int,
        base_packet: int = 1500,
        packet_steps: int = 10,
        base_tso: int = 44,
        tso_steps: int = 8,
        header_bytes: int = 52,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.base_packet = base_packet
        self.packet_steps = packet_steps
        self.base_tso = base_tso
        self.tso_steps = tso_steps
        self.header_bytes = header_bytes
        # Step indices cycle 0..packet_steps / 0..tso_steps, producing
        # the paper's "reduce by alpha (alpha/4), reset at the maximum
        # reduction, repeat" sequence, clamped at 1 where it would go
        # non-positive ("44 - alpha/4 x 8 or 1").
        self._packet_k = 0
        self._tso_k = 0

    def reset(self) -> None:
        self._packet_k = 0
        self._tso_k = 0

    def _next_packet_size(self) -> int:
        size = self.base_packet - self.alpha * self._packet_k
        self._packet_k = (self._packet_k + 1) % (self.packet_steps + 1)
        return max(size, self.header_bytes + 1)

    def tso_size(self, default_segs: int) -> int:
        size = self.base_tso - (self.alpha / 4.0) * self._tso_k
        self._tso_k = (self._tso_k + 1) % (self.tso_steps + 1)
        return max(1, int(round(size)))

    def packet_sizes(self, nbytes: int, mss: int) -> Optional[List[int]]:
        sizes: List[int] = []
        remaining = nbytes
        while remaining > 0:
            wire = self._next_packet_size()
            payload = max(1, min(wire - self.header_bytes, mss, remaining))
            sizes.append(payload)
            remaining -= payload
        return sizes


class HistogramAction(StobAction):
    """Policy-driven obfuscation: sizes and gaps drawn from the
    policy's histograms — the general §4.1 mechanism."""

    def __init__(self, policy: ObfuscationPolicy) -> None:
        self.policy = policy
        self._rng = np.random.default_rng(policy.seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.policy.seed)

    def packet_sizes(self, nbytes: int, mss: int) -> Optional[List[int]]:
        dist = self.policy.size_distribution
        if dist is None:
            return None
        sizes: List[int] = []
        remaining = nbytes
        while remaining > 0:
            drawn = int(dist.sample(self._rng))
            payload = max(1, min(drawn, mss, remaining))
            sizes.append(payload)
            remaining -= payload
        return sizes

    def tso_size(self, default_segs: int) -> int:
        if self.policy.max_tso_segs is not None:
            return self.policy.max_tso_segs
        return default_segs

    def departure_gap(self, now: float, last_departure: float) -> float:
        dist = self.policy.gap_distribution
        if dist is None:
            return 0.0
        return float(dist.sample(self._rng))


class ComposedAction(StobAction):
    """Chain several actions: the first non-None packetisation wins,
    TSO sizes take the minimum, gaps add (each can only delay more)."""

    def __init__(self, *actions: StobAction) -> None:
        if not actions:
            raise ValueError("need at least one action")
        self.actions = list(actions)

    def packet_sizes(self, nbytes: int, mss: int) -> Optional[List[int]]:
        for action in self.actions:
            sizes = action.packet_sizes(nbytes, mss)
            if sizes is not None:
                return sizes
        return None

    def tso_size(self, default_segs: int) -> int:
        return min(action.tso_size(default_segs) for action in self.actions)

    def departure_gap(self, now: float, last_departure: float) -> float:
        return sum(
            action.departure_gap(now, last_departure) for action in self.actions
        )

    def reset(self) -> None:
        for action in self.actions:
            action.reset()


def action_from_policy(policy: ObfuscationPolicy) -> StobAction:
    """Build the action a declarative policy describes."""
    actions: List[StobAction] = []
    if policy.split_threshold is not None:
        actions.append(
            SplitAction(policy.split_threshold, policy.split_factor)
        )
    if policy.delay_fraction_range is not None:
        low, high = policy.delay_fraction_range
        actions.append(
            DelayAction(low, high, rng=np.random.default_rng(policy.seed))
        )
    if policy.size_sweep_degree is not None:
        actions.append(SizeSweepAction(policy.size_sweep_degree))
    if policy.size_distribution is not None or policy.gap_distribution is not None:
        actions.append(HistogramAction(policy))
    if not actions:
        return NoOpAction()
    if len(actions) == 1:
        return actions[0]
    return ComposedAction(*actions)
