"""Safety constraints and phase gating for Stob actions.

§4.2: "Stob must ensure that it does not generate more aggressive
traffic to the network (e.g., higher pacing rate than what CCA
desired)."  Concretely:

* packet sizes may only shrink relative to the MSS packetisation,
* the TSO segment may only shrink relative to the CCA/autosize choice,
* departure gaps may only be added, never removed (the
  :class:`~repro.stack.pacing.FlowPacer` additionally rejects negative
  gaps at the mechanism level).

§5.1 suggests gating obfuscation off in CCA phases where packet
scheduling is load-bearing (e.g. BBR's STARTUP, where pacing drives
bandwidth probing).  :class:`PhaseGate` implements that interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.stack.cc.base import CcPhase


@dataclass
class ConstraintReport:
    """Counts of clamped action outputs (visible in experiments)."""

    oversized_packets: int = 0
    oversized_tso: int = 0
    negative_gaps: int = 0
    gated_segments: int = 0

    @property
    def total_violations(self) -> int:
        return self.oversized_packets + self.oversized_tso + self.negative_gaps

    def clamp_packet_sizes(
        self, sizes: Optional[List[int]], nbytes: int, mss: int
    ) -> Optional[List[int]]:
        """Clamp a packetisation to legal sizes and total.

        Returns a cleaned list, or None to fall back to stock
        packetisation when the action's output is unusable.
        """
        if sizes is None:
            return None
        cleaned: List[int] = []
        budget = nbytes
        for size in sizes:
            if budget <= 0:
                break
            clamped = min(int(size), mss, budget)
            if clamped != size:
                self.oversized_packets += 1
            if clamped <= 0:
                self.oversized_packets += 1
                continue
            cleaned.append(clamped)
            budget -= clamped
        # An action may under-packetise (sum < nbytes): the remainder
        # simply stays in the send buffer for the next segment, which
        # is always safe.  An empty result is not.
        return cleaned or None

    def clamp_tso(self, segs: int, default_segs: int) -> int:
        """TSO size may only shrink."""
        if segs > default_segs:
            self.oversized_tso += 1
            return default_segs
        return max(1, segs)

    def clamp_gap(self, gap: float) -> float:
        """Gaps may only delay."""
        if gap < 0:
            self.negative_gaps += 1
            return 0.0
        return gap


@dataclass
class PhaseGate:
    """Suspends obfuscation in the given congestion-control phases.

    The default gate set is empty (always on).  The §5.1 suggestion —
    leave BBR's STARTUP alone because pacing measures the path there —
    is ``PhaseGate(gated=(CcPhase.STARTUP, CcPhase.DRAIN))``.
    Loss recovery is always gated: obfuscation must never slow repair.
    """

    gated: Tuple[CcPhase, ...] = ()
    always_gate_recovery: bool = True

    def allows(self, phase: CcPhase) -> bool:
        """True when obfuscation may act in this phase."""
        if self.always_gate_recovery and phase is CcPhase.RECOVERY:
            return False
        return phase not in self.gated
