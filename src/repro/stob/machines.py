"""A Maybenot-style state-machine defense framework, hosted by Stob.

The paper cites Maybenot (Pulls & Witwer, WPES 2023) among the
frameworks for traffic-analysis defenses.  Maybenot expresses defenses
as small probabilistic state machines driven by traffic events:
states carry an *action* (inject padding, block/delay sending) and
sample a timeout; events (packet sent/received, padding sent, timer
expiry) trigger probabilistic transitions.

This module implements that model on top of the Stob primitives, so a
machine authored against the abstract interface runs *inside the
stack*, where its actions are enforceable:

* ``PAD`` actions become :meth:`TcpEndpoint.inject_dummy` cover packets;
* ``BLOCK`` actions become departure gaps on the next real segment;
* transitions are sampled from per-state distributions.

Two reference machines ship: a FRONT-like front-loaded padder and a
constant-rate padder (BuFLO's padding half).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.simnet.engine import Event, Simulator
from repro.stack.tcp import TcpEndpoint


class MachineEvent(enum.Enum):
    """Traffic events that drive transitions."""

    NONPADDING_SENT = "nonpadding_sent"
    NONPADDING_RECEIVED = "nonpadding_received"
    PADDING_SENT = "padding_sent"
    TIMEOUT = "timeout"
    MACHINE_START = "machine_start"


class ActionKind(enum.Enum):
    """What a state does when its timeout fires."""

    NONE = "none"
    PAD = "pad"  # inject one dummy packet
    BLOCK = "block"  # delay the next real segment


@dataclass
class StateAction:
    """The action executed on a state's timeout."""

    kind: ActionKind = ActionKind.NONE
    #: Dummy packet size for PAD.
    padding_size: int = 1448
    #: Extra departure gap for BLOCK (seconds).
    block_gap: float = 0.005


@dataclass
class MachineState:
    """One state: timeout distribution, action, transition table.

    ``timeout_sampler`` is a callable ``(rng) -> seconds``; transitions
    map an event to a list of ``(next_state_index, probability)``
    entries (probabilities may sum to < 1: the remainder means "stay").
    A ``next_state_index`` of ``END`` terminates the machine.
    """

    name: str
    timeout_sampler: object = None
    action: StateAction = field(default_factory=StateAction)
    transitions: Dict[MachineEvent, List[tuple]] = field(default_factory=dict)
    #: Limit on actions executed in this state before auto-END.
    action_limit: Optional[int] = None


#: Sentinel transition target terminating the machine.
END = -1


@dataclass
class Machine:
    """A defense state machine: states plus a global padding budget."""

    name: str
    states: List[MachineState]
    start_state: int = 0
    #: Maximum dummy bytes the machine may inject (None = unbounded).
    padding_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.states:
            raise ValueError("machine needs at least one state")
        if not 0 <= self.start_state < len(self.states):
            raise ValueError(f"bad start state {self.start_state}")
        for state in self.states:
            for event, edges in state.transitions.items():
                total = sum(p for _t, p in edges)
                if total > 1.0 + 1e-9:
                    raise ValueError(
                        f"state {state.name!r} event {event}: transition "
                        f"probabilities sum to {total} > 1"
                    )
                for target, _p in edges:
                    if target != END and not 0 <= target < len(self.states):
                        raise ValueError(
                            f"state {state.name!r}: bad target {target}"
                        )


class MachineRunner:
    """Executes a :class:`Machine` against a TCP endpoint.

    Install with :func:`attach_machine`.  The runner taps the
    endpoint's transmit path for NONPADDING_SENT events (via the
    Stob controller's ``departure_gap`` hook, which sees every
    segment) and receives for NONPADDING_RECEIVED.
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: TcpEndpoint,
        machine: Machine,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._sim = sim
        self._endpoint = endpoint
        self.machine = machine
        self._rng = rng or np.random.default_rng(0)
        self._state_index = machine.start_state
        self._timer: Optional[Event] = None
        self._actions_in_state = 0
        self.running = False
        self.padding_injected = 0
        self.blocks_applied = 0
        #: Extra gap the Stob controller should apply to the next
        #: real segment (consumed by the glue controller below).
        self.pending_gap = 0.0
        self.transitions_taken = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._enter(self._state_index)
        self.handle_event(MachineEvent.MACHINE_START)

    def stop(self) -> None:
        self.running = False
        self._cancel_timer()

    @property
    def state(self) -> MachineState:
        return self.machine.states[self._state_index]

    def _budget_left(self) -> bool:
        budget = self.machine.padding_budget_bytes
        return budget is None or self.padding_injected < budget

    # -- state machinery ----------------------------------------------------------

    def _enter(self, index: int) -> None:
        self._state_index = index
        self._actions_in_state = 0
        self._arm_timeout()

    #: Minimum timeout: prevents a state without an outgoing TIMEOUT
    #: transition from spinning the event loop at zero delay.
    MIN_TIMEOUT = 1e-4

    def _arm_timeout(self) -> None:
        self._cancel_timer()
        sampler = self.state.timeout_sampler
        if sampler is None:
            return
        timeout = float(sampler(self._rng))
        if timeout < 0:
            raise ValueError(f"negative timeout from state {self.state.name}")
        self._timer = self._sim.schedule(
            max(timeout, self.MIN_TIMEOUT), self._on_timeout
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if not self.running:
            return
        self._execute_action()
        self.handle_event(MachineEvent.TIMEOUT)

    def _execute_action(self) -> None:
        action = self.state.action
        if action.kind is ActionKind.PAD and self._budget_left():
            if self._endpoint.established:
                self._endpoint.inject_dummy(action.padding_size)
                self.padding_injected += action.padding_size
                self.handle_event(MachineEvent.PADDING_SENT)
        elif action.kind is ActionKind.BLOCK:
            self.pending_gap += action.block_gap
            self.blocks_applied += 1
        self._actions_in_state += 1
        limit = self.state.action_limit
        if limit is not None and self._actions_in_state >= limit:
            self.stop()

    def handle_event(self, event: MachineEvent) -> None:
        """Feed a traffic event to the machine."""
        if not self.running:
            return
        edges = self.state.transitions.get(event)
        if edges:
            draw = float(self._rng.random())
            cumulative = 0.0
            for target, probability in edges:
                cumulative += probability
                if draw < cumulative:
                    self.transitions_taken += 1
                    if target == END:
                        self.stop()
                    else:
                        self._enter(target)
                    return
        # No transition taken: re-arm the timeout if it fired.
        if event is MachineEvent.TIMEOUT:
            self._arm_timeout()

    # -- Stob glue ------------------------------------------------------------------

    def consume_pending_gap(self) -> float:
        """Hand any BLOCK delay to the Stob controller (resets it)."""
        gap = self.pending_gap
        self.pending_gap = 0.0
        return gap


class MachineController:
    """A Stob ``segment_controller`` driving a :class:`MachineRunner`.

    Feeds NONPADDING_SENT events to the machine and applies its BLOCK
    gaps to real segments.  Composes with a base controller (e.g. a
    split action) if given.
    """

    def __init__(self, runner: MachineRunner, base=None) -> None:
        self.runner = runner
        self.base = base

    def packet_sizes(self, endpoint, nbytes, mss):
        if self.base is not None:
            return self.base.packet_sizes(endpoint, nbytes, mss)
        return None

    def tso_size(self, endpoint, default_segs):
        if self.base is not None:
            return self.base.tso_size(endpoint, default_segs)
        return default_segs

    def departure_gap(self, endpoint, segment) -> float:
        gap = 0.0
        if self.base is not None:
            gap += self.base.departure_gap(endpoint, segment)
        if not getattr(segment, "dummy", False):
            self.runner.handle_event(MachineEvent.NONPADDING_SENT)
            gap += self.runner.consume_pending_gap()
        return gap


def attach_machine(
    sim: Simulator,
    endpoint: TcpEndpoint,
    machine: Machine,
    rng: Optional[np.random.Generator] = None,
    base=None,
) -> MachineRunner:
    """Install ``machine`` on ``endpoint`` and start it."""
    runner = MachineRunner(sim, endpoint, machine, rng)
    endpoint.segment_controller = MachineController(runner, base=base)
    runner.start()
    return runner


# -- reference machines ---------------------------------------------------------------


def front_machine(
    n_padding: int = 300,
    window: float = 2.0,
    padding_size: int = 1448,
) -> Machine:
    """A FRONT-like machine: a burst of padding early in the
    connection, timeouts drawn Rayleigh-ish (abs-normal) around the
    window, self-terminating after the budget."""
    if n_padding < 1:
        raise ValueError(f"n_padding must be >= 1, got {n_padding}")

    def sampler(rng: np.random.Generator) -> float:
        return abs(float(rng.normal(0.0, window / 2.0))) / n_padding * 4

    pad_state = MachineState(
        name="pad",
        timeout_sampler=sampler,
        action=StateAction(kind=ActionKind.PAD, padding_size=padding_size),
        action_limit=n_padding,
    )
    return Machine(
        name="front-machine",
        states=[pad_state],
        padding_budget_bytes=n_padding * padding_size,
    )


def constant_rate_machine(
    rate_bytes_per_sec: float,
    padding_size: int = 1448,
) -> Machine:
    """BuFLO's padding half: dummies at a constant rate, forever."""
    if rate_bytes_per_sec <= 0:
        raise ValueError("rate must be positive")
    interval = padding_size / rate_bytes_per_sec

    state = MachineState(
        name="cbr",
        timeout_sampler=lambda rng: interval,
        action=StateAction(kind=ActionKind.PAD, padding_size=padding_size),
    )
    return Machine(name="cbr-machine", states=[state])


def burst_block_machine(gap: float = 0.01, every: int = 10) -> Machine:
    """Delay every ``every``-th real segment by ``gap`` seconds —
    a timing-only machine using BLOCK actions."""
    counter_states = []
    for index in range(every):
        is_last = index == every - 1
        counter_states.append(
            MachineState(
                name=f"count{index}",
                timeout_sampler=None,
                action=(
                    StateAction(kind=ActionKind.BLOCK, block_gap=gap)
                    if is_last
                    else StateAction()
                ),
                transitions={
                    MachineEvent.NONPADDING_SENT: [
                        ((index + 1) % every, 1.0)
                    ],
                },
            )
        )
    # BLOCK executes on timeout; the last state fires it near-
    # immediately and returns to counting (a TIMEOUT transition, so the
    # timeout never re-arms in place).
    counter_states[every - 1].timeout_sampler = lambda rng: 0.0
    counter_states[every - 1].transitions[MachineEvent.TIMEOUT] = [(0, 1.0)]
    return Machine(name="burst-block", states=counter_states)
