"""The shared policy registry (Figure 2's shared-memory policy table).

Policies are registered under destination keys (or a wildcard) by the
application or administrator; the stack looks its flow's policy up at
connection setup.  Instances are shared between flows to the same
destination, exactly as §4.1 suggests ("their instances can be shared
between flows in some cases (e.g., same destination)").
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.stob.policy import ObfuscationPolicy

#: Key matching any destination without a more specific entry.
WILDCARD = "*"


class PolicyRegistry:
    """Destination-keyed obfuscation policy table."""

    def __init__(self) -> None:
        self._policies: Dict[str, ObfuscationPolicy] = {}
        self.lookups = 0
        self.hits = 0

    def register(self, destination: str, policy: ObfuscationPolicy) -> None:
        """Install ``policy`` for ``destination`` (or ``"*"``)."""
        if not destination:
            raise ValueError("destination key must be non-empty")
        self._policies[destination] = policy

    def unregister(self, destination: str) -> None:
        """Remove the policy for ``destination`` (KeyError if absent)."""
        del self._policies[destination]

    def lookup(self, destination: str) -> Optional[ObfuscationPolicy]:
        """Most specific policy for ``destination``, or None."""
        self.lookups += 1
        policy = self._policies.get(destination)
        if policy is None:
            policy = self._policies.get(WILDCARD)
        if policy is not None:
            self.hits += 1
        return policy

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._policies))

    def to_dict(self) -> dict:
        """Serialisable snapshot of the whole table — the compact
        shared-memory representation."""
        return {
            dest: policy.to_dict() for dest, policy in self._policies.items()
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PolicyRegistry":
        registry = cls()
        for dest, policy_dict in payload.items():
            registry.register(dest, ObfuscationPolicy.from_dict(policy_dict))
        return registry
