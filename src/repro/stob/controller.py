"""The Stob controller: the stack-side enforcement point.

A :class:`StobController` is installed on a
:class:`~repro.stack.tcp.TcpEndpoint` (``endpoint.segment_controller``)
and consulted for every TSO segment the transport builds.  It wraps an
obfuscation *action* with the safety constraints and congestion-phase
gate, and keeps the departure-time state the delay actions need.

Figure 2 of the paper: the application (or administrator) picks the
policy; the policy lives in the shared registry; the controller applies
it where packet size and departure time are actually decided.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import runtime as _obs_runtime
from repro.stob.actions import NoOpAction, StobAction, action_from_policy
from repro.stob.constraints import ConstraintReport, PhaseGate
from repro.stob.policy import ObfuscationPolicy


class StobController:
    """Per-flow enforcement of an obfuscation action."""

    def __init__(
        self,
        action: Optional[StobAction] = None,
        gate: Optional[PhaseGate] = None,
    ) -> None:
        self.action = action or NoOpAction()
        self.gate = gate or PhaseGate()
        self.report = ConstraintReport()
        self._last_departure = -1.0
        #: Totals for overhead accounting.
        self.segments_seen = 0
        self.total_gap_added = 0.0
        obs = _obs_runtime.session()
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._obs_actions = registry.counter("stob.actions_applied")
            self._obs_gated = registry.counter("stob.gated_segments")
            self._obs_gap = registry.counter("stob.gap_seconds")
            self._obs_violations = registry.counter("stob.constraint_violations")

    # -- hooks called by TcpEndpoint --------------------------------------------

    def packet_sizes(self, endpoint, nbytes: int, mss: int) -> Optional[List[int]]:
        """Packetisation for the next ``nbytes`` (None = stock)."""
        if not self.gate.allows(endpoint.cca.phase):
            return None
        violations_before = self.report.total_violations
        sizes = self.action.packet_sizes(nbytes, mss)
        cleaned = self.report.clamp_packet_sizes(sizes, nbytes, mss)
        if self._obs is not None:
            self._obs_violations.add(
                self.report.total_violations - violations_before
            )
        return cleaned

    def tso_size(self, endpoint, default_segs: int) -> int:
        """TSO sizing (clamped to the CCA/autosize choice)."""
        if not self.gate.allows(endpoint.cca.phase):
            return default_segs
        violations_before = self.report.total_violations
        segs = self.report.clamp_tso(
            self.action.tso_size(default_segs), default_segs
        )
        if self._obs is not None:
            self._obs_violations.add(
                self.report.total_violations - violations_before
            )
        return segs

    def departure_gap(self, endpoint, segment) -> float:
        """Extra departure delay for ``segment``."""
        self.segments_seen += 1
        now = endpoint._sim.now
        if not self.gate.allows(endpoint.cca.phase):
            self.report.gated_segments += 1
            if self._obs is not None:
                self._obs_gated.add(1)
            self._last_departure = now
            return 0.0
        violations_before = self.report.total_violations
        gap = self.report.clamp_gap(
            self.action.departure_gap(now, self._last_departure)
        )
        self._last_departure = now
        self.total_gap_added += gap
        if self._obs is not None:
            self._obs_actions.add(1)
            self._obs_gap.add(gap)
            self._obs_violations.add(
                self.report.total_violations - violations_before
            )
        return gap

    def reset(self) -> None:
        """Clear per-connection state (new connection reuse)."""
        self.action.reset()
        self._last_departure = -1.0


def attach_stob(
    endpoint,
    action: Optional[StobAction] = None,
    policy: Optional[ObfuscationPolicy] = None,
    gate: Optional[PhaseGate] = None,
) -> StobController:
    """Install a Stob controller on a TCP endpoint.

    Exactly one of ``action`` or ``policy`` must be given; a policy is
    compiled to its action first.
    """
    if (action is None) == (policy is None):
        raise ValueError("pass exactly one of action= or policy=")
    if policy is not None:
        action = action_from_policy(policy)
        if gate is None and policy.gated_phases:
            gate = PhaseGate(gated=tuple(policy.gated_phases))
    controller = StobController(action=action, gate=gate)
    endpoint.segment_controller = controller
    return controller
