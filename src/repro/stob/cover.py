"""Stack-level cover traffic (dummy-packet padding).

§2.2's third primitive: *padding* — dummy packets carrying no user
data.  The paper's position is that padding is the costliest primitive
because it consumes bandwidth in a non-work-conserving way (§2.3);
Stob supports it anyway (some defenses need it), implemented as
unreliable dummy segments injected below the socket (the receiver's
stack discards them, like TLS record padding or QUIC PADDING frames).

:class:`CoverTrafficShaper` drives a constant-rate dummy stream on a
TCP endpoint while enabled — the building block for BuFLO-style
regularisation in-stack, and the workload for the work-conservation
experiment (:mod:`repro.experiments.work_conservation`).
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.engine import Event, Simulator
from repro.stack.tcp import TcpEndpoint


class CoverTrafficShaper:
    """Constant-rate dummy-packet injector for one endpoint."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: TcpEndpoint,
        rate_bytes_per_sec: float,
        packet_size: int = 1448,
    ) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError(
                f"cover rate must be positive, got {rate_bytes_per_sec}"
            )
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {packet_size}")
        self._sim = sim
        self._endpoint = endpoint
        self.rate = rate_bytes_per_sec
        self.packet_size = packet_size
        self._timer: Optional[Event] = None
        self.injected_bytes = 0
        self.running = False

    @property
    def interval(self) -> float:
        """Seconds between dummy packets at the configured rate."""
        return self.packet_size / self.rate

    def start(self) -> None:
        """Begin injecting (idempotent)."""
        if self.running:
            return
        self.running = True
        self._arm()

    def stop(self) -> None:
        """Stop injecting (idempotent)."""
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm(self) -> None:
        self._timer = self._sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        self._timer = None
        if not self.running:
            return
        if self._endpoint.established:
            self._endpoint.inject_dummy(self.packet_size)
            self.injected_bytes += self.packet_size
        self._arm()
