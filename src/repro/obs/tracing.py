"""Structured JSONL event tracer (schema v1, :mod:`repro.obs.schema`).

A :class:`Tracer` appends one JSON object per event to a file as the
run progresses — crash-visible, greppable, and cheap: emission is a
dict build plus one ``json.dumps``, and components that hold no tracer
reference pay nothing.  Timestamps are seconds since the tracer was
opened (``time.perf_counter`` based), clamped to be monotone
non-decreasing, which the schema validator enforces on read.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Optional, TextIO

from repro.obs.schema import KNOWN_KINDS, TRACE_SCHEMA_VERSION


class Tracer:
    """Writes schema-v1 event records to a JSONL file.

    ``clock`` is injectable for tests; the default is a perf-counter
    offset from open time, so ``ts`` is a small non-negative float.
    """

    def __init__(self, path: str, clock: Optional[Callable[[], float]] = None) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle: Optional[TextIO] = open(path, "w")
        if clock is None:
            t0 = time.perf_counter()
            clock = lambda: time.perf_counter() - t0  # noqa: E731
        self._clock = clock
        self._last_ts = 0.0
        self.emitted = 0

    def emit(self, kind: str, src: str, **fields: object) -> None:
        """Append one event.  ``kind`` must be a documented v1 kind —
        emitting an unknown kind is a programming error caught here,
        not a malformed file discovered later."""
        if self._handle is None:
            return
        if kind not in KNOWN_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        ts = max(self._clock(), self._last_ts)
        self._last_ts = ts
        record = {"v": TRACE_SCHEMA_VERSION, "ts": round(ts, 6), "kind": kind,
                  "src": src, **fields}
        self._handle.write(json.dumps(record, sort_keys=False) + "\n")
        self.emitted += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
