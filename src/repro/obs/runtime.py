"""The process-wide observability session and its no-op fast path.

Observability is off by default: :func:`session` returns ``None``,
components cache that ``None`` at construction, and every hot loop
pays exactly one ``is not None`` attribute check.  :func:`enable`
(called by the CLI when ``--metrics``/``--trace`` is given, or by
tests) installs an :class:`ObsSession` holding the metrics
:class:`~repro.obs.metrics.Registry` and, optionally, a
:class:`~repro.obs.tracing.Tracer`.

Cross-process semantics
-----------------------

Simulations fan out over :class:`~concurrent.futures.ProcessPoolExecutor`
workers (see :mod:`repro.parallel`).  Two rules keep the numbers
coherent:

* a session is **pid-scoped** — a forked worker that inherited the
  parent's session object sees :func:`session` return ``None``
  (matching pids is the guard), so workers never write to the
  parent's trace file descriptor;
* worker tasks are wrapped in :class:`WorkerTask`, which installs a
  fresh *metrics-only* session around the task, snapshots it, and
  ships the snapshot home with the payload; the parent calls
  :func:`absorb` to fold it into its registry.  Counters are additive
  and every simulation's work is position-deterministic, so the merged
  totals equal a serial run's for any worker count.

Trace events are emitted only by the coordinating process (worker
sessions carry no tracer): a single writer is what keeps ``ts``
monotone within a file.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import Registry
from repro.obs.tracing import Tracer


class ObsSession:
    """One process's live observability state."""

    def __init__(self, trace_path: Optional[str] = None) -> None:
        self.registry = Registry()
        self.tracer: Optional[Tracer] = Tracer(trace_path) if trace_path else None
        self.pid = os.getpid()

    def emit(self, kind: str, src: str, **fields: object) -> None:
        """Trace an event if this session carries a tracer."""
        if self.tracer is not None:
            self.tracer.emit(kind, src, **fields)

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()


_SESSION: Optional[ObsSession] = None


def enable(trace_path: Optional[str] = None) -> ObsSession:
    """Install (and return) the process-wide session.

    Components read the session at *construction*, so enable
    observability before building simulators/endpoints — the CLI does
    this before dispatching any subcommand.
    """
    global _SESSION
    if _SESSION is not None and _SESSION.pid == os.getpid():
        raise RuntimeError("observability is already enabled; disable() first")
    _SESSION = ObsSession(trace_path)
    return _SESSION


def disable() -> None:
    """Tear the session down (closing the tracer).  Idempotent."""
    global _SESSION
    if _SESSION is not None and _SESSION.pid == os.getpid():
        _SESSION.close()
    _SESSION = None


def session() -> Optional[ObsSession]:
    """The current process's session, or ``None`` (the fast path).

    The pid check makes inherited sessions invisible to forked
    workers: their metrics arrive via :class:`WorkerTask` snapshots,
    never via the parent's instruments or file handles.
    """
    if _SESSION is not None and _SESSION.pid == os.getpid():
        return _SESSION
    return None


def enabled() -> bool:
    return session() is not None


@dataclass
class WorkerResult:
    """A worker task's payload plus its metrics snapshot."""

    payload: Any
    metrics: Dict[str, object]


@dataclass
class WorkerTask:
    """Wraps a picklable task so it runs under a worker-local,
    metrics-only session and returns a :class:`WorkerResult`.

    Pool submission sites wrap their chunk functions in this only when
    the parent session is active; with observability off the original
    function is submitted unwrapped and nothing changes.
    """

    fn: Callable[..., Any]

    def __call__(self, *args: Any, **kwargs: Any) -> WorkerResult:
        global _SESSION
        inherited = _SESSION
        _SESSION = worker_session = ObsSession(trace_path=None)
        try:
            payload = self.fn(*args, **kwargs)
            snapshot = worker_session.registry.snapshot()
        finally:
            _SESSION = inherited
        return WorkerResult(payload=payload, metrics=snapshot)


def absorb(result: Any) -> Any:
    """Unwrap a :class:`WorkerResult`, folding its metrics into the
    current session (when one is active).  Pass-through for plain
    payloads, so merge sites can call it unconditionally."""
    if not isinstance(result, WorkerResult):
        return result
    current = session()
    if current is not None:
        current.registry.merge(result.metrics)
        current.emit(
            "worker.merge", "parallel",
            instruments=sum(
                len(result.metrics.get(section, {}))
                for section in ("counters", "gauges", "histograms", "timers")
            ),
        )
    return result.payload
