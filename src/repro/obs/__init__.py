"""``repro.obs`` — dependency-free observability for the whole stack.

Three pieces, used together or alone:

* :mod:`repro.obs.metrics` — counters / gauges / histograms / timers
  in a mergeable :class:`~repro.obs.metrics.Registry` with
  deterministic (fixed-bucket, sorted-key) output;
* :mod:`repro.obs.tracing` — a JSONL event tracer with a versioned,
  documented schema (:mod:`repro.obs.schema`);
* :mod:`repro.obs.runtime` — the process-wide session, its disabled
  fast path (hot loops pay one attribute check), and the
  worker-snapshot merge used by :mod:`repro.parallel` fan-out.

``repro <cmd> --metrics m.json --trace t.jsonl`` turns it on from the
CLI; ``repro report m.json t.jsonl`` summarises the artifacts.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    load_snapshot,
    pow2_edges,
)
from repro.obs.runtime import (
    ObsSession,
    WorkerResult,
    WorkerTask,
    absorb,
    disable,
    enable,
    enabled,
    session,
)
from repro.obs.schema import (
    KNOWN_KINDS,
    TRACE_SCHEMA_VERSION,
    validate_record,
    validate_trace_file,
)
from repro.obs.tracing import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KNOWN_KINDS",
    "ObsSession",
    "Registry",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "Tracer",
    "WorkerResult",
    "WorkerTask",
    "absorb",
    "disable",
    "enable",
    "enabled",
    "load_snapshot",
    "pow2_edges",
    "session",
    "validate_record",
    "validate_trace_file",
]
