"""Human-readable summaries of metrics and trace files.

``repro report FILE [FILE ...]`` renders either artifact kind:

* a **metrics** file (JSON written by ``--metrics``) becomes grouped
  counter/gauge/histogram/timer tables, plus derived figures such as
  the sim-time/wall-time ratio when both sides were recorded;
* a **trace** file (JSONL written by ``--trace``) is schema-validated
  and summarised as event-kind counts and the time span.

File kind is sniffed from content, not extension: a metrics file is a
single JSON object carrying the metrics schema tag, anything else is
treated as a JSONL trace.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.metrics import METRICS_SCHEMA, load_snapshot
from repro.obs.schema import kind_counts, validate_trace_file


def sniff_kind(path: str) -> str:
    """``"metrics"`` or ``"trace"`` for ``path``."""
    with open(path) as handle:
        head = handle.read(4096).lstrip()
    if head.startswith("{"):
        try:
            first = json.loads(head if head.count("\n") == 0 else head.splitlines()[0])
        except json.JSONDecodeError:
            first = None
        if isinstance(first, dict) and "kind" in first and "ts" in first:
            return "trace"
    if METRICS_SCHEMA in head:
        return "metrics"
    return "trace"


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return f"{value}"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def format_metrics_report(snapshot: Dict[str, object], path: str = "") -> str:
    """Render a metrics snapshot as aligned text tables."""
    lines: List[str] = []
    title = f"metrics {path}".rstrip()
    lines.append(title)
    lines.append("=" * len(title))

    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_fmt(counters[name])}")

    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges (last / min / max)")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            g = gauges[name]
            lines.append(
                f"  {name:<{width}}  {_fmt(g['last'])} / "
                f"{_fmt(g['min'])} / {_fmt(g['max'])}"
            )

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / p50 / p99 / max)")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            count = h["count"]
            mean = h["sum"] / count if count else 0.0
            lines.append(
                f"  {name:<{width}}  {count} / {_fmt(mean)} / "
                f"{_fmt(_bucket_quantile(h, 0.5))} / "
                f"{_fmt(_bucket_quantile(h, 0.99))} / {_fmt(h['max'])}"
            )

    timers = snapshot.get("timers", {})
    if timers:
        lines.append("")
        lines.append("timers (count / total s / max s)")
        width = max(len(name) for name in timers)
        for name in sorted(timers):
            t = timers[name]
            lines.append(
                f"  {name:<{width}}  {int(t['count'])} / "
                f"{_fmt(t['total'])} / {_fmt(t['max'])}"
            )

    derived = _derived_lines(counters, timers)
    if derived:
        lines.append("")
        lines.append("derived")
        lines.extend(derived)
    return "\n".join(lines)


def _bucket_quantile(state: Dict[str, object], q: float) -> float:
    count = state["count"]
    if not count:
        return 0.0
    rank = q * count
    seen = 0
    for i, n in enumerate(state["counts"]):
        seen += n
        if seen >= rank and n:
            edges = state["edges"]
            return float(edges[i]) if i < len(edges) else float(state["max"])
    return float(state["max"])


def _derived_lines(counters: Dict[str, float], timers: Dict[str, object]) -> List[str]:
    lines = []
    sim = counters.get("simnet.sim_seconds")
    wall = timers.get("simnet.wall", {}).get("total") if timers else None
    if sim and wall:
        lines.append(f"  sim-time / wall-time      {sim / wall:.1f}x")
    events = counters.get("simnet.events_processed")
    if events and wall:
        lines.append(f"  simulator event rate      {events / wall:,.0f} events/s")
    retx = counters.get("tcp.retransmissions")
    segs = counters.get("tcp.segments_sent")
    if retx is not None and segs:
        lines.append(f"  retransmit ratio          {retx / segs:.4f}")
    return lines


def format_trace_report(path: str) -> str:
    """Validate a trace file and render its summary."""
    records = validate_trace_file(path)
    title = f"trace {path}"
    lines = [title, "=" * len(title), ""]
    if not records:
        lines.append("(empty trace)")
        return "\n".join(lines)
    span = records[-1]["ts"] - records[0]["ts"]
    lines.append(f"{len(records)} events over {span:.3f}s (schema v1, valid)")
    lines.append("")
    lines.append("events by kind")
    pairs = kind_counts(records)
    width = max(len(kind) for kind, _ in pairs)
    for kind, count in pairs:
        lines.append(f"  {kind:<{width}}  {count}")
    return "\n".join(lines)


def format_report(path: str) -> str:
    """Render ``path`` (metrics or trace, sniffed) as text."""
    if sniff_kind(path) == "metrics":
        return format_metrics_report(load_snapshot(path), path)
    return format_trace_report(path)
