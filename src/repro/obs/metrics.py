"""Hierarchical metrics: counters, gauges, timers, histograms.

The instruments live in a :class:`Registry`, keyed by dotted names
(``simnet.events_processed``, ``tcp.retransmissions``) so a report can
group them by subsystem.  Design constraints, in order:

* **deterministic output** — histograms use *fixed* bucket edges
  declared at creation, counters are plain integers/floats, and
  snapshots serialise with sorted keys, so two runs that do the same
  work produce byte-identical metrics files (wall-clock instruments
  are the documented exception);
* **mergeable** — :meth:`Registry.merge` folds a snapshot produced in
  a worker process into the parent registry (counters add, histogram
  bucket counts add element-wise, gauges combine min/max), which is
  how :mod:`repro.parallel` fan-out keeps one coherent set of totals;
* **cheap when off** — components hold instrument references obtained
  once at construction; with observability disabled they hold ``None``
  and the hot loops pay a single attribute check
  (see :mod:`repro.obs.runtime`).

Nothing here imports from the simulation layers, so every layer may
import this module without cycles.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Format tag written into every metrics snapshot/file.
METRICS_SCHEMA = "repro.obs/metrics"
METRICS_VERSION = 1


def pow2_edges(lo: int, hi: int) -> Tuple[int, ...]:
    """Power-of-two bucket edges from ``lo`` to ``hi`` inclusive."""
    if lo <= 0 or hi < lo:
        raise ValueError(f"need 0 < lo <= hi, got ({lo}, {hi})")
    edges = []
    edge = lo
    while edge <= hi:
        edges.append(edge)
        edge *= 2
    return tuple(edges)


class Counter:
    """A monotonically increasing sum (int or float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    inc = add

    def state(self) -> Number:
        return self.value

    def merge_state(self, state: Number) -> None:
        self.value += state


class Gauge:
    """A point-in-time value with min/max envelope.

    Merging across workers cannot preserve "whichever process set it
    last" (completion order is nondeterministic), so ``last`` merges as
    the max — min/max are the meaningful aggregates.
    """

    __slots__ = ("name", "last", "min", "max", "sets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.sets = 0

    def set(self, value: Number) -> None:
        self.last = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.sets += 1

    def state(self) -> Dict[str, Number]:
        return {
            "last": self.last,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
            "sets": self.sets,
        }

    def merge_state(self, state: Dict[str, Number]) -> None:
        if state.get("sets", 0) == 0:
            return
        if self.sets == 0:
            self.min = state["min"]
            self.max = state["max"]
            self.last = state["last"]
        else:
            self.min = min(self.min, state["min"])
            self.max = max(self.max, state["max"])
            self.last = max(self.last, state["last"])
        self.sets += state["sets"]


class Histogram:
    """A fixed-bucket histogram.

    ``edges`` are upper bounds: an observation lands in the first
    bucket whose edge is >= the value; values above the last edge land
    in the overflow bucket (``counts`` has ``len(edges) + 1`` cells).
    Fixed edges — never computed from the data — are what make
    histogram output deterministic and snapshots mergeable.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Sequence[Number]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram {name} needs ascending edges, got {edges}")
        self.name = name
        self.edges: Tuple[Number, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding
        the q-th observation (the overflow bucket reports ``max``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                if i < len(self.edges):
                    return float(self.edges[i])
                return float(self.max)
        return float(self.max)

    def state(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        if tuple(state["edges"]) != self.edges:
            raise ValueError(
                f"histogram {self.name}: cannot merge edges "
                f"{state['edges']} into {list(self.edges)}"
            )
        for i, n in enumerate(state["counts"]):
            self.counts[i] += n
        if state["count"]:
            self.min = state["min"] if self.min is None else min(self.min, state["min"])
            self.max = state["max"] if self.max is None else max(self.max, state["max"])
        self.count += state["count"]
        self.total += state["sum"]


class Timer:
    """Accumulated wall-clock spans (total seconds, count, max).

    Wall time is inherently nondeterministic; timers exist for the
    sim-time/wall-time ratio and per-phase profiling, and are excluded
    from determinism guarantees.
    """

    __slots__ = ("name", "count", "total", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)

    def time(self) -> "_TimerSpan":
        return _TimerSpan(self)

    def state(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total, "max": self.max}

    def merge_state(self, state: Dict[str, float]) -> None:
        self.count += int(state["count"])
        self.total += state["total"]
        self.max = max(self.max, state["max"])


class _TimerSpan:
    """``with timer.time():`` context manager."""

    __slots__ = ("_timer", "_started")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._started = 0.0

    def __enter__(self) -> "_TimerSpan":
        import time

        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time

        self._timer.record(time.perf_counter() - self._started)


_KIND_SECTIONS = {
    Counter: "counters",
    Gauge: "gauges",
    Histogram: "histograms",
    Timer: "timers",
}


class Registry:
    """A namespace of instruments, one per dotted name.

    Accessors are get-or-create and idempotent; asking for an existing
    name with a different instrument type (or different histogram
    edges) is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"{name} is a {type(instrument).__name__}, not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, edges: Sequence[Number]) -> Histogram:
        histogram = self._get(name, Histogram, edges)
        if histogram.edges != tuple(edges):
            raise ValueError(
                f"histogram {name} exists with edges {list(histogram.edges)}, "
                f"requested {list(edges)}"
            )
        return histogram

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-data (JSON-serialisable) view of every instrument."""
        sections: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}, "timers": {},
        }
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            sections[_KIND_SECTIONS[type(instrument)]][name] = instrument.state()
        return {
            "schema": METRICS_SCHEMA,
            "version": METRICS_VERSION,
            **sections,
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this
        registry.  Counters and histograms are additive; gauges merge
        their envelopes; unknown names are created on the fly."""
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"not a metrics snapshot: schema={snapshot.get('schema')!r}"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).merge_state(value)
        for name, state in snapshot.get("gauges", {}).items():
            self.gauge(name).merge_state(state)
        for name, state in snapshot.get("histograms", {}).items():
            self.histogram(name, state["edges"]).merge_state(state)
        for name, state in snapshot.get("timers", {}).items():
            self.timer(name).merge_state(state)

    # -- persistence -------------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the snapshot as deterministic, sorted-key JSON.

        Published atomically: a metrics file is the last thing a run
        writes, and a crash during finalisation must not leave a
        truncated JSON where a complete previous snapshot stood.
        """
        from repro.ioutil import atomic_write_json

        atomic_write_json(path, self.snapshot())


def load_snapshot(path: str) -> Dict[str, object]:
    """Read and sanity-check a metrics file written by :meth:`Registry.dump`."""
    with open(path) as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(f"{path} is not a {METRICS_SCHEMA} file")
    if snapshot.get("version") != METRICS_VERSION:
        raise ValueError(
            f"{path} has metrics version {snapshot.get('version')}, "
            f"this build reads version {METRICS_VERSION}"
        )
    return snapshot
