"""Trace event schema, version 1.

Every line of a trace file is one JSON object (JSONL).  Required keys:

==========  ======================================================
``v``       schema version; always the integer ``1``
``ts``      seconds since the tracer was opened (float, wall clock,
            monotone non-decreasing across the file)
``kind``    event type, one of :data:`KNOWN_KINDS`
``src``     emitting component (``cli``, ``runner``, ``pageload``,
            ``tcp.flow<N>``, ...)
==========  ======================================================

Any other key is an event-specific detail field and must hold a JSON
scalar (string / number / bool / null) — keeping records flat means
every consumer from ``jq`` to a spreadsheet can read them.

Event kinds (v1)
----------------

* ``run.start`` / ``run.end`` — one pair per CLI invocation
  (fields: ``command``, and on ``run.end`` ``exit_code``);
* ``trial.start`` / ``trial.end`` — resilient-runner trials
  (``label``, ``sample``; ``trial.end`` adds ``retries``, ``stalls``);
* ``trial.retry`` / ``trial.failure`` — retry/budget-exhaustion
  (``label``, ``sample``, ``error``);
* ``checkpoint.write`` — a checkpoint hit disk (``trials``);
* ``pageload.done`` / ``pageload.stall`` — one simulated visit
  (``sim_time``, ``events``, ``bytes``, ``rounds``);
* ``tcp.rto`` — a retransmission timeout fired (``sim_time``,
  ``backoff``);
* ``worker.merge`` — a worker metrics snapshot was folded into the
  parent registry (``instruments``);
* ``campaign.run.start`` / ``campaign.run.end`` — one sharded
  campaign invocation (``shards``, ``resumed`` / ``executed``,
  ``quarantined``);
* ``campaign.shard.done`` / ``campaign.shard.quarantined`` — one
  shard published durably (``shard``, ``rows``, ``failures``);
* ``campaign.manifest.recovered`` — a corrupt/missing manifest was
  rebuilt from shard sidecars (``adopted``, ``planned``);
* ``campaign.verify`` / ``campaign.repair`` — integrity passes
  (``findings``, ``clean`` / ``rederived``, ``sidecars``,
  ``unrepairable``).

The schema is append-only: v1 consumers must ignore unknown *detail*
fields, and any change to required keys or their meaning bumps ``v``.
In multi-process runs only the coordinating process emits trace
records (worker metrics are merged, worker events are not), which is
what keeps ``ts`` monotone within a file.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

TRACE_SCHEMA_VERSION = 1

#: Every event kind a v1 trace may contain.
KNOWN_KINDS = frozenset(
    {
        "run.start",
        "run.end",
        "trial.start",
        "trial.end",
        "trial.retry",
        "trial.failure",
        "checkpoint.write",
        "pageload.done",
        "pageload.stall",
        "tcp.rto",
        "worker.merge",
        "campaign.run.start",
        "campaign.run.end",
        "campaign.shard.done",
        "campaign.shard.quarantined",
        "campaign.manifest.recovered",
        "campaign.verify",
        "campaign.repair",
    }
)

REQUIRED_KEYS = ("v", "ts", "kind", "src")

_SCALAR_TYPES = (str, int, float, bool, type(None))


def validate_record(record: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid v1 event."""
    if not isinstance(record, dict):
        raise ValueError(f"record must be an object, got {type(record).__name__}")
    for key in REQUIRED_KEYS:
        if key not in record:
            raise ValueError(f"record missing required key {key!r}: {record}")
    if record["v"] != TRACE_SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {record['v']!r}")
    if not isinstance(record["ts"], (int, float)) or isinstance(record["ts"], bool):
        raise ValueError(f"ts must be a number, got {record['ts']!r}")
    if record["ts"] < 0:
        raise ValueError(f"ts must be >= 0, got {record['ts']}")
    if record["kind"] not in KNOWN_KINDS:
        raise ValueError(f"unknown event kind {record['kind']!r}")
    if not isinstance(record["src"], str) or not record["src"]:
        raise ValueError(f"src must be a non-empty string, got {record['src']!r}")
    for key, value in record.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise ValueError(
                f"detail field {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )


def iter_trace(path: str) -> Iterator[Dict[str, object]]:
    """Yield parsed records from a JSONL trace file."""
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: not JSON: {error}") from None


def validate_trace_file(path: str) -> List[Dict[str, object]]:
    """Validate every record of a trace file (including ``ts``
    monotonicity across records) and return them."""
    records = []
    last_ts = float("-inf")
    for i, record in enumerate(iter_trace(path), 1):
        try:
            validate_record(record)
        except ValueError as error:
            raise ValueError(f"{path}: record {i}: {error}") from None
        if record["ts"] < last_ts:
            raise ValueError(
                f"{path}: record {i}: ts went backwards "
                f"({record['ts']} < {last_ts})"
            )
        last_ts = record["ts"]
        records.append(record)
    return records


def kind_counts(records: List[Dict[str, object]]) -> List[Tuple[str, int]]:
    """(kind, count) pairs sorted by kind — the report's summary rows."""
    counts: Dict[str, int] = {}
    for record in records:
        counts[record["kind"]] = counts.get(record["kind"], 0) + 1
    return sorted(counts.items())
