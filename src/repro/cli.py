"""Command-line interface: ``repro <experiment> [options]``.

Each subcommand regenerates one table/figure of the paper:

* ``repro table1`` — defense taxonomy + measured overheads;
* ``repro table2`` — k-FP accuracy grid (slow: collects the dataset);
* ``repro figure3`` — throughput vs reduction-degree sweep;
* ``repro censorship`` — accuracy vs prefix-length curves;
* ``repro cca-interplay`` — §5.1 goodput grid;
* ``repro cca-id`` — §5.2 CCA identification;
* ``repro adverse`` — k-FP grid under adverse network conditions;
* ``repro sweep`` — split-threshold x delay-intensity parameter grid;
* ``repro robustness`` — attacker x defense grid over every
  registered attack (``repro attacks`` lists them);
* ``repro collect`` — collect and save the 9-site dataset for reuse.

``table2``, ``open-world`` and ``robustness`` accept ``--attack NAME``
to swap the attacker (k-FP, CUMUL, feature k-NN, or the
deep-learning-class TAM+MLP); attack specs are folded into cache keys
so per-attack grids coexist in one ``--cache`` store.

Every dataset-producing subcommand accepts ``--seed``, ``--out`` and
``--resume``; ``--checkpoint PATH`` enables the resilient runner's
periodic checkpointing, and ``--resume`` continues an interrupted
collection from that checkpoint to a byte-identical result.

``--workers N`` (collect/table2/adverse/sweep) fans collection,
feature extraction and forest fitting out over N processes (0 = one
per core).  All randomness is position-derived, so any worker count
produces bit-identical results — ``--workers`` is purely a wall-clock
knob and composes with ``--checkpoint``/``--resume``.

Parallel runs are crash-supervised (:mod:`repro.supervise`):
``--max-worker-restarts N`` bounds pool rebuilds after worker deaths
before degrading to serial in-process execution, and ``--quarantine``
/ ``--no-quarantine`` chooses between excluding a trial that
repeatedly kills workers (recorded in the report) and failing the
run.  SIGTERM is handled like Ctrl-C: final checkpoint, exit 143.

``--cache DIR`` (collect/table2/adverse/sweep) keys every pipeline
stage (capture → sanitize → defend → features → eval) on its config
and reuses cached artifacts, so re-runs and partially-changed runs
skip whatever already exists; ``--no-cache`` disables it for one run.
``repro cache stats|gc|verify`` inspects and maintains the store.

``repro campaign run DIR`` collects a generated closed world
(``--sites`` synthetic profiles × ``--samples`` visits, optionally
under ``--defense``) in fixed-size shards, each published atomically
with a signed sidecar and manifest; ``--resume`` re-derives only
missing shards, byte-identically.  ``repro campaign verify|repair``
detect and heal corrupt shards (exit non-zero iff corruption found —
the same convention as ``repro cache verify``); ``repro campaign
stats`` summarises a campaign directory.

``--metrics PATH`` / ``--trace PATH`` (collect/table2/adverse/sweep)
turn on the :mod:`repro.obs` observability layer: counters, gauges and
histograms from the simulator, TCP stack, Stob controller and runner
land in a JSON metrics file, and structured schema-v1 events in a
JSONL trace file.  ``repro report FILE`` summarises either artifact.
Deterministic counters (events processed, packets, retries) are equal
for any ``--workers`` value; worker metrics merge into the parent.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.errors import RunTerminated


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2025, help="master seed")
    parser.add_argument(
        "--samples", type=int, default=100, help="page loads per site"
    )
    parser.add_argument(
        "--folds", type=int, default=5,
        help="cross-validation folds for accuracy cells",
    )
    parser.add_argument(
        "--dataset", type=str, default=None,
        help="path of a dataset .npz to reuse (see `repro collect`)",
    )


def _add_dataset_opts(
    parser: argparse.ArgumentParser,
    out_help: str = "write results to this file",
    out_default: Optional[str] = None,
) -> None:
    """Options shared by every dataset-producing subcommand."""
    parser.add_argument("--out", type=str, default=out_default, help=out_help)
    parser.add_argument(
        "--checkpoint", type=str, default=None,
        help="checkpoint path: collect resiliently, persisting partial "
        "datasets so an interrupted run can be resumed",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted collection from --checkpoint",
    )


def _add_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", type=str, default=None, metavar="DIR",
        help="content-addressed artifact cache directory: collected "
        "datasets, features and scores are keyed on their configs and "
        "reused across runs (see `repro cache stats`)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache for this run (compute everything)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", type=str, default=None, metavar="PATH",
        help="write a metrics snapshot (JSON) of the run to PATH "
        "(summarise with `repro report PATH`)",
    )
    parser.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="write structured schema-v1 events (JSONL) to PATH",
    )


def _add_attack(
    parser: argparse.ArgumentParser, default: Optional[str] = "kfp"
) -> None:
    parser.add_argument(
        "--attack", type=str, default=default,
        help="registered attacker to evaluate (list them with "
        "`repro attacks`; default: "
        + ("%(default)s" if default else "all of them")
        + ")",
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for collection/features/forest "
        "(1 = in-process, 0 = one per core; results are bit-identical "
        "for any value)",
    )


def _add_supervise(parser: argparse.ArgumentParser) -> None:
    """Knobs of the crash-tolerant supervisor (see repro.supervise)."""
    parser.add_argument(
        "--max-worker-restarts", type=int, default=5, metavar="N",
        help="pool rebuilds tolerated after worker deaths before the "
        "circuit breaker trips and collection degrades to serial "
        "in-process execution (recovery replays position-seeded work, "
        "so results stay bit-identical)",
    )
    parser.add_argument(
        "--quarantine", action=argparse.BooleanOptionalAction, default=True,
        help="exclude a trial that repeatedly kills workers and keep "
        "going (--no-quarantine fails the run instead)",
    )


def _supervisor_config(args):
    """The run's SupervisorConfig (flag-driven; defaults elsewhere)."""
    from repro.supervise import SupervisorConfig

    return SupervisorConfig(
        max_worker_restarts=getattr(args, "max_worker_restarts", 5),
        quarantine=getattr(args, "quarantine", True),
    )


def _validate_common(parser: argparse.ArgumentParser, args) -> None:
    """Reject bad argument combinations via parser.error (no tracebacks)."""
    if getattr(args, "seed", 0) is not None and getattr(args, "seed", 0) < 0:
        parser.error(f"--seed must be >= 0, got {args.seed}")
    if getattr(args, "samples", 1) is not None and getattr(args, "samples", 1) < 1:
        parser.error(f"--samples must be >= 1, got {args.samples}")
    folds = getattr(args, "folds", 5)
    if folds is not None and folds < 2:
        parser.error(f"--folds must be >= 2, got {folds}")
    dataset = getattr(args, "dataset", None)
    if dataset is not None and not os.path.exists(dataset):
        parser.error(f"--dataset file not found: {dataset}")
    if getattr(args, "resume", False) and hasattr(args, "checkpoint"):
        # Campaign resume needs no checkpoint path — the campaign
        # directory is the durable state; this pairing applies only to
        # subcommands that expose --checkpoint.
        if args.checkpoint is None:
            parser.error("--resume requires --checkpoint")
        if dataset is not None:
            parser.error("--resume collects traces; incompatible with --dataset")
    workers = getattr(args, "workers", 1)
    if workers is not None and workers < 0:
        parser.error(f"--workers must be >= 0, got {workers}")
    restarts = getattr(args, "max_worker_restarts", 0)
    if restarts is not None and restarts < 0:
        parser.error(f"--max-worker-restarts must be >= 0, got {restarts}")
    cache = getattr(args, "cache", None)
    if cache is not None and os.path.isfile(cache):
        parser.error(f"--cache must be a directory, not a file: {cache}")
    sites = getattr(args, "sites", None)
    if sites is not None and sites < 1:
        parser.error(f"--sites must be >= 1, got {sites}")
    shard_size = getattr(args, "shard_size", None)
    if shard_size is not None and shard_size < 1:
        parser.error(f"--shard-size must be >= 1, got {shard_size}")
    retries = getattr(args, "retries", None)
    if retries is not None and retries < 1:
        parser.error(f"--retries must be >= 1, got {retries}")
    attack = getattr(args, "attack", None)
    if attack is not None:
        from repro.attacks.registry import implemented_attacks

        if attack.lower() not in implemented_attacks():
            parser.error(
                f"unknown attack {attack!r}; choose from "
                f"{', '.join(implemented_attacks())}"
            )


def _store(args):
    """The run's :class:`~repro.cache.ArtifactStore` (or None).

    ``--no-cache`` wins over ``--cache``.  The store is memoised on
    ``args`` so ``main()`` can flush its per-run counters at exit.
    """
    if getattr(args, "_cache_store", None) is not None:
        return args._cache_store
    path = getattr(args, "cache", None)
    if path is None or getattr(args, "no_cache", False):
        return None
    from repro.cache import ArtifactStore

    args._cache_store = ArtifactStore(path)
    return args._cache_store


def _load_or_collect(args, config, cache=None):
    from repro.capture.serialize import load_dataset

    if args.dataset:
        return load_dataset(args.dataset)
    if getattr(args, "checkpoint", None):
        from repro.experiments.runner import RunnerConfig, collect_resilient
        from repro.web.sites import SITE_CATALOG

        dataset, report = collect_resilient(
            sorted(SITE_CATALOG),
            config.n_samples,
            pageload_config=config.pageload,
            seed=config.seed,
            runner_config=RunnerConfig(
                checkpoint_path=args.checkpoint, workers=config.workers,
                supervisor=_supervisor_config(args),
            ),
            resume=args.resume,
            cache=cache,
        )
        print(f"collection: {report.summary()}", file=sys.stderr)
        return dataset
    from repro.web.pageload import collect_dataset

    return collect_dataset(
        n_samples=config.n_samples, config=config.pageload, seed=config.seed,
        workers=config.workers, cache=cache,
        supervisor=_supervisor_config(args),
    )


def _config(args):
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        n_samples=args.samples,
        seed=args.seed,
        n_folds=getattr(args, "folds", 5),
        workers=getattr(args, "workers", 1),
    )


def _emit(text: str, out: Optional[str]) -> None:
    """Print rendered results; also persist them when --out is given.

    Written atomically (:mod:`repro.ioutil`): ``--out`` often points at
    a tracked ``results/`` file, and an interrupt mid-write must not
    replace a good previous result with a truncated one.
    """
    print(text)
    if out:
        from repro.ioutil import atomic_write_text

        atomic_write_text(out, text + "\n")


def cmd_collect(args) -> int:
    from repro.capture.serialize import save_dataset

    config = _config(args)
    started = time.time()
    dataset = _load_or_collect(args, config, _store(args))
    save_dataset(dataset, args.out)
    print(
        f"saved {dataset.num_traces} traces "
        f"({len(dataset.labels)} sites) to {args.out} "
        f"in {time.time() - started:.1f}s"
    )
    return 0


def cmd_table1(args) -> int:
    from repro.experiments.table1 import format_table1, run_table1

    rows = run_table1(_config(args))
    print(format_table1(rows))
    return 0


def cmd_table2(args) -> int:
    from repro.experiments.table2 import format_table2, run_table2

    config = _config(args)
    store = _store(args)
    # Only materialise a dataset up front when one is supplied or
    # checkpointed collection is requested; otherwise run_table2's
    # cached chain collects lazily (a fully-warm run collects nothing).
    dataset = None
    if args.dataset or getattr(args, "checkpoint", None):
        dataset = _load_or_collect(args, config, store)
    table = run_table2(config, dataset=dataset, cache=store, attack=args.attack)
    _emit(format_table2(table, attack=args.attack), args.out)
    return 0


def cmd_figure3(args) -> int:
    from repro.experiments.figure3 import (
        Figure3Config,
        format_figure3,
        run_figure3,
    )

    config = Figure3Config()
    if args.alphas:
        config = Figure3Config(alphas=args.alphas)
    points = run_figure3(config)
    print(format_figure3(points))
    return 0


def cmd_censorship(args) -> int:
    from repro.experiments.censorship import (
        detection_delay,
        format_censorship,
        run_censorship_curve,
    )

    config = _config(args)
    dataset = _load_or_collect(args, config)
    points = run_censorship_curve(config, dataset=dataset)
    lines = [format_censorship(points), ""]
    lines.append("First prefix reaching 90% accuracy per condition:")
    for name, n in sorted(detection_delay(points).items()):
        lines.append(f"  {name:<10} {n if n is not None else '> sweep'}")
    _emit("\n".join(lines), args.out)
    return 0


def cmd_cca_interplay(args) -> int:
    from repro.experiments.cca_interplay import format_interplay, run_interplay

    results = run_interplay(seed=args.seed)
    print(format_interplay(results))
    return 0


def cmd_cca_id(args) -> int:
    from repro.experiments.cca_identification import (
        format_cca_id,
        run_cca_identification,
    )

    result = run_cca_identification(seed=args.seed)
    print(format_cca_id(result))
    return 0


def cmd_work_conservation(args) -> int:
    from repro.experiments.work_conservation import (
        format_work_conservation,
        run_work_conservation,
    )

    results = run_work_conservation(seed=args.seed)
    print(format_work_conservation(results))
    return 0


def cmd_open_world(args) -> int:
    from repro.experiments.open_world import format_open_world, run_open_world

    results = run_open_world(seed=args.seed, attack=args.attack)
    print(format_open_world(results, attack=args.attack))
    return 0


def cmd_robustness(args) -> int:
    from repro.experiments.attack_robustness import (
        format_attack_robustness,
        run_attack_robustness,
    )

    config = _config(args)
    dataset = None
    if args.dataset or getattr(args, "checkpoint", None):
        dataset = _load_or_collect(args, config, _store(args))
    attacks = [args.attack] if args.attack else None
    cells = run_attack_robustness(config, dataset=dataset, attacks=attacks)
    _emit(format_attack_robustness(cells), args.out)
    return 0


def cmd_attacks(args) -> int:
    from repro.attacks.registry import ATTACK_TAXONOMY, implemented_attacks

    lines = [
        "Registered website-fingerprinting attacks "
        "(usable as --attack NAME):",
        f"{'attack':<8} {'family':<20} {'class':<18} features",
    ]
    for info in ATTACK_TAXONOMY:
        lines.append(
            f"{info.attack:<8} {info.family:<20} "
            f"{info.implemented_as:<18} {info.features}"
        )
        if info.notes:
            lines.append(f"{'':8} {info.notes}")
    lines.append("")
    lines.append(f"implemented: {', '.join(implemented_attacks())}")
    print("\n".join(lines))
    return 0


def cmd_quic_vs_tcp(args) -> int:
    from repro.experiments.quic_vs_tcp import (
        format_quic_vs_tcp,
        run_quic_vs_tcp,
    )

    config = _config(args)
    dataset = _load_or_collect(args, config) if args.dataset else None
    result = run_quic_vs_tcp(config, tcp_dataset=dataset)
    _emit(format_quic_vs_tcp(result), args.out)
    return 0


def cmd_enforcement(args) -> int:
    from repro.experiments.enforcement import (
        format_enforcement,
        run_enforcement_gap,
    )

    config = _config(args)
    dataset = _load_or_collect(args, config) if args.dataset else None
    result = run_enforcement_gap(config, raw_dataset=dataset)
    _emit(format_enforcement(result), args.out)
    return 0


def cmd_adverse(args) -> int:
    from repro.experiments.adverse_network import (
        AdverseConfig,
        CONDITION_ORDER,
        default_conditions,
        format_adverse,
        run_adverse,
    )

    conditions = default_conditions()
    if args.conditions is not None:
        wanted = [c.strip() for c in args.conditions.split(",") if c.strip()]
        unknown = sorted(set(wanted) - set(CONDITION_ORDER))
        if unknown:
            args._parser.error(
                f"unknown conditions: {', '.join(unknown)} "
                f"(choose from {', '.join(CONDITION_ORDER)})"
            )
        conditions = {name: conditions[name] for name in wanted}
    from repro.experiments.runner import RunnerConfig

    base = _config(args)
    config = AdverseConfig(
        base=base,
        conditions=conditions,
        runner=RunnerConfig(
            workers=base.workers, supervisor=_supervisor_config(args)
        ),
        checkpoint_dir=args.checkpoint,
    )
    result = run_adverse(config, resume=args.resume, cache=_store(args))
    _emit(format_adverse(result), args.out)
    return 0


def cmd_report(args) -> int:
    from repro.obs.report import format_report

    blocks = []
    for path in args.paths:
        if not os.path.exists(path):
            args._parser.error(f"report file not found: {path}")
        blocks.append(format_report(path))
    print("\n\n".join(blocks))
    return 0


def cmd_sweep(args) -> int:
    from repro.experiments.parameter_sweep import (
        format_parameter_sweep,
        run_parameter_sweep,
    )

    config = _config(args)
    store = _store(args)
    dataset = None
    if args.dataset or getattr(args, "checkpoint", None):
        dataset = _load_or_collect(args, config, store)
    points = run_parameter_sweep(config, dataset=dataset, cache=store)
    _emit(format_parameter_sweep(points), args.out)
    return 0


def cmd_cache(args) -> int:
    from repro.cache import ArtifactStore, aggregate_run_stats

    store = ArtifactStore(args.cache)
    if args.cache_command == "stats":
        stats = store.stats()
        lines = [
            f"cache at {os.path.abspath(args.cache)}",
            f"  entries: {stats.entries}",
            f"  payload bytes: {stats.payload_bytes}",
        ]
        for stage in sorted(stats.by_stage):
            count, nbytes = stats.by_stage[stage]
            lines.append(f"    {stage:>10}: {count} entries, {nbytes} bytes")
        totals = aggregate_run_stats(args.cache)
        lines.append(
            f"  across {totals.get('runs', 0)} recorded runs: "
            f"{totals.get('hits', 0)} hits, {totals.get('misses', 0)} misses, "
            f"{totals.get('writes', 0)} writes, "
            f"{totals.get('corruptions', 0)} corruptions"
        )
        print("\n".join(lines))
        return 0
    if args.cache_command == "gc":
        result = store.gc(max_bytes=args.max_bytes)
        print(
            f"gc: removed {result.removed_entries} entries "
            f"({result.freed_bytes} bytes), pruned {result.pruned_tmp} tmp files"
        )
        return 0
    if args.cache_command == "verify":
        delete = args.delete_corrupt or args.delete
        result = store.verify(delete=delete)
        print(
            f"verify: {result.ok} ok, {len(result.corrupt)} corrupt"
            + (f", {result.deleted} deleted" if delete else "")
        )
        for relpath in result.corrupt:
            print(f"  corrupt: {relpath}")
        # Exit-code convention shared by every verify-style subcommand
        # (`repro cache verify`, `repro campaign verify`): non-zero iff
        # corruption was *found* — deleting/repairing it in the same
        # invocation does not launder the signal, so CI and scripts
        # always notice that corruption existed.
        return 1 if result.corrupt else 0
    args._parser.error(f"unknown cache command {args.cache_command!r}")
    return 2


def cmd_campaign(args) -> int:
    from repro.campaign import (
        CampaignConfig,
        CampaignReader,
        repair_campaign,
        run_campaign,
        verify_campaign,
    )
    from repro.campaign.manifest import config_path

    if args.campaign_command == "run":
        config = None
        if not (args.resume and os.path.exists(config_path(args.dir))):
            config = CampaignConfig(
                n_sites=args.sites,
                n_samples=args.samples,
                shard_size=args.shard_size,
                seed=args.seed,
                defense=args.defense,
                retries=args.retries,
            )
        report = run_campaign(
            args.dir,
            config=config,
            workers=args.workers,
            resume=args.resume,
            supervisor=_supervisor_config(args),
            progress=lambda record: print(
                f"  shard {record.shard_id:05d}: {record.status} "
                f"({record.rows} rows, {len(record.failures)} failed trials)",
                file=sys.stderr,
            ),
        )
        print(
            f"campaign {args.dir}: {len(report.executed)} shards executed, "
            f"{len(report.resumed)} resumed, "
            f"{len(report.adopted_orphans)} orphans adopted, "
            f"{len(report.quarantined)} quarantined, "
            f"{report.trial_failures} trial failures "
            f"[{report.config_digest[:12]}]"
        )
        for shard_id in report.quarantined:
            print(f"  quarantined: shard {shard_id:05d}")
        return 0
    if not os.path.exists(config_path(args.dir)):
        # verify/repair/stats need an existing campaign (`run` returned
        # above); a bad path is an argument error, not a crash.
        args._parser.error(
            f"no campaign at {args.dir!r} (campaign.json not found); "
            "create one with `repro campaign run`"
        )
    if args.campaign_command == "verify":
        report = verify_campaign(args.dir, deep=not args.shallow)
        print(
            f"verify {args.dir}: {len(report.clean)} clean, "
            f"{len(report.findings)} findings, "
            f"{len(report.quarantined)} quarantined, "
            f"{len(report.unexecuted)} unexecuted "
            f"of {report.n_shards} shards"
        )
        for finding in report.findings:
            print(f"  {finding}")
        # Same convention as `repro cache verify`: non-zero iff
        # integrity findings.  Incompleteness (unexecuted/quarantined
        # shards) is reported but is a resume/run concern, not
        # corruption.
        return 1 if report.findings else 0
    if args.campaign_command == "repair":
        report = repair_campaign(
            args.dir, retry_quarantined=args.retry_quarantined
        )
        print(
            f"repair {args.dir}: {len(report.rederived)} shards re-derived "
            f"byte-identically, {len(report.sidecars_rewritten)} sidecars "
            f"rewritten, {len(report.retried)} quarantined retried"
            + (", manifest recovered" if report.manifest_recovered else "")
        )
        for shard_id in report.unrepairable:
            print(
                f"  unrepairable: shard {shard_id:05d} has no recorded "
                "digest; re-execute with `repro campaign run --resume`"
            )
        return 0 if report.ok else 1
    if args.campaign_command == "stats":
        stats = CampaignReader(args.dir, verify=False).stats()
        width = max(len(k) for k in stats)
        print("\n".join(f"  {k:>{width}}: {v}" for k, v in stats.items()))
        return 0
    args._parser.error(f"unknown campaign command {args.campaign_command!r}")
    return 2


def cmd_fuzz(args) -> int:
    from repro.fuzz import QuarantineCorpus, replay_reproducer, run_fuzz
    from repro.fuzz.oracle import DEFAULT_DEADLINE

    deadline = getattr(args, "deadline", None)
    if deadline is None:
        deadline = DEFAULT_DEADLINE
    if args.fuzz_command == "run":
        if args.budget < 1:
            args._parser.error(f"--budget must be >= 1, got {args.budget}")
        report = run_fuzz(
            seed=args.seed,
            budget=args.budget,
            corpus_dir=args.corpus,
            shrink=not args.no_shrink,
            deadline=deadline,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        )
        print(
            f"fuzz seed={args.seed}: {report.scenarios} scenarios, "
            f"{len(report.findings)} findings "
            f"({report.new_entries} new), {report.stalls} stalled visits, "
            f"{report.eval_skipped} eval skips"
        )
        print(f"  campaign digest {report.campaign_digest[:16]}")
        print(f"  corpus digest   {report.corpus_digest[:16]}")
        for bucket, count in sorted(report.bucket_counts().items()):
            print(f"  bucket {bucket}: {count} scenario(s)")
        # Exit-1-iff-finding (the cache/campaign verify convention):
        # new quarantine entries mean a live bug, known ones included —
        # pre-existing corpus entries alone don't re-fail the run.
        return 1 if report.new_entries else 0
    if args.fuzz_command == "replay":
        if not os.path.exists(args.reproducer):
            args._parser.error(f"no reproducer at {args.reproducer!r}")
        result = replay_reproducer(args.reproducer, deadline=deadline)
        if result.reproduced:
            print(
                f"reproduced {result.recorded_bucket}: {result.message}"
            )
            return 1
        if result.observed_bucket is not None:
            print(
                f"bucket changed: recorded {result.recorded_bucket}, "
                f"observed {result.observed_bucket}: {result.message}"
            )
        else:
            print(f"fixed: {result.recorded_bucket} no longer reproduces")
        return 0
    if args.fuzz_command == "corpus":
        corpus = QuarantineCorpus(args.corpus)
        buckets = corpus.buckets()
        entries = corpus.entries()
        print(
            f"corpus {args.corpus}: {len(entries)} reproducers in "
            f"{len(buckets)} buckets [{corpus.digest()[:16]}]"
        )
        for bucket, paths in sorted(buckets.items()):
            print(f"  {bucket}: {len(paths)}")
            for path in paths:
                print(f"    {path}")
        return 0
    args._parser.error(f"unknown fuzz command {args.fuzz_command!r}")
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stob (HotNets '25) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="collect and save the 9-site dataset")
    _add_common(p)
    _add_dataset_opts(
        p, out_help="write the dataset .npz here", out_default="dataset.npz"
    )
    _add_workers(p)
    _add_supervise(p)
    _add_cache(p)
    _add_obs(p)
    p.set_defaults(func=cmd_collect)

    p = sub.add_parser("table1", help="defense taxonomy + overheads")
    _add_common(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="attack accuracy grid (default k-FP)")
    _add_common(p)
    _add_dataset_opts(p)
    _add_attack(p)
    _add_workers(p)
    _add_supervise(p)
    _add_cache(p)
    _add_obs(p)
    p.set_defaults(func=cmd_table2)

    def _alpha_list(text: str) -> tuple:
        try:
            return tuple(int(a) for a in text.split(","))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"alphas must be comma-separated integers, got {text!r}"
            )

    p = sub.add_parser("figure3", help="throughput vs reduction degree")
    _add_common(p)
    p.add_argument(
        "--alphas", type=_alpha_list, default=None,
        help="comma-separated reduction degrees (default 0..100 step 10)",
    )
    p.set_defaults(func=cmd_figure3)

    p = sub.add_parser("censorship", help="accuracy vs prefix length")
    _add_common(p)
    _add_dataset_opts(p)
    _add_workers(p)
    p.set_defaults(func=cmd_censorship)

    p = sub.add_parser("cca-interplay", help="§5.1 goodput grid")
    _add_common(p)
    p.set_defaults(func=cmd_cca_interplay)

    p = sub.add_parser("cca-id", help="§5.2 CCA identification")
    _add_common(p)
    p.set_defaults(func=cmd_cca_id)

    p = sub.add_parser(
        "work-conservation",
        help="§2.3 primitives vs a sharing bulk flow",
    )
    _add_common(p)
    p.set_defaults(func=cmd_work_conservation)

    p = sub.add_parser("open-world", help="open-world attack evaluation")
    _add_common(p)
    _add_attack(p)
    p.set_defaults(func=cmd_open_world)

    p = sub.add_parser(
        "robustness",
        help="attacker x defense accuracy grid (full traces)",
    )
    _add_common(p)
    _add_dataset_opts(p)
    _add_attack(p, default=None)
    _add_workers(p)
    _add_supervise(p)
    _add_cache(p)
    _add_obs(p)
    p.set_defaults(func=cmd_robustness)

    p = sub.add_parser(
        "attacks",
        help="list registered attacks (the --attack choices)",
    )
    p.set_defaults(func=cmd_attacks)

    p = sub.add_parser("quic-vs-tcp", help="fingerprintability across transports")
    _add_common(p)
    _add_dataset_opts(p)
    _add_workers(p)
    p.set_defaults(func=cmd_quic_vs_tcp)

    p = sub.add_parser(
        "enforcement",
        help="emulated vs stack-enforced defense comparison",
    )
    _add_common(p)
    _add_dataset_opts(p)
    _add_workers(p)
    p.set_defaults(func=cmd_enforcement)

    p = sub.add_parser(
        "adverse",
        help="k-FP grid under clean/bursty-loss/link-flap conditions",
    )
    _add_common(p)
    _add_dataset_opts(p)
    p.add_argument(
        "--conditions", type=str, default=None,
        help="comma-separated subset of clean,bursty,flap (default: all)",
    )
    _add_workers(p)
    _add_supervise(p)
    _add_cache(p)
    _add_obs(p)
    p.set_defaults(func=cmd_adverse)

    p = sub.add_parser(
        "sweep",
        help="split-threshold x delay-intensity countermeasure sweep",
    )
    _add_common(p)
    _add_dataset_opts(p)
    _add_workers(p)
    _add_supervise(p)
    _add_cache(p)
    _add_obs(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "cache",
        help="inspect or maintain a --cache artifact store",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry/byte counts per stage plus hit/miss totals"),
        ("gc", "prune stale tmp files; evict oldest entries over --max-bytes"),
        ("verify", "re-hash every artifact, report (and optionally delete) corruption"),
    ):
        cp = cache_sub.add_parser(name, help=help_text)
        cp.add_argument(
            "--cache", type=str, required=True, metavar="DIR",
            help="artifact cache directory",
        )
        if name == "gc":
            cp.add_argument(
                "--max-bytes", type=int, default=None,
                help="evict least-recently-modified entries until the "
                "payload total fits this budget",
            )
        if name == "verify":
            cp.add_argument(
                "--delete-corrupt", action="store_true",
                help="delete corrupt entries (they recompute on demand); "
                "the exit code still reports that corruption was found",
            )
            cp.add_argument(
                "--delete", action="store_true", help=argparse.SUPPRESS,
            )
        cp.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "campaign",
        help="sharded large-scale collection with integrity + repair",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    cp = campaign_sub.add_parser(
        "run", help="run (or --resume) a sharded campaign into DIR"
    )
    cp.add_argument("dir", help="campaign directory")
    cp.add_argument(
        "--sites", type=int, default=1000,
        help="generated sites (repro.web.generator profiles)",
    )
    cp.add_argument("--samples", type=int, default=10, help="visits per site")
    cp.add_argument(
        "--shard-size", type=int, default=100,
        help="trials per shard (the unit of durability and repair)",
    )
    cp.add_argument("--seed", type=int, default=2025, help="master seed")
    cp.add_argument(
        "--defense", type=str, default=None,
        help="registered defense applied to every trace (default: none)",
    )
    cp.add_argument(
        "--retries", type=int, default=2,
        help="attempts per trial before it is recorded failed",
    )
    cp.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted campaign from its last durable "
        "shard (config flags are ignored; campaign.json is authoritative)",
    )
    _add_workers(cp)
    _add_supervise(cp)
    _add_obs(cp)
    cp.set_defaults(func=cmd_campaign)

    cp = campaign_sub.add_parser(
        "verify",
        help="check every shard's digests/records; exit 1 iff corrupt",
    )
    cp.add_argument("dir", help="campaign directory")
    cp.add_argument(
        "--shallow", action="store_true",
        help="skip decoding archives (digest and record checks only)",
    )
    _add_obs(cp)
    cp.set_defaults(func=cmd_campaign)

    cp = campaign_sub.add_parser(
        "repair",
        help="re-derive damaged shards byte-identically; rebuild the "
        "manifest from sidecars if needed",
    )
    cp.add_argument("dir", help="campaign directory")
    cp.add_argument(
        "--retry-quarantined", action="store_true",
        help="also re-execute quarantined shards (success replaces the "
        "quarantine record)",
    )
    _add_obs(cp)
    cp.set_defaults(func=cmd_campaign)

    cp = campaign_sub.add_parser(
        "stats", help="summarise a campaign directory (records only)"
    )
    cp.add_argument("dir", help="campaign directory")
    cp.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "fuzz",
        help="deterministic pipeline fuzzing with an invariant oracle",
    )
    fuzz_sub = p.add_subparsers(dest="fuzz_command", required=True)

    cp = fuzz_sub.add_parser(
        "run",
        help="fuzz BUDGET scenarios of campaign SEED; exit 1 iff a new "
        "reproducer was quarantined",
    )
    cp.add_argument("--seed", type=int, default=0, help="campaign seed")
    cp.add_argument(
        "--budget", type=int, default=200,
        help="scenarios to run (indices 0..budget-1)",
    )
    cp.add_argument(
        "--corpus", type=str, default="fuzz-corpus",
        help="quarantine corpus directory (created on first finding)",
    )
    cp.add_argument(
        "--no-shrink", action="store_true",
        help="quarantine findings as sampled, without minimisation",
    )
    cp.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock seconds per scenario before a hang becomes a "
        "finding (default: the oracle's built-in budget)",
    )
    _add_obs(cp)
    cp.set_defaults(func=cmd_fuzz)

    cp = fuzz_sub.add_parser(
        "replay",
        help="re-run one quarantined reproducer; exit 1 iff its bug "
        "still fires",
    )
    cp.add_argument("reproducer", help="reproducer JSON file")
    cp.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock seconds before a hang counts as reproduced",
    )
    _add_obs(cp)
    cp.set_defaults(func=cmd_fuzz)

    cp = fuzz_sub.add_parser(
        "corpus", help="list a quarantine corpus by crash bucket"
    )
    cp.add_argument("corpus", help="corpus directory")
    cp.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "report",
        help="summarise --metrics / --trace files from an earlier run",
    )
    p.add_argument("paths", nargs="+", help="metrics (.json) or trace (.jsonl) files")
    p.set_defaults(func=cmd_report)
    return parser


def _flush_cache_stats(args) -> None:
    """Persist the run's hit/miss counters so `repro cache stats` can
    report totals across invocations."""
    store = getattr(args, "_cache_store", None)
    if store is not None:
        store.write_run_stats()


def _report_terminated(args) -> int:
    """SIGTERM landed mid-run: the runner already wrote its final
    checkpoint before unwinding, so exit cleanly with the conventional
    128+SIGTERM status instead of a traceback."""
    print(
        f"repro {args.command}: terminated by SIGTERM; "
        "checkpoint written, resume with --resume",
        file=sys.stderr,
    )
    return 143


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_common(parser, args)
    args._parser = parser
    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    if metrics_path is None and trace_path is None:
        try:
            return args.func(args)
        except RunTerminated:
            return _report_terminated(args)
        finally:
            _flush_cache_stats(args)

    # Observability must be live before any simulator/endpoint is
    # constructed — components bind their instruments at build time.
    from repro.obs import runtime as obs_runtime

    session = obs_runtime.enable(trace_path=trace_path)
    exit_code = 1
    try:
        session.emit("run.start", "cli", command=args.command)
        try:
            exit_code = args.func(args)
        except RunTerminated:
            exit_code = _report_terminated(args)
        return exit_code
    finally:
        _flush_cache_stats(args)
        session.emit("run.end", "cli", command=args.command, exit_code=exit_code)
        if metrics_path is not None:
            session.registry.dump(metrics_path)
        obs_runtime.disable()


if __name__ == "__main__":
    sys.exit(main())
