"""Command-line interface: ``repro <experiment> [options]``.

Each subcommand regenerates one table/figure of the paper:

* ``repro table1`` — defense taxonomy + measured overheads;
* ``repro table2`` — k-FP accuracy grid (slow: collects the dataset);
* ``repro figure3`` — throughput vs reduction-degree sweep;
* ``repro censorship`` — accuracy vs prefix-length curves;
* ``repro cca-interplay`` — §5.1 goodput grid;
* ``repro cca-id`` — §5.2 CCA identification;
* ``repro collect`` — collect and save the 9-site dataset for reuse.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2025, help="master seed")
    parser.add_argument(
        "--samples", type=int, default=100, help="page loads per site"
    )
    parser.add_argument(
        "--dataset", type=str, default=None,
        help="path of a dataset .npz to reuse (see `repro collect`)",
    )


def _load_or_collect(args, config):
    from repro.capture.serialize import load_dataset
    from repro.web.pageload import collect_dataset

    if args.dataset:
        return load_dataset(args.dataset)
    return collect_dataset(
        n_samples=config.n_samples, config=config.pageload, seed=config.seed
    )


def _config(args):
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(n_samples=args.samples, seed=args.seed)


def cmd_collect(args) -> int:
    from repro.capture.serialize import save_dataset

    config = _config(args)
    started = time.time()
    dataset = _load_or_collect(args, config)
    save_dataset(dataset, args.out)
    print(
        f"saved {dataset.num_traces} traces "
        f"({len(dataset.labels)} sites) to {args.out} "
        f"in {time.time() - started:.1f}s"
    )
    return 0


def cmd_table1(args) -> int:
    from repro.experiments.table1 import format_table1, run_table1

    rows = run_table1(_config(args))
    print(format_table1(rows))
    return 0


def cmd_table2(args) -> int:
    from repro.experiments.table2 import format_table2, run_table2

    config = _config(args)
    dataset = _load_or_collect(args, config)
    table = run_table2(config, dataset=dataset)
    print(format_table2(table))
    return 0


def cmd_figure3(args) -> int:
    from repro.experiments.figure3 import (
        Figure3Config,
        format_figure3,
        run_figure3,
    )

    config = Figure3Config()
    if args.alphas:
        config = Figure3Config(
            alphas=tuple(int(a) for a in args.alphas.split(","))
        )
    points = run_figure3(config)
    print(format_figure3(points))
    return 0


def cmd_censorship(args) -> int:
    from repro.experiments.censorship import (
        detection_delay,
        format_censorship,
        run_censorship_curve,
    )

    config = _config(args)
    dataset = _load_or_collect(args, config)
    points = run_censorship_curve(config, dataset=dataset)
    print(format_censorship(points))
    print("\nFirst prefix reaching 90% accuracy per condition:")
    for name, n in sorted(detection_delay(points).items()):
        print(f"  {name:<10} {n if n is not None else '> sweep'}")
    return 0


def cmd_cca_interplay(args) -> int:
    from repro.experiments.cca_interplay import format_interplay, run_interplay

    results = run_interplay(seed=args.seed)
    print(format_interplay(results))
    return 0


def cmd_cca_id(args) -> int:
    from repro.experiments.cca_identification import (
        format_cca_id,
        run_cca_identification,
    )

    result = run_cca_identification(seed=args.seed)
    print(format_cca_id(result))
    return 0


def cmd_work_conservation(args) -> int:
    from repro.experiments.work_conservation import (
        format_work_conservation,
        run_work_conservation,
    )

    results = run_work_conservation(seed=args.seed)
    print(format_work_conservation(results))
    return 0


def cmd_open_world(args) -> int:
    from repro.experiments.open_world import format_open_world, run_open_world

    results = run_open_world(seed=args.seed)
    print(format_open_world(results))
    return 0


def cmd_quic_vs_tcp(args) -> int:
    from repro.experiments.quic_vs_tcp import (
        format_quic_vs_tcp,
        run_quic_vs_tcp,
    )

    config = _config(args)
    dataset = _load_or_collect(args, config) if args.dataset else None
    result = run_quic_vs_tcp(config, tcp_dataset=dataset)
    print(format_quic_vs_tcp(result))
    return 0


def cmd_enforcement(args) -> int:
    from repro.experiments.enforcement import (
        format_enforcement,
        run_enforcement_gap,
    )

    config = _config(args)
    dataset = _load_or_collect(args, config) if args.dataset else None
    result = run_enforcement_gap(config, raw_dataset=dataset)
    print(format_enforcement(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stob (HotNets '25) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="collect and save the 9-site dataset")
    _add_common(p)
    p.add_argument("--out", type=str, default="dataset.npz")
    p.set_defaults(func=cmd_collect)

    p = sub.add_parser("table1", help="defense taxonomy + overheads")
    _add_common(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="k-FP accuracy grid")
    _add_common(p)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("figure3", help="throughput vs reduction degree")
    _add_common(p)
    p.add_argument(
        "--alphas", type=str, default=None,
        help="comma-separated reduction degrees (default 0..100 step 10)",
    )
    p.set_defaults(func=cmd_figure3)

    p = sub.add_parser("censorship", help="accuracy vs prefix length")
    _add_common(p)
    p.set_defaults(func=cmd_censorship)

    p = sub.add_parser("cca-interplay", help="§5.1 goodput grid")
    _add_common(p)
    p.set_defaults(func=cmd_cca_interplay)

    p = sub.add_parser("cca-id", help="§5.2 CCA identification")
    _add_common(p)
    p.set_defaults(func=cmd_cca_id)

    p = sub.add_parser(
        "work-conservation",
        help="§2.3 primitives vs a sharing bulk flow",
    )
    _add_common(p)
    p.set_defaults(func=cmd_work_conservation)

    p = sub.add_parser("open-world", help="open-world k-FP evaluation")
    _add_common(p)
    p.set_defaults(func=cmd_open_world)

    p = sub.add_parser("quic-vs-tcp", help="fingerprintability across transports")
    _add_common(p)
    p.set_defaults(func=cmd_quic_vs_tcp)

    p = sub.add_parser(
        "enforcement",
        help="emulated vs stack-enforced defense comparison",
    )
    _add_common(p)
    p.set_defaults(func=cmd_enforcement)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
