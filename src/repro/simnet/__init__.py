"""Discrete-event network simulator.

The simulator is intentionally small and fully deterministic: a binary
heap of timestamped events, links that model serialization plus
propagation delay, drop-tail queues, and a :class:`~repro.simnet.path.NetworkPath`
convenience wrapper describing an end-to-end path (rate, RTT, buffer).

All higher layers (``repro.stack``, ``repro.web``) are built on this
package.
"""

from repro.simnet.engine import Event, EventLoop, Simulator
from repro.simnet.entities import DropTailQueue, Link, Wire
from repro.simnet.path import NetworkPath

__all__ = [
    "Event",
    "EventLoop",
    "Simulator",
    "DropTailQueue",
    "Link",
    "Wire",
    "NetworkPath",
]
