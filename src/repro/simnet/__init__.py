"""Discrete-event network simulator.

The simulator is intentionally small and fully deterministic: a binary
heap of timestamped events, links that model serialization plus
propagation delay, drop-tail queues, and a :class:`~repro.simnet.path.NetworkPath`
convenience wrapper describing an end-to-end path (rate, RTT, buffer).
``repro.simnet.faults`` layers composable fault processes (bursty
loss, link flaps, reordering, duplication, bandwidth degradation) onto
links for adverse-network experiments.

All higher layers (``repro.stack``, ``repro.web``) are built on this
package.
"""

from repro.simnet.engine import Event, EventLoop, Simulator
from repro.simnet.entities import DropTailQueue, Link, LinkStats, Wire
from repro.simnet.faults import (
    BandwidthScheduleSpec,
    BlackoutSpec,
    DuplicateSpec,
    FaultPlan,
    FaultSpec,
    GilbertElliottSpec,
    LinkFlapSpec,
    ReorderSpec,
    bursty_loss_spec,
    link_flap_spec,
)
from repro.simnet.path import NetworkPath

__all__ = [
    "Event",
    "EventLoop",
    "Simulator",
    "DropTailQueue",
    "Link",
    "LinkStats",
    "Wire",
    "NetworkPath",
    "FaultPlan",
    "FaultSpec",
    "GilbertElliottSpec",
    "LinkFlapSpec",
    "BlackoutSpec",
    "ReorderSpec",
    "DuplicateSpec",
    "BandwidthScheduleSpec",
    "bursty_loss_spec",
    "link_flap_spec",
]
