"""Event loop for the discrete-event simulator.

The core abstraction is :class:`Simulator`: a priority queue of heap
entries ordered by ``(time, sequence)``.  The sequence number makes
event ordering fully deterministic when several events are scheduled
for the same instant — crucial for reproducible experiments.

The hot path is tuple-keyed (DESIGN §13): each heap entry is a plain
``(time, seq, event, action)`` tuple, so ``heapq`` compares machine
floats and ints in C instead of calling a dataclass ``__lt__`` per
comparison (``Event.__lt__`` was ~13 % of page-load simulation time).
Two scheduling tiers share the heap and one sequence counter:

* :meth:`schedule` / :meth:`schedule_at` — allocate an :class:`Event`
  handle supporting O(1) lazy cancellation (timers: RTO, delayed ACK);
* :meth:`call_later` / :meth:`call_at` / :meth:`schedule_batch` — no
  handle, no cancellation, no allocation beyond the tuple; the bulk of
  simulation events (link transits, qdisc releases) never need to be
  cancelled and take this path.

Because both tiers draw from the same counter, ties still fire in
exact scheduling order regardless of which API scheduled them.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(0.5, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[0.5, 1.0]
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.obs import runtime as _obs_runtime
from repro.obs.metrics import pow2_edges

#: Fixed bucket edges for the queue-depth histogram (deterministic
#: output requires edges that never depend on the data).
QUEUE_DEPTH_EDGES = pow2_edges(1, 1 << 16)


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire
    in the order they were scheduled.  ``cancelled`` events stay in the
    heap but are skipped when popped (lazy deletion), which keeps
    cancellation O(1).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the loop skips it."""
        self.cancelled = True


class EventLoop:
    """A deterministic min-heap event loop with a simulated clock."""

    def __init__(self) -> None:
        # Heap entries are (time, seq, event, action): `event` is an
        # Event handle for cancellable entries, None for the fast path.
        # seq is unique, so tuple comparison never reaches element 2.
        self._heap: List[Tuple[float, int, Optional[Event], Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        # Observability: instrument handles are resolved once here so
        # the disabled path costs the loop a single `is not None` check
        # per run() call — never per event.
        obs = _obs_runtime.session()
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._obs_events = registry.counter("simnet.events_processed")
            self._obs_sim_seconds = registry.counter("simnet.sim_seconds")
            self._obs_wall = registry.timer("simnet.wall")
            self._obs_depth = registry.histogram(
                "simnet.queue_depth", QUEUE_DEPTH_EDGES
            )
            self._obs_depth_max = registry.gauge("simnet.queue_depth.max")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # -- cancellable tier --------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        A negative delay is a programming error: the simulated past is
        immutable.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, (when, event.seq, event, action))
        return event

    # -- fast (non-cancellable) tier ---------------------------------------

    def call_later(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` after ``delay`` seconds, with no
        cancellation handle (and no per-event allocation)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        heapq.heappush(self._heap, (when, next(self._seq), None, action))

    def call_at(self, when: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at absolute time ``when``, with no
        cancellation handle."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        heapq.heappush(self._heap, (when, next(self._seq), None, action))

    def schedule_batch(
        self,
        times: Iterable[float],
        action: Callable[[], None],
    ) -> None:
        """Schedule ``action`` once per entry of ``times`` (absolute).

        Sequence numbers are assigned in iteration order, so ties fire
        in the order given — the batched equivalent of repeated
        :meth:`call_at` calls.  Used by the link layer to post a whole
        transit burst (service completion times come from one vectorized
        cumulative sum) in a single call.
        """
        heap = self._heap
        seq = self._seq
        now = self._now
        push = heapq.heappush
        for when in times:
            if when < now:
                raise ValueError(
                    f"cannot schedule at {when} before current time {now}"
                )
            push(heap, (when, next(seq), None, action))

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Run the next non-cancelled event.  Return False when empty."""
        heap = self._heap
        while heap:
            when, _seq, event, action = heapq.heappop(heap)
            if event is not None and event.cancelled:
                continue
            # The clock never goes backwards; schedule() guards the heap.
            self._now = when
            action()
            self._processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` more events have been executed.

        ``until`` is an absolute simulated time; events scheduled later
        than it remain in the heap and the clock is advanced to exactly
        ``until`` (so a subsequent ``run`` continues seamlessly).
        """
        if self._obs is None:
            self._run_loop(until, max_events)
            return
        # Instrumented path: aggregate per run() slice, not per event,
        # so the event loop itself stays untouched.
        depth = len(self._heap)
        processed_before = self._processed
        sim_before = self._now
        wall_before = time.perf_counter()
        try:
            self._run_loop(until, max_events)
        finally:
            self._obs_wall.record(time.perf_counter() - wall_before)
            self._obs_events.add(self._processed - processed_before)
            self._obs_sim_seconds.add(self._now - sim_before)
            if depth:
                self._obs_depth.observe(depth)
                gauge = self._obs_depth_max
                if gauge.max is None or depth > gauge.max:
                    gauge.set(depth)

    def _run_loop(
        self,
        until: Optional[float],
        max_events: Optional[int],
    ) -> None:
        """The uninstrumented core of :meth:`run`."""
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                return
            head = heap[0]
            event = head[2]
            if event is not None and event.cancelled:
                pop(heap)
                continue
            when = head[0]
            if until is not None and when > until:
                if self._now < until:
                    self._now = until
                return
            pop(heap)
            self._now = when
            head[3]()
            self._processed += 1
            executed += 1
        if until is not None and self._now < until:
            self._now = until


class Simulator(EventLoop):
    """The top-level simulation object handed to every component.

    It is exactly an :class:`EventLoop` plus a tiny bit of shared
    state: a monotonically increasing packet-id counter used by the
    stack layers to tag packets for tracing.
    """

    def __init__(self) -> None:
        super().__init__()
        self._packet_ids = itertools.count(1)

    def next_packet_id(self) -> int:
        """Return a fresh unique packet identifier."""
        return next(self._packet_ids)
