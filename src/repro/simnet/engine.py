"""Event loop for the discrete-event simulator.

The core abstraction is :class:`Simulator`: a priority queue of
:class:`Event` objects ordered by ``(time, sequence)``.  The sequence
number makes event ordering fully deterministic when several events are
scheduled for the same instant — crucial for reproducible experiments.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(0.5, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[0.5, 1.0]
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs import runtime as _obs_runtime
from repro.obs.metrics import pow2_edges

#: Fixed bucket edges for the queue-depth histogram (deterministic
#: output requires edges that never depend on the data).
QUEUE_DEPTH_EDGES = pow2_edges(1, 1 << 16)


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire
    in the order they were scheduled.  ``cancelled`` events stay in the
    heap but are skipped when popped (lazy deletion), which keeps
    cancellation O(1).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the loop skips it."""
        self.cancelled = True


class EventLoop:
    """A deterministic min-heap event loop with a simulated clock."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        # Observability: instrument handles are resolved once here so
        # the disabled path costs the loop a single `is not None` check
        # per run() call — never per event.
        obs = _obs_runtime.session()
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._obs_events = registry.counter("simnet.events_processed")
            self._obs_sim_seconds = registry.counter("simnet.sim_seconds")
            self._obs_wall = registry.timer("simnet.wall")
            self._obs_depth = registry.histogram(
                "simnet.queue_depth", QUEUE_DEPTH_EDGES
            )
            self._obs_depth_max = registry.gauge("simnet.queue_depth.max")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        A negative delay is a programming error: the simulated past is
        immutable.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next non-cancelled event.  Return False when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            # The clock never goes backwards; schedule() guards the heap.
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` more events have been executed.

        ``until`` is an absolute simulated time; events scheduled later
        than it remain in the heap and the clock is advanced to exactly
        ``until`` (so a subsequent ``run`` continues seamlessly).
        """
        if self._obs is None:
            self._run_loop(until, max_events)
            return
        # Instrumented path: aggregate per run() slice, not per event,
        # so the event loop itself stays untouched.
        depth = len(self._heap)
        processed_before = self._processed
        sim_before = self._now
        wall_before = time.perf_counter()
        try:
            self._run_loop(until, max_events)
        finally:
            self._obs_wall.record(time.perf_counter() - wall_before)
            self._obs_events.add(self._processed - processed_before)
            self._obs_sim_seconds.add(self._now - sim_before)
            if depth:
                self._obs_depth.observe(depth)
                gauge = self._obs_depth_max
                if gauge.max is None or depth > gauge.max:
                    gauge.set(depth)

    def _run_loop(
        self,
        until: Optional[float],
        max_events: Optional[int],
    ) -> None:
        """The uninstrumented core of :meth:`run`."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            if self.step():
                executed += 1
        if until is not None:
            self._now = max(self._now, until)


class Simulator(EventLoop):
    """The top-level simulation object handed to every component.

    It is exactly an :class:`EventLoop` plus a tiny bit of shared
    state: a monotonically increasing packet-id counter used by the
    stack layers to tag packets for tracing.
    """

    def __init__(self) -> None:
        super().__init__()
        self._packet_ids = itertools.count(1)

    def next_packet_id(self) -> int:
        """Return a fresh unique packet identifier."""
        return next(self._packet_ids)
