"""End-to-end path description and construction helpers.

A :class:`NetworkPath` captures the handful of parameters that matter to
a transport protocol — bottleneck rate, round-trip propagation delay,
bottleneck buffer size, loss and jitter — and can materialise the
forward/reverse :class:`~repro.simnet.entities.Link` pair between two
endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.entities import Link
from repro.simnet.faults import FaultSpec
from repro.units import ETHERNET_MTU, gbps, msec


@dataclass
class NetworkPath:
    """Parameters of an end-to-end network path.

    Attributes
    ----------
    rate:
        Bottleneck rate in bytes/second (both directions).
    rtt:
        Round-trip *propagation* delay in seconds (split evenly between
        the two directions).  Queueing delay comes on top, from the
        bottleneck buffer.
    buffer_bdp:
        Bottleneck drop-tail buffer expressed as a multiple of the
        bandwidth-delay product.  1.0 is the classic "one BDP" router.
    loss_rate:
        Independent random loss probability per packet per direction.
    jitter:
        Maximum uniform extra propagation delay per packet (seconds).
    fault_spec:
        Optional :class:`~repro.simnet.faults.FaultSpec` describing
        richer fault processes (bursty loss, flaps, reordering,
        duplication, bandwidth degradation) materialised independently
        per direction when the links are built.
    """

    rate: float = gbps(1)
    rtt: float = msec(20)
    buffer_bdp: float = 1.0
    loss_rate: float = 0.0
    jitter: float = 0.0
    fault_spec: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"path rate must be positive, got {self.rate}")
        if self.rtt < 0:
            raise ValueError(f"path RTT must be >= 0, got {self.rtt}")
        if self.buffer_bdp < 0:
            raise ValueError(f"buffer_bdp must be >= 0, got {self.buffer_bdp}")

    @property
    def bdp_bytes(self) -> int:
        """Bandwidth-delay product in bytes."""
        return int(self.rate * self.rtt)

    @property
    def buffer_bytes(self) -> int:
        """Bottleneck buffer size in bytes (at least a handful of MTUs,
        so tiny-RTT test paths still behave like store-and-forward
        routers rather than dropping every burst)."""
        return max(int(self.bdp_bytes * self.buffer_bdp), 8 * ETHERNET_MTU)

    @property
    def one_way_delay(self) -> float:
        """Propagation delay of a single direction."""
        return self.rtt / 2.0

    def build_links(
        self,
        sim: Simulator,
        forward_receiver: Callable[[Any], None],
        reverse_receiver: Callable[[Any], None],
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[Link, Link]:
        """Create the forward (data) and reverse (ACK) links.

        The reverse link gets the same parameters; for the dominant
        data-transfer direction the forward link is the bottleneck
        because ACKs are small.
        """
        needs_rng = (
            self.loss_rate > 0 or self.jitter > 0 or self.fault_spec is not None
        )
        if needs_rng and rng is None:
            rng = np.random.default_rng(0)
        forward_faults = reverse_faults = None
        if self.fault_spec is not None:
            forward_faults = self.fault_spec.build_plan(rng)
            reverse_faults = self.fault_spec.build_plan(rng)
        forward = Link(
            sim,
            rate_bytes_per_sec=self.rate,
            propagation_delay=self.one_way_delay,
            receiver=forward_receiver,
            queue_capacity_bytes=self.buffer_bytes,
            loss_rate=self.loss_rate,
            jitter=self.jitter,
            rng=rng,
            faults=forward_faults,
        )
        reverse = Link(
            sim,
            rate_bytes_per_sec=self.rate,
            propagation_delay=self.one_way_delay,
            receiver=reverse_receiver,
            queue_capacity_bytes=self.buffer_bytes,
            loss_rate=self.loss_rate,
            jitter=self.jitter,
            rng=rng,
            faults=reverse_faults,
        )
        return forward, reverse
