"""Network entities: wires, links and drop-tail queues.

A *packet* for this layer is any object exposing a ``wire_size``
attribute (bytes occupied on the wire, headers included).  The stack
layer's :class:`repro.stack.packet.Packet` satisfies this.

``Link`` models the two delays every real link has:

* **serialization** — ``wire_size / rate`` of exclusive transmitter use,
* **propagation** — a constant delay after serialization completes.

Packets arriving while the transmitter is busy wait in a drop-tail
queue; when the queue byte-capacity is exceeded the packet is dropped
(and counted), which is what closed-loop congestion control reacts to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultPlan
from repro.units import serialization_delay

Receiver = Callable[[Any], None]


class Wire:
    """A propagation-delay-only connector (infinite bandwidth).

    Useful for modelling the host-internal hop between stack layers
    where serialization is accounted for elsewhere.
    """

    def __init__(self, sim: Simulator, delay: float, receiver: Receiver) -> None:
        if delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay}")
        self._sim = sim
        self.delay = delay
        self._receiver = receiver
        self.delivered = 0

    def send(self, packet: Any) -> None:
        """Deliver ``packet`` after the propagation delay."""
        self._sim.schedule(self.delay, lambda: self._deliver(packet))

    def _deliver(self, packet: Any) -> None:
        self.delivered += 1
        self._receiver(packet)


class DropTailQueue:
    """A byte-bounded FIFO with drop statistics.

    ``capacity_bytes`` of 0 means "no buffering": a packet is only
    accepted when the queue is empty and the link idle (handled by the
    caller).  ``None`` means unbounded.
    """

    def __init__(self, capacity_bytes: Optional[int]) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._items: Deque[Any] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0
        #: Running peak occupancy in bytes; a cheap bottleneck-behaviour
        #: signal used by the passive CCA identifier (paper §5.2).
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def bytes(self) -> int:
        """Current occupancy in bytes."""
        return self._bytes

    def try_push(self, packet: Any) -> bool:
        """Enqueue ``packet``; return False (and count a drop) if full."""
        size = packet.wire_size
        if self.capacity_bytes is not None and self._bytes + size > self.capacity_bytes:
            self.dropped += 1
            return False
        self._items.append(packet)
        self._bytes += size
        self.enqueued += 1
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes
        return True

    def pop(self) -> Any:
        """Dequeue the head packet.  Raises IndexError when empty."""
        packet = self._items.popleft()
        self._bytes -= packet.wire_size
        return packet


@dataclass(frozen=True)
class LinkStats:
    """A consistent snapshot of one link direction's packet accounting.

    Every packet offered to the link ends in exactly one bucket, so the
    snapshot satisfies two conservation identities (checked by
    :meth:`conserved`):

    * ``offered = queue_drops + enqueued``
    * ``enqueued = queued + in_service + random_losses + fault_losses
      + in_flight + delivered``

    ``delivered`` counts unique packets; fault-injected ``duplicates``
    are extra copies on top and deliberately sit outside the identity.
    """

    offered: int
    queue_drops: int
    enqueued: int
    queued: int
    in_service: int
    transmitted: int
    random_losses: int
    fault_losses: int
    in_flight: int
    delivered: int
    duplicates: int
    reordered: int

    def conserved(self) -> bool:
        """Whether both conservation identities hold."""
        return (
            self.offered == self.queue_drops + self.enqueued
            and self.enqueued
            == (
                self.queued
                + self.in_service
                + self.random_losses
                + self.fault_losses
                + self.in_flight
                + self.delivered
            )
        )


class Link:
    """A rate-limited link with a drop-tail buffer and propagation delay.

    Optionally applies independent random loss (``loss_rate``) and
    per-packet propagation jitter, both driven by a caller-supplied
    ``numpy.random.Generator`` so runs are reproducible.  A
    :class:`~repro.simnet.faults.FaultPlan` composes richer fault
    processes on top: bursty loss, flaps, reordering, duplication and
    time-varying bandwidth degradation.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_per_sec: float,
        propagation_delay: float,
        receiver: Receiver,
        queue_capacity_bytes: Optional[int] = None,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bytes_per_sec}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if (loss_rate > 0 or jitter > 0) and rng is None:
            raise ValueError("loss_rate/jitter require an rng for determinism")
        self._sim = sim
        self.rate = rate_bytes_per_sec
        self.propagation_delay = propagation_delay
        self._receiver = receiver
        self.queue = DropTailQueue(queue_capacity_bytes)
        self.loss_rate = loss_rate
        self.jitter = jitter
        self._rng = rng
        self.faults = faults
        self._busy = False
        self.sent_packets = 0
        self.sent_bytes = 0
        self.random_losses = 0
        self.delivered = 0
        self.in_flight = 0
        #: Simulated time at which the transmitter last went idle; used
        #: to compute utilisation.
        self.busy_time = 0.0

    # -- sending -----------------------------------------------------------

    def send(self, packet: Any) -> bool:
        """Offer ``packet`` to the link.

        Returns False when the packet was dropped at the queue tail.
        """
        if not self.queue.try_push(packet):
            return False
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        packet = self.queue.pop()
        self._busy = True
        rate = self.rate
        if self.faults is not None:
            rate *= self.faults.rate_factor(self._sim.now)
        tx_time = serialization_delay(packet.wire_size, rate)
        self.busy_time += tx_time
        self._sim.schedule(tx_time, lambda: self._tx_done(packet))

    def _tx_done(self, packet: Any) -> None:
        self.sent_packets += 1
        self.sent_bytes += packet.wire_size
        now = self._sim.now
        delay = self.propagation_delay
        if self.jitter > 0:
            delay += float(self._rng.uniform(0.0, self.jitter))
        dropped = self.loss_rate > 0 and float(self._rng.random()) < self.loss_rate
        if dropped:
            self.random_losses += 1
        elif self.faults is not None and self.faults.drops(now):
            dropped = True
        if not dropped:
            if self.faults is not None:
                delay += self.faults.extra_delay(now)
                if self.faults.duplicate(now):
                    self._sim.schedule(delay, lambda: self._receiver(packet))
            self.in_flight += 1
            self._sim.schedule(delay, lambda: self._deliver(packet))
        if len(self.queue):
            self._start_next()
        else:
            self._busy = False

    def _deliver(self, packet: Any) -> None:
        self.in_flight -= 1
        self.delivered += 1
        self._receiver(packet)

    # -- introspection -----------------------------------------------------

    def stats(self) -> LinkStats:
        """A conservation-checked accounting snapshot (see
        :class:`LinkStats`)."""
        faults = self.faults
        return LinkStats(
            offered=self.queue.enqueued + self.queue.dropped,
            queue_drops=self.queue.dropped,
            enqueued=self.queue.enqueued,
            queued=len(self.queue),
            in_service=1 if self._busy else 0,
            transmitted=self.sent_packets,
            random_losses=self.random_losses,
            fault_losses=faults.fault_losses if faults else 0,
            in_flight=self.in_flight,
            delivered=self.delivered,
            duplicates=faults.duplicated if faults else 0,
            reordered=faults.reordered if faults else 0,
        )

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
