"""Network entities: wires, links and drop-tail queues.

A *packet* for this layer is any object exposing a ``wire_size``
attribute (bytes occupied on the wire, headers included).  The stack
layer's :class:`repro.stack.packet.Packet` satisfies this.

``Link`` models the two delays every real link has:

* **serialization** — ``wire_size / rate`` of exclusive transmitter use,
* **propagation** — a constant delay after serialization completes.

Packets arriving while the transmitter is busy wait in a drop-tail
queue; when the queue byte-capacity is exceeded the packet is dropped
(and counted), which is what closed-loop congestion control reacts to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultPlan
from repro.units import serialization_delay

Receiver = Callable[[Any], None]


class Wire:
    """A propagation-delay-only connector (infinite bandwidth).

    Useful for modelling the host-internal hop between stack layers
    where serialization is accounted for elsewhere.  Delivery is FIFO
    (constant delay), so in-transit packets ride a deque and one bound
    method serves every delivery — no per-packet closure.
    """

    def __init__(self, sim: Simulator, delay: float, receiver: Receiver) -> None:
        if delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay}")
        self._sim = sim
        self.delay = delay
        self._receiver = receiver
        self.delivered = 0
        self._transit: Deque[Any] = deque()

    def send(self, packet: Any) -> None:
        """Deliver ``packet`` after the propagation delay."""
        self._transit.append(packet)
        self._sim.call_later(self.delay, self._deliver)

    def _deliver(self) -> None:
        packet = self._transit.popleft()
        self.delivered += 1
        self._receiver(packet)


class DropTailQueue:
    """A byte-bounded FIFO with drop statistics.

    ``capacity_bytes`` of 0 means "no buffering": a packet is only
    accepted when the queue is empty and the link idle (handled by the
    caller).  ``None`` means unbounded.
    """

    def __init__(self, capacity_bytes: Optional[int]) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._items: Deque[Any] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0
        #: Running peak occupancy in bytes; a cheap bottleneck-behaviour
        #: signal used by the passive CCA identifier (paper §5.2).
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def bytes(self) -> int:
        """Current occupancy in bytes."""
        return self._bytes

    def try_push(self, packet: Any) -> bool:
        """Enqueue ``packet``; return False (and count a drop) if full."""
        size = packet.wire_size
        if self.capacity_bytes is not None and self._bytes + size > self.capacity_bytes:
            self.dropped += 1
            return False
        self._items.append(packet)
        self._bytes += size
        self.enqueued += 1
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes
        return True

    def pop(self) -> Any:
        """Dequeue the head packet.  Raises IndexError when empty."""
        packet = self._items.popleft()
        self._bytes -= packet.wire_size
        return packet


@dataclass(frozen=True)
class LinkStats:
    """A consistent snapshot of one link direction's packet accounting.

    Every packet offered to the link ends in exactly one bucket, so the
    snapshot satisfies two conservation identities (checked by
    :meth:`conserved`):

    * ``offered = queue_drops + enqueued``
    * ``enqueued = queued + in_service + random_losses + fault_losses
      + in_flight + delivered``

    ``delivered`` counts unique packets; fault-injected ``duplicates``
    are extra copies on top and deliberately sit outside the identity.
    """

    offered: int
    queue_drops: int
    enqueued: int
    queued: int
    in_service: int
    transmitted: int
    random_losses: int
    fault_losses: int
    in_flight: int
    delivered: int
    duplicates: int
    reordered: int

    def conserved(self) -> bool:
        """Whether both conservation identities hold."""
        return (
            self.offered == self.queue_drops + self.enqueued
            and self.enqueued
            == (
                self.queued
                + self.in_service
                + self.random_losses
                + self.fault_losses
                + self.in_flight
                + self.delivered
            )
        )


class Link:
    """A rate-limited link with a drop-tail buffer and propagation delay.

    Optionally applies independent random loss (``loss_rate``) and
    per-packet propagation jitter, both driven by a caller-supplied
    ``numpy.random.Generator`` so runs are reproducible.  A
    :class:`~repro.simnet.faults.FaultPlan` composes richer fault
    processes on top: bursty loss, flaps, reordering, duplication and
    time-varying bandwidth degradation.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_per_sec: float,
        propagation_delay: float,
        receiver: Receiver,
        queue_capacity_bytes: Optional[int] = None,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bytes_per_sec}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if (loss_rate > 0 or jitter > 0) and rng is None:
            raise ValueError("loss_rate/jitter require an rng for determinism")
        self._sim = sim
        self.rate = rate_bytes_per_sec
        self.propagation_delay = propagation_delay
        self._receiver = receiver
        self.queue = DropTailQueue(queue_capacity_bytes)
        self.loss_rate = loss_rate
        self.jitter = jitter
        self._rng = rng
        self.faults = faults
        self._busy = False
        self.sent_packets = 0
        self.sent_bytes = 0
        self.random_losses = 0
        self.delivered = 0
        self.in_flight = 0
        #: Simulated time at which the transmitter last went idle; used
        #: to compute utilisation.
        self.busy_time = 0.0
        # Fast transit path (DESIGN §13): with no random loss, jitter or
        # fault plan, the whole life of an admitted packet — service
        # start, completion and delivery — is determined at admission
        # time, so one delivery event per packet suffices (the legacy
        # path posts two: tx-done + deliver, each a fresh closure).
        # Queue occupancy and transmit counters are brought up to date
        # lazily by :meth:`_sync`, replaying the service schedule, so
        # admission decisions and stats snapshots see exactly the state
        # the event-per-transition path would have produced.
        self._fast = faults is None and loss_rate == 0.0 and jitter == 0.0
        self._service_end = 0.0
        self._start_times: Deque[float] = deque()
        self._finish_log: Deque[Any] = deque()
        self._transit: Deque[Any] = deque()

    # -- sending -----------------------------------------------------------

    def send(self, packet: Any) -> bool:
        """Offer ``packet`` to the link.

        Returns False when the packet was dropped at the queue tail.
        """
        if self._fast:
            now = self._sim.now
            self._sync(now)
            if not self.queue.try_push(packet):
                return False
            start = self._service_end
            if start < now:
                start = now
            end = start + packet.wire_size / self.rate
            self._service_end = end
            self.busy_time += end - start
            self._start_times.append(start)
            self._finish_log.append((end, packet.wire_size))
            self._transit.append(packet)
            self._sim.call_at(end + self.propagation_delay, self._deliver_fast)
            return True
        if not self.queue.try_push(packet):
            return False
        if not self._busy:
            self._start_next()
        return True

    def send_burst(self, packets: List[Any]) -> List[bool]:
        """Offer a back-to-back burst (one TSO split) to the link.

        Semantically identical to calling :meth:`send` per packet, in
        order; on the fast path the service/delivery schedule of the
        admitted run is computed as one vectorized cumulative sum and
        posted to the event loop in a single batch.
        """
        if not self._fast:
            return [self.send(packet) for packet in packets]
        now = self._sim.now
        self._sync(now)
        queue = self.queue
        accepted = [queue.try_push(packet) for packet in packets]
        admitted = (
            packets if all(accepted)
            else [p for p, ok in zip(packets, accepted) if ok]
        )
        if not admitted:
            return accepted
        start0 = self._service_end
        if start0 < now:
            start0 = now
        rate = self.rate
        prop = self.propagation_delay
        starts = self._start_times
        finishes = self._finish_log
        if len(admitted) >= 8:
            # Exact float equivalence with the sequential path: cumsum
            # performs the same left-to-right additions (start + d0) + d1…
            # that repeated send() calls would.
            steps = np.empty(len(admitted) + 1, dtype=np.float64)
            steps[0] = start0
            for i, packet in enumerate(admitted):
                steps[i + 1] = packet.wire_size / rate
            ends_array = np.cumsum(steps)
            # Back to native floats: numpy scalars carry identical
            # IEEE-754 values but are slower in the pure-Python event
            # loop they feed.
            ends = ends_array.tolist()
            deliveries = (ends_array[1:] + prop).tolist()
            end = ends[-1]
            for i, packet in enumerate(admitted):
                starts.append(ends[i])
                finishes.append((ends[i + 1], packet.wire_size))
            self._sim.schedule_batch(deliveries, self._deliver_fast)
        else:
            # Small bursts (page loads pace most segments down to 2-3
            # packets): the numpy setup costs more than it saves, so run
            # the same telescoped sums in plain Python.
            end = start0
            call_at = self._sim.call_at
            deliver = self._deliver_fast
            for packet in admitted:
                start = end
                end = end + packet.wire_size / rate
                starts.append(start)
                finishes.append((end, packet.wire_size))
                call_at(end + prop, deliver)
        self._service_end = end
        self.busy_time += end - start0
        self._transit.extend(admitted)
        return accepted

    def _sync(self, now: float) -> None:
        """Replay the deterministic service schedule up to ``now``:
        packets whose service started leave the queue, packets whose
        serialization finished are counted as transmitted."""
        starts = self._start_times
        if starts and starts[0] <= now:
            queue_pop = self.queue.pop
            while starts and starts[0] <= now:
                starts.popleft()
                queue_pop()
        finishes = self._finish_log
        while finishes and finishes[0][0] <= now:
            _end, wire = finishes.popleft()
            self.sent_packets += 1
            self.sent_bytes += wire
            self.in_flight += 1

    def _deliver_fast(self) -> None:
        self._sync(self._sim.now)
        packet = self._transit.popleft()
        self.in_flight -= 1
        self.delivered += 1
        self._receiver(packet)

    def _start_next(self) -> None:
        packet = self.queue.pop()
        self._busy = True
        rate = self.rate
        if self.faults is not None:
            rate *= self.faults.rate_factor(self._sim.now)
        tx_time = serialization_delay(packet.wire_size, rate)
        self.busy_time += tx_time
        self._sim.schedule(tx_time, lambda: self._tx_done(packet))

    def _tx_done(self, packet: Any) -> None:
        self.sent_packets += 1
        self.sent_bytes += packet.wire_size
        now = self._sim.now
        delay = self.propagation_delay
        if self.jitter > 0:
            delay += float(self._rng.uniform(0.0, self.jitter))
        dropped = self.loss_rate > 0 and float(self._rng.random()) < self.loss_rate
        if dropped:
            self.random_losses += 1
        elif self.faults is not None and self.faults.drops(now):
            dropped = True
        if not dropped:
            if self.faults is not None:
                delay += self.faults.extra_delay(now)
                if self.faults.duplicate(now):
                    self._sim.schedule(delay, lambda: self._receiver(packet))
            self.in_flight += 1
            self._sim.schedule(delay, lambda: self._deliver(packet))
        if len(self.queue):
            self._start_next()
        else:
            self._busy = False

    def _deliver(self, packet: Any) -> None:
        self.in_flight -= 1
        self.delivered += 1
        self._receiver(packet)

    # -- introspection -----------------------------------------------------

    def stats(self) -> LinkStats:
        """A conservation-checked accounting snapshot (see
        :class:`LinkStats`)."""
        faults = self.faults
        if self._fast:
            self._sync(self._sim.now)
            in_service = len(self._finish_log) - len(self._start_times)
        else:
            in_service = 1 if self._busy else 0
        return LinkStats(
            offered=self.queue.enqueued + self.queue.dropped,
            queue_drops=self.queue.dropped,
            enqueued=self.queue.enqueued,
            queued=len(self.queue),
            in_service=in_service,
            transmitted=self.sent_packets,
            random_losses=self.random_losses,
            fault_losses=faults.fault_losses if faults else 0,
            in_flight=self.in_flight,
            delivered=self.delivered,
            duplicates=faults.duplicated if faults else 0,
            reordered=faults.reordered if faults else 0,
        )

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
