"""Fault injection for links: bursty loss, flaps, reordering, degradation.

The paper's Stob argument rests on stack behaviour under *real* network
conditions — retransmissions and bursty loss reshape the very packet
sequences k-FP fingerprints.  Independent per-packet loss (the
``loss_rate`` knob on :class:`~repro.simnet.entities.Link`) is too
benign a model: real losses cluster (Gilbert–Elliott), links go dark
for whole RTTs (blackouts/flaps), paths reorder and duplicate, and
access bandwidth sags under cross traffic.

This module provides those fault processes as small composable
objects.  The declarative ``*Spec`` dataclasses describe a fault
configuration (hashable, picklable, safe to embed in experiment
configs); ``Spec.build(rng)`` materialises the stateful fault process
for one simulation, seeded from a ``numpy.random.Generator`` so every
run is reproducible.  A :class:`FaultPlan` composes several faults and
is what :class:`~repro.simnet.entities.Link` consults on every packet.

All fault queries take the current simulated time and are invoked in
event order, so time-driven faults (flaps, schedules) advance their
state lazily and deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class Fault:
    """Base class: a no-op fault.  Subclasses override what they need.

    ``Link`` queries, in order, per transmitted packet:

    * :meth:`rate_factor` while starting serialization (bandwidth
      degradation; multiplies the link rate),
    * :meth:`drops` when serialization completes (loss processes),
    * :meth:`extra_delay` for surviving packets (reordering),
    * :meth:`duplicate` for surviving packets (duplication).
    """

    def rate_factor(self, now: float) -> float:
        """Multiplier applied to the link rate at time ``now``."""
        return 1.0

    def drops(self, now: float) -> bool:
        """Whether the packet finishing transmission now is lost."""
        return False

    def extra_delay(self, now: float) -> float:
        """Extra propagation delay for this packet (reordering)."""
        return 0.0

    def duplicate(self, now: float) -> bool:
        """Whether this packet is delivered twice."""
        return False


class GilbertElliottLoss(Fault):
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    The chain advances once per transmitted packet: in the *good* state
    packets are lost with ``loss_good`` (usually 0), in the *bad* state
    with ``loss_bad``.  Mean burst length is ``1 / p_exit_bad`` packets.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ) -> None:
        for name, p in (
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self._rng = rng
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False
        #: Packets seen in the bad state (burst-exposure diagnostic).
        self.bad_packets = 0

    def drops(self, now: float) -> bool:
        flip = float(self._rng.random())
        if self.bad:
            if flip < self.p_exit_bad:
                self.bad = False
        else:
            if flip < self.p_enter_bad:
                self.bad = True
        if self.bad:
            self.bad_packets += 1
        loss = self.loss_bad if self.bad else self.loss_good
        return loss > 0 and float(self._rng.random()) < loss


class LinkFlap(Fault):
    """Alternating up/down periods with exponential durations.

    While down, every packet finishing transmission is lost — the
    discrete-event analogue of pulling the cable for a moment.  The
    schedule is sampled lazily from ``rng`` as simulated time advances,
    so it is deterministic per seed.

    Zero-duration phases collapse analytically instead of being
    sampled: ``up_mean == 0`` pins the link down (a 100 % loss window
    for the whole run), ``down_mean == 0`` pins it up (a no-op), and
    both zero is defined as up.  Sampling them instead would make
    ``_advance`` spin forever — the schedule's clock could stop
    moving — so a "zero-duration flap" is a state, not a loop.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        up_mean: float,
        down_mean: float,
        start_up: bool = True,
    ) -> None:
        if up_mean < 0 or down_mean < 0:
            raise ValueError(
                f"up/down means must be >= 0, got {up_mean}/{down_mean}"
            )
        self._rng = rng
        self.up_mean = up_mean
        self.down_mean = down_mean
        self.transitions = 0
        if down_mean == 0.0:
            # Down phases are instants: the link is effectively always
            # up (this also defines the doubly-degenerate 0/0 case).
            self.up = True
            self._until = float("inf")
        elif up_mean == 0.0:
            # Up phases are instants: a permanent outage window.
            self.up = False
            self._until = float("inf")
        else:
            self.up = start_up
            self._until = self._sample_duration()

    def _sample_duration(self) -> float:
        mean = self.up_mean if self.up else self.down_mean
        duration = float(self._rng.exponential(mean))
        # A measure-zero 0.0 draw must still advance the schedule or
        # ``_advance`` would never terminate.
        return duration if duration > 0.0 else mean

    def _advance(self, now: float) -> None:
        while now >= self._until:
            self.up = not self.up
            self.transitions += 1
            self._until += self._sample_duration()

    def drops(self, now: float) -> bool:
        self._advance(now)
        return not self.up


class Blackout(Fault):
    """A single deterministic outage window ``[start, start + duration)``."""

    def __init__(self, start: float, duration: float) -> None:
        if start < 0 or duration < 0:
            raise ValueError(
                f"blackout start/duration must be >= 0, got {start}/{duration}"
            )
        self.start = start
        self.end = start + duration

    def drops(self, now: float) -> bool:
        return self.start <= now < self.end


class PacketReorder(Fault):
    """With probability ``prob``, hold a packet back by an extra
    uniform delay so it lands behind its successors."""

    def __init__(
        self,
        rng: np.random.Generator,
        prob: float,
        delay_low: float,
        delay_high: float,
    ) -> None:
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"reorder prob must be in [0, 1], got {prob}")
        if not 0.0 <= delay_low <= delay_high:
            raise ValueError(
                f"need 0 <= delay_low <= delay_high, got {delay_low}/{delay_high}"
            )
        self._rng = rng
        self.prob = prob
        self.delay_low = delay_low
        self.delay_high = delay_high

    def extra_delay(self, now: float) -> float:
        if float(self._rng.random()) < self.prob:
            return float(self._rng.uniform(self.delay_low, self.delay_high))
        return 0.0


class PacketDuplicate(Fault):
    """With probability ``prob``, deliver the packet twice."""

    def __init__(self, rng: np.random.Generator, prob: float) -> None:
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"duplicate prob must be in [0, 1], got {prob}")
        self._rng = rng
        self.prob = prob

    def duplicate(self, now: float) -> bool:
        return float(self._rng.random()) < self.prob


class BandwidthSchedule(Fault):
    """Piecewise-constant link-rate degradation.

    ``stages`` is a sequence of ``(start_time, factor)`` pairs; the
    factor of the latest stage at or before ``now`` multiplies the link
    rate (1.0 before the first stage).  Factors must be positive —
    "link fully down" is a flap/blackout, not a zero rate.

    Back-to-back stages sharing a start time are legal: the sort is
    stable on time alone, so the *last-declared* stage at that instant
    wins — a plain ``sorted()`` over the pairs would instead reorder
    ties by factor and silently promote the largest one.
    """

    def __init__(self, stages: Sequence[Tuple[float, float]]) -> None:
        stages = sorted(
            ((float(t), float(f)) for t, f in stages), key=lambda s: s[0]
        )
        for when, factor in stages:
            if when < 0:
                raise ValueError(f"stage times must be >= 0, got {when}")
            if factor <= 0:
                raise ValueError(f"rate factors must be positive, got {factor}")
        self.stages = stages

    def rate_factor(self, now: float) -> float:
        factor = 1.0
        for when, stage_factor in self.stages:
            if now >= when:
                factor = stage_factor
            else:
                break
        return factor


class FaultPlan:
    """A composition of faults consulted by one :class:`Link` direction.

    Aggregates the per-category counters the :class:`LinkStats`
    snapshot reports (fault losses, reorders, duplicates).
    """

    def __init__(self, faults: Sequence[Fault]) -> None:
        self.faults: List[Fault] = list(faults)
        self.fault_losses = 0
        self.reordered = 0
        self.duplicated = 0

    def rate_factor(self, now: float) -> float:
        factor = 1.0
        for fault in self.faults:
            factor *= fault.rate_factor(now)
        return factor

    def drops(self, now: float) -> bool:
        # Every loss process advances its state even when an earlier
        # one already claimed the packet, so the processes stay
        # independent of composition order.
        dropped = False
        for fault in self.faults:
            if fault.drops(now):
                dropped = True
        if dropped:
            self.fault_losses += 1
        return dropped

    def extra_delay(self, now: float) -> float:
        delay = 0.0
        for fault in self.faults:
            delay += fault.extra_delay(now)
        if delay > 0:
            self.reordered += 1
        return delay

    def duplicate(self, now: float) -> bool:
        duplicated = False
        for fault in self.faults:
            if fault.duplicate(now):
                duplicated = True
        if duplicated:
            self.duplicated += 1
        return duplicated


# -- declarative specs ---------------------------------------------------------


@dataclass(frozen=True)
class GilbertElliottSpec:
    """Parameters of a :class:`GilbertElliottLoss` process."""

    p_enter_bad: float = 0.01
    p_exit_bad: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def build(self, rng: np.random.Generator) -> Fault:
        return GilbertElliottLoss(
            rng, self.p_enter_bad, self.p_exit_bad, self.loss_good, self.loss_bad
        )


@dataclass(frozen=True)
class LinkFlapSpec:
    """Parameters of a :class:`LinkFlap` process (seconds)."""

    up_mean: float = 5.0
    down_mean: float = 0.2
    start_up: bool = True

    def build(self, rng: np.random.Generator) -> Fault:
        return LinkFlap(rng, self.up_mean, self.down_mean, self.start_up)


@dataclass(frozen=True)
class BlackoutSpec:
    """A fixed outage window."""

    start: float = 1.0
    duration: float = 0.5

    def build(self, rng: np.random.Generator) -> Fault:
        return Blackout(self.start, self.duration)


@dataclass(frozen=True)
class ReorderSpec:
    """Parameters of a :class:`PacketReorder` process."""

    prob: float = 0.01
    delay_low: float = 0.001
    delay_high: float = 0.01

    def build(self, rng: np.random.Generator) -> Fault:
        return PacketReorder(rng, self.prob, self.delay_low, self.delay_high)


@dataclass(frozen=True)
class DuplicateSpec:
    """Parameters of a :class:`PacketDuplicate` process."""

    prob: float = 0.005

    def build(self, rng: np.random.Generator) -> Fault:
        return PacketDuplicate(rng, self.prob)


@dataclass(frozen=True)
class BandwidthScheduleSpec:
    """Piecewise-constant rate-degradation stages."""

    stages: Tuple[Tuple[float, float], ...] = ((0.0, 1.0),)

    def build(self, rng: np.random.Generator) -> Fault:
        return BandwidthSchedule(self.stages)


@dataclass(frozen=True)
class FaultSpec:
    """A declarative bundle of fault specs for one network path.

    ``build_plan`` materialises an independent :class:`FaultPlan` (one
    per link direction); each constituent fault gets its own child
    generator spawned from ``rng`` so faults never share random
    streams.
    """

    specs: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not hasattr(spec, "build"):
                raise TypeError(f"not a fault spec: {spec!r}")

    def build_plan(self, rng: np.random.Generator) -> Optional[FaultPlan]:
        if not self.specs:
            return None
        children = rng.spawn(len(self.specs))
        return FaultPlan(
            [spec.build(child) for spec, child in zip(self.specs, children)]
        )


#: Canonical adverse-network conditions used by the experiments layer.
def bursty_loss_spec(
    p_enter_bad: float = 0.02,
    p_exit_bad: float = 0.3,
    loss_bad: float = 0.4,
) -> FaultSpec:
    """A Gilbert–Elliott bursty-loss condition."""
    return FaultSpec(
        (GilbertElliottSpec(p_enter_bad, p_exit_bad, 0.0, loss_bad),)
    )


def link_flap_spec(up_mean: float = 2.0, down_mean: float = 0.05) -> FaultSpec:
    """A flapping-link condition (mostly up, brief dark windows)."""
    return FaultSpec((LinkFlapSpec(up_mean, down_mean),))
