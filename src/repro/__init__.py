"""Stob — stack-level traffic obfuscation for website-fingerprinting defenses.

This package is a full reproduction of the HotNets '25 paper *"Rethinking
the Role of Network Stacks for Website Fingerprinting Defenses"*.  It
contains:

``repro.simnet``
    A discrete-event network simulator (clock, links, queues, paths).
``repro.stack``
    A host network-stack model: TCP with pluggable congestion control
    (Reno, CUBIC, BBR-lite), socket buffers, TSO with Linux-style
    autosizing, fq pacing, qdiscs and a NIC/CPU cost model.
``repro.stob``
    The paper's contribution: an in-stack traffic-obfuscation framework
    with policies, a shared policy registry and packet-sequence actions.
``repro.defenses``
    Trace-level WF defenses: the paper's split/delay/combined emulation
    plus the Table-1 baselines (FRONT, BuFLO, WTF-PAD, RegulaTor,
    Tamaraw, HTTPOS-lite).
``repro.web``
    A synthetic web workload: site profiles, page loads over the stack
    simulator, and a fast statistical trace generator.
``repro.capture``
    Packet traces, datasets, sanitisation and serialisation.
``repro.ml``
    From-scratch decision trees, random forests and k-NN.
``repro.attacks``
    The k-FP website-fingerprinting attack (feature set + classifier)
    and a passive congestion-control identifier.
``repro.experiments``
    One runner per table/figure of the paper's evaluation.
"""

from repro._version import __version__

__all__ = ["__version__"]
