"""Atomic file publication — the one place crash-safe writes live.

Every durable artifact this repo produces (cache payloads, checkpoint
manifests, campaign shards, metrics snapshots, rendered results) must
survive the same three accidents: a process killed mid-write, a disk
that fills halfway through, and two processes publishing the same path
concurrently.  The answer is always the same dance — stage the bytes
in a uniquely named temporary file next to the destination, fsync,
``os.replace`` — so it lives here once instead of being re-implemented
(subtly differently) at every write site.

Guarantees:

* **all-or-nothing** — a reader of ``path`` sees either the previous
  complete file or the new complete file, never a truncation;
* **ENOSPC-clean** — when the write or fsync fails (disk full), the
  temporary file is removed and ``path`` is untouched, so integrity
  checks downstream (manifest digests, cache verification) keep
  passing on everything already durable;
* **last-writer-wins** — concurrent writers each stage a unique tmp
  file; both renames land a complete file.

``fsync=False`` trades the durability barrier for speed where the
caller's protocol already tolerates losing the *newest* write on power
failure (e.g. per-run stat snapshots); atomicity is kept either way.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any

_TMP_SEQ = itertools.count()


def _tmp_path(path: str) -> str:
    """A collision-free staging path next to ``path`` (same filesystem,
    so the final ``os.replace`` is atomic)."""
    return f"{path}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Publish ``data`` at ``path`` atomically (see module docstring)."""
    path = os.path.abspath(path)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.remove(tmp)
        except OSError:
            pass


def atomic_write_text(path: str, text: str, fsync: bool = True) -> None:
    """Publish ``text`` (UTF-8) at ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: str, obj: Any, fsync: bool = True, indent: int = 1
) -> None:
    """Publish ``obj`` as deterministic JSON (sorted keys, trailing
    newline) at ``path`` atomically."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=True) + "\n", fsync=fsync
    )
