"""Packet traces, datasets, sanitisation and serialisation.

A :class:`~repro.capture.trace.Trace` is what the paper's attacker
observes: per-packet timestamps, directions and sizes.  A
:class:`~repro.capture.dataset.Dataset` maps site labels to lists of
traces and supports the splits the evaluation needs.
"""

from repro.capture.trace import Trace, TraceObserver
from repro.capture.dataset import Dataset
from repro.capture.sanitize import iqr_filter, sanitize_dataset
from repro.capture.serialize import load_dataset, save_dataset

__all__ = [
    "Trace",
    "TraceObserver",
    "Dataset",
    "iqr_filter",
    "sanitize_dataset",
    "load_dataset",
    "save_dataset",
]
