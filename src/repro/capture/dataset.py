"""Labelled trace datasets and evaluation splits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from repro.capture.trace import Trace


@dataclass
class Dataset:
    """A closed-world dataset: site label -> list of traces."""

    traces: Dict[str, List[Trace]] = field(default_factory=dict)

    def add(self, label: str, trace: Trace) -> None:
        self.traces.setdefault(label, []).append(trace)

    @property
    def labels(self) -> List[str]:
        """Sorted site labels (sorted for determinism)."""
        return sorted(self.traces)

    @property
    def num_traces(self) -> int:
        return sum(len(t) for t in self.traces.values())

    def __iter__(self) -> Iterator[Tuple[str, Trace]]:
        for label in self.labels:
            for trace in self.traces[label]:
                yield label, trace

    def map(self, transform: Callable[[Trace], Trace]) -> "Dataset":
        """A new dataset with ``transform`` applied to every trace
        (how defenses are applied for emulation)."""
        out = Dataset()
        for label in self.labels:
            out.traces[label] = [transform(t) for t in self.traces[label]]
        return out

    def truncate(self, n_packets: int) -> "Dataset":
        """Keep only the first ``n_packets`` of every trace (the
        censorship early-decision setting)."""
        return self.map(lambda t: t.head(n_packets))

    def subset(self, labels: List[str]) -> "Dataset":
        """Only the given site labels."""
        out = Dataset()
        for label in labels:
            if label not in self.traces:
                raise KeyError(f"label {label!r} not in dataset")
            out.traces[label] = list(self.traces[label])
        return out

    def balanced(self, per_label: int) -> "Dataset":
        """The first ``per_label`` traces of every label."""
        out = Dataset()
        for label in self.labels:
            available = self.traces[label]
            if len(available) < per_label:
                raise ValueError(
                    f"label {label!r} has {len(available)} traces, "
                    f"need {per_label}"
                )
            out.traces[label] = available[:per_label]
        return out

    # -- splits -------------------------------------------------------------------

    def to_arrays(self) -> Tuple[List[Trace], np.ndarray]:
        """Flatten into (traces, integer labels), label-sorted order."""
        all_traces: List[Trace] = []
        y: List[int] = []
        for index, label in enumerate(self.labels):
            for trace in self.traces[label]:
                all_traces.append(trace)
                y.append(index)
        return all_traces, np.asarray(y, dtype=np.int64)

    def train_test_split(
        self, test_fraction: float, rng: np.random.Generator
    ) -> Tuple["Dataset", "Dataset"]:
        """Stratified random split."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        train, test = Dataset(), Dataset()
        for label in self.labels:
            traces = list(self.traces[label])
            order = rng.permutation(len(traces))
            n_test = max(1, int(round(len(traces) * test_fraction)))
            test_idx = set(order[:n_test].tolist())
            train.traces[label] = [
                t for i, t in enumerate(traces) if i not in test_idx
            ]
            test.traces[label] = [t for i, t in enumerate(traces) if i in test_idx]
        return train, test

    def kfold(
        self, n_folds: int, rng: np.random.Generator
    ) -> Iterator[Tuple["Dataset", "Dataset"]]:
        """Stratified k-fold cross-validation iterator."""
        if n_folds < 2:
            raise ValueError(f"need at least 2 folds, got {n_folds}")
        assignments: Dict[str, np.ndarray] = {}
        for label in self.labels:
            n = len(self.traces[label])
            if n < n_folds:
                raise ValueError(
                    f"label {label!r} has {n} traces; cannot make {n_folds} folds"
                )
            folds = np.arange(n) % n_folds
            assignments[label] = rng.permutation(folds)
        for fold in range(n_folds):
            train, test = Dataset(), Dataset()
            for label in self.labels:
                traces = self.traces[label]
                mask = assignments[label] == fold
                train.traces[label] = [
                    t for i, t in enumerate(traces) if not mask[i]
                ]
                test.traces[label] = [t for i, t in enumerate(traces) if mask[i]]
            yield train, test
