"""Dataset sanitisation, mirroring the paper's §3 pipeline.

The paper collected 100 samples per site, checked for connection
errors and removed outliers outside the interquartile range of total
download size, ending with 74 traces per site.  :func:`sanitize_dataset`
implements the same steps: drop empty/error traces, apply the IQR
filter on incoming (download) bytes, and optionally balance every
label to a common count.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace


def iqr_filter(values: np.ndarray, factor: float = 1.5) -> np.ndarray:
    """Boolean mask of values inside ``[Q1 - f*IQR, Q3 + f*IQR]``.

    ``factor=0`` keeps only values strictly inside the interquartile
    range itself, the paper's stricter reading.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.zeros(0, dtype=bool)
    q1, q3 = np.percentile(values, [25, 75])
    iqr = q3 - q1
    lo = q1 - factor * iqr
    hi = q3 + factor * iqr
    return (values >= lo) & (values <= hi)


def is_error_trace(trace: Trace, min_packets: int = 10) -> bool:
    """Heuristic connection-error check: too few packets or no
    incoming data at all (the paper's "checking for connection
    errors")."""
    if len(trace) < min_packets:
        return True
    if trace.incoming_bytes == 0:
        return True
    return False


def sanitize_dataset(
    dataset: Dataset,
    iqr_factor: float = 1.5,
    min_packets: int = 10,
    balance_to: Optional[int] = None,
) -> Tuple[Dataset, dict]:
    """Sanitise per the paper; returns (clean dataset, report).

    The report maps each label to ``(kept, dropped_error, dropped_iqr)``
    so EXPERIMENTS.md can record the pipeline's effect (the paper:
    100 -> 74 per site).
    """
    clean = Dataset()
    report = {}
    for label in dataset.labels:
        traces = dataset.traces[label]
        ok: List[Trace] = [t for t in traces if not is_error_trace(t, min_packets)]
        dropped_error = len(traces) - len(ok)
        sizes = np.array([t.incoming_bytes for t in ok], dtype=np.float64)
        mask = iqr_filter(sizes, factor=iqr_factor)
        kept = [t for t, keep in zip(ok, mask) if keep]
        dropped_iqr = len(ok) - len(kept)
        clean.traces[label] = kept
        report[label] = (len(kept), dropped_error, dropped_iqr)
    if balance_to is not None:
        # ``default=0`` keeps a fully-filtered (or empty) dataset total:
        # balancing to zero yields an empty dataset, not a ValueError.
        minimum = min((len(v) for v in clean.traces.values()), default=0)
        target = min(balance_to, minimum)
        clean = clean.balanced(target)
        report["_balanced_to"] = target
    return clean, report
