"""Packet traces: the attacker's view of a connection.

A trace is three parallel numpy arrays — ``times`` (seconds, ascending),
``directions`` (+1 outgoing / -1 incoming, from the *client's* point of
view, the WF convention) and ``sizes`` (wire bytes).  This is exactly
the metadata the paper's tcpdump pipeline extracted, and the only input
both the k-FP attack and the trace-level defenses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import TraceError

OUT = 1
IN = -1


def _exact_byte_sum(sizes: np.ndarray) -> int:
    """Sum packet sizes without silent int64 wraparound.

    The int64 fast path covers every realistic trace; a sum that
    disagrees with the float64 approximation by more than rounding can
    only mean the accumulator wrapped, so it falls back to Python's
    arbitrary-precision integers.
    """
    total = int(sizes.sum())
    approx = float(sizes.sum(dtype=np.float64))
    if abs(float(total) - approx) > max(1.0, 1e-6 * abs(approx)):
        return int(sizes.astype(object).sum())
    return total


def ensure_finite(trace: "Trace", context: str = "trace") -> "Trace":
    """Typed validation gate for trace consumers.

    :class:`Trace` rejects non-finite timestamps at construction, but
    arrays mutated after the fact (or decoded through a path that
    bypasses ``__post_init__``) can still reach feature extractors.
    Raises :class:`repro.errors.TraceError` instead of letting NaN/inf
    propagate into silently garbage features.
    """
    if len(trace.times) and not np.isfinite(trace.times).all():
        raise TraceError(f"{context}: trace has non-finite timestamps")
    if len(trace.sizes) and np.any(trace.sizes <= 0):
        raise TraceError(f"{context}: trace has non-positive sizes")
    return trace


@dataclass
class Trace:
    """An observed packet sequence.

    Arrays are validated on construction: equal lengths, non-decreasing
    times, directions in {+1, -1} and positive sizes.
    """

    times: np.ndarray
    directions: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.directions = np.asarray(self.directions, dtype=np.int8)
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        n = len(self.times)
        if len(self.directions) != n or len(self.sizes) != n:
            raise ValueError(
                f"array lengths differ: times={n} "
                f"directions={len(self.directions)} sizes={len(self.sizes)}"
            )
        if n > 0:
            if not np.isfinite(self.times).all():
                raise ValueError("times must be finite")
            if np.any(np.diff(self.times) < -1e-12):
                raise ValueError("times must be non-decreasing")
            if not np.all(np.isin(self.directions, (OUT, IN))):
                raise ValueError("directions must be +1 or -1")
            if np.any(self.sizes <= 0):
                raise ValueError("sizes must be positive")

    def __len__(self) -> int:
        return len(self.times)

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "Trace":
        return cls(np.empty(0), np.empty(0, dtype=np.int8), np.empty(0, dtype=np.int64))

    @classmethod
    def from_records(cls, records: List[Tuple[float, int, int]]) -> "Trace":
        """Build from ``(time, direction, size)`` tuples (sorted by time)."""
        if not records:
            return cls.empty()
        records = sorted(records, key=lambda r: r[0])
        times = np.array([r[0] for r in records], dtype=np.float64)
        dirs = np.array([r[1] for r in records], dtype=np.int8)
        sizes = np.array([r[2] for r in records], dtype=np.int64)
        return cls(times, dirs, sizes)

    # -- views ------------------------------------------------------------------

    def head(self, n: int) -> "Trace":
        """The first ``n`` packets (the censorship-scenario prefix)."""
        return Trace(self.times[:n], self.directions[:n], self.sizes[:n])

    def tail_after(self, n: int) -> "Trace":
        """Packets after the first ``n``."""
        return Trace(self.times[n:], self.directions[n:], self.sizes[n:])

    def filter_direction(self, direction: int) -> "Trace":
        """Only packets travelling in ``direction``."""
        mask = self.directions == direction
        return Trace(self.times[mask], self.directions[mask], self.sizes[mask])

    def concat(self, other: "Trace") -> "Trace":
        """Merge two traces by time (stable for ties)."""
        times = np.concatenate([self.times, other.times])
        dirs = np.concatenate([self.directions, other.directions])
        sizes = np.concatenate([self.sizes, other.sizes])
        order = np.argsort(times, kind="stable")
        return Trace(times[order], dirs[order], sizes[order])

    def shifted_to_zero(self) -> "Trace":
        """Same trace with times starting at zero."""
        if len(self) == 0:
            return self
        return Trace(self.times - self.times[0], self.directions, self.sizes)

    # -- summary statistics -------------------------------------------------------

    @property
    def duration(self) -> float:
        """Seconds between first and last packet."""
        if len(self) < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def total_bytes(self) -> int:
        """Total wire bytes in both directions (exact: giant synthetic
        packets cannot wrap the accumulator)."""
        return _exact_byte_sum(self.sizes)

    @property
    def incoming_bytes(self) -> int:
        """Wire bytes from server to client (the download size the
        paper's sanitisation step filters on)."""
        return _exact_byte_sum(self.sizes[self.directions == IN])

    @property
    def outgoing_bytes(self) -> int:
        return _exact_byte_sum(self.sizes[self.directions == OUT])

    def interarrival_times(self) -> np.ndarray:
        """Gaps between consecutive packets (length ``len - 1``)."""
        if len(self) < 2:
            return np.empty(0)
        return np.diff(self.times)


class TraceObserver:
    """Collects a :class:`Trace` from a live simulation.

    Attach :meth:`tap_outgoing` to the client NIC and feed arriving
    packets to :meth:`observe_incoming` (or attach to the server NIC
    and swap directions) — the observer sits where the paper's censor
    does: on the client's access link.
    """

    def __init__(self) -> None:
        self._records: List[Tuple[float, int, int]] = []

    def tap_outgoing(self, packet, when: float) -> None:
        """NIC tap for packets the client transmits."""
        self._records.append((when, OUT, packet.wire_size))

    def tap_incoming(self, packet, when: float) -> None:
        """NIC tap for packets the server transmits toward the client.

        The timestamp is the server-side departure; the constant
        propagation offset does not affect WF features, which use
        relative timing.
        """
        self._records.append((when, IN, packet.wire_size))

    def trace(self) -> Trace:
        """The collected trace, time-sorted and zero-based."""
        return Trace.from_records(self._records).shifted_to_zero()

    def reset(self) -> None:
        self._records.clear()
