"""Dataset serialisation.

Datasets are stored as a single ``.npz`` archive: three flat arrays per
label plus per-trace offsets.  This loads orders of magnitude faster
than pickling thousands of objects and keeps files portable.

Archives contain only plain numeric and fixed-width unicode arrays, so
they load with ``np.load(path, allow_pickle=False)`` — no pickled
objects means a dataset file cannot execute code when opened.  Earlier
versions of this module stored ``_labels`` with ``dtype=object`` and
also passed ``allow_pickle=True`` to :func:`numpy.savez_compressed` —
which is not a kwarg of ``savez`` at all, so numpy silently serialised
a bogus boolean array under the key ``"allow_pickle"`` into every
archive.  :func:`load_dataset` still reads those legacy archives
(falling back to ``allow_pickle=True`` for the object-dtype label
array and ignoring the stray key).
"""

from __future__ import annotations

import hashlib
import io
import os
import zipfile
from typing import Dict, List

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace


def _archive_payload(dataset: Dataset) -> Dict[str, np.ndarray]:
    """The flat-array archive members for ``dataset``."""
    payload: Dict[str, np.ndarray] = {}
    labels = dataset.labels
    # Fixed-width unicode, never dtype=object: keeps the archive
    # loadable with allow_pickle=False.
    payload["_labels"] = (
        np.array(labels, dtype=np.str_) if labels else np.empty(0, dtype="U1")
    )
    for label in labels:
        traces = dataset.traces[label]
        offsets = np.cumsum([len(t) for t in traces])[:-1] if traces else np.empty(0)
        if traces:
            times = np.concatenate([t.times for t in traces])
            dirs = np.concatenate([t.directions for t in traces])
            sizes = np.concatenate([t.sizes for t in traces])
        else:
            times = np.empty(0)
            dirs = np.empty(0, dtype=np.int8)
            sizes = np.empty(0, dtype=np.int64)
        payload[f"{label}/times"] = times
        payload[f"{label}/dirs"] = dirs
        payload[f"{label}/sizes"] = sizes
        payload[f"{label}/offsets"] = np.asarray(offsets, dtype=np.int64)
    return payload


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write ``dataset`` to ``path`` (an ``.npz`` file)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **_archive_payload(dataset))


def save_dataset_atomic(dataset: Dataset, path: str) -> None:
    """Like :func:`save_dataset`, but crash-safe: the archive is staged
    in a temporary file, fsynced, and published with ``os.replace``.

    A process killed mid-write (SIGKILL during a checkpoint, disk
    full, node preemption) therefore leaves either the previous
    complete file or the new one at ``path`` — never a truncated
    archive.  Matches numpy's extension rule: ``.npz`` is appended
    when ``path`` does not already end with it, so the atomic and
    plain writers publish to identical locations.
    """
    path = os.path.abspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **_archive_payload(dataset))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.remove(tmp)
        except OSError:
            pass


def dumps_dataset(dataset: Dataset) -> bytes:
    """The ``.npz`` archive for ``dataset`` as bytes (deterministic:
    numpy stamps a fixed zip date, so equal datasets serialise to equal
    bytes — what lets the artifact cache diff archives directly)."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **_archive_payload(dataset))
    return buffer.getvalue()


def loads_dataset(data: bytes) -> Dataset:
    """Inverse of :func:`dumps_dataset` (current-format archives only)."""
    return _build_dataset(io.BytesIO(data))


def dataset_content_digest(dataset: Dataset) -> str:
    """SHA-256 over the dataset's raw arrays (no compression pass).

    Content addressing for in-memory datasets: orders of magnitude
    cheaper than hashing a compressed archive, and independent of the
    archive container format.
    """
    h = hashlib.sha256()
    for label in dataset.labels:
        h.update(label.encode("utf-8"))
        h.update(len(dataset.traces[label]).to_bytes(8, "little"))
        for trace in dataset.traces[label]:
            h.update(np.ascontiguousarray(trace.times, dtype=np.float64).tobytes())
            h.update(np.ascontiguousarray(trace.directions, dtype=np.int8).tobytes())
            h.update(np.ascontiguousarray(trace.sizes, dtype=np.int64).tobytes())
    return h.hexdigest()


def _read_labels(path: str) -> List[str]:
    """The label array, tolerating legacy object-dtype archives."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            return [str(x) for x in archive["_labels"]]
        except ValueError:
            pass
    # Legacy archive: _labels was written with dtype=object and needs
    # pickle to deserialise.  Everything else is plain numeric.
    with np.load(path, allow_pickle=True) as archive:
        return [str(x) for x in archive["_labels"]]


def load_dataset(path: str) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Handles both current archives (fixed-width unicode labels, loadable
    with ``allow_pickle=False``) and legacy ones (object-dtype labels
    plus a stray ``"allow_pickle"`` key, which is ignored).
    """
    labels = _read_labels(path)
    dataset = Dataset()
    with np.load(path, allow_pickle=False) as archive:
        for label in labels:
            dataset.traces[label] = _label_traces(archive, label)
    return dataset


def _label_traces(archive, label: str) -> List[Trace]:
    times = archive[f"{label}/times"]
    dirs = archive[f"{label}/dirs"]
    sizes = archive[f"{label}/sizes"]
    offsets = archive[f"{label}/offsets"].astype(np.int64)
    return [
        Trace(t, d, s)
        for t, d, s in zip(
            np.split(times, offsets),
            np.split(dirs, offsets),
            np.split(sizes, offsets),
        )
    ]


def _build_dataset(source: io.BytesIO) -> Dataset:
    """Current-format archive (fixed-width labels) from a file object."""
    dataset = Dataset()
    with np.load(source, allow_pickle=False) as archive:
        for label in [str(x) for x in archive["_labels"]]:
            dataset.traces[label] = _label_traces(archive, label)
    return dataset


def is_legacy_archive(path: str) -> bool:
    """True when ``path`` predates the allow_pickle fix (it contains
    the stray ``allow_pickle`` member or object-dtype labels)."""
    with zipfile.ZipFile(path) as zf:
        if "allow_pickle.npy" in zf.namelist():
            return True
    with np.load(path, allow_pickle=False) as archive:
        try:
            archive["_labels"]
        except ValueError:
            return True
    return False
