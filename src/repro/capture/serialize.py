"""Dataset serialisation.

Datasets are stored as a single ``.npz`` archive: three flat arrays per
label plus per-trace offsets.  This loads orders of magnitude faster
than pickling thousands of objects and keeps files portable.
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write ``dataset`` to ``path`` (an ``.npz`` file)."""
    payload: Dict[str, np.ndarray] = {}
    labels = dataset.labels
    payload["_labels"] = np.array(labels, dtype=object)
    for label in labels:
        traces = dataset.traces[label]
        offsets = np.cumsum([len(t) for t in traces])[:-1] if traces else np.empty(0)
        if traces:
            times = np.concatenate([t.times for t in traces])
            dirs = np.concatenate([t.directions for t in traces])
            sizes = np.concatenate([t.sizes for t in traces])
        else:
            times = np.empty(0)
            dirs = np.empty(0, dtype=np.int8)
            sizes = np.empty(0, dtype=np.int64)
        payload[f"{label}/times"] = times
        payload[f"{label}/dirs"] = dirs
        payload[f"{label}/sizes"] = sizes
        payload[f"{label}/offsets"] = np.asarray(offsets, dtype=np.int64)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **payload, allow_pickle=True)


def load_dataset(path: str) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    archive = np.load(path, allow_pickle=True)
    labels: List[str] = [str(x) for x in archive["_labels"]]
    dataset = Dataset()
    for label in labels:
        times = archive[f"{label}/times"]
        dirs = archive[f"{label}/dirs"]
        sizes = archive[f"{label}/sizes"]
        offsets = archive[f"{label}/offsets"].astype(np.int64)
        dataset.traces[label] = [
            Trace(t, d, s)
            for t, d, s in zip(
                np.split(times, offsets),
                np.split(dirs, offsets),
                np.split(sizes, offsets),
            )
        ]
    return dataset
