"""Process-pool plumbing shared by the parallel execution paths.

Three subsystems fan work out across processes — trial collection
(:mod:`repro.experiments.runner`), k-FP feature extraction
(:mod:`repro.attacks.features.kfp`) and random-forest fitting and
prediction (:mod:`repro.ml.forest`).  They share the conventions
defined here so a single ``workers`` knob means the same thing
everywhere:

* ``workers=1`` — the in-process fast path, byte-identical to the
  pre-parallel code and free of pool overhead (the default);
* ``workers=N`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  of N processes;
* ``workers=0`` (or ``None``) — one process per available core.

Determinism is the load-bearing invariant: every parallel path in this
repo derives randomness from *position* (trial coordinates, spawned
per-tree generators), never from execution order, so any worker count
produces bit-identical results.  Helpers here only move work around;
they must never reorder the merge.

The hot evaluation paths (features, forest) run many small batches per
experiment, so they reuse a cached pool via :func:`shared_pool` rather
than paying process start-up per call.  The collection runner manages
its own pool: a collection run is long-lived and wants explicit
cancel/teardown semantics on interrupt.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Each worker receives roughly this many chunks over a run; >1 so a
#: slow chunk does not leave the other workers idle at the tail.
CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` knob to a concrete process count."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return int(workers)


def default_chunk_size(n_items: int, workers: int) -> int:
    """Chunk size giving ~:data:`CHUNKS_PER_WORKER` chunks per worker."""
    if n_items <= 0:
        return 1
    return max(1, -(-n_items // (workers * CHUNKS_PER_WORKER)))


def chunked(items: Sequence[T], size: int) -> List[List[T]]:
    """Contiguous chunks of at most ``size`` items, order-preserving."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    items = list(items)
    return [items[i : i + size] for i in range(0, len(items), size)]


_SHARED_POOLS: Dict[int, ProcessPoolExecutor] = {}


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """A cached executor of exactly ``workers`` processes.

    Feature extraction and forest fitting are called once per fold per
    dataset — dozens of times per experiment — and process start-up
    would dominate small batches.  Pools are cached per size and torn
    down at interpreter exit (or explicitly via
    :func:`shutdown_shared_pools`).
    """
    workers = resolve_workers(workers)
    pool = _SHARED_POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _SHARED_POOLS[workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Tear down every cached pool (tests; interpreter exit)."""
    while _SHARED_POOLS:
        _, pool = _SHARED_POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shared_pools)
