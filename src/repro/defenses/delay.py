"""Packet delaying (the paper's §3 second countermeasure).

"To implement packet delaying, we increment the inter-arrival time
between the original packet and the one before by 10-30%, where the
percentage is drawn uniformly at random."  Applied to incoming
(server->client) packets only, emulating server-side deployment, and
kept small so added delay never approaches retransmission timeouts.

Delays are necessarily cumulative — stretching one gap shifts every
later packet of the same direction — which mirrors what an in-stack
delay (a pacing gap) does to the rest of the connection.  Outgoing
packets keep their original times except where monotonicity requires
a shift.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.capture.trace import IN, Trace
from repro.defenses.base import TraceDefense


class DelayDefense(TraceDefense):
    """Inflate inter-arrival times of one direction by U(low, high)."""

    name = "delayed"

    def __init__(
        self,
        low: float = 0.10,
        high: float = 0.30,
        direction: Optional[int] = IN,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got ({low}, {high})")
        self.low = low
        self.high = high
        self.direction = direction

    def params(self) -> dict:
        return {
            "low": self.low,
            "high": self.high,
            "direction": self.direction,
            "seed": self.seed,
        }

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        gen = self._rng(rng)
        n = len(trace)
        if n == 0:
            return trace
        new_times = np.empty(n)
        new_times[0] = trace.times[0]
        prev_new = trace.times[0]
        for i in range(1, n):
            iat = trace.times[i] - trace.times[i - 1]
            applies = (
                self.direction is None or trace.directions[i] == self.direction
            )
            if applies:
                factor = 1.0 + float(gen.uniform(self.low, self.high))
                candidate = prev_new + iat * factor
            else:
                # Undelayed direction keeps its schedule, but cannot
                # depart before an already-delayed earlier packet.
                candidate = max(trace.times[i], prev_new)
            new_times[i] = candidate
            prev_new = candidate
        return Trace(new_times, trace.directions.copy(), trace.sizes.copy())
