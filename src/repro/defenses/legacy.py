"""Deprecated free-function defense entry points.

Before the Defense contract (``name`` / ``params()`` / ``apply``),
defenses were also applied through module-level convenience functions
(``split(trace, ...)``, ``delay(trace, ...)``).  Those spellings keep
working here as thin shims over the registry classes, but emit a
``DeprecationWarning``: construct via
:func:`repro.defenses.registry.build_defense` (or the classes
directly) instead, which is the form the artifact cache can digest.

Migration::

    # old
    from repro.defenses import split
    defended = split(trace, threshold=1200)

    # new
    from repro.defenses import build_defense
    defended = build_defense("split", threshold=1200).apply(trace)
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.capture.trace import Trace
from repro.defenses.registry import build_defense


def _apply_deprecated(
    name: str,
    function: str,
    trace: Trace,
    rng: Optional[np.random.Generator],
    kwargs: dict,
) -> Trace:
    warnings.warn(
        f"repro.defenses.{function}() is deprecated; use "
        f'build_defense("{name}", ...).apply(trace) instead',
        DeprecationWarning,
        stacklevel=3,
    )
    return build_defense(name, **kwargs).apply(trace, rng)


def split(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("split", ...).apply(trace)``."""
    return _apply_deprecated("split", "split", trace, rng, kwargs)


def delay(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("delayed", ...).apply(trace)``."""
    return _apply_deprecated("delayed", "delay", trace, rng, kwargs)


def combined(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("combined", ...).apply(trace)``."""
    return _apply_deprecated("combined", "combined", trace, rng, kwargs)


def front(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("front", ...).apply(trace)``."""
    return _apply_deprecated("front", "front", trace, rng, kwargs)


def buflo(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("buflo", ...).apply(trace)``."""
    return _apply_deprecated("buflo", "buflo", trace, rng, kwargs)


def tamaraw(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("tamaraw", ...).apply(trace)``."""
    return _apply_deprecated("tamaraw", "tamaraw", trace, rng, kwargs)


def wtfpad(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("wtfpad", ...).apply(trace)``."""
    return _apply_deprecated("wtfpad", "wtfpad", trace, rng, kwargs)


def regulator(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("regulator", ...).apply(trace)``."""
    return _apply_deprecated("regulator", "regulator", trace, rng, kwargs)


def httpos(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("httpos", ...).apply(trace)``."""
    return _apply_deprecated("httpos", "httpos", trace, rng, kwargs)


def morphing(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("morphing", ...).apply(trace)``."""
    return _apply_deprecated("morphing", "morphing", trace, rng, kwargs)


def adaptive_front(trace: Trace, rng: Optional[np.random.Generator] = None, **kwargs) -> Trace:
    """Deprecated: ``build_defense("adaptive-front", ...).apply(trace)``."""
    return _apply_deprecated("adaptive-front", "adaptive_front", trace, rng, kwargs)
