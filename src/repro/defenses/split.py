"""Packet splitting (the paper's §3 first countermeasure).

"We emulate splitting by dividing packets of size larger than 1200
bytes into two individual packets of half the size of the original
packet. ... These countermeasures are only applied on incoming traffic
from the server, emulating a deployment of the defense at the
server-side."

The 1200-byte threshold is chosen so that no generated packet is
smaller than the minimum TCP MSS of 536 bytes (RFC 879).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.capture.trace import IN, Trace
from repro.defenses.base import TraceDefense

#: Paper's split threshold in bytes.
DEFAULT_THRESHOLD = 1200


class SplitDefense(TraceDefense):
    """Split large packets into ``factor`` equal parts.

    Parameters
    ----------
    threshold:
        Packets strictly larger than this are split.
    factor:
        Number of parts (the paper uses 2).
    direction:
        Which direction to defend; the paper defends incoming (-1)
        only.  ``None`` defends both.
    spacing:
        Time offset between the split parts (seconds).  Zero keeps the
        paper's emulation (same timestamp); the in-stack version in
        :mod:`repro.stob` naturally spaces them by serialization time.
    header_bytes:
        Extra header bytes charged to each split-off packet.  The
        paper's emulation splits sizes exactly in half (0); a real
        in-stack split duplicates TCP/IP headers (52), which is the
        honest bandwidth-overhead accounting used by the Table-1 bench.
    """

    name = "split"

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        factor: int = 2,
        direction: Optional[int] = IN,
        spacing: float = 0.0,
        header_bytes: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if factor < 2:
            raise ValueError(f"factor must be >= 2, got {factor}")
        if spacing < 0:
            raise ValueError(f"spacing must be >= 0, got {spacing}")
        if header_bytes < 0:
            raise ValueError(f"header_bytes must be >= 0, got {header_bytes}")
        self.threshold = threshold
        self.factor = factor
        self.direction = direction
        self.spacing = spacing
        self.header_bytes = header_bytes

    def params(self) -> dict:
        return {
            "threshold": self.threshold,
            "factor": self.factor,
            "direction": self.direction,
            "spacing": self.spacing,
            "header_bytes": self.header_bytes,
            "seed": self.seed,
        }

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        times, dirs, sizes = [], [], []
        for t, d, s in zip(trace.times, trace.directions, trace.sizes):
            applies = self.direction is None or d == self.direction
            if applies and s > self.threshold:
                part = int(s) // self.factor
                parts = [part] * self.factor
                parts[-1] += int(s) - part * self.factor
                for k, p in enumerate(parts):
                    times.append(float(t) + k * self.spacing)
                    dirs.append(int(d))
                    sizes.append(p + (self.header_bytes if k > 0 else 0))
            else:
                times.append(float(t))
                dirs.append(int(d))
                sizes.append(int(s))
        order = np.argsort(times, kind="stable")
        return Trace(
            np.asarray(times)[order],
            np.asarray(dirs, dtype=np.int8)[order],
            np.asarray(sizes, dtype=np.int64)[order],
        )
