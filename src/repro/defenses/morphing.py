"""Traffic morphing (Wright et al., NDSS 2009).

Morphing transforms one site's packet-size distribution into another's:
each source packet is re-emitted as packets whose sizes are drawn from
the *target* distribution — splitting when the drawn size is smaller
than what remains, padding when it is larger.  The eavesdropper's
per-packet size histogram then matches the target site.

The reference implementation derives the morphing matrix by convex
optimisation; this version uses direct sampling from the target
distribution, which preserves the observable property WF features see
(the defended size histogram ~ target histogram) at slightly higher
padding cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.capture.trace import IN, Trace
from repro.defenses.base import TraceDefense, check_emulation_budget


class MorphingDefense(TraceDefense):
    """Morph incoming packet sizes toward a target distribution.

    Parameters
    ----------
    target_sizes:
        Sample of wire sizes to imitate (e.g. the sizes of a decoy
        site's trace).  Defaults to a bimodal web-ish mixture.
    direction:
        Direction to morph (incoming only, like the paper's server-side
        deployment).
    min_size:
        Never emit packets below this (header floor).
    """

    name = "morphing"

    def __init__(
        self,
        target_sizes: Optional[Sequence[int]] = None,
        direction: int = IN,
        min_size: int = 80,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if target_sizes is None:
            target_sizes = [120] * 2 + [620] * 3 + [1500] * 5
        target = np.asarray(target_sizes, dtype=np.int64)
        if len(target) == 0 or np.any(target <= 0):
            raise ValueError("target_sizes must be positive and non-empty")
        self.target = target
        self.direction = direction
        self.min_size = min_size

    def params(self) -> dict:
        return {
            "target_sizes": self.target.tolist(),
            "direction": self.direction,
            "min_size": self.min_size,
            "seed": self.seed,
        }

    @classmethod
    def towards(cls, decoy: Trace, direction: int = IN, seed: int = 0):
        """Morph toward the packet sizes of a decoy trace."""
        sizes = decoy.filter_direction(direction).sizes
        if len(sizes) == 0:
            raise ValueError("decoy trace has no packets in that direction")
        return cls(target_sizes=sizes.tolist(), direction=direction, seed=seed)

    def apply(self, trace: Trace, rng=None) -> Trace:
        gen = self._rng(rng)
        if len(trace):
            # Worst-case emission count: every drawn size at the floor.
            # Checked up front so an absurd source packet fails in O(1)
            # instead of splitting for ever.
            floor = max(int(self.target.min()), self.min_size, 1)
            morphed_bytes = float(
                trace.sizes[trace.directions == self.direction]
                .astype(np.float64)
                .sum()
            )
            check_emulation_budget(
                morphed_bytes / floor + len(trace), self.name
            )
        records = []
        for t, d, s in zip(trace.times, trace.directions, trace.sizes):
            if d != self.direction:
                records.append((float(t), int(d), int(s)))
                continue
            remaining = int(s)
            while remaining > 0:
                drawn = int(self.target[gen.integers(0, len(self.target))])
                emitted = max(drawn, self.min_size)
                records.append((float(t), int(d), emitted))
                remaining -= emitted
        return Trace.from_records(records)
