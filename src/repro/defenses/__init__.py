"""Trace-level WF defenses.

Two families live here:

* the paper's §3 kernel-implementable countermeasures — packet
  :class:`~repro.defenses.split.SplitDefense`,
  :class:`~repro.defenses.delay.DelayDefense` and their
  :class:`~repro.defenses.combined.CombinedDefense` — applied as trace
  transforms exactly as the paper emulates them;
* the Table-1 baseline zoo (FRONT, BuFLO, Tamaraw, WTF-PAD, RegulaTor,
  HTTPOS-lite), used for the overhead comparison and the defense
  taxonomy.

All defenses transform :class:`~repro.capture.trace.Trace` objects and
are deterministic given a seed.  The same *mechanisms* exist at stack
level in :mod:`repro.stob` — the paper's argument is precisely that the
trace-level versions here are what authors evaluate, while only the
stack-level versions are enforceable.
"""

from repro.defenses.base import Defense, FirstNPackets, TraceDefense, NoDefense
from repro.defenses.split import SplitDefense
from repro.defenses.delay import DelayDefense
from repro.defenses.combined import CombinedDefense
from repro.defenses.front import FrontDefense
from repro.defenses.buflo import BufloDefense
from repro.defenses.tamaraw import TamarawDefense
from repro.defenses.wtfpad import WtfPadDefense
from repro.defenses.regulator import RegulatorDefense
from repro.defenses.httpos import HttposLiteDefense
from repro.defenses.morphing import MorphingDefense
from repro.defenses.palette import PaletteDefense, fit_palette
from repro.defenses.adaptive_front import AdaptiveFrontDefense
from repro.defenses.overhead import bandwidth_overhead, latency_overhead, overhead_summary
from repro.defenses.registry import (
    DEFENSE_REGISTRY,
    DEFENSE_TAXONOMY,
    DefenseInfo,
    build_defense,
    defense_from_spec,
    implemented_defenses,
)

# Deprecated free-function entry points (each emits DeprecationWarning).
from repro.defenses.legacy import (  # noqa: F401
    adaptive_front,
    buflo,
    combined,
    delay,
    front,
    httpos,
    morphing,
    regulator,
    split,
    tamaraw,
    wtfpad,
)

__all__ = [
    "Defense",
    "TraceDefense",
    "NoDefense",
    "FirstNPackets",
    "SplitDefense",
    "DelayDefense",
    "CombinedDefense",
    "FrontDefense",
    "BufloDefense",
    "TamarawDefense",
    "WtfPadDefense",
    "RegulatorDefense",
    "HttposLiteDefense",
    "MorphingDefense",
    "PaletteDefense",
    "fit_palette",
    "AdaptiveFrontDefense",
    "bandwidth_overhead",
    "latency_overhead",
    "overhead_summary",
    "DEFENSE_REGISTRY",
    "DEFENSE_TAXONOMY",
    "DefenseInfo",
    "build_defense",
    "defense_from_spec",
    "implemented_defenses",
    # Deprecated shims (kept importable for one release).
    "split",
    "delay",
    "combined",
    "front",
    "buflo",
    "tamaraw",
    "wtfpad",
    "regulator",
    "httpos",
    "morphing",
    "adaptive_front",
]
