"""Adaptive FRONT (Hasselquist et al., PETS 2024 — "Raising the Bar").

The adaptive variant scales FRONT's padding effort to the connection
instead of using fixed budgets: the padding budget is proportional to
the trace's own packet count and the padding window tracks the trace
duration, so short fetches are not drowned (or under-protected) by a
one-size-fits-all configuration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import TraceDefense

DUMMY_SIZE = 1500


class AdaptiveFrontDefense(TraceDefense):
    """FRONT with budgets/windows adapted to the trace.

    Parameters
    ----------
    budget_fraction:
        Maximum dummies per side as a fraction of the trace's packet
        count (drawn uniformly from [budget_fraction/4, budget_fraction]).
    window_fraction:
        Rayleigh window as a fraction of the trace duration.
    """

    name = "adaptive-front"

    def __init__(
        self,
        budget_fraction: float = 0.6,
        window_fraction: float = 0.5,
        dummy_size: int = DUMMY_SIZE,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if budget_fraction <= 0:
            raise ValueError(
                f"budget_fraction must be positive, got {budget_fraction}"
            )
        if window_fraction <= 0:
            raise ValueError(
                f"window_fraction must be positive, got {window_fraction}"
            )
        self.budget_fraction = budget_fraction
        self.window_fraction = window_fraction
        self.dummy_size = dummy_size

    def params(self) -> dict:
        return {
            "budget_fraction": self.budget_fraction,
            "window_fraction": self.window_fraction,
            "dummy_size": self.dummy_size,
            "seed": self.seed,
        }

    def _side(self, gen, n_packets, duration, start, fraction):
        budget_max = max(1, int(n_packets * fraction))
        budget = int(gen.integers(max(1, budget_max // 4), budget_max + 1))
        window = duration * self.window_fraction
        times = gen.rayleigh(scale=max(window, 1e-3) / 2.0, size=budget)
        times = times[times <= duration] + start
        return times

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        gen = self._rng(rng)
        if len(trace) == 0:
            return trace
        duration = max(trace.duration, 1e-3)
        start = float(trace.times[0])
        n_out = int((trace.directions == OUT).sum())
        n_in = int((trace.directions == IN).sum())
        client = self._side(gen, n_out, duration, start, self.budget_fraction)
        server = self._side(gen, n_in, duration, start, self.budget_fraction)
        records = [
            (float(t), OUT, self.dummy_size) for t in client
        ] + [(float(t), IN, self.dummy_size) for t in server]
        if not records:
            return trace
        return trace.concat(Trace.from_records(records))
