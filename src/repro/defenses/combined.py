"""Split + delay combined (the paper's third protected dataset)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.capture.trace import IN, Trace
from repro.defenses.base import TraceDefense
from repro.defenses.delay import DelayDefense
from repro.defenses.split import SplitDefense


class CombinedDefense(TraceDefense):
    """Apply splitting first, then delaying, as the paper combines
    its two countermeasures."""

    name = "combined"

    def __init__(
        self,
        threshold: int = 1200,
        factor: int = 2,
        low: float = 0.10,
        high: float = 0.30,
        direction: Optional[int] = IN,
        header_bytes: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.split = SplitDefense(
            threshold=threshold, factor=factor, direction=direction,
            header_bytes=header_bytes, seed=seed,
        )
        self.delay = DelayDefense(
            low=low, high=high, direction=direction, seed=seed + 1
        )

    def params(self) -> dict:
        return {
            "threshold": self.split.threshold,
            "factor": self.split.factor,
            "low": self.delay.low,
            "high": self.delay.high,
            "direction": self.split.direction,
            "header_bytes": self.split.header_bytes,
            "seed": self.seed,
        }

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        gen = self._rng(rng)
        return self.delay.apply(self.split.apply(trace, gen), gen)
