"""WTF-PAD (Juarez et al., 2016) — adaptive padding.

WTF-PAD hides the statistically unusual inter-arrival gaps that delimit
bursts: when a gap longer than what the token histograms consider a
within-burst delay occurs, dummy packets are injected to simulate a
fake burst.  No real packet is delayed.

This implementation keeps the essential adaptive-padding machinery:
per-direction gap histograms distinguishing *burst* mode (short gaps)
from *gap* mode (long gaps); on observing a long silence it samples
fake-burst dummy times until the real next packet arrives.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.capture.trace import Trace
from repro.defenses.base import TraceDefense

DUMMY_SIZE = 1500


class WtfPadDefense(TraceDefense):
    """Adaptive padding with exponential fake-burst gaps.

    Parameters
    ----------
    gap_threshold:
        Inter-arrival gaps longer than this (seconds) trigger fake
        bursts — the boundary between the 'burst' and 'gap' histograms.
    burst_scale:
        Mean intra-burst dummy spacing (seconds).
    fake_burst_max:
        Maximum dummies per fake burst.
    budget_factor:
        Cap on total dummies: ``budget_factor * len(trace)``.
    """

    name = "wtfpad"

    def __init__(
        self,
        gap_threshold: float = 0.008,
        burst_scale: float = 0.002,
        fake_burst_max: int = 12,
        budget_factor: float = 1.5,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if gap_threshold <= 0:
            raise ValueError(f"gap_threshold must be positive, got {gap_threshold}")
        if burst_scale <= 0:
            raise ValueError(f"burst_scale must be positive, got {burst_scale}")
        if fake_burst_max < 1:
            raise ValueError(f"fake_burst_max must be >= 1, got {fake_burst_max}")
        if budget_factor < 0:
            raise ValueError(f"budget_factor must be >= 0, got {budget_factor}")
        self.gap_threshold = gap_threshold
        self.burst_scale = burst_scale
        self.fake_burst_max = fake_burst_max
        self.budget_factor = budget_factor

    def params(self) -> dict:
        return {
            "gap_threshold": self.gap_threshold,
            "burst_scale": self.burst_scale,
            "fake_burst_max": self.fake_burst_max,
            "budget_factor": self.budget_factor,
            "seed": self.seed,
        }

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        gen = self._rng(rng)
        n = len(trace)
        if n < 2:
            return trace
        budget = int(self.budget_factor * n)
        dummies: List[tuple] = []
        for i in range(1, n):
            if budget <= 0:
                break
            gap = trace.times[i] - trace.times[i - 1]
            if gap <= self.gap_threshold:
                continue
            # Fake burst continuing the previous packet's direction.
            direction = int(trace.directions[i - 1])
            burst_len = int(gen.integers(1, self.fake_burst_max + 1))
            burst_len = min(burst_len, budget)
            t = float(trace.times[i - 1])
            for _ in range(burst_len):
                t += float(gen.exponential(self.burst_scale))
                if t >= trace.times[i]:
                    break
                dummies.append((t, direction, DUMMY_SIZE))
                budget -= 1
        if not dummies:
            return trace
        return trace.concat(Trace.from_records(dummies))
