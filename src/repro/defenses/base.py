"""Defense interface and composition helpers."""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.capture.trace import Trace
from repro.errors import TraceError

#: Upper bound on the packet records a trace-emulated defense may
#: materialise for one trace.  Byte-materialising defenses (HTTPOS
#: re-chunking, morphing, BuFLO/Tamaraw CBR trains) emit O(bytes/MTU)
#: records; an adversarially huge packet size would otherwise turn
#: ``apply`` into an unbounded loop (the fuzzer found HTTPOS hanging
#: on a 2**61-byte packet).  Honest traces sit orders of magnitude
#: below this bound.
MAX_EMULATED_RECORDS = 2_000_000


def check_emulation_budget(n_records: float, defense: str) -> None:
    """Raise :class:`~repro.errors.TraceError` when a defense would
    materialise more than :data:`MAX_EMULATED_RECORDS` packet records.

    Callers pass an arithmetic (possibly float) upper bound computed
    *before* building anything, so absurd inputs fail in O(1) instead
    of hanging.
    """
    if n_records > MAX_EMULATED_RECORDS:
        raise TraceError(
            f"{defense}: trace would emulate ~{n_records:.3g} packet "
            f"records (> {MAX_EMULATED_RECORDS}); input packet sizes "
            "are beyond what trace emulation supports"
        )


class TraceDefense(abc.ABC):
    """A transformation of observed packet sequences.

    The Defense contract, which every defense in this package
    implements in full:

    * ``name`` — the short registry identifier;
    * ``params()`` — the *total* set of constructor parameters, as a
      canonical (JSON-safe) dict: ``build_defense(d.name, **d.params())``
      reconstructs an equivalent defense, and the artifact cache
      digests exactly this dict to key defended datasets;
    * ``apply(trace, rng)`` — deterministic given (``params()``,
      ``rng``): pure, never mutating the input trace.

    ``seed`` fixes the defense's own randomness; :meth:`apply`
    optionally accepts an external generator for sweep experiments.
    """

    #: Short identifier used in tables, reports and the registry.
    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng(self.seed)

    @abc.abstractmethod
    def params(self) -> Dict[str, object]:
        """Canonical constructor parameters (JSON-safe, total)."""

    @abc.abstractmethod
    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        """Return the defended trace."""

    def __call__(self, trace: Trace) -> Trace:
        return self.apply(trace)


#: Public alias for the Defense base contract.
Defense = TraceDefense


class NoDefense(TraceDefense):
    """Identity transform — the 'Original' condition."""

    name = "original"

    def params(self) -> Dict[str, object]:
        return {"seed": self.seed}

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        return trace


class FirstNPackets(TraceDefense):
    """Apply an inner defense to only the first ``n`` packets.

    This is the paper's censorship-evaluation construction: the
    countermeasure acts on the connection prefix a censor must decide
    on, while the remainder of the trace passes through unchanged.
    The tail is time-shifted by however much the defense stretched the
    prefix, preserving continuity.
    """

    def __init__(self, inner: TraceDefense, n: int, seed: int = 0) -> None:
        super().__init__(seed)
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.inner = inner
        self.n = n
        self.name = f"{inner.name}@{n}"

    def params(self) -> Dict[str, object]:
        # Not registry-constructible (it wraps another defense); the
        # nested spec keeps the dict total for cache digests.
        return {
            "inner": {"name": self.inner.name, "params": self.inner.params()},
            "n": self.n,
            "seed": self.seed,
        }

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        if len(trace) <= self.n:
            return self.inner.apply(trace, rng)
        head = self.inner.apply(trace.head(self.n), rng)
        tail = trace.tail_after(self.n)
        if len(head) and len(tail):
            original_boundary = trace.times[self.n - 1]
            shift = max(0.0, head.times[-1] - original_boundary)
            tail = Trace(tail.times + shift, tail.directions, tail.sizes)
        return head.concat(tail)
