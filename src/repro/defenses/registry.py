"""The Table-1 defense taxonomy and a defense factory.

Table 1 of the paper classifies WF defenses by target system
(Tor / TLS / QUIC), strategy (regularisation vs obfuscation) and
traffic manipulation (padding, timing modification, packet size
modification).  ``DEFENSE_TAXONOMY`` reproduces that table, with an
``implemented`` flag naming the class in this package when we provide
a runnable version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.defenses.base import NoDefense, TraceDefense
from repro.defenses.buflo import BufloDefense
from repro.defenses.combined import CombinedDefense
from repro.defenses.delay import DelayDefense
from repro.defenses.front import FrontDefense
from repro.defenses.httpos import HttposLiteDefense
from repro.defenses.adaptive_front import AdaptiveFrontDefense
from repro.defenses.morphing import MorphingDefense
from repro.defenses.palette import PaletteDefense
from repro.defenses.regulator import RegulatorDefense
from repro.defenses.split import SplitDefense
from repro.defenses.tamaraw import TamarawDefense
from repro.defenses.wtfpad import WtfPadDefense


@dataclass(frozen=True)
class DefenseInfo:
    """One row of Table 1."""

    system: str
    target: str  # Tor, TLS, QUIC, TLS & QUIC
    strategy: str  # Regularization | Obfuscation
    manipulations: Tuple[str, ...]  # padding / timing / packet size
    implemented_as: Optional[str] = None  # class name in repro.defenses


#: The paper's Table 1, row by row.
DEFENSE_TAXONOMY: Tuple[DefenseInfo, ...] = (
    DefenseInfo("ALPaCA", "Tor", "Regularization", ("padding",)),
    DefenseInfo(
        "BuFLO", "Tor", "Regularization", ("padding", "timing"), "BufloDefense"
    ),
    DefenseInfo("RegulaTor", "Tor", "Regularization", ("padding", "timing"),
                "RegulatorDefense"),
    DefenseInfo("Surakav", "Tor", "Regularization", ("padding", "timing")),
    DefenseInfo("Palette", "Tor", "Regularization", ("padding", "timing"),
                "PaletteDefense"),
    DefenseInfo("WTF-PAD", "Tor", "Obfuscation", ("padding", "timing"),
                "WtfPadDefense"),
    DefenseInfo("FRONT", "Tor", "Obfuscation", ("padding", "timing"),
                "FrontDefense"),
    DefenseInfo("BLANKET", "Tor", "Obfuscation", ("padding", "timing")),
    DefenseInfo("Morphing", "TLS", "Obfuscation", ("timing", "packet size"),
                "MorphingDefense"),
    DefenseInfo("HTTPOS", "TLS", "Obfuscation", ("timing", "packet size"),
                "HttposLiteDefense"),
    DefenseInfo("Burst Defense", "TLS", "Obfuscation", ("timing", "packet size")),
    DefenseInfo("Cactus", "TLS", "Obfuscation", ("timing", "packet size")),
    DefenseInfo("Adaptive FRONT", "TLS", "Obfuscation", ("padding", "timing"),
                "AdaptiveFrontDefense"),
    DefenseInfo("QCSD", "QUIC", "Obfuscation",
                ("padding", "timing", "packet size")),
    DefenseInfo("pad-resources", "QUIC", "Obfuscation",
                ("padding", "timing", "packet size")),
    DefenseInfo("NetShaper", "TLS & QUIC", "Obfuscation",
                ("padding", "timing")),
    # The paper's own §3 countermeasures (stack-implementable).
    DefenseInfo("Stob-Split", "TLS", "Obfuscation", ("packet size",),
                "SplitDefense"),
    DefenseInfo("Stob-Delay", "TLS", "Obfuscation", ("timing",),
                "DelayDefense"),
    DefenseInfo("Stob-Combined", "TLS", "Obfuscation",
                ("timing", "packet size"), "CombinedDefense"),
)

#: The defense registry: short name -> class.  Every entry implements
#: the full Defense contract (``name``, total ``params()``,
#: deterministic ``apply``), so ``build_defense(name, **params)``
#: round-trips for any configured instance.
DEFENSE_REGISTRY: Dict[str, type] = {
    "original": NoDefense,
    "split": SplitDefense,
    "delayed": DelayDefense,
    "combined": CombinedDefense,
    "front": FrontDefense,
    "buflo": BufloDefense,
    "tamaraw": TamarawDefense,
    "wtfpad": WtfPadDefense,
    "regulator": RegulatorDefense,
    "httpos": HttposLiteDefense,
    "morphing": MorphingDefense,
    "adaptive-front": AdaptiveFrontDefense,
    "palette": PaletteDefense,
}

# Backwards-compatible private alias (pre-contract name).
_FACTORY = DEFENSE_REGISTRY


def build_defense(name: str, seed: int = 0, **kwargs) -> TraceDefense:
    """Instantiate a defense by its short name.

    ``kwargs`` are the class's constructor parameters; passing a
    defense's own ``params()`` dict reconstructs it exactly
    (``seed`` may arrive either positionally or inside ``kwargs``).
    """
    try:
        cls = DEFENSE_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown defense {name!r}; choose from {sorted(DEFENSE_REGISTRY)}"
        ) from None
    kwargs.setdefault("seed", seed)
    return cls(**kwargs)


def defense_from_spec(spec: Dict[str, object]) -> TraceDefense:
    """Rebuild a defense from a ``{"name": ..., "params": {...}}`` spec
    (the cache's canonical defense identity)."""
    return build_defense(str(spec["name"]), **dict(spec["params"]))


def implemented_defenses() -> Tuple[str, ...]:
    """Short names of every defense usable without calibration.

    Palette is excluded: it is dataset-level and must be ``fit()`` on a
    calibration set before use (see
    :func:`repro.defenses.palette.fit_palette`).
    """
    return tuple(sorted(name for name in DEFENSE_REGISTRY if name != "palette"))
