"""HTTPOS-lite (Luo et al., NDSS 2011) — client-side obfuscation.

HTTPOS is the paper's §2.3 example of how *client-only* defenses must
contort the protocol: the client advertises a small MSS and receive
window to force the server into small, client-clocked packets —
"small MSS values apply for the connection lifetime and thus damage
transmission efficiency".

The trace emulation captures that behaviour: every incoming packet is
re-chunked to the small advertised MSS, each chunk spaced by the
serialisation + clocking delay the tiny window imposes, and outgoing
requests get random pipelining delays.  The heavy latency overhead the
paper criticises falls out of the mechanism.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import TraceDefense, check_emulation_budget


class HttposLiteDefense(TraceDefense):
    """Small advertised MSS/window emulation."""

    name = "httpos"

    def __init__(
        self,
        advertised_mss: int = 536,
        clock_delay: float = 0.001,
        request_jitter: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if advertised_mss < 64:
            raise ValueError(
                f"advertised_mss must be >= 64, got {advertised_mss}"
            )
        if clock_delay < 0 or request_jitter < 0:
            raise ValueError("delays must be >= 0")
        self.advertised_mss = advertised_mss
        self.clock_delay = clock_delay
        self.request_jitter = request_jitter

    def params(self) -> dict:
        return {
            "advertised_mss": self.advertised_mss,
            "clock_delay": self.clock_delay,
            "request_jitter": self.request_jitter,
            "seed": self.seed,
        }

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        gen = self._rng(rng)
        records: List[tuple] = []
        # Accumulated delay from window clocking shifts later packets.
        shift = 0.0
        header = 52
        if len(trace):
            # Bound the output before chunking anything: re-chunking is
            # O(bytes/MSS), so an absurd packet size must fail fast
            # instead of looping for ever (float64 keeps the estimate
            # exact enough at any magnitude).
            split = (trace.directions == IN) & (
                trace.sizes > self.advertised_mss + header
            )
            payloads = trace.sizes[split].astype(np.float64) - header
            chunk_count = float(np.ceil(payloads / self.advertised_mss).sum())
            check_emulation_budget(
                chunk_count + (len(trace) - int(split.sum())), self.name
            )
        for t, d, s in zip(trace.times, trace.directions, trace.sizes):
            t = float(t) + shift
            if d == IN and s > self.advertised_mss + header:
                payload = int(s) - header
                chunks = []
                while payload > 0:
                    take = min(payload, self.advertised_mss)
                    chunks.append(take + header)
                    payload -= take
                for k, chunk in enumerate(chunks):
                    records.append((t + k * self.clock_delay, IN, chunk))
                shift += (len(chunks) - 1) * self.clock_delay
            elif d == OUT:
                jitter = float(gen.uniform(0, self.request_jitter))
                shift += jitter
                records.append((t + jitter, OUT, int(s)))
            else:
                records.append((t, d, int(s)))
        return Trace.from_records(records)
