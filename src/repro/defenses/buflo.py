"""BuFLO (Dyer et al., IEEE S&P 2012) — constant-rate regularisation.

BuFLO sends fixed-size packets at a fixed interval ``rho`` in both
directions for at least ``tau`` seconds, buffering real data into the
constant stream and padding with dummies when no data is queued.  It
is the canonical heavyweight regularisation defense: strong but with
extreme bandwidth and latency overheads (§2.3's argument against
padding-heavy designs).

The trace transform emulates the canonical description: each
direction's real bytes are re-serialised into an ``ell``-sized,
``rho``-spaced packet train; the train lasts until data is exhausted
and at least until ``tau``.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import TraceDefense, check_emulation_budget


class BufloDefense(TraceDefense):
    """Constant-bitrate re-serialisation with a minimum duration."""

    name = "buflo"

    def __init__(
        self,
        ell: int = 1500,
        rho: float = 0.002,
        tau: float = 10.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if ell <= 0:
            raise ValueError(f"ell must be positive, got {ell}")
        if rho <= 0:
            raise ValueError(f"rho must be positive, got {rho}")
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        self.ell = ell
        self.rho = rho
        self.tau = tau

    def params(self) -> dict:
        return {
            "ell": self.ell,
            "rho": self.rho,
            "tau": self.tau,
            "seed": self.seed,
        }

    def _direction_train(self, trace: Trace, direction: int) -> List[tuple]:
        """The CBR packet train carrying one direction's bytes."""
        side = trace.filter_direction(direction)
        # total_bytes (not sizes.sum()): exact past int64 wraparound.
        total_bytes = side.total_bytes
        needed = math.ceil(total_bytes / self.ell) if total_bytes else 0
        # Run until data fits AND tau has elapsed.
        slots = max(needed, math.ceil(self.tau / self.rho))
        check_emulation_budget(slots, self.name)
        start = float(trace.times[0]) if len(trace) else 0.0
        return [
            (start + k * self.rho, direction, self.ell) for k in range(slots)
        ]

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        if len(trace) == 0:
            return trace
        records = self._direction_train(trace, OUT) + self._direction_train(
            trace, IN
        )
        return Trace.from_records(records)
