"""Tamaraw (Cai et al., CCS 2014) — per-direction CBR + length padding.

Tamaraw refines BuFLO: each direction gets its own packet interval
(incoming traffic is denser than outgoing), and the train length is
padded up to the next multiple of ``pad_multiple`` packets so total
lengths collapse into few anonymity sets.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import TraceDefense, check_emulation_budget


class TamarawDefense(TraceDefense):
    """Per-direction CBR with train-length padding."""

    name = "tamaraw"

    def __init__(
        self,
        ell: int = 1500,
        rho_out: float = 0.04,
        rho_in: float = 0.012,
        pad_multiple: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if ell <= 0:
            raise ValueError(f"ell must be positive, got {ell}")
        if rho_out <= 0 or rho_in <= 0:
            raise ValueError("packet intervals must be positive")
        if pad_multiple < 1:
            raise ValueError(f"pad_multiple must be >= 1, got {pad_multiple}")
        self.ell = ell
        self.rho_out = rho_out
        self.rho_in = rho_in
        self.pad_multiple = pad_multiple

    def params(self) -> dict:
        return {
            "ell": self.ell,
            "rho_out": self.rho_out,
            "rho_in": self.rho_in,
            "pad_multiple": self.pad_multiple,
            "seed": self.seed,
        }

    def _train(self, trace: Trace, direction: int, rho: float) -> List[tuple]:
        side = trace.filter_direction(direction)
        # total_bytes (not sizes.sum()): exact past int64 wraparound.
        total_bytes = side.total_bytes
        needed = math.ceil(total_bytes / self.ell) if total_bytes else 0
        padded = (
            math.ceil(max(needed, 1) / self.pad_multiple) * self.pad_multiple
        )
        check_emulation_budget(padded, self.name)
        start = float(trace.times[0]) if len(trace) else 0.0
        return [(start + k * rho, direction, self.ell) for k in range(padded)]

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        if len(trace) == 0:
            return trace
        records = self._train(trace, OUT, self.rho_out) + self._train(
            trace, IN, self.rho_in
        )
        return Trace.from_records(records)
