"""RegulaTor (Holland & Hopper, PETS 2022) — surge-shaped regularisation.

RegulaTor observes that page downloads begin with a surge of incoming
packets whose rate decays.  It re-schedules *incoming* packets onto a
canonical decaying-rate envelope ``R0 * d^t`` that restarts whenever a
genuine new surge arrives, padding with dummies when the envelope has
capacity but no real data is queued.  Outgoing packets are released at
a fixed fraction of incoming ones.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import TraceDefense

DUMMY_SIZE = 1500


class RegulatorDefense(TraceDefense):
    """Decaying-rate download envelope.

    Parameters
    ----------
    initial_rate:
        R0, packets/second at surge start.
    decay:
        d, per-second decay multiplier (0 < d < 1).
    surge_threshold:
        Queue length (packets) that restarts the surge.
    upload_ratio:
        One outgoing packet is released per ``1/upload_ratio`` incoming
        slots.
    padding_budget:
        Maximum dummy packets injected when the envelope idles.
    """

    name = "regulator"

    def __init__(
        self,
        initial_rate: float = 300.0,
        decay: float = 0.8,
        surge_threshold: int = 60,
        upload_ratio: float = 0.25,
        padding_budget: int = 300,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if initial_rate <= 0:
            raise ValueError(f"initial_rate must be positive, got {initial_rate}")
        if not 0 < decay < 1:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        if surge_threshold < 1:
            raise ValueError(f"surge_threshold must be >= 1, got {surge_threshold}")
        if not 0 < upload_ratio <= 1:
            raise ValueError(f"upload_ratio must be in (0, 1], got {upload_ratio}")
        if padding_budget < 0:
            raise ValueError(f"padding_budget must be >= 0, got {padding_budget}")
        self.initial_rate = initial_rate
        self.decay = decay
        self.surge_threshold = surge_threshold
        self.upload_ratio = upload_ratio
        self.padding_budget = padding_budget

    def params(self) -> dict:
        return {
            "initial_rate": self.initial_rate,
            "decay": self.decay,
            "surge_threshold": self.surge_threshold,
            "upload_ratio": self.upload_ratio,
            "padding_budget": self.padding_budget,
            "seed": self.seed,
        }

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        if len(trace) == 0:
            return trace
        incoming = trace.filter_direction(IN)
        n_in = len(incoming)
        start = float(trace.times[0])
        records: List[tuple] = []

        # Walk the envelope: at time t since surge start, instantaneous
        # rate is R0 * d^t; the next slot is 1/rate later.
        surge_start = start
        t = start
        sent = 0
        queued_arrivals = incoming.times
        padding_left = self.padding_budget
        out_credit = 0.0
        guard = 10 * (n_in + self.padding_budget) + 1000
        while sent < n_in and guard > 0:
            guard -= 1
            elapsed = t - surge_start
            rate = self.initial_rate * (self.decay ** elapsed)
            slot = 1.0 / max(rate, 1e-3)
            t += slot
            backlog = int(np.searchsorted(queued_arrivals, t)) - sent
            if backlog > self.surge_threshold:
                # A genuine surge: restart the envelope.
                surge_start = t
            if backlog > 0:
                records.append((t, IN, int(incoming.sizes[sent])))
                sent += 1
            elif padding_left > 0:
                records.append((t, IN, DUMMY_SIZE))
                padding_left -= 1
            out_credit += self.upload_ratio
            if out_credit >= 1.0:
                out_credit -= 1.0
                records.append((t, OUT, DUMMY_SIZE))
        # Anything the guard cut off is flushed at the end (defensive;
        # does not occur for realistic parameters).
        for k in range(sent, n_in):
            t += 1.0 / self.initial_rate
            records.append((t, IN, int(incoming.sizes[k])))
        return Trace.from_records(records)
