"""Palette-lite: traffic-cluster anonymisation (Shen et al., S&P 2024).

Palette regularises traces *per cluster*: pages with similar traffic
are grouped, and every member is padded up to the cluster's
"supertrace" so the attacker can at best identify the cluster, not the
page.  This lite version clusters on incoming volume (quantile
buckets) and pads each trace's download volume and packet count up to
its cluster's maxima with trailing dummy packets.

Unlike the per-trace defenses, Palette is *dataset-level*: the cluster
boundaries come from a calibration set (:meth:`PaletteDefense.fit`),
mirroring how the real system provisions cluster profiles ahead of
time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import IN, Trace
from repro.defenses.base import TraceDefense

DUMMY_SIZE = 1500


class PaletteDefense(TraceDefense):
    """Quantile-clustered volume/count regularisation."""

    name = "palette"

    def __init__(self, n_clusters: int = 4, rate: float = 6.25e6,
                 seed: int = 0) -> None:
        super().__init__(seed)
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.n_clusters = n_clusters
        self.rate = rate
        self._boundaries: Optional[np.ndarray] = None
        self._target_bytes: Optional[np.ndarray] = None
        self._target_packets: Optional[np.ndarray] = None

    def params(self) -> dict:
        # Constructor parameters only: the fitted cluster state derives
        # from the calibration dataset, which cache keys capture through
        # that dataset's own digest.
        return {
            "n_clusters": self.n_clusters,
            "rate": self.rate,
            "seed": self.seed,
        }

    # -- calibration --------------------------------------------------------------

    def fit(self, dataset: Dataset) -> "PaletteDefense":
        """Derive cluster boundaries and supertrace targets."""
        volumes = np.array(
            [t.incoming_bytes for _l, t in dataset], dtype=np.float64
        )
        counts = np.array(
            [len(t.filter_direction(IN)) for _l, t in dataset],
            dtype=np.float64,
        )
        if len(volumes) < self.n_clusters:
            raise ValueError(
                f"need >= {self.n_clusters} traces to fit, got {len(volumes)}"
            )
        quantiles = np.linspace(0, 100, self.n_clusters + 1)[1:-1]
        self._boundaries = np.percentile(volumes, quantiles)
        cluster_of = np.digitize(volumes, self._boundaries)
        self._target_bytes = np.array(
            [
                volumes[cluster_of == c].max() if np.any(cluster_of == c) else 0
                for c in range(self.n_clusters)
            ]
        )
        self._target_packets = np.array(
            [
                counts[cluster_of == c].max() if np.any(cluster_of == c) else 0
                for c in range(self.n_clusters)
            ]
        )
        return self

    def fitted(self) -> bool:
        return self._boundaries is not None

    def cluster_of(self, trace: Trace) -> int:
        if not self.fitted():
            raise RuntimeError("PaletteDefense.fit() a calibration set first")
        return int(np.digitize([trace.incoming_bytes], self._boundaries)[0])

    # -- application ----------------------------------------------------------------

    def apply(self, trace: Trace, rng=None) -> Trace:
        if not self.fitted():
            raise RuntimeError("PaletteDefense.fit() a calibration set first")
        if len(trace) == 0:
            return trace
        cluster = self.cluster_of(trace)
        pad_bytes = max(
            0, int(self._target_bytes[cluster]) - trace.incoming_bytes
        )
        pad_packets = max(
            int(np.ceil(pad_bytes / DUMMY_SIZE)),
            int(self._target_packets[cluster])
            - len(trace.filter_direction(IN)),
        )
        if pad_packets <= 0:
            return trace
        # Trailing dummy train at the padding rate.
        start = float(trace.times[-1])
        interval = DUMMY_SIZE / self.rate
        records = [
            (start + (k + 1) * interval, IN, DUMMY_SIZE)
            for k in range(pad_packets)
        ]
        return trace.concat(Trace.from_records(records))


def fit_palette(
    dataset: Dataset, n_clusters: int = 4, seed: int = 0
) -> PaletteDefense:
    """Convenience: a fitted Palette defense for ``dataset``."""
    return PaletteDefense(n_clusters=n_clusters, seed=seed).fit(dataset)
