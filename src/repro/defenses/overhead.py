"""Overhead metrics for defenses (§2.3's cost axis).

* **bandwidth overhead** — extra wire bytes relative to the original
  trace (padding and header duplication both count);
* **latency overhead** — relative increase of the trace duration
  (time-to-last-byte).

The paper's qualitative claims these metrics reproduce: FRONT ≈ 80 %
bandwidth overhead, QCSD ≈ 309 %, packet splitting costs only extra
headers, delaying costs no bandwidth but some latency.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace
from repro.defenses.base import TraceDefense


def bandwidth_overhead(original: Trace, defended: Trace) -> float:
    """(defended bytes - original bytes) / original bytes."""
    base = original.total_bytes
    if base == 0:
        raise ValueError("original trace has no bytes")
    return (defended.total_bytes - base) / base


def latency_overhead(original: Trace, defended: Trace) -> float:
    """(defended duration - original duration) / original duration."""
    base = original.duration
    if base <= 0:
        return 0.0
    return (defended.duration - base) / base


def packet_overhead(original: Trace, defended: Trace) -> float:
    """Relative increase in packet count."""
    if len(original) == 0:
        raise ValueError("original trace has no packets")
    return (len(defended) - len(original)) / len(original)


def overhead_summary(
    dataset: Dataset,
    defense: TraceDefense,
    max_traces: Optional[int] = None,
) -> Dict[str, float]:
    """Mean overheads of ``defense`` across a dataset.

    Returns a dict with ``bandwidth``, ``latency`` and ``packets``
    mean relative overheads plus the trace count used.
    """
    bw, lat, pkt = [], [], []
    count = 0
    for _label, trace in dataset:
        if len(trace) == 0 or trace.total_bytes == 0:
            continue
        defended = defense.apply(trace)
        bw.append(bandwidth_overhead(trace, defended))
        lat.append(latency_overhead(trace, defended))
        pkt.append(packet_overhead(trace, defended))
        count += 1
        if max_traces is not None and count >= max_traces:
            break
    if count == 0:
        raise ValueError("dataset contained no usable traces")
    return {
        "bandwidth": float(np.mean(bw)),
        "latency": float(np.mean(lat)),
        "packets": float(np.mean(pkt)),
        "n_traces": float(count),
    }
