"""FRONT (Gong & Wang, USENIX Security 2020) — zero-delay padding.

FRONT obfuscates the *front* of a trace, where most fingerprintable
information lives, by injecting dummy packets whose timestamps are
sampled from a Rayleigh distribution.  Each side draws a padding
budget uniformly from ``[1, N]`` and a padding window from
``[W_min, W_max]``; dummy timestamps are Rayleigh(scale=W) samples
clipped to the trace.  No real packet is delayed (zero-delay), at the
price of substantial bandwidth overhead — §2.3 of the paper cites
~80 % for FRONT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.capture.trace import IN, OUT, Trace
from repro.defenses.base import TraceDefense

#: Dummy packets are MTU-sized (padding maximises size ambiguity).
DUMMY_SIZE = 1500


class FrontDefense(TraceDefense):
    """Rayleigh-distributed front padding."""

    name = "front"

    def __init__(
        self,
        n_client: int = 900,
        n_server: int = 2200,
        w_min: float = 0.2,
        w_max: float = 2.5,
        dummy_size: int = DUMMY_SIZE,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if n_client < 1 or n_server < 1:
            raise ValueError("padding budgets must be >= 1")
        if not 0 < w_min <= w_max:
            raise ValueError(f"need 0 < w_min <= w_max, got ({w_min}, {w_max})")
        self.n_client = n_client
        self.n_server = n_server
        self.w_min = w_min
        self.w_max = w_max
        self.dummy_size = dummy_size

    def params(self) -> dict:
        return {
            "n_client": self.n_client,
            "n_server": self.n_server,
            "w_min": self.w_min,
            "w_max": self.w_max,
            "dummy_size": self.dummy_size,
            "seed": self.seed,
        }

    def _sample_side(
        self,
        gen: np.random.Generator,
        budget_max: int,
        duration: float,
        start: float,
    ) -> np.ndarray:
        budget = int(gen.integers(1, budget_max + 1))
        window = float(gen.uniform(self.w_min, self.w_max))
        times = gen.rayleigh(scale=window / 2.0, size=budget) + start
        # Padding beyond the trace end is pointless: FRONT stops when
        # the page load completes.
        return times[times <= start + duration]

    def apply(self, trace: Trace, rng: Optional[np.random.Generator] = None) -> Trace:
        gen = self._rng(rng)
        if len(trace) == 0:
            return trace
        start = float(trace.times[0])
        duration = max(trace.duration, 1e-3)
        client_times = self._sample_side(gen, self.n_client, duration, start)
        server_times = self._sample_side(gen, self.n_server, duration, start)
        dummy_times = np.concatenate([client_times, server_times])
        dummy_dirs = np.concatenate(
            [
                np.full(len(client_times), OUT, dtype=np.int8),
                np.full(len(server_times), IN, dtype=np.int8),
            ]
        )
        dummy_sizes = np.full(len(dummy_times), self.dummy_size, dtype=np.int64)
        dummies = Trace.from_records(
            list(zip(dummy_times.tolist(), dummy_dirs.tolist(), dummy_sizes.tolist()))
        )
        return trace.concat(dummies)
